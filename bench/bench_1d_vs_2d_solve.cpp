// E14 — ablation: 1-D vs 2-D partitioned triangular solve.
//
// Figure 5 marks triangular solution under a 2-D partitioning
// "unscalable": every block column needs a reduction along its grid row
// and a broadcast along its grid column, which cannot pipeline the way
// the 1-D algorithm does.  We implement exactly that 2-D fan-in/fan-out
// dense solver on the simulator and compare it with the 1-D pipelined
// solver from the library.
#include <cmath>
#include <iostream>
#include <vector>

#include "exec/stats.hpp"
#include "bench_common.hpp"
#include "dense/cholesky.hpp"
#include "dense/kernels.hpp"
#include "mapping/block_cyclic.hpp"
#include "partrisolve/dense_trisolve.hpp"
#include "partrisolve/twodim.hpp"
#include "simpar/collectives.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

/// 2-D block-cyclic dense forward solve (fan-in along rows, fan-out along
/// columns).  Returns the simulated parallel time; verifies the result.
double dense_forward_2d(index_t n, index_t p, index_t b,
                        const dense::Matrix& l, std::vector<real_t>& x_out) {
  const mapping::BlockCyclic2d grid = mapping::BlockCyclic2d::near_square(p, b);
  const index_t nb = (n + b - 1) / b;
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);

  simpar::Machine machine(t3d_config(p));
  auto spmd = [&](simpar::Proc& proc) {
    const index_t w = proc.rank();
    const index_t gr = w / grid.qc;
    const index_t gc = w % grid.qc;
    const simpar::Group row_group{gr * grid.qc, grid.qc, 1};
    const simpar::Group col_group{gc, grid.qr, grid.qc};
    const simpar::CostModel& cost = proc.cost();

    // Everyone keeps the solved prefix of x it has seen broadcast.
    std::vector<real_t> xk;  // current block's solution
    std::vector<std::vector<real_t>> solved(static_cast<std::size_t>(nb));

    for (index_t kb = 0; kb < nb; ++kb) {
      const index_t k0 = kb * b;
      const index_t bk = std::min(b, n - k0);
      const index_t owner_r = kb % grid.qr;
      const index_t owner_c = kb % grid.qc;

      // Fan-in: ranks in grid row owner_r accumulate their partial sums
      // sum_{J < kb, J owned by my grid col} A(kb, J) x_J and reduce along
      // the grid row to the diagonal owner.
      if (gr == owner_r) {
        std::vector<real_t> partial(static_cast<std::size_t>(bk), 0.0);
        for (index_t jb = gc; jb < kb; jb += grid.qc) {
          const index_t j0 = jb * b;
          const index_t bj = std::min(b, n - j0);
          for (index_t jj = 0; jj < bj; ++jj) {
            const real_t xj = solved[static_cast<std::size_t>(jb)]
                                    [static_cast<std::size_t>(jj)];
            for (index_t ii = 0; ii < bk; ++ii) {
              partial[static_cast<std::size_t>(ii)] +=
                  l(k0 + ii, j0 + jj) * xj;
            }
          }
          proc.compute(2.0 * static_cast<double>(bk) * bj,
                       simpar::FlopKind::blas2);
        }
        simpar::reduce_sum(proc, row_group, partial,
                           static_cast<int>(4 * kb));
        // Root of the row reduction is grid column 0; ship to the diagonal
        // owner if different.
        if (gc == 0 && owner_c != 0) {
          proc.send_values<real_t>(gr * grid.qc + owner_c,
                                   static_cast<int>(4 * kb + 1),
                                   std::span<const real_t>(partial));
        }
        if (gc == owner_c) {
          std::vector<real_t> sums = owner_c == 0
                                         ? partial
                                         : proc.recv_values<real_t>(
                                               gr * grid.qc,
                                               static_cast<int>(4 * kb + 1));
          // Solve the diagonal block.
          xk.assign(static_cast<std::size_t>(bk), 0.0);
          for (index_t ii = 0; ii < bk; ++ii) {
            real_t s = 1.0 - sums[static_cast<std::size_t>(ii)];  // rhs = 1
            for (index_t jj = 0; jj < ii; ++jj) {
              s -= l(k0 + ii, k0 + jj) * xk[static_cast<std::size_t>(jj)];
            }
            xk[static_cast<std::size_t>(ii)] = s / l(k0 + ii, k0 + ii);
          }
          proc.compute(static_cast<double>(bk) * bk,
                       simpar::FlopKind::blas2);
          for (index_t ii = 0; ii < bk; ++ii) {
            x[static_cast<std::size_t>(k0 + ii)] =
                xk[static_cast<std::size_t>(ii)];
          }
        }
      }
      // Fan-out: the diagonal owner broadcasts x_kb along its grid column;
      // every rank of that grid column then broadcasts along its grid row
      // so all future row-owners have it.
      std::vector<real_t> xblock;
      if (gr == owner_r && gc == owner_c) xblock = xk;
      if (gc == owner_c) {
        simpar::broadcast_from(proc, col_group, owner_r, xblock,
                               static_cast<int>(4 * kb + 2));
      }
      simpar::broadcast_from(proc, row_group, owner_c, xblock,
                             static_cast<int>(4 * kb + 3));
      solved[static_cast<std::size_t>(kb)] = std::move(xblock);
    }
    (void)cost;
  };
  auto stats = machine.run(spmd);
  x_out = x;
  return stats.parallel_time();
}

void run() {
  print_header("E14 (ablation)",
               "1-D pipelined vs 2-D fan-in/fan-out triangular solve");
  const index_t n = 768;
  dense::Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      l(i, j) = i == j ? 4.0 : 1.0 / static_cast<real_t>(n);
    }
  }
  std::cout << "dense lower-triangular system, n = " << n
            << ", rhs = ones, b = 8\n\n";

  // Reference solution.
  dense::Matrix rhs(n, 1);
  for (index_t i = 0; i < n; ++i) rhs(i, 0) = 1.0;
  dense::Matrix ref = dense::solve_lower(l, rhs);

  TextTable table({"p", "1-D pipelined (s)", "2-D fan-in/out (s)",
                   "2-D / 1-D", "1-D efficiency", "2-D efficiency"});
  double t1_1d = 0.0, t1_2d = 0.0;
  for (index_t p = 1; p <= std::min<index_t>(bench_max_p(), 64); p *= 4) {
    std::vector<real_t> b1(static_cast<std::size_t>(n), 1.0);
    simpar::Machine machine(t3d_config(p));
    const double t1d =
        partrisolve::dense_parallel_forward(machine, l, b1, 1, 8)
            .parallel_time();
    std::vector<real_t> b2;
    const double t2d = dense_forward_2d(n, p, 8, l, b2);
    // Verify both agree with the reference.
    for (index_t i = 0; i < n; ++i) {
      SPARTS_CHECK(std::abs(b1[static_cast<std::size_t>(i)] - ref(i, 0)) <
                   1e-9);
      SPARTS_CHECK(std::abs(b2[static_cast<std::size_t>(i)] - ref(i, 0)) <
                   1e-9);
    }
    if (p == 1) {
      t1_1d = t1d;
      t1_2d = t2d;
    }
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(t1d, 5);
    table.add(t2d, 5);
    table.add(t2d / t1d, 2);
    table.add(exec::efficiency(t1_1d, p, t1d), 3);
    table.add(exec::efficiency(t1_2d, p, t2d), 3);
  }
  std::cout << table;

  // The sparse version of the same comparison, on a 3-D paper workload
  // whose large separators are where the asymptotic verdict bites.
  std::cout << "\nSparse solvers on " << "CUBE35 (scaled):\n";
  PreparedProblem prob = prepare(solver::paper_problem("CUBE35", bench_scale()));
  Rng rng2(3);
  const index_t ns = prob.a.n();
  std::vector<real_t> rhs2 = sparse::random_rhs(ns, 1, rng2);
  TextTable t2({"p", "1-D pipelined (s)", "2-D in place (s)", "2-D / 1-D"});
  for (index_t p = 4; p <= std::min<index_t>(bench_max_p(), 64); p *= 4) {
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(prob.part, p);
    double t1 = 0.0, t2d = 0.0;
    {
      partrisolve::DistributedTrisolver solver(prob.factor, map, {});
      simpar::Machine machine(t3d_config(p));
      std::vector<real_t> x(static_cast<std::size_t>(ns), 0.0);
      auto [fw, bw] = solver.solve(machine, rhs2, x, 1);
      t1 = fw.time() + bw.time();
    }
    {
      simpar::Machine machine(t3d_config(p));
      std::vector<real_t> x(static_cast<std::size_t>(ns), 0.0);
      auto [fw, bw] =
          partrisolve::solve_two_dim(machine, prob.factor, map, rhs2, x, 1);
      t2d = fw.time() + bw.time();
    }
    t2.new_row();
    t2.add(static_cast<long long>(p));
    t2.add(t1, 4);
    t2.add(t2d, 4);
    t2.add(t2d / t1, 2);
  }
  std::cout << t2;
  std::cout << "\nPaper reference shape (Figure 5): the 2-D formulation's "
               "per-column collectives\nprevent pipelining — its efficiency "
               "collapses with p while the 1-D pipelined solver\ndegrades "
               "gracefully.  This is why the factor must be redistributed "
               "before solving.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
