// E16 — ablation: relaxed supernode amalgamation.
//
// Nested-dissection separators of irregular (multi-DOF) meshes fragment
// into chains of narrow fundamental supernodes.  Each shared supernode
// pays pipeline fill/drain and fragment-routing startups, so thousands of
// narrow supernodes at the top of the tree tax the solver at large p.
// Relaxed amalgamation merges child supernodes into their parents at the
// cost of storing (and computing on) a few explicit zeros — the classic
// multifrontal trade, quantified here for the *solver*.
#include <iostream>

#include "bench_common.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E16 (ablation)", "relaxed supernode amalgamation");
  auto problem = solver::paper_problem("BCSSTK31", bench_scale());
  const sparse::SymmetricCsc a =
      sparse::permute_symmetric(problem.matrix, problem.nd_ordering);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const index_t p = bench_max_p();
  std::cout << "matrix: " << problem.name << " (N = " << a.n()
            << "), p = " << p << ", NRHS = 1\n\n";

  TextTable table({"amalgamation (w, z)", "supernodes", "stored entries",
                   "padding", "FBsolve (s)", "vs fundamental"});
  double t_fund = 0.0;
  struct Setting {
    index_t w;
    nnz_t z;
  };
  for (const Setting cfg :
       {Setting{0, 0}, Setting{16, 8}, Setting{32, 16}, Setting{64, 32},
        Setting{128, 64}}) {
    symbolic::SupernodePartition part =
        symbolic::fundamental_supernodes(sym);
    if (cfg.w > 0) part = symbolic::amalgamate(sym, part, cfg.w, cfg.z);
    const numeric::SupernodalFactor factor =
        numeric::multifrontal_cholesky(a, part);

    const mapping::SubcubeMapping map = mapping::subtree_to_subcube(part, p);
    partrisolve::DistributedTrisolver solver(factor, map, {});
    simpar::Machine machine(t3d_config(p));
    Rng rng(9);
    std::vector<real_t> b = sparse::random_rhs(a.n(), 1, rng);
    std::vector<real_t> x(static_cast<std::size_t>(a.n()), 0.0);
    auto [fw, bw] = solver.solve(machine, b, x, 1);
    const double t = fw.time() + bw.time();
    if (cfg.w == 0) t_fund = t;

    table.new_row();
    table.add(cfg.w == 0 ? std::string("fundamental")
                         : "(" + std::to_string(cfg.w) + ", " +
                               std::to_string(cfg.z) + ")");
    table.add(static_cast<long long>(part.num_supernodes()));
    table.add(format_si(static_cast<double>(factor.stored_entries())));
    table.add(format_fixed(100.0 *
                               (static_cast<double>(factor.stored_entries()) /
                                    static_cast<double>(sym.nnz()) -
                                1.0),
                           1) +
              "%");
    table.add(t, 4);
    table.add(t / t_fund, 2);
  }
  std::cout << table;
  std::cout << "\nShape to expect: amalgamation collapses thousands of "
               "narrow supernodes into a few\nhundred wide ones; a few "
               "percent of padded zeros buys fewer pipeline fills and\n"
               "fragment transfers at large p.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
