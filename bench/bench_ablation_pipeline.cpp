// E13 — ablation: design choices of the pipelined solver.
//   * row-priority vs column-priority pipelining (paper Fig. 3 b/c);
//   * block size b of the block-cyclic mapping (the b(q-1) vs t/b trade).
#include <iostream>

#include "bench_common.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E13 (ablation)", "pipelining variant and block size");
  // A 3-D problem: its large supernodes are where the pipelining variant
  // and block size actually matter.
  PreparedProblem prob =
      prepare(solver::paper_problem("CUBE35", bench_scale()));
  const index_t p = std::min<index_t>(bench_max_p(), 16);
  std::cout << "matrix: " << prob.name << " (N = " << prob.a.n()
            << "), p = " << p << "\n\n";

  TextTable table({"block size b", "NRHS", "column-priority (s)",
                   "row-priority (s)", "fan-out (s)", "fan-out/pipeline"});
  for (index_t b : {1, 2, 4, 8, 16, 32}) {
    for (index_t m : {1, 30}) {
      partrisolve::Options col;
      col.block_size = b;
      col.pipelining = partrisolve::Pipelining::column_priority;
      partrisolve::Options row = col;
      row.pipelining = partrisolve::Pipelining::row_priority;
      partrisolve::Options fan = col;
      fan.pipelining = partrisolve::Pipelining::fan_out;
      const SolveMeasurement mc = measure_solve(prob, p, m, col);
      const SolveMeasurement mr = measure_solve(prob, p, m, row);
      const SolveMeasurement mf = measure_solve(prob, p, m, fan);
      table.new_row();
      table.add(static_cast<long long>(b));
      table.add(static_cast<long long>(m));
      table.add(mc.fb_time, 4);
      table.add(mr.fb_time, 4);
      table.add(mf.fb_time, 4);
      table.add(mf.fb_time / mc.fb_time, 2);
    }
  }
  std::cout << table;
  std::cout << "\nShape to expect: tiny b pays q+t/b-1 startups per "
               "supernode (startup-bound), huge b\nserializes the pipeline "
               "(bandwidth/imbalance-bound); the sweet spot sits in "
               "between,\nand the two priority variants stay within a "
               "modest factor of each other (paper: both\nare viable; the "
               "authors chose column-priority for locality).  The fan-out\n"
               "baseline replaces the ring pipeline with per-block "
               "broadcasts — its extra log-q\nstartups per block are "
               "exactly what the paper's pipelining avoids.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
