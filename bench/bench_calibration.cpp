// E0 — cost-model calibration: single-processor rates must land near the
// paper's Cray T3D observations:
//   * FBsolve, 1 RHS:    ~6.2 MFLOPS   (BCSSTK15, p = 1)
//   * FBsolve, 30 RHS:   ~30  MFLOPS
//   * factorization:     ~34.6 MFLOPS
#include <iostream>

#include "bench_common.hpp"
#include "parfact/parfact.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E0 (calibration)", "single-processor rates vs the paper");
  PreparedProblem prob =
      prepare(solver::paper_problem("BCSSTK15", bench_scale()));

  TextTable table({"quantity", "measured MFLOPS", "paper MFLOPS"});

  const SolveMeasurement m1 = measure_solve(prob, 1, 1);
  table.new_row();
  table.add("FBsolve, NRHS=1, p=1");
  table.add(m1.mflops, 2);
  table.add("6.2");

  const SolveMeasurement m30 = measure_solve(prob, 1, 30);
  table.new_row();
  table.add("FBsolve, NRHS=30, p=1");
  table.add(m30.mflops, 2);
  table.add("~30");

  {
    const mapping::SubcubeMapping map = mapping::subtree_to_subcube(
        prob.part, 1, mapping::factor_work_weights(prob.part));
    simpar::Machine machine(t3d_config(1));
    numeric::SupernodalFactor f;
    const double t =
        parfact::parallel_multifrontal(machine, prob.a, prob.part, map, f)
            .time();
    table.new_row();
    table.add("factorization, p=1");
    table.add(static_cast<double>(prob.factor_flops) / t / 1e6, 2);
    table.add("34.6");
  }
  std::cout << table;
  std::cout << "\nRates are set by CostModel::t3d(); the supernodal solve "
               "with one RHS runs at the BLAS-2\nrate, with 30 RHS near the "
               "BLAS-3 rate, factorization at the BLAS-3 rate — matching\n"
               "the paper's observed hierarchy.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
