// Shared infrastructure for the experiment harness: problem setup, machine
// construction, MFLOPS accounting, and paper-reference bookkeeping.
//
// Every bench binary reproduces one table or figure of the paper (the
// experiment ids E1..E14 in DESIGN.md).  Absolute times come from the
// simulated T3D cost model; the quantities to compare with the paper are
// the *shapes*: speedups, crossovers, and ratios.
//
// Environment knobs:
//   SPARTS_BENCH_SCALE  linear problem-size scale in (0, 1]; default 0.35
//                       so the full harness runs in minutes.  Set to 1.0
//                       to reproduce the paper's N exactly.
//   SPARTS_BENCH_MAXP   largest simulated processor count (default 64;
//                       the paper uses 256).
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "simpar/machine.hpp"
#include "solver/sparse_solver.hpp"
#include "solver/workloads.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("SPARTS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 0.35;
}

inline index_t bench_max_p() {
  if (const char* env = std::getenv("SPARTS_BENCH_MAXP")) {
    const long p = std::atol(env);
    if (p >= 1) return static_cast<index_t>(p);
  }
  return 64;
}

inline simpar::Machine::Config t3d_config(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return cfg;
}

/// A fully prepared problem: permuted matrix, partition, numeric factor.
struct PreparedProblem {
  std::string name;
  std::string description;
  sparse::SymmetricCsc a;  ///< permuted (solver ordering applied)
  symbolic::SupernodePartition part;
  numeric::SupernodalFactor factor;
  nnz_t factor_flops = 0;
  nnz_t factor_nnz = 0;
  index_t paper_n = 0;
  nnz_t paper_factor_nnz = 0;
  nnz_t paper_factor_opcount = 0;
};

/// Order with the problem's geometric nested dissection, run symbolic
/// analysis and the sequential numeric factorization.
inline PreparedProblem prepare(solver::TestProblem problem) {
  PreparedProblem out;
  out.name = std::move(problem.name);
  out.description = std::move(problem.description);
  out.paper_n = problem.paper_n;
  out.paper_factor_nnz = problem.paper_factor_nnz;
  out.paper_factor_opcount = problem.paper_factor_opcount;
  out.a = sparse::permute_symmetric(problem.matrix, problem.nd_ordering);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(out.a);
  out.part = symbolic::fundamental_supernodes(sym);
  out.factor_flops = sym.factorization_flops();
  out.factor_nnz = sym.nnz();
  out.factor = numeric::multifrontal_cholesky(out.a, out.part);
  return out;
}

/// Prepare a grid problem with the exact geometric ND ordering.
inline PreparedProblem prepare_grid(index_t kx, index_t ky, index_t kz = 1,
                                    int stencil = 0) {
  PreparedProblem out;
  const bool three_d = kz > 1;
  out.name = three_d ? "grid3d" : "grid2d";
  out.description = out.name + " " + std::to_string(kx) + "x" +
                    std::to_string(ky) +
                    (three_d ? "x" + std::to_string(kz) : "");
  const sparse::SymmetricCsc a0 =
      three_d ? sparse::grid3d(kx, ky, kz, stencil == 0 ? 7 : stencil)
              : sparse::grid2d(kx, ky, stencil == 0 ? 5 : stencil);
  const sparse::Permutation perm =
      three_d ? ordering::nested_dissection_grid3d(kx, ky, kz)
              : ordering::nested_dissection_grid2d(kx, ky);
  out.a = sparse::permute_symmetric(a0, perm);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(out.a);
  out.part = symbolic::fundamental_supernodes(sym);
  out.factor_flops = sym.factorization_flops();
  out.factor_nnz = sym.nnz();
  out.factor = numeric::multifrontal_cholesky(out.a, out.part);
  return out;
}

/// Result of one distributed solve measurement.
struct SolveMeasurement {
  double fb_time = 0.0;  ///< forward + backward simulated seconds
  double mflops = 0.0;   ///< useful solve flops / time
  nnz_t messages = 0;
};

/// Run forward+backward on p simulated processors with m RHS.
inline SolveMeasurement measure_solve(const PreparedProblem& prob, index_t p,
                                      index_t m,
                                      partrisolve::Options opts = {}) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.part, p);
  partrisolve::DistributedTrisolver solver(prob.factor, map, opts);
  simpar::Machine machine(t3d_config(p));
  const index_t n = prob.a.n();
  Rng rng(1234);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  auto [fw, bw] = solver.solve(machine, b, x, m);
  SolveMeasurement out;
  out.fb_time = fw.time() + bw.time();
  // Useful flops: the sparse count 4 nnz(L) m, as the paper reports.
  out.mflops =
      static_cast<double>(4 * prob.factor_nnz * m) / out.fb_time / 1e6;
  out.messages = fw.stats.total_messages() + bw.stats.total_messages();
  return out;
}

inline void print_header(const std::string& experiment,
                         const std::string& what) {
  std::cout << "\n=================================================="
            << "==============================\n"
            << experiment << ": " << what << "\n"
            << "scale=" << bench_scale() << "  max_p=" << bench_max_p()
            << "  (SPARTS_BENCH_SCALE / SPARTS_BENCH_MAXP to change)\n"
            << "=================================================="
            << "==============================\n";
}

}  // namespace sparts::bench
