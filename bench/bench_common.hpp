// Shared infrastructure for the experiment harness: problem setup, machine
// construction, MFLOPS accounting, and paper-reference bookkeeping.
//
// Every bench binary reproduces one table or figure of the paper (the
// experiment ids E1..E14 in DESIGN.md).  Absolute times come from the
// simulated T3D cost model; the quantities to compare with the paper are
// the *shapes*: speedups, crossovers, and ratios.
//
// Environment knobs:
//   SPARTS_BENCH_SCALE  linear problem-size scale in (0, 1]; default 0.35
//                       so the full harness runs in minutes.  Set to 1.0
//                       to reproduce the paper's N exactly.
//   SPARTS_BENCH_MAXP   largest simulated processor count (default 64;
//                       the paper uses 256).
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "exec/stats.hpp"
#include "obs/phase.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "simpar/machine.hpp"
#include "solver/sparse_solver.hpp"
#include "solver/workloads.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("SPARTS_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0 && s <= 1.0) return s;
  }
  return 0.35;
}

inline index_t bench_max_p() {
  if (const char* env = std::getenv("SPARTS_BENCH_MAXP")) {
    const long p = std::atol(env);
    if (p >= 1) return static_cast<index_t>(p);
  }
  return 64;
}

inline simpar::Machine::Config t3d_config(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return cfg;
}

/// A fully prepared problem: permuted matrix, partition, numeric factor.
struct PreparedProblem {
  std::string name;
  std::string description;
  sparse::SymmetricCsc a;  ///< permuted (solver ordering applied)
  symbolic::SupernodePartition part;
  numeric::SupernodalFactor factor;
  nnz_t factor_flops = 0;
  nnz_t factor_nnz = 0;
  index_t paper_n = 0;
  nnz_t paper_factor_nnz = 0;
  nnz_t paper_factor_opcount = 0;
};

/// Order with the problem's geometric nested dissection, run symbolic
/// analysis and the sequential numeric factorization.
inline PreparedProblem prepare(solver::TestProblem problem) {
  PreparedProblem out;
  out.name = std::move(problem.name);
  out.description = std::move(problem.description);
  out.paper_n = problem.paper_n;
  out.paper_factor_nnz = problem.paper_factor_nnz;
  out.paper_factor_opcount = problem.paper_factor_opcount;
  out.a = sparse::permute_symmetric(problem.matrix, problem.nd_ordering);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(out.a);
  out.part = symbolic::fundamental_supernodes(sym);
  out.factor_flops = sym.factorization_flops();
  out.factor_nnz = sym.nnz();
  out.factor = numeric::multifrontal_cholesky(out.a, out.part);
  return out;
}

/// Prepare a problem keeping the natural ordering (the irregular-etree
/// workloads are *constructed* in the shape we want; reordering would
/// destroy it).
inline PreparedProblem prepare_natural(std::string name,
                                       std::string description,
                                       sparse::SymmetricCsc a) {
  PreparedProblem out;
  out.name = std::move(name);
  out.description = std::move(description);
  out.a = std::move(a);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(out.a);
  out.part = symbolic::fundamental_supernodes(sym);
  out.factor_flops = sym.factorization_flops();
  out.factor_nnz = sym.nnz();
  out.factor = numeric::multifrontal_cholesky(out.a, out.part);
  return out;
}

/// Tridiagonal SPD matrix of order n: path graph, path etree — the
/// maximally deep, message-dominated workload for the pipelined solve.
inline sparse::SymmetricCsc chain_matrix(index_t n) {
  sparse::Triplets t(n, n);
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, 4.0);
    if (i + 1 < n) t.add(i + 1, i, -1.0);
  }
  return sparse::SymmetricCsc::from_triplets(t);
}

/// Block-diagonal forest: `blocks` independent tridiagonal chains of
/// order `bs` each.  The etree is maximally wide and flat.
inline sparse::SymmetricCsc wide_flat_matrix(index_t blocks, index_t bs) {
  const index_t n = blocks * bs;
  sparse::Triplets t(n, n);
  for (index_t b = 0; b < blocks; ++b) {
    const index_t base = b * bs;
    for (index_t i = 0; i < bs; ++i) {
      t.add(base + i, base + i, 4.0);
      if (i + 1 < bs) t.add(base + i + 1, base + i, -1.0);
    }
  }
  return sparse::SymmetricCsc::from_triplets(t);
}

/// Prepare a grid problem with the exact geometric ND ordering.
inline PreparedProblem prepare_grid(index_t kx, index_t ky, index_t kz = 1,
                                    int stencil = 0) {
  PreparedProblem out;
  const bool three_d = kz > 1;
  out.name = three_d ? "grid3d" : "grid2d";
  out.description = out.name + " " + std::to_string(kx) + "x" +
                    std::to_string(ky) +
                    (three_d ? "x" + std::to_string(kz) : "");
  const sparse::SymmetricCsc a0 =
      three_d ? sparse::grid3d(kx, ky, kz, stencil == 0 ? 7 : stencil)
              : sparse::grid2d(kx, ky, stencil == 0 ? 5 : stencil);
  const sparse::Permutation perm =
      three_d ? ordering::nested_dissection_grid3d(kx, ky, kz)
              : ordering::nested_dissection_grid2d(kx, ky);
  out.a = sparse::permute_symmetric(a0, perm);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(out.a);
  out.part = symbolic::fundamental_supernodes(sym);
  out.factor_flops = sym.factorization_flops();
  out.factor_nnz = sym.nnz();
  out.factor = numeric::multifrontal_cholesky(out.a, out.part);
  return out;
}

/// Result of one distributed solve measurement.
struct SolveMeasurement {
  double fb_time = 0.0;  ///< forward + backward simulated seconds
  double fw_time = 0.0;  ///< forward phase alone
  double bw_time = 0.0;  ///< backward phase alone
  double mflops = 0.0;   ///< useful solve flops / time
  nnz_t messages = 0;
};

/// Run forward+backward on p simulated processors with m RHS.  The two
/// substitution phases are bracketed with the phase profiler so bench
/// JSON emitters (BenchJson) can report per-phase times and splits.
inline SolveMeasurement measure_solve(const PreparedProblem& prob, index_t p,
                                      index_t m,
                                      partrisolve::Options opts = {}) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.part, p);
  partrisolve::DistributedTrisolver solver(prob.factor, map, opts);
  simpar::Machine machine(t3d_config(p));
  const index_t n = prob.a.n();
  Rng rng(1234);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  SolveMeasurement out;
  std::vector<real_t> y(static_cast<std::size_t>(n * m), 0.0);
  {
    obs::PhaseScope phase("forward");
    const partrisolve::PhaseReport fw = solver.forward(machine, b, y, m);
    phase.set_parallel(exec::to_phase_stats(fw.stats));
    out.fw_time = fw.time();
    out.messages += fw.stats.total_messages();
  }
  {
    obs::PhaseScope phase("backward");
    const partrisolve::PhaseReport bw = solver.backward(machine, y, x, m);
    phase.set_parallel(exec::to_phase_stats(bw.stats));
    out.bw_time = bw.time();
    out.messages += bw.stats.total_messages();
  }
  out.fb_time = out.fw_time + out.bw_time;
  // Useful flops: the sparse count 4 nnz(L) m, as the paper reports.
  out.mflops =
      static_cast<double>(4 * prob.factor_nnz * m) / out.fb_time / 1e6;
  return out;
}

/// Machine-readable bench output: accumulates one flat-object row per
/// measurement and writes {"bench", "scale", "max_p", "rows", "phases"}
/// to BENCH_<name>.json (override with SPARTS_BENCH_<NAME>_JSON-style env
/// vars — each bench names its own).  The "phases" array is whatever the
/// phase profiler recorded since this object was constructed, giving the
/// per-phase times and per-rank splits behind each row.
///
/// Everything goes to the side file plus a stderr note: bench *stdout* is
/// a stable, diffable artifact and must stay byte-identical whether or
/// not anyone consumes the JSON.
class BenchJson {
 public:
  /// `name` keys the default file name BENCH_<name>.json; `env_var` (may
  /// be nullptr) overrides the path when set and non-empty.
  BenchJson(std::string name, const char* env_var)
      : name_(std::move(name)), env_var_(env_var) {
    obs::PhaseProfiler::instance().clear();
  }

  BenchJson& row() {
    rows_.emplace_back();
    return *this;
  }
  BenchJson& field(const std::string& key, double v) {
    std::ostringstream s;
    s << v;
    return raw(key, s.str());
  }
  BenchJson& field(const std::string& key, long long v) {
    return raw(key, std::to_string(v));
  }
  BenchJson& field(const std::string& key, index_t v) {
    return raw(key, std::to_string(v));
  }
  BenchJson& field(const std::string& key, const std::string& v) {
    std::string quoted = "\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    return raw(key, quoted);
  }

  /// Write the file and note the path on stderr.  Returns false (with a
  /// stderr warning) if the file cannot be opened.
  bool write() const {
    const char* env = env_var_ ? std::getenv(env_var_) : nullptr;
    const std::string path =
        (env != nullptr && *env != '\0') ? env : "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: cannot write " << path << "\n";
      return false;
    }
    out << "{\n\"bench\": \"" << name_ << "\",\n\"scale\": " << bench_scale()
        << ",\n\"max_p\": " << bench_max_p() << ",\n\"rows\": [";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n") << "  {";
      const auto& row = rows_[i];
      for (std::size_t j = 0; j < row.size(); ++j) {
        out << (j == 0 ? "" : ", ") << "\"" << row[j].first
            << "\": " << row[j].second;
      }
      out << "}";
    }
    out << (rows_.empty() ? "" : "\n") << "],\n\"phases\":\n";
    obs::PhaseProfiler::instance().write_json(out);
    out << "\n}\n";
    std::cerr << "note: wrote " << path << "\n";
    return static_cast<bool>(out);
  }

 private:
  BenchJson& raw(const std::string& key, std::string value) {
    SPARTS_CHECK(!rows_.empty(), "BenchJson::field before row()");
    rows_.back().emplace_back(key, std::move(value));
    return *this;
  }

  std::string name_;
  const char* env_var_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

inline void print_header(const std::string& experiment,
                         const std::string& what) {
  std::cout << "\n=================================================="
            << "==============================\n"
            << experiment << ": " << what << "\n"
            << "scale=" << bench_scale() << "  max_p=" << bench_max_p()
            << "  (SPARTS_BENCH_SCALE / SPARTS_BENCH_MAXP to change)\n"
            << "=================================================="
            << "==============================\n";
}

}  // namespace sparts::bench
