// E8 — §3.3: the sparse pipelined solver is asymptotically as scalable as
// a dense 1-D pipelined triangular solver.
//
// We compare efficiency curves of (a) the sparse solver on a 3-D problem
// and (b) the dense solver on a triangle the size of the sparse problem's
// top separator (N^{2/3}) — the paper's optimality argument says (a)
// cannot beat (b), and both share the O(p^2) isoefficiency.
#include <cmath>
#include <iostream>

#include "exec/stats.hpp"
#include "bench_common.hpp"
#include "partrisolve/dense_trisolve.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

double dense_time(index_t n, index_t p) {
  dense::Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) l(i, j) = i == j ? 2.0 : 1e-3;
  }
  std::vector<real_t> b(static_cast<std::size_t>(n), 1.0);
  simpar::Machine machine(t3d_config(p));
  return partrisolve::dense_parallel_forward(machine, l, b, 1, 8)
      .parallel_time();
}

void run() {
  print_header("E8 (§3.3)", "sparse vs dense triangular solver scalability");
  const index_t k = 17;  // 3-D grid side
  PreparedProblem prob = prepare_grid(k, k, k);
  const index_t sep = static_cast<index_t>(
      std::lround(std::pow(static_cast<double>(prob.a.n()), 2.0 / 3.0)));
  std::cout << "sparse problem: grid3d " << k << "^3 (N = " << prob.a.n()
            << "); dense comparison triangle: n = " << sep
            << " (~N^{2/3})\n\n";

  const SolveMeasurement sparse_serial = measure_solve(prob, 1, 1);
  const double dense_serial = dense_time(sep, 1);

  TextTable table({"p", "sparse T_P (s)", "sparse efficiency",
                   "dense T_P (s)", "dense efficiency"});
  for (index_t p = 1; p <= std::min<index_t>(bench_max_p(), 64); p *= 4) {
    const SolveMeasurement sp = measure_solve(prob, p, 1);
    const double dt = dense_time(sep, p);
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(sp.fb_time, 5);
    table.add(exec::efficiency(sparse_serial.fb_time, p, sp.fb_time), 3);
    table.add(dt, 5);
    table.add(exec::efficiency(dense_serial, p, dt), 3);
  }
  std::cout << table;
  std::cout << "\nPaper reference shape: both efficiency columns decay "
               "together — the sparse solver\ntracks the dense solver's "
               "O(p^2) isoefficiency, and cannot do better because the\n"
               "top separator alone is a dense triangle of this size.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
