// E5 — Equations (1) and (2): the parallel-runtime model.
//
//   2-D problems:  T_P = c_w N log N / p + c_n sqrt(N) + c_p p
//   3-D problems:  T_P = c_w N^{4/3} / p + c_n N^{2/3} + c_p p
//
// We measure FBsolve times over an (N, p) sweep on the simulator, fit the
// three coefficients by least squares, and report R^2 and a
// model-vs-measured table.  A good fit (R^2 near 1) reproduces the paper's
// claim that these three terms capture the algorithm's behavior.
#include <iostream>

#include "bench_common.hpp"
#include "model/model.hpp"

namespace sparts::bench {
namespace {

void run_class(model::GraphClass gc) {
  const bool three_d = gc == model::GraphClass::three_dimensional;
  std::cout << "\n--- " << (three_d ? "3-D (Eq. 2)" : "2-D (Eq. 1)")
            << " problems ---\n";

  std::vector<index_t> sizes;
  if (three_d) {
    sizes = {8, 11, 14, 17};
  } else {
    sizes = {24, 34, 48, 68};
  }
  std::vector<index_t> procs;
  for (index_t p = 1; p <= std::min<index_t>(bench_max_p(), 64); p *= 4) {
    procs.push_back(p);
  }

  std::vector<model::Sample> samples;
  std::vector<std::tuple<index_t, index_t, double>> raw;
  for (index_t k : sizes) {
    PreparedProblem prob =
        three_d ? prepare_grid(k, k, k) : prepare_grid(k, k);
    for (index_t p : procs) {
      const SolveMeasurement meas = measure_solve(prob, p, 1);
      samples.push_back({static_cast<double>(prob.a.n()),
                         static_cast<double>(p), meas.fb_time});
      raw.emplace_back(prob.a.n(), p, meas.fb_time);
    }
  }
  const model::Fit fit = model::fit_runtime_model(gc, samples);
  std::cout << "fitted coefficients: c_w = " << fit.coeff[0]
            << "  c_n = " << fit.coeff[1] << "  c_p = " << fit.coeff[2]
            << "\nR^2 = " << format_fixed(fit.r_squared, 4) << "\n\n";

  TextTable table({"N", "p", "measured T_P (s)", "model T_P (s)", "ratio"});
  for (auto& [n, p, t] : raw) {
    table.new_row();
    table.add(static_cast<long long>(n));
    table.add(static_cast<long long>(p));
    table.add(t, 5);
    const double pred = model::runtime(gc, static_cast<double>(n),
                                       static_cast<double>(p), fit.coeff);
    table.add(pred, 5);
    table.add(t / pred, 2);
  }
  std::cout << table;
}

void run() {
  print_header("E5 (Eqs. 1-2)", "runtime model fit on simulator data");
  run_class(model::GraphClass::two_dimensional);
  run_class(model::GraphClass::three_dimensional);
  std::cout << "\nPaper reference shape: the three-term model explains the "
               "measurements (R^2 near 1);\nthe O(p) pipeline term and the "
               "O(sqrt(N)) / O(N^{2/3}) boundary term dominate at\nlarge p "
               "and are the source of the O(p^2) isoefficiency.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
