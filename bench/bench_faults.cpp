// E16 — the price of fault tolerance: what the reliability envelope costs
// when nothing goes wrong, and what recovery costs when something does.
//
// All rows run the full parallel pipeline (factorization, redistribution,
// forward, backward) on the real thread backend, where times are wall
// clocks and the envelope's timeouts are physical:
//
//   * clean_threads      — plain exec::ThreadBackend, no envelope.
//   * envelope_threads   — the faulty stack with an empty fault plan: every
//     message pays the wire header, sequence bookkeeping and acks, but no
//     fault is injected.  `overhead_pct` vs clean_threads is the headline;
//     the budget is < 5% on a compute-dominated workload.
//   * delay_*            — a fraction of messages held for a fixed time;
//     `recovery_seconds` (extra wall time vs envelope_threads) against
//     `injected_delay_seconds` (count x hold time) shows the envelope
//     absorbing delays it never even NACKs for.
//   * drop_10pct         — 10% of data messages silently dropped;
//     recovery is NACK-driven retransmission, so the extra time tracks the
//     retransmit timeout (SPARTS_TIMEOUT_MS) rather than the drop count.
//
// Wall clocks are noisy: each configuration reports the best of kReps
// runs.  JSON lands in BENCH_faults.json (SPARTS_BENCH_FAULTS_JSON
// overrides the path).  See docs/robustness.md.
#include <algorithm>

#include "bench_common.hpp"

namespace sparts::bench {
namespace {

constexpr int kReps = 5;

struct Scenario {
  std::string name;
  std::string plan;  ///< FaultPlan spec; empty = no envelope (plain threads)
  double hold_seconds = 0.0;  ///< per-delayed-message hold, for reporting
};

struct Measurement {
  double seconds = 0.0;
  std::int64_t faults = 0;
  std::int64_t retransmits = 0;
  std::int64_t dup_discarded = 0;
};

Measurement measure(const sparse::SymmetricCsc& a,
                    const std::vector<real_t>& b, const Scenario& sc) {
  solver::Options opt;
  if (sc.plan.empty()) {
    opt.backend = solver::ExecutionBackend::threads;
  } else {
    opt.backend = solver::ExecutionBackend::faulty_threads;
    opt.fault_plan = exec::FaultPlan::parse(sc.plan);
  }
  Measurement best;
  for (int rep = 0; rep < kReps; ++rep) {
    const auto r = solver::parallel_solve(a, b, 1, 4, opt);
    SPARTS_CHECK(trisolve::relative_residual(a, r.x, b, 1) < 1e-9,
                 "bench_faults: solve did not converge for " << sc.name);
    const double t = r.factor_time + r.redist_time + r.forward_time +
                     r.backward_time;
    if (rep == 0 || t < best.seconds) {
      best.seconds = t;
      best.faults = r.faults_injected;
      best.retransmits = r.retransmits;
      best.dup_discarded = r.dup_discarded;
    }
  }
  return best;
}

void run() {
  print_header("E16 (fault tolerance)",
               "reliability envelope overhead and recovery latency");
  const double scale = bench_scale();
  // 9-point coupling: enough compute per message that the envelope's
  // per-message bookkeeping has a realistic (small) denominator — the
  // overhead budget is defined for compute-dominated workloads.
  const index_t k = std::max<index_t>(40, static_cast<index_t>(95 * scale));
  const sparse::SymmetricCsc a = sparse::grid2d(k, k, 9);
  Rng rng(1234);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), 1, rng);
  std::cout << "workload: grid2d " << k << "x" << k << " (9-point)  N = "
            << a.n() << "  p = 4  (best of " << kReps
            << " wall-clock runs)\n\n";

  const std::vector<Scenario> scenarios = {
      {"clean_threads", "", 0.0},
      {"envelope_threads", "seed=1", 0.0},
      {"delay_1ms", "seed=3,delay=0.05:0.001", 0.001},
      {"delay_5ms", "seed=3,delay=0.05:0.005", 0.005},
      {"drop_10pct", "seed=42,drop=0.1", 0.0},
  };

  BenchJson json("faults", "SPARTS_BENCH_FAULTS_JSON");
  TextTable table({"scenario", "wall (s)", "vs clean", "faults", "retrans",
                   "recovery (s)", "injected delay (s)"});
  double clean = 0.0, envelope = 0.0;
  for (const Scenario& sc : scenarios) {
    const Measurement m = measure(a, b, sc);
    if (sc.name == "clean_threads") clean = m.seconds;
    if (sc.name == "envelope_threads") envelope = m.seconds;
    const double overhead_pct =
        clean > 0.0 ? (m.seconds / clean - 1.0) * 100.0 : 0.0;
    // Extra wall time attributable to the injected faults (vs the
    // fault-free enveloped run); meaningless for the two baselines.
    const double recovery =
        envelope > 0.0 ? std::max(0.0, m.seconds - envelope) : 0.0;
    const double injected_delay =
        static_cast<double>(m.faults) * sc.hold_seconds;
    table.new_row();
    table.add(sc.name);
    table.add(m.seconds, 5);
    table.add(overhead_pct / 100.0 + 1.0, 3);
    table.add(static_cast<long long>(m.faults));
    table.add(static_cast<long long>(m.retransmits));
    table.add(recovery, 5);
    table.add(injected_delay, 5);
    json.row()
        .field("scenario", sc.name)
        .field("n", a.n())
        .field("p", index_t{4})
        .field("wall_seconds", m.seconds)
        .field("overhead_pct", overhead_pct)
        .field("faults_injected", static_cast<long long>(m.faults))
        .field("retransmits", static_cast<long long>(m.retransmits))
        .field("dup_discarded", static_cast<long long>(m.dup_discarded))
        .field("recovery_seconds", recovery)
        .field("injected_delay_seconds", injected_delay);
  }
  std::cout << table;
  const double overhead =
      clean > 0.0 ? (envelope / clean - 1.0) * 100.0 : 0.0;
  std::cout << "\nenvelope clean-run overhead: " << overhead
            << "%  (budget: < 5% on compute-dominated workloads)\n"
            << "recovery latency for delay rows tracks the injected delay; "
               "for drop rows it\ntracks the retransmit timeout "
               "(SPARTS_TIMEOUT_MS, default 50 ms per NACK round).\n";
  json.write();
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
