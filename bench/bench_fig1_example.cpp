// E1 — Figure 1: the paper's 19-node example — matrix pattern with
// fill-in, elimination tree, supernodes, and the subtree-to-subcube
// mapping onto 8 processors.
#include <iostream>

#include "bench_common.hpp"
#include "ordering/etree.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E1 (Figure 1)",
               "example matrix, elimination tree, subtree-to-subcube");
  const sparse::SymmetricCsc a = sparse::figure1_matrix();
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);

  // Pattern: 'x' = original nonzero, 'o' = fill-in, '.' = zero.
  std::cout << "\nLower-triangular pattern (x original, o fill):\n    ";
  for (index_t j = 0; j < a.n(); ++j) std::cout << j % 10 << ' ';
  std::cout << '\n';
  for (index_t i = 0; i < a.n(); ++i) {
    std::cout << (i < 10 ? " " : "") << i << "  ";
    for (index_t j = 0; j <= i; ++j) {
      const bool in_a = a.at(i, j) != 0.0 || i == j;
      bool in_l = false;
      for (index_t r : sym.col_rows(j)) {
        if (r == i) in_l = true;
      }
      std::cout << (in_a ? 'x' : (in_l ? 'o' : '.')) << ' ';
    }
    std::cout << '\n';
  }

  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(part, 8);

  std::cout << "\nElimination tree (column: parent): ";
  for (index_t v = 0; v < sym.n; ++v) {
    std::cout << v << ":" << sym.etree.parent[static_cast<std::size_t>(v)]
              << ' ';
  }
  std::cout << "\n\nSupernodes and subtree-to-subcube mapping (p = 8):\n";
  TextTable table(
      {"supernode", "columns", "height", "parent", "processors", "level"});
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    table.new_row();
    table.add(static_cast<long long>(s));
    table.add(std::to_string(part.first_col[static_cast<std::size_t>(s)]) +
              ".." +
              std::to_string(part.first_col[static_cast<std::size_t>(s) + 1] -
                             1));
    table.add(static_cast<long long>(part.height(s)));
    table.add(static_cast<long long>(
        part.stree.parent[static_cast<std::size_t>(s)]));
    const auto& g = map.group[static_cast<std::size_t>(s)];
    table.add(std::to_string(g.base) + ".." +
              std::to_string(g.base + g.count - 1));
    table.add(static_cast<long long>(map.level(s)));
  }
  std::cout << table;
  std::cout << "\nPaper reference shape: leaf subtrees map to single "
               "processors; each level up doubles\nthe subcube; the root "
               "supernode is shared by all 8.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
