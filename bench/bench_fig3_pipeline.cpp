// E3 — Figure 3: progression of pipelined forward elimination in a
// hypothetical trapezoidal supernode.
//
// Part 1 reproduces the figure's three schedule matrices (EREW-PRAM,
// row-priority, column-priority; communication ignored, one time unit per
// box) from the actual data dependencies.
//
// Part 2 validates the paper's communication-step count on the real
// simulator: processing an n x t trapezoid on q processors with block
// size b takes q + t/b - 1 pipeline communication steps.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "partrisolve/dense_trisolve.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

/// Dependency-driven schedule of the trapezoid boxes, one unit per box.
/// mode: 0 = EREW (one processor per row), 1 = row-priority on q procs,
/// 2 = column-priority on q procs.  Returns step[i][k] (1-based; 0 where
/// no box exists).
std::vector<std::vector<index_t>> schedule(index_t n, index_t t, index_t q,
                                           int mode) {
  std::vector<std::vector<index_t>> step(
      static_cast<std::size_t>(n),
      std::vector<index_t>(static_cast<std::size_t>(t), 0));
  // token_ready[k]: completion time of the diagonal box (k, k).
  std::vector<index_t> token_ready(static_cast<std::size_t>(t), 0);

  if (mode == 0) {
    // One processor per row: box (i,k) waits for its left neighbor in the
    // same row and for x_k.
    for (index_t i = 0; i < n; ++i) {
      index_t clock = 0;
      for (index_t k = 0; k <= std::min(i, t - 1); ++k) {
        clock = std::max(clock, k < i ? token_ready[static_cast<std::size_t>(k)]
                                      : clock) +
                1;
        step[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] = clock;
        if (i == k) token_ready[static_cast<std::size_t>(k)] = clock;
      }
    }
    return step;
  }

  // q processors, cyclic row mapping; each processor executes its boxes
  // in the given priority order, stalling on unavailable tokens.
  std::vector<index_t> clock(static_cast<std::size_t>(q), 0);
  struct Box {
    index_t i, k;
  };
  // Build per-processor program.
  std::vector<std::vector<Box>> program(static_cast<std::size_t>(q));
  if (mode == 1) {  // row priority: my rows ascending, columns inside
    for (index_t i = 0; i < n; ++i) {
      for (index_t k = 0; k <= std::min(i, t - 1); ++k) {
        program[static_cast<std::size_t>(i % q)].push_back({i, k});
      }
    }
  } else {  // column priority: columns ascending, my rows inside
    for (index_t k = 0; k < t; ++k) {
      for (index_t i = k; i < n; ++i) {
        program[static_cast<std::size_t>(i % q)].push_back({i, k});
      }
    }
  }
  // Execute: repeatedly advance the runnable processor whose next box can
  // start earliest (deterministic ties by rank).
  std::vector<std::size_t> pc(static_cast<std::size_t>(q), 0);
  bool progress = true;
  while (progress) {
    progress = false;
    index_t best = -1;
    index_t best_start = 0;
    for (index_t r = 0; r < q; ++r) {
      if (pc[static_cast<std::size_t>(r)] >=
          program[static_cast<std::size_t>(r)].size()) {
        continue;
      }
      const Box b = program[static_cast<std::size_t>(r)]
                           [pc[static_cast<std::size_t>(r)]];
      // Box (i,k) with i > k needs token k; the diagonal box needs all its
      // row's earlier boxes, which program order already guarantees.
      index_t ready = clock[static_cast<std::size_t>(r)];
      if (b.i > b.k) {
        if (token_ready[static_cast<std::size_t>(b.k)] == 0) continue;
        ready = std::max(ready, token_ready[static_cast<std::size_t>(b.k)]);
      }
      if (best == -1 || ready < best_start) {
        best = r;
        best_start = ready;
      }
    }
    if (best == -1) break;
    auto& p = pc[static_cast<std::size_t>(best)];
    const Box b = program[static_cast<std::size_t>(best)][p];
    ++p;
    const index_t done = best_start + 1;
    clock[static_cast<std::size_t>(best)] = done;
    step[static_cast<std::size_t>(b.i)][static_cast<std::size_t>(b.k)] = done;
    if (b.i == b.k) token_ready[static_cast<std::size_t>(b.k)] = done;
    progress = true;
  }
  return step;
}

void print_schedule(const char* title,
                    const std::vector<std::vector<index_t>>& step, index_t q) {
  std::cout << "\n" << title << " (rows cyclic on " << q << " procs):\n";
  for (std::size_t i = 0; i < step.size(); ++i) {
    std::cout << "P" << i % static_cast<std::size_t>(q) << "  ";
    for (index_t v : step[i]) {
      if (v == 0) {
        std::cout << "  .";
      } else {
        std::cout << (v < 10 ? "  " : " ") << v;
      }
    }
    std::cout << '\n';
  }
}

void run() {
  print_header("E3 (Figure 3)", "pipelined forward elimination schedules");
  const index_t n = 16, t = 8, q = 4;
  print_schedule("(a) EREW-PRAM, unlimited processors", schedule(n, t, n, 0),
                 n);
  print_schedule("(b) row-priority pipelined", schedule(n, t, q, 1), q);
  print_schedule("(c) column-priority pipelined", schedule(n, t, q, 2), q);

  std::cout << "\nCommunication-step law on the simulator: a dense n x n "
               "triangle on q processors\nwith block size b uses q + n/b - "
               "1 pipeline steps (paper §3.1):\n";
  TextTable table({"q", "n", "b", "tokens (n/b)", "measured steps",
                   "q + n/b - 1", "ratio"});
  simpar::CostModel unit = simpar::CostModel::unit_comm();
  for (index_t q2 : {2, 4, 8}) {
    for (index_t b : {4, 8}) {
      const index_t n2 = 64;
      dense::Matrix l(n2, n2);
      for (index_t j = 0; j < n2; ++j) {
        for (index_t i = j; i < n2; ++i) l(i, j) = i == j ? 2.0 : 0.1;
      }
      std::vector<real_t> rhs(static_cast<std::size_t>(n2), 1.0);
      simpar::Machine::Config cfg;
      cfg.nprocs = q2;
      cfg.cost = unit;
      cfg.cost.t_w = 0.0;  // steps = startups only
      cfg.topology = simpar::TopologyKind::fully_connected;
      simpar::Machine machine(cfg);
      auto stats =
          partrisolve::dense_parallel_forward(machine, l, rhs, 1, b);
      // With t_s = 1 and everything else free, the makespan in "steps" is
      // the pipeline depth.
      table.new_row();
      table.add(static_cast<long long>(q2));
      table.add(static_cast<long long>(n2));
      table.add(static_cast<long long>(b));
      table.add(static_cast<long long>(n2 / b));
      table.add(stats.parallel_time(), 0);
      table.add(static_cast<long long>(q2 + n2 / b - 1));
      table.add(stats.parallel_time() /
                    static_cast<double>(q2 + n2 / b - 1),
                2);
    }
  }
  std::cout << table;
  std::cout << "\nMeasured steps track q + t/b - 1 within a factor of two: "
               "the simulator charges both\nthe sender occupancy and the "
               "in-flight latency of each hop (two startups per\npipeline "
               "stage), where the paper's model counts one.  The scaling in "
               "q and t/b —\nthe content of the law — matches.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
