// E4 — Figure 4: column-priority pipelined backward substitution on a
// hypothetical supernode (4 processors, column-wise cyclic mapping).
//
// The schedule matrix is reproduced from the data dependencies: in
// backward substitution the box (i, k) is the use of L(i, k)^T in the
// partial sum of column k; the diagonal box solves once every
// contribution below it is accumulated, and unknown x_i (i in the
// triangle) must be solved before row i can contribute to columns k < i.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"

namespace sparts::bench {
namespace {

std::vector<std::vector<index_t>> schedule_backward(index_t n, index_t t,
                                                    index_t q) {
  // Boxes (i, k) with 0 <= k < t, i >= k.  Owner of box = i % q (the same
  // storage distribution as forward; the paper draws the transposed
  // trapezoid with column-cyclic mapping, which is the identical
  // assignment).  Column-priority: each processor handles columns in
  // descending order, its rows descending inside a column so the partial
  // sum chain ends at the diagonal owner.
  std::vector<std::vector<index_t>> step(
      static_cast<std::size_t>(n),
      std::vector<index_t>(static_cast<std::size_t>(t), 0));
  std::vector<index_t> solved(static_cast<std::size_t>(t), 0);
  struct Box {
    index_t i, k;
  };
  std::vector<std::vector<Box>> program(static_cast<std::size_t>(q));
  for (index_t k = t - 1; k >= 0; --k) {
    for (index_t i = n - 1; i >= k; --i) {
      program[static_cast<std::size_t>(i % q)].push_back({i, k});
    }
  }
  std::vector<std::size_t> pc(static_cast<std::size_t>(q), 0);
  std::vector<index_t> clock(static_cast<std::size_t>(q), 0);
  // acc_ready[k]: completion time of the latest contribution to column k
  // so far (the running partial-sum token).
  std::vector<index_t> acc_ready(static_cast<std::size_t>(t), 0);
  while (true) {
    index_t best = -1;
    index_t best_start = 0;
    for (index_t r = 0; r < q; ++r) {
      if (pc[static_cast<std::size_t>(r)] >=
          program[static_cast<std::size_t>(r)].size()) {
        continue;
      }
      const Box b = program[static_cast<std::size_t>(r)]
                           [pc[static_cast<std::size_t>(r)]];
      index_t ready = clock[static_cast<std::size_t>(r)];
      if (b.i > b.k) {
        // Contribution L(i,k)^T x_i: needs x_i (if i is a pivot row) and
        // the partial-sum token so far.
        if (b.i < t) {
          if (solved[static_cast<std::size_t>(b.i)] == 0) continue;
          ready = std::max(ready, solved[static_cast<std::size_t>(b.i)]);
        }
        ready = std::max(ready, acc_ready[static_cast<std::size_t>(b.k)]);
      } else {
        // Diagonal solve: needs the full partial sum.
        ready = std::max(ready, acc_ready[static_cast<std::size_t>(b.k)]);
      }
      if (best == -1 || ready < best_start) {
        best = r;
        best_start = ready;
      }
    }
    if (best == -1) break;
    auto& p = pc[static_cast<std::size_t>(best)];
    const Box b = program[static_cast<std::size_t>(best)][p];
    ++p;
    const index_t done = best_start + 1;
    clock[static_cast<std::size_t>(best)] = done;
    step[static_cast<std::size_t>(b.i)][static_cast<std::size_t>(b.k)] = done;
    if (b.i == b.k) {
      solved[static_cast<std::size_t>(b.k)] = done;
    } else {
      acc_ready[static_cast<std::size_t>(b.k)] = done;
    }
  }
  return step;
}

void run() {
  print_header("E4 (Figure 4)",
               "column-priority pipelined backward substitution schedule");
  const index_t n = 16, t = 8, q = 4;
  auto step = schedule_backward(n, t, q);
  std::cout << "\nBox (i,k) = use of L(i,k)^T; columns right-to-left, "
               "partial sums flow toward the diagonal:\n";
  for (std::size_t i = 0; i < step.size(); ++i) {
    std::cout << "P" << i % static_cast<std::size_t>(q) << "  ";
    for (index_t v : step[i]) {
      if (v == 0) {
        std::cout << "  .";
      } else {
        std::cout << (v < 10 ? "  " : " ") << v;
      }
    }
    std::cout << '\n';
  }
  std::cout << "\nPaper reference shape: a staircase progressing from the "
               "bottom-right of the trapezoid\nto the top-left, with the "
               "pipeline keeping all 4 processors busy once filled.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
