// E6 — Figure 5: communication overheads and isoefficiency functions for
// factorization and triangular solution under 1-D and 2-D partitionings.
//
// The table itself is analytic (reproduced programmatically from the
// paper's derivations); we then verify the central empirical content —
// overhead growth rates — by measuring T_o = p T_P - T_S for the solver
// on the simulator and checking it grows ~p^2 at fixed N.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "model/model.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E6 (Figure 5)", "overheads and isoefficiency functions");
  TextTable table({"matrix type", "partitioning", "fact. comm overhead",
                   "fact. iso", "solve comm overhead", "solve iso",
                   "overall iso"});
  for (const auto& row : model::figure5_rows()) {
    table.new_row();
    table.add(row.matrix_type);
    table.add(row.partitioning);
    table.add(row.fact_overhead);
    table.add(row.fact_iso);
    table.add(row.solve_overhead);
    table.add(row.solve_iso);
    table.add(row.overall_iso);
  }
  std::cout << table;

  // Empirical spot-check of the solver's overhead growth at fixed N:
  // T_o(p) = p T_P(p) - T_S should grow roughly like p^2 once the O(p)
  // pipeline term dominates (so T_o doubles its growth exponent between
  // small and large p).
  std::cout << "\nMeasured solver overhead T_o = p*T_P - T_S (grid2d, fixed "
               "N):\n";
  PreparedProblem prob = prepare_grid(48, 48);
  const SolveMeasurement serial = measure_solve(prob, 1, 1);
  TextTable t2({"p", "T_P (s)", "T_o (s)", "T_o growth vs previous"});
  double prev_to = 0.0;
  for (index_t p = 2; p <= std::min<index_t>(bench_max_p(), 64); p *= 2) {
    const SolveMeasurement meas = measure_solve(prob, p, 1);
    const double to = p * meas.fb_time - serial.fb_time;
    t2.new_row();
    t2.add(static_cast<long long>(p));
    t2.add(meas.fb_time, 5);
    t2.add(to, 5);
    t2.add(prev_to > 0.0 ? to / prev_to : 0.0, 2);
    prev_to = to;
  }
  std::cout << t2;
  std::cout << "\nPaper reference shape: at fixed N the overhead growth "
               "factor per doubling of p\napproaches 4 (T_o ~ p^2), the "
               "signature of the O(p^2) isoefficiency.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
