// E10 — Figure 7: the paper's main experimental table.
//
// For each of the five test problems: factorization time and MFLOPS, the
// time to redistribute L from the 2-D factorization distribution to the
// 1-D solver distribution, and FBsolve time / MFLOPS for NRHS in
// {1, 5, 10, 20, 30} at a fixed processor count per panel, exactly like
// the paper's layout.
#include <iostream>

#include "exec/stats.hpp"
#include "bench_common.hpp"
#include "parfact/parfact.hpp"
#include "redist/redist.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

void run_panel(const PreparedProblem& prob, index_t p) {
  std::cout << "\n--- " << prob.name << ": N = " << prob.a.n() << " ("
            << prob.description << "); paper N = " << prob.paper_n
            << " ---\n";
  std::cout << "factor opcount = " << format_si(static_cast<double>(prob.factor_flops))
            << " (paper: " << format_si(static_cast<double>(prob.paper_factor_opcount))
            << "); nnz(L) = " << format_si(static_cast<double>(prob.factor_nnz))
            << " (paper: " << format_si(static_cast<double>(prob.paper_factor_nnz))
            << ")\n";

  // Parallel factorization (2-D fronts).
  const mapping::SubcubeMapping fmap = mapping::subtree_to_subcube(
      prob.part, p, mapping::factor_work_weights(prob.part));
  numeric::SupernodalFactor par_factor;
  double fact_time = 0.0;
  {
    simpar::Machine machine(t3d_config(p));
    fact_time = parfact::parallel_multifrontal(machine, prob.a, prob.part,
                                               fmap, par_factor)
                    .time();
  }
  const double fact_mflops =
      static_cast<double>(prob.factor_flops) / fact_time / 1e6;

  // Redistribution 2-D -> 1-D.
  const mapping::SubcubeMapping smap =
      mapping::subtree_to_subcube(prob.part, p);
  double redist_time = 0.0;
  {
    simpar::Machine machine(t3d_config(p));
    redist_time =
        redist::redistribute_factor(machine, prob.factor, smap).time();
  }

  std::cout << "p = " << p << "   factorization time = " << format_fixed(fact_time, 3)
            << " s   factorization MFLOPS = " << format_fixed(fact_mflops, 1)
            << "   time to redistribute L = " << format_fixed(redist_time, 4)
            << " s\n";

  TextTable table({"NRHS", "FBsolve time (s)", "FBsolve MFLOPS",
                   "speedup vs p=1"});
  for (index_t m : {1, 5, 10, 20, 30}) {
    const SolveMeasurement one = measure_solve(prob, 1, m);
    const SolveMeasurement par = measure_solve(prob, p, m);
    table.new_row();
    table.add(static_cast<long long>(m));
    table.add(par.fb_time, 4);
    table.add(par.mflops, 1);
    table.add(exec::speedup(one.fb_time, par.fb_time), 2);
  }
  std::cout << table;
}

void run() {
  print_header("E10 (Figure 7)",
               "FBsolve / factorization / redistribution table");
  const double scale = bench_scale();
  const index_t p = std::min<index_t>(bench_max_p(), 64);
  for (auto& problem : solver::paper_test_suite(scale)) {
    run_panel(prepare(std::move(problem)), p);
  }
  std::cout
      << "\nPaper reference shapes (256 procs, full N): 1-RHS FBsolve up to"
         " ~435 MFLOPS (vs 6.2 at p=1);\n30-RHS up to ~3 GFLOPS; solve time"
         " a small fraction of factorization time; redistribution below\n"
         "the 1-RHS solve time.  Compare the shapes above at the configured"
         " scale.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
