// E11 — Figure 8: FBsolve MFLOPS versus processor count for four test
// matrices and NRHS in {1, 5, 10, 20, 30}.
//
// The paper's qualitative claims to reproduce:
//   * MFLOPS grow with p for every NRHS (reasonable speedups on hundreds
//     of processors despite the solvers' lower scalability);
//   * both the absolute rate and the *speedup* improve markedly with more
//     right-hand sides (BLAS-3 effect + amortized index computation).
#include <iostream>

#include "exec/stats.hpp"
#include "bench_common.hpp"

namespace sparts::bench {
namespace {

void run_matrix(const PreparedProblem& prob, BenchJson& json) {
  std::cout << "\n--- " << prob.name << " (N = " << prob.a.n() << ") ---\n";
  std::vector<index_t> procs;
  for (index_t p = 1; p <= bench_max_p(); p *= 4) procs.push_back(p);

  std::vector<std::string> headers{"NRHS"};
  for (index_t p : procs) headers.push_back("p=" + std::to_string(p));
  headers.push_back("speedup@max_p");
  TextTable table(headers);

  for (index_t m : {1, 5, 10, 20, 30}) {
    table.new_row();
    table.add(static_cast<long long>(m));
    double first = 0.0, last = 0.0;
    for (index_t p : procs) {
      const SolveMeasurement meas = measure_solve(prob, p, m);
      table.add(meas.mflops, 1);
      if (p == 1) first = meas.fb_time;
      last = meas.fb_time;
      json.row()
          .field("matrix", prob.name)
          .field("n", prob.a.n())
          .field("nrhs", m)
          .field("p", p)
          .field("mflops", meas.mflops)
          .field("fb_seconds", meas.fb_time)
          .field("forward_seconds", meas.fw_time)
          .field("backward_seconds", meas.bw_time)
          .field("messages", static_cast<long long>(meas.messages))
          .field("speedup", exec::speedup(first, meas.fb_time));
    }
    table.add(exec::speedup(first, last), 2);
  }
  std::cout << table;
}

void run() {
  print_header("E11 (Figure 8)", "FBsolve MFLOPS vs processors");
  const double scale = bench_scale();
  BenchJson json("fig8", "SPARTS_BENCH_FIG8_JSON");
  for (const char* name : {"BCSSTK15", "BCSSTK31", "CUBE35", "COPTER2"}) {
    run_matrix(prepare(solver::paper_problem(name, scale)), json);
  }
  json.write();
  std::cout << "\nPaper reference shape: every curve increases with p;"
               " larger NRHS shifts curves up\nand steepens them (BLAS-3"
               " rates + amortized pipeline startups).\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
