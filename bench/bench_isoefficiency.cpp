// E7 — §3.2 / Appendix A: the O(p^2) isoefficiency of the sparse
// triangular solvers.
//
// If the problem size (total work W) grows like p^2, efficiency should
// hold roughly constant; if it grows only like p, efficiency must decay.
// We demonstrate both trajectories on 2-D grid problems.
#include <cmath>
#include <iostream>

#include "exec/stats.hpp"
#include "bench_common.hpp"

namespace sparts::bench {
namespace {

/// Grid side k such that solve work (~ N log N with N = k^2) is close to
/// `target_work`.
index_t side_for_work(double target_work) {
  index_t k = 8;
  while (true) {
    const double n = static_cast<double>(k) * k;
    const double w = n * std::log2(n);
    if (w >= target_work || k > 512) return k;
    ++k;
  }
}

void run() {
  print_header("E7 (isoefficiency)",
               "efficiency under W ~ p^2 vs W ~ p scaling");
  const index_t pmax = std::min<index_t>(bench_max_p(), 64);

  struct Row {
    index_t p;
    index_t n_quad, n_lin;
    double eff_quad, eff_lin;
  };
  std::vector<Row> rows;

  const index_t k0 = 32;
  const double n0 = static_cast<double>(k0) * k0;
  const double w0 = n0 * std::log2(n0);

  for (index_t p = 4; p <= pmax; p *= 4) {
    const double ratio = static_cast<double>(p) / 4.0;
    // W ~ p^2 trajectory and W ~ p trajectory, both anchored at p = 4.
    const index_t k_quad = side_for_work(w0 * ratio * ratio);
    const index_t k_lin = side_for_work(w0 * ratio);

    Row row;
    row.p = p;
    for (int variant = 0; variant < 2; ++variant) {
      const index_t k = variant == 0 ? k_quad : k_lin;
      PreparedProblem prob = prepare_grid(k, k);
      const SolveMeasurement serial = measure_solve(prob, 1, 1);
      const SolveMeasurement par = measure_solve(prob, p, 1);
      const double eff =
          exec::efficiency(serial.fb_time, p, par.fb_time);
      if (variant == 0) {
        row.n_quad = prob.a.n();
        row.eff_quad = eff;
      } else {
        row.n_lin = prob.a.n();
        row.eff_lin = eff;
      }
    }
    rows.push_back(row);
  }

  TextTable table({"p", "N (W~p^2)", "efficiency", "N (W~p)", "efficiency"});
  for (const Row& r : rows) {
    table.new_row();
    table.add(static_cast<long long>(r.p));
    table.add(static_cast<long long>(r.n_quad));
    table.add(r.eff_quad, 3);
    table.add(static_cast<long long>(r.n_lin));
    table.add(r.eff_lin, 3);
  }
  std::cout << table;
  std::cout << "\nPaper reference shape: along W ~ p^2 the efficiency holds "
               "roughly steady (the paper's\nisoefficiency function); along "
               "W ~ p it decays toward zero.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
