// Microbenchmarks of the dense kernels and core sparse phases
// (google-benchmark).  These measure *host* throughput — useful for
// knowing how fast the simulator itself runs — as opposed to the
// simulated T3D times of the experiment benches.
//
// Before the google-benchmark suite runs, a flop-rate sweep times every
// panel kernel in both implementations (reference and tiled) across a
// size ladder and writes the GFLOP/s figures to BENCH_kernels.json
// (override the path with SPARTS_BENCH_KERNELS_JSON).  That file is the
// machine-readable record for kernel perf regression tracking; see
// docs/kernels.md.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dense/cholesky.hpp"
#include "dense/kernels.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/etree.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

void BM_PanelGemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  std::vector<real_t> a(static_cast<std::size_t>(n * n));
  std::vector<real_t> b(static_cast<std::size_t>(n * n));
  std::vector<real_t> c(static_cast<std::size_t>(n * n), 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    dense::panel_gemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_PanelGemm)->Arg(32)->Arg(64)->Arg(128);

void BM_PanelCholesky(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(2);
  dense::Matrix base(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      base(i, j) = i == j ? static_cast<real_t>(n) : rng.uniform(-1.0, 1.0);
    }
  }
  for (auto _ : state) {
    dense::Matrix a = base;
    dense::panel_cholesky(n, n, a.col(0), n);
    benchmark::DoNotOptimize(a.col(0));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_PanelCholesky)->Arg(64)->Arg(128)->Arg(256);

void BM_PanelTrsm(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t m = 8;
  Rng rng(3);
  dense::Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      l(i, j) = i == j ? 2.0 : rng.uniform(-0.1, 0.1);
    }
  }
  std::vector<real_t> b(static_cast<std::size_t>(n * m), 1.0);
  for (auto _ : state) {
    std::vector<real_t> x = b;
    dense::panel_trsm_lower(n, m, l.col(0), n, x.data(), n);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * m);
}
BENCHMARK(BM_PanelTrsm)->Arg(64)->Arg(256);

void BM_SymbolicCholesky(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  for (auto _ : state) {
    auto sym = symbolic::symbolic_cholesky(a);
    benchmark::DoNotOptimize(sym.nnz());
  }
}
BENCHMARK(BM_SymbolicCholesky)->Arg(32)->Arg(64);

void BM_MultifrontalFactor(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  for (auto _ : state) {
    auto l = numeric::multifrontal_cholesky(a);
    benchmark::DoNotOptimize(l.stored_entries());
  }
}
BENCHMARK(BM_MultifrontalFactor)->Arg(32)->Arg(64);

void BM_SequentialSolve(benchmark::State& state) {
  const index_t k = state.range(0);
  const index_t m = state.range(1);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  auto l = numeric::multifrontal_cholesky(a);
  Rng rng(4);
  std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
  for (auto _ : state) {
    std::vector<real_t> x = b;
    trisolve::full_solve(l, x.data(), m);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SequentialSolve)->Args({64, 1})->Args({64, 10});

void BM_NestedDissection(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::grid2d(k, k);
  for (auto _ : state) {
    auto p = ordering::nested_dissection(a);
    benchmark::DoNotOptimize(p.n());
  }
}
BENCHMARK(BM_NestedDissection)->Arg(24)->Arg(48);

void BM_MinimumDegree(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::grid2d(k, k);
  for (auto _ : state) {
    auto p = ordering::minimum_degree(a);
    benchmark::DoNotOptimize(p.n());
  }
}
BENCHMARK(BM_MinimumDegree)->Arg(16)->Arg(24);

// ===========================================================================
// Flop-rate sweep: every panel kernel, reference vs tiled, size ladder.
// ===========================================================================

/// One timed case: `flops` per call, `run` performs exactly one call
/// (any per-call reset it needs is included in the timing — it is the
/// same for both implementations, so speedups stay comparable).
struct RateCase {
  std::string kernel;
  index_t size;
  nnz_t flops;
  std::function<void()> run;
};

struct RateResult {
  std::string kernel;
  index_t size;
  double gflops_ref;
  double gflops_tiled;
};

double best_seconds(const std::function<void()>& run, int reps) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    run();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

/// Workload bundle shared by the cases of one size step; keeps the
/// buffers alive for the std::function closures.
struct RateWorkload {
  index_t n = 0;
  std::vector<real_t> a, b, c, chol_base, chol, x;

  explicit RateWorkload(index_t size) : n(size) {
    Rng rng(7);
    const auto nn = static_cast<std::size_t>(n * n);
    a.resize(nn);
    b.resize(nn);
    c.resize(nn, 0.0);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    // Lower-triangular / SPD panel: diagonally dominant so every solve
    // and factorization is well-conditioned at any size.
    chol_base.assign(nn, 0.0);
    for (index_t j = 0; j < n; ++j) {
      for (index_t i = j; i < n; ++i) {
        chol_base[static_cast<std::size_t>(i + j * n)] =
            i == j ? static_cast<real_t>(n) : rng.uniform(-0.5, 0.5);
      }
    }
    chol = chol_base;
    x.resize(nn, 1.0);
  }
};

std::vector<RateCase> make_cases(RateWorkload& w) {
  const index_t n = w.n;
  const index_t nrhs = 30;  // the paper's multi-RHS width
  std::vector<RateCase> cases;
  cases.push_back({"panel_gemm", n, dense::gemm_flops(n, n, n), [&w, n] {
                     dense::panel_gemm(n, n, n, 1.0, w.a.data(), n, w.b.data(),
                                       n, w.c.data(), n);
                   }});
  cases.push_back({"panel_gemm_at", n, dense::gemm_flops(n, n, n), [&w, n] {
                     dense::panel_gemm_at(n, n, n, 1.0, w.a.data(), n,
                                          w.b.data(), n, w.c.data(), n);
                   }});
  cases.push_back(
      {"panel_trsm_lower", n, dense::trsm_panel_flops(n, nrhs), [&w, n, nrhs] {
         dense::panel_trsm_lower(n, nrhs, w.chol_base.data(), n, w.x.data(), n);
       }});
  cases.push_back({"panel_trsm_lower_transposed", n,
                   dense::trsm_panel_flops(n, nrhs), [&w, n, nrhs] {
                     dense::panel_trsm_lower_transposed(
                         n, nrhs, w.chol_base.data(), n, w.x.data(), n);
                   }});
  cases.push_back(
      {"panel_trsm_right_lt", n, dense::trsm_right_lt_flops(n, n), [&w, n] {
         dense::panel_trsm_right_lt(n, n, w.chol_base.data(), n, w.x.data(), n);
       }});
  cases.push_back({"panel_cholesky", n, dense::cholesky_panel_flops(n, n),
                   [&w, n] {
                     w.chol = w.chol_base;  // refactor a fresh copy each call
                     dense::panel_cholesky(n, n, w.chol.data(), n);
                   }});
  cases.push_back({"panel_syrk", n,
                   dense::syrk_flops(n, n, n, /*lower_only=*/true), [&w, n] {
                     dense::panel_syrk(n, n, n, w.a.data(), n, w.a.data(), n,
                                       w.c.data(), n, /*lower_only=*/true);
                   }});
  return cases;
}

std::vector<RateResult> run_rate_sweep() {
  constexpr index_t kSizes[] = {64, 128, 256};
  constexpr int kReps = 5;
  std::vector<RateResult> results;
  const dense::KernelImpl saved = dense::kernel_impl();
  for (const index_t size : kSizes) {
    RateWorkload w(size);
    for (RateCase& rc : make_cases(w)) {
      RateResult res{rc.kernel, rc.size, 0.0, 0.0};
      for (const auto impl :
           {dense::KernelImpl::reference, dense::KernelImpl::tiled}) {
        dense::set_kernel_impl(impl);
        rc.run();  // warm-up: page faults, pack-workspace allocation
        const double secs = best_seconds(rc.run, kReps);
        const double gf = static_cast<double>(rc.flops) * 1e-9 / secs;
        (impl == dense::KernelImpl::reference ? res.gflops_ref
                                              : res.gflops_tiled) = gf;
      }
      results.push_back(res);
    }
  }
  dense::set_kernel_impl(saved);
  return results;
}

void print_and_write_rates(const std::vector<RateResult>& results) {
  std::printf("\nkernel flop rates (best of 5), reference vs tiled:\n");
  std::printf("%-28s %6s %12s %12s %9s\n", "kernel", "n", "ref GF/s",
              "tiled GF/s", "speedup");
  for (const RateResult& r : results) {
    std::printf("%-28s %6lld %12.2f %12.2f %8.2fx\n", r.kernel.c_str(),
                static_cast<long long>(r.size), r.gflops_ref, r.gflops_tiled,
                r.gflops_tiled / r.gflops_ref);
  }
  const char* env = std::getenv("SPARTS_BENCH_KERNELS_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : "BENCH_kernels.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"kernels\",\n  \"unit\": \"gflops\",\n"
      << "  \"flop_rates\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RateResult& r = results[i];
    out << "    {\"kernel\": \"" << r.kernel << "\", \"n\": " << r.size
        << ", \"reference\": " << r.gflops_ref
        << ", \"tiled\": " << r.gflops_tiled << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n\n", path.c_str());
}

}  // namespace
}  // namespace sparts

int main(int argc, char** argv) {
  sparts::print_and_write_rates(sparts::run_rate_sweep());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
