// Microbenchmarks of the dense kernels and core sparse phases
// (google-benchmark).  These measure *host* throughput — useful for
// knowing how fast the simulator itself runs — as opposed to the
// simulated T3D times of the experiment benches.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "dense/cholesky.hpp"
#include "dense/kernels.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/etree.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

void BM_PanelGemm(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(1);
  std::vector<real_t> a(static_cast<std::size_t>(n * n));
  std::vector<real_t> b(static_cast<std::size_t>(n * n));
  std::vector<real_t> c(static_cast<std::size_t>(n * n), 0.0);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  for (auto _ : state) {
    dense::panel_gemm(n, n, n, 1.0, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_PanelGemm)->Arg(32)->Arg(64)->Arg(128);

void BM_PanelCholesky(benchmark::State& state) {
  const index_t n = state.range(0);
  Rng rng(2);
  dense::Matrix base(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      base(i, j) = i == j ? static_cast<real_t>(n) : rng.uniform(-1.0, 1.0);
    }
  }
  for (auto _ : state) {
    dense::Matrix a = base;
    dense::panel_cholesky(n, n, a.col(0), n);
    benchmark::DoNotOptimize(a.col(0));
  }
  state.SetItemsProcessed(state.iterations() * n * n * n / 3);
}
BENCHMARK(BM_PanelCholesky)->Arg(64)->Arg(128)->Arg(256);

void BM_PanelTrsm(benchmark::State& state) {
  const index_t n = state.range(0);
  const index_t m = 8;
  Rng rng(3);
  dense::Matrix l(n, n);
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      l(i, j) = i == j ? 2.0 : rng.uniform(-0.1, 0.1);
    }
  }
  std::vector<real_t> b(static_cast<std::size_t>(n * m), 1.0);
  for (auto _ : state) {
    std::vector<real_t> x = b;
    dense::panel_trsm_lower(n, m, l.col(0), n, x.data(), n);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * m);
}
BENCHMARK(BM_PanelTrsm)->Arg(64)->Arg(256);

void BM_SymbolicCholesky(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  for (auto _ : state) {
    auto sym = symbolic::symbolic_cholesky(a);
    benchmark::DoNotOptimize(sym.nnz());
  }
}
BENCHMARK(BM_SymbolicCholesky)->Arg(32)->Arg(64);

void BM_MultifrontalFactor(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  for (auto _ : state) {
    auto l = numeric::multifrontal_cholesky(a);
    benchmark::DoNotOptimize(l.stored_entries());
  }
}
BENCHMARK(BM_MultifrontalFactor)->Arg(32)->Arg(64);

void BM_SequentialSolve(benchmark::State& state) {
  const index_t k = state.range(0);
  const index_t m = state.range(1);
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  auto l = numeric::multifrontal_cholesky(a);
  Rng rng(4);
  std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
  for (auto _ : state) {
    std::vector<real_t> x = b;
    trisolve::full_solve(l, x.data(), m);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SequentialSolve)->Args({64, 1})->Args({64, 10});

void BM_NestedDissection(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::grid2d(k, k);
  for (auto _ : state) {
    auto p = ordering::nested_dissection(a);
    benchmark::DoNotOptimize(p.n());
  }
}
BENCHMARK(BM_NestedDissection)->Arg(24)->Arg(48);

void BM_MinimumDegree(benchmark::State& state) {
  const index_t k = state.range(0);
  sparse::SymmetricCsc a = sparse::grid2d(k, k);
  for (auto _ : state) {
    auto p = ordering::minimum_degree(a);
    benchmark::DoNotOptimize(p.n());
  }
}
BENCHMARK(BM_MinimumDegree)->Arg(16)->Arg(24);

}  // namespace
}  // namespace sparts

BENCHMARK_MAIN();
