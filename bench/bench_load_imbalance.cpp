// E15 — §3.1's empirical load-imbalance claim: "the overhead due to load
// imbalance in most practical cases tends to saturate at 32 to 64
// processors ... and does not continue to increase as the number of
// processors are increased."
//
// We compute the max/avg work ratio of the subtree-to-subcube mapping for
// growing p on the paper's workloads, plus the per-level work profile that
// explains it (the shared top levels are perfectly balanced by the
// pipelined algorithms; only the sequential subtrees can be uneven).
#include <iostream>

#include "bench_common.hpp"
#include "mapping/load_balance.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E15 (§3.1)", "load-imbalance saturation");
  std::vector<index_t> procs;
  for (index_t p = 2; p <= std::max<index_t>(bench_max_p(), 256); p *= 2) {
    procs.push_back(p);
  }

  std::vector<std::string> headers{"matrix"};
  for (index_t p : procs) headers.push_back("p=" + std::to_string(p));
  TextTable table(headers);

  for (auto& problem : solver::paper_test_suite(bench_scale())) {
    PreparedProblem prob = prepare(std::move(problem));
    const auto weights = mapping::solve_work_weights(prob.part);
    table.new_row();
    table.add(prob.name);
    for (index_t p : procs) {
      const mapping::SubcubeMapping map =
          mapping::subtree_to_subcube(prob.part, p, weights);
      const mapping::LoadBalance lb =
          mapping::analyze_load_balance(prob.part, map, weights);
      table.add(lb.imbalance(), 2);
    }
  }
  std::cout << "max/avg work ratio of the subtree-to-subcube mapping:\n"
            << table;

  // Level profile for one 3-D problem at the largest p.
  PreparedProblem prob = prepare(solver::paper_problem("CUBE35", bench_scale()));
  const index_t p = std::max<index_t>(bench_max_p(), 64);
  const auto weights = mapping::solve_work_weights(prob.part);
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.part, p, weights);
  const mapping::LevelProfile prof =
      mapping::analyze_levels(prob.part, map, weights);
  std::cout << "\nwork by tree level (CUBE35-like, p = " << p << "):\n";
  TextTable t2({"level", "processors sharing", "solve work share"});
  double total = prof.sequential_work;
  for (double w : prof.work_at_level) total += w;
  for (std::size_t l = 0; l < prof.work_at_level.size(); ++l) {
    t2.new_row();
    t2.add(static_cast<long long>(l));
    t2.add(static_cast<long long>(p >> l));
    t2.add(format_fixed(100.0 * prof.work_at_level[l] / total, 1) + "%");
  }
  t2.new_row();
  t2.add("leaves");
  t2.add(static_cast<long long>(1));
  t2.add(format_fixed(100.0 * prof.sequential_work / total, 1) + "%");
  std::cout << t2;
  std::cout << "\nPaper reference shape: the imbalance ratio grows with p "
               "but flattens by p ~ 32-64\n(only the sequential subtrees "
               "can be uneven, and their share of the work shrinks\nas p "
               "grows — the shared levels are balanced by construction).\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
