// E20 — message-path microbenchmark: per-message latency and bandwidth of
// the thread backend's mailbox, before/after the SPSC ring fast path, and
// the copy lane vs the zero-copy handoff lane (send_owned).
//
// Two shapes:
//   * ping-pong: two ranks bounce one message back and forth; the wall
//     clock over many round trips isolates per-message software overhead
//     (match, wakeup, copy).  Columns: locked-mailbox latency (use_spsc
//     off), SPSC-ring latency, their ratio, and the fiber task backend
//     for reference.
//   * stream: rank 0 sends a burst of messages to rank 1.  Measures
//     bandwidth for the copy lane (send) vs the handoff lane
//     (send_owned) and reports the bytes the backend actually copied —
//     ~zero for owned sends above kZeroCopyThreshold is the point of the
//     zero-copy path.
//
// Wall clocks on a shared host are noisy; the gated signals are the
// SPSC/mutex latency *ratio* and the copied-bytes counters (exact).
#include <algorithm>

#include "common/timer.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "bench_common.hpp"

namespace sparts::bench {
namespace {

constexpr int kPingTag = 1;
constexpr int kPongTag = 2;

/// Seconds per one-way message over `roundtrips` ping-pongs on `comm`.
double pingpong(exec::Comm& comm, std::size_t bytes, int roundtrips) {
  auto spmd = [&](exec::Process& proc) {
    const std::vector<std::byte> ball(bytes, std::byte{0x5a});
    if (proc.rank() == 0) {
      for (int i = 0; i < roundtrips; ++i) {
        proc.send(1, kPingTag, ball);
        (void)proc.recv(1, kPongTag);
      }
    } else {
      for (int i = 0; i < roundtrips; ++i) {
        (void)proc.recv(0, kPingTag);
        proc.send(0, kPongTag, ball);
      }
    }
  };
  WallTimer timer;
  comm.run(spmd);
  return timer.seconds() / (2.0 * roundtrips);
}

struct StreamResult {
  double seconds = 0.0;
  nnz_t copied_bytes = 0;
};

/// Rank 0 pushes `count` messages of `bytes` each to rank 1 through the
/// copy lane or the zero-copy handoff lane.  Distinct tags keep every
/// in-flight (src, dst, tag) unique, as the exec contract requires of a
/// burst of buffered sends.
StreamResult stream(std::size_t bytes, int count, bool owned) {
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = 2;
  exec::ThreadBackend backend(cfg);
  auto spmd = [&](exec::Process& proc) {
    if (proc.rank() == 0) {
      const std::vector<std::byte> panel(bytes, std::byte{0x5a});
      for (int i = 0; i < count; ++i) {
        if (owned) {
          exec::Payload p(panel.begin(), panel.end());
          proc.send_owned(1, kPongTag + 1 + i, std::move(p));
        } else {
          proc.send(1, kPongTag + 1 + i, panel);
        }
      }
    } else {
      for (int i = 0; i < count; ++i) {
        (void)proc.recv(0, kPongTag + 1 + i);
      }
    }
  };
  StreamResult out;
  WallTimer timer;
  const exec::RunStats stats = backend.run(spmd);
  out.seconds = timer.seconds();
  out.copied_bytes = stats.total_bytes_copied();
  return out;
}

void run() {
  print_header("E20 (msgpath)",
               "mailbox latency and zero-copy bandwidth of the real "
               "backends");
  BenchJson json("msgpath", "SPARTS_BENCH_MSGPATH_JSON");
  const double scale = bench_scale();

  std::cout << "\nping-pong per-message latency (2 ranks, copy lane):\n";
  TextTable lat({"bytes", "roundtrips", "mutex (us)", "spsc (us)",
                 "spsc gain", "tasks (us)"});
  for (const std::size_t bytes : {8ul, 256ul, 4096ul, 65536ul}) {
    // Enough round trips that thread spawn and timer noise are amortized,
    // fewer for the large payloads that stream more data per trip.
    const int roundtrips = std::max(
        200, static_cast<int>(scale * (bytes <= 4096 ? 20000 : 2000)));
    constexpr int kReps = 3;
    double lat_mutex = 0.0, lat_spsc = 0.0, lat_tasks = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const bool spsc : {false, true}) {
        exec::ThreadBackend::Config cfg;
        cfg.nprocs = 2;
        cfg.use_spsc = spsc;
        exec::ThreadBackend backend(cfg);
        const double t = pingpong(backend, bytes, roundtrips);
        double& slot = spsc ? lat_spsc : lat_mutex;
        slot = rep == 0 ? t : std::min(slot, t);
      }
      exec::TaskBackend::Config tcfg;
      tcfg.nprocs = 2;
      exec::TaskBackend tasks(tcfg);
      const double t = pingpong(tasks, bytes, roundtrips);
      lat_tasks = rep == 0 ? t : std::min(lat_tasks, t);
    }
    const double gain = exec::speedup(lat_mutex, lat_spsc);
    lat.new_row();
    lat.add(static_cast<long long>(bytes));
    lat.add(static_cast<long long>(roundtrips));
    lat.add(lat_mutex * 1e6, 3);
    lat.add(lat_spsc * 1e6, 3);
    lat.add(gain, 2);
    lat.add(lat_tasks * 1e6, 3);
    json.row()
        .field("kind", std::string("pingpong"))
        .field("bytes", static_cast<long long>(bytes))
        .field("roundtrips", static_cast<long long>(roundtrips))
        .field("lat_mutex_us", lat_mutex * 1e6)
        .field("lat_spsc_us", lat_spsc * 1e6)
        .field("spsc_gain", gain)
        .field("lat_tasks_us", lat_tasks * 1e6);
  }
  std::cout << lat;

  std::cout << "\nstream bandwidth (rank 0 -> rank 1, SPSC on):\n";
  TextTable bw({"bytes", "msgs", "copy (MB/s)", "owned (MB/s)",
                "copied KiB (copy)", "copied KiB (owned)"});
  for (const std::size_t bytes : {256ul, 4096ul, 65536ul}) {
    const int count =
        std::max(100, static_cast<int>(scale * (bytes <= 4096 ? 8000 : 800)));
    constexpr int kReps = 3;
    StreamResult copy_lane, owned_lane;
    for (int rep = 0; rep < kReps; ++rep) {
      const StreamResult c = stream(bytes, count, /*owned=*/false);
      const StreamResult o = stream(bytes, count, /*owned=*/true);
      if (rep == 0 || c.seconds < copy_lane.seconds) copy_lane = c;
      if (rep == 0 || o.seconds < owned_lane.seconds) owned_lane = o;
    }
    const double total_mb =
        static_cast<double>(bytes) * count / (1024.0 * 1024.0);
    bw.new_row();
    bw.add(static_cast<long long>(bytes));
    bw.add(static_cast<long long>(count));
    bw.add(total_mb / copy_lane.seconds, 1);
    bw.add(total_mb / owned_lane.seconds, 1);
    bw.add(static_cast<double>(copy_lane.copied_bytes) / 1024.0, 1);
    bw.add(static_cast<double>(owned_lane.copied_bytes) / 1024.0, 1);
    json.row()
        .field("kind", std::string("stream"))
        .field("bytes", static_cast<long long>(bytes))
        .field("count", static_cast<long long>(count))
        .field("bw_copy_mbs", total_mb / copy_lane.seconds)
        .field("bw_owned_mbs", total_mb / owned_lane.seconds)
        .field("copied_kib_copy",
               static_cast<double>(copy_lane.copied_bytes) / 1024.0)
        .field("copied_kib_owned",
               static_cast<double>(owned_lane.copied_bytes) / 1024.0);
  }
  std::cout << bw;
  json.write();
  std::cout << "\nReading: 'spsc gain' is locked-mailbox latency over "
               "SPSC-ring latency for the\nsame ping-pong (>= 2x is the "
               "win the ring buys); 'copied KiB' is the send-side\ncopy "
               "into the mailbox buffer that the backend counted — every "
               "byte on the\ncopy lane, exactly zero on the handoff lane "
               "at or above the zero-copy\nthreshold (256 B).  Payloads "
               "below the threshold ride the copy lane either way.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() { sparts::bench::run(); }
