// E17 — the paper's concluding remarks: "A scalable parallel solver for
// sparse linear systems must implement all these phases effectively in
// parallel ... The results of this paper bring us another step closer to
// a complete scalable direct solver."
//
// This bench runs the complete pipeline — symbolic analysis,
// factorization, redistribution, triangular solves — distributed on the
// simulated machine, and shows how the phases' shares shift with p:
// factorization dominates everywhere (the paper's justification for
// parallelizing the less-scalable solve phase anyway), and no phase is a
// sequential bottleneck.
#include <iostream>

#include "bench_common.hpp"
#include "parfact/parfact.hpp"
#include "parfact/parsymbolic.hpp"
#include "redist/redist.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E17 (concluding remarks)",
               "all four phases, distributed, vs processor count");
  auto problem = solver::paper_problem("BCSSTK31", bench_scale());
  const sparse::SymmetricCsc a =
      sparse::permute_symmetric(problem.matrix, problem.nd_ordering);
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);
  std::cout << "matrix: " << problem.name << " (N = " << a.n()
            << "), NRHS = 1\n\n";

  TextTable table({"p", "symbolic (s)", "factorization (s)", "redist (s)",
                   "FBsolve (s)", "solve share of total"});
  for (index_t p = 1; p <= std::min<index_t>(bench_max_p(), 64); p *= 4) {
    double t_sym = 0.0, t_fact = 0.0, t_red = 0.0, t_solve = 0.0;
    {
      simpar::Machine machine(t3d_config(p));
      t_sym = parfact::parallel_symbolic(machine, a).time();
    }
    const mapping::SubcubeMapping fmap = mapping::subtree_to_subcube(
        part, p, mapping::factor_work_weights(part));
    numeric::SupernodalFactor factor;
    {
      simpar::Machine machine(t3d_config(p));
      t_fact = parfact::parallel_multifrontal(machine, a, part, fmap,
                                              factor)
                   .time();
    }
    const mapping::SubcubeMapping smap =
        mapping::subtree_to_subcube(part, p);
    partrisolve::DistributedFactor local_factor;
    {
      simpar::Machine machine(t3d_config(p));
      t_red = redist::redistribute_factor(machine, factor, smap, {},
                                          &local_factor)
                  .time();
    }
    {
      partrisolve::DistributedTrisolver solver(factor, &local_factor, smap,
                                               {});
      simpar::Machine machine(t3d_config(p));
      Rng rng(5);
      std::vector<real_t> b = sparse::random_rhs(a.n(), 1, rng);
      std::vector<real_t> x(static_cast<std::size_t>(a.n()), 0.0);
      auto [fw, bw] = solver.solve(machine, b, x, 1);
      t_solve = fw.time() + bw.time();
    }
    const double total = t_sym + t_fact + t_red + t_solve;
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(t_sym, 4);
    table.add(t_fact, 4);
    table.add(t_red, 4);
    table.add(t_solve, 4);
    table.add(format_fixed(100.0 * t_solve / total, 1) + "%");
  }
  std::cout << table;
  std::cout << "\nPaper reference shape: numerical factorization dominates "
               "at every p; the solve stays\na small share despite its "
               "worse isoefficiency; symbolic analysis and redistribution\n"
               "are noise — the complete pipeline scales.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
