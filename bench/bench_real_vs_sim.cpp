// E15 — real threads vs. the simulator: the same DistributedTrisolver
// source runs on exec::ThreadBackend (one std::thread per rank, wall-clock
// times) and on simpar::Machine (predicted T3D seconds).  Reported per
// processor count:
//   * measured wall-clock forward+backward time and speedup over 1 thread
//     (best of several repetitions — wall clocks are noisy);
//   * the simulator's predicted time and speedup for the same program.
//
// The wall-clock speedup is bounded by the physical cores of this host
// (printed in the header): on a single-core container every thread count
// serializes, while the predicted column shows what a T3D-like machine
// achieves.  Workload: nested-dissection-ordered k x k grid, multi-RHS —
// the paper's fig. 7/8 setting (default 127 x 127, m = 30; scaled by
// SPARTS_BENCH_SCALE like every other bench).
#include <algorithm>
#include <thread>

#include "dense/kernels.hpp"
#include "exec/stats.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "bench_common.hpp"

namespace sparts::bench {
namespace {

/// Forward+backward wall/virtual time of one solve on `comm`.  Each
/// substitution phase is bracketed with the phase profiler, so the JSON
/// emitter's "phases" array carries the per-phase times and per-rank
/// compute/send/idle splits behind every table cell.
double solve_time(const PreparedProblem& prob, exec::Comm& comm, index_t m,
                  nnz_t* copied = nullptr) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.part, comm.nprocs());
  partrisolve::DistributedTrisolver solver(prob.factor, map, {});
  const index_t n = prob.a.n();
  Rng rng(1234);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  std::vector<real_t> y(static_cast<std::size_t>(n * m), 0.0);
  double fw_time = 0.0, bw_time = 0.0;
  if (copied != nullptr) *copied = 0;
  {
    obs::PhaseScope phase("forward");
    const partrisolve::PhaseReport fw = solver.forward(comm, b, y, m);
    phase.set_parallel(exec::to_phase_stats(fw.stats));
    fw_time = fw.time();
    if (copied != nullptr) *copied += fw.stats.total_bytes_copied();
  }
  {
    obs::PhaseScope phase("backward");
    const partrisolve::PhaseReport bw = solver.backward(comm, y, x, m);
    phase.set_parallel(exec::to_phase_stats(bw.stats));
    bw_time = bw.time();
    if (copied != nullptr) *copied += bw.stats.total_bytes_copied();
  }
  return fw_time + bw_time;
}

void run_grid(index_t k, index_t m, BenchJson& json) {
  PreparedProblem prob = prepare_grid(k, k);
  std::cout << "\nworkload: " << prob.description << "  N = " << prob.a.n()
            << "  nrhs = " << m << "  nnz(L) = " << prob.factor_nnz
            << "\nhardware threads on this host: "
            << std::thread::hardware_concurrency() << "\n";

  // Wall clocks are measured twice per processor count: once with the
  // reference kernels ("before") and once with the tiled kernels
  // ("after"), so this bench doubles as the end-to-end record of what
  // the kernel rewrite buys on a real host.  The simulator column is
  // kernel-independent (its cost model charges the identical flop
  // counts both implementations return).
  TextTable table({"p", "wall ref (s)", "wall tiled (s)", "kern gain",
                   "wall speedup", "wall tasks (s)", "task gain",
                   "copied MB", "sim fb (s)", "sim speedup"});
  constexpr int kReps = 3;
  const dense::KernelImpl saved_impl = dense::kernel_impl();
  double wall1 = 0.0, sim1 = 0.0;
  for (index_t p = 1; p <= std::min<index_t>(bench_max_p(), 8); p *= 2) {
    double wall_ref = 0.0, wall_tiled = 0.0;
    nnz_t copied = 0;
    for (const auto impl :
         {dense::KernelImpl::reference, dense::KernelImpl::tiled}) {
      dense::set_kernel_impl(impl);
      double wall = 0.0;
      for (int rep = 0; rep < kReps; ++rep) {
        exec::ThreadBackend::Config cfg;
        cfg.nprocs = p;
        exec::ThreadBackend backend(cfg);
        const double t = solve_time(prob, backend, m, &copied);
        wall = rep == 0 ? t : std::min(wall, t);
      }
      (impl == dense::KernelImpl::reference ? wall_ref : wall_tiled) = wall;
    }
    // Same program on the fiber task-DAG backend (tiled kernels): ranks
    // multiplex onto a worker pool sized to the host's cores instead of
    // one OS thread each, so blocked recvs cost a user-space context
    // switch rather than a kernel wakeup.
    double wall_tasks = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      exec::TaskBackend::Config cfg;
      cfg.nprocs = p;
      exec::TaskBackend backend(cfg);
      const double t = solve_time(prob, backend, m);
      wall_tasks = rep == 0 ? t : std::min(wall_tasks, t);
    }
    dense::set_kernel_impl(saved_impl);
    simpar::Machine machine(t3d_config(p));
    const double sim = solve_time(prob, machine, m);
    if (p == 1) {
      wall1 = wall_tiled;
      sim1 = sim;
    }
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(wall_ref, 5);
    table.add(wall_tiled, 5);
    table.add(exec::speedup(wall_ref, wall_tiled), 2);
    table.add(exec::speedup(wall1, wall_tiled), 2);
    table.add(wall_tasks, 5);
    table.add(exec::speedup(wall_tiled, wall_tasks), 2);
    table.add(static_cast<double>(copied) / (1024.0 * 1024.0), 3);
    table.add(sim, 5);
    table.add(exec::speedup(sim1, sim), 2);
    json.row()
        .field("workload", prob.description)
        .field("n", prob.a.n())
        .field("nrhs", m)
        .field("p", p)
        .field("wall_ref_seconds", wall_ref)
        .field("wall_tiled_seconds", wall_tiled)
        .field("kernel_gain", exec::speedup(wall_ref, wall_tiled))
        .field("wall_speedup", exec::speedup(wall1, wall_tiled))
        .field("wall_tasks_seconds", wall_tasks)
        .field("tasks_gain", exec::speedup(wall_tiled, wall_tasks))
        .field("copied_mb", static_cast<double>(copied) / (1024.0 * 1024.0))
        .field("sim_seconds", sim)
        .field("sim_speedup", exec::speedup(sim1, sim));
  }
  std::cout << table;
}

/// Message-path rows: the irregular etrees where the solve is dominated
/// by per-message overhead rather than flops (chain = one long pipelined
/// relay; wide-flat = pure dispatch).  Before/after the SPSC+zero-copy
/// message path on the identical program — the 'msg gain' column is
/// end-to-end solve wall clock with the locked mailbox over the SPSC
/// ring, at the p >= 8 where mailbox contention bites.
void run_msgpath_workload(const PreparedProblem& prob, index_t m,
                          BenchJson& json) {
  std::cout << "\nworkload: " << prob.description << "  N = " << prob.a.n()
            << "  supernodes = " << prob.part.num_supernodes()
            << "  nrhs = " << m << "\n";
  TextTable table({"p", "wall mutex (s)", "wall spsc (s)", "msg gain",
                   "copied MB", "wall tasks (s)", "sim fb (s)"});
  // These solves are short (sub-millisecond on wide-flat) and the two
  // columns are within a few percent of each other, so they need more
  // repetitions than the grid rows for the best-of to converge.
  constexpr int kReps = 9;
  for (index_t p = 8; p <= std::min<index_t>(bench_max_p(), 16); p *= 2) {
    double wall_mutex = 0.0, wall_spsc = 0.0, wall_tasks = 0.0;
    nnz_t copied = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      for (const bool spsc : {false, true}) {
        exec::ThreadBackend::Config cfg;
        cfg.nprocs = p;
        cfg.use_spsc = spsc;
        exec::ThreadBackend backend(cfg);
        const double t = solve_time(prob, backend, m, &copied);
        double& slot = spsc ? wall_spsc : wall_mutex;
        slot = rep == 0 ? t : std::min(slot, t);
      }
      exec::TaskBackend::Config cfg;
      cfg.nprocs = p;
      exec::TaskBackend backend(cfg);
      const double t = solve_time(prob, backend, m);
      wall_tasks = rep == 0 ? t : std::min(wall_tasks, t);
    }
    simpar::Machine machine(t3d_config(p));
    const double sim = solve_time(prob, machine, m);
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(wall_mutex, 5);
    table.add(wall_spsc, 5);
    table.add(exec::speedup(wall_mutex, wall_spsc), 2);
    table.add(static_cast<double>(copied) / (1024.0 * 1024.0), 3);
    table.add(wall_tasks, 5);
    table.add(sim, 5);
    json.row()
        .field("workload", prob.name)
        .field("n", prob.a.n())
        .field("nrhs", m)
        .field("p", p)
        .field("wall_mutex_seconds", wall_mutex)
        .field("wall_spsc_seconds", wall_spsc)
        .field("msgpath_gain", exec::speedup(wall_mutex, wall_spsc))
        .field("copied_mb", static_cast<double>(copied) / (1024.0 * 1024.0))
        .field("wall_tasks_seconds", wall_tasks)
        .field("sim_seconds", sim);
  }
  std::cout << table;
}

void run() {
  print_header("E15 (real vs sim)",
               "threaded backend wall clock vs simulator prediction");
  const double scale = bench_scale();
  const index_t k = std::max<index_t>(15, static_cast<index_t>(127 * scale));
  BenchJson json("real_vs_sim", "SPARTS_BENCH_REAL_VS_SIM_JSON");
  run_grid(k, 30, json);
  run_grid(k, 1, json);

  // Message-path stressors (see run_msgpath_workload): solve wall clock
  // before/after the SPSC + zero-copy mailbox rework.
  const index_t chain_n =
      std::max<index_t>(600, static_cast<index_t>(4000 * scale));
  run_msgpath_workload(
      prepare_natural("chain", "chain " + std::to_string(chain_n),
                      chain_matrix(chain_n)),
      4, json);
  const index_t blocks =
      std::max<index_t>(32, static_cast<index_t>(192 * scale));
  const index_t bs = 16;
  run_msgpath_workload(
      prepare_natural("wideflat",
                      "wide-flat " + std::to_string(blocks) + "x" +
                          std::to_string(bs),
                      wide_flat_matrix(blocks, bs)),
      4, json);
  json.write();
  std::cout << "\nReading: 'kern gain' is wall clock with reference kernels "
               "over tiled kernels\n(same program, same thread count); 'wall "
               "speedup' is real concurrency on this\nhost (ceiling = "
               "physical cores); 'task gain' is thread-backend wall clock\n"
               "over the fiber task-DAG backend for the identical program "
               "(rank handoffs\nbecome user-space switches, so the gain "
               "grows with p); 'sim speedup' is the\ndeterministic T3D "
               "prediction (kernel-independent).  'copied MB' is what "
               "the\nmessage path memcpy'd end to end (the zero-copy "
               "handoff lane keeps it to the\nsub-threshold messages); "
               "'msg gain' on the chain / wide-flat rows is solve\nwall "
               "clock with the locked mailbox over the SPSC ring.  Set\n"
               "SPARTS_BENCH_SCALE=1.0 for the full 127 x 127 grid.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() { sparts::bench::run(); }
