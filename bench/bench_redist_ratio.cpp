// E9/E12 — Figure 6 and §5: redistribution cost relative to one
// single-RHS triangular solve.
//
// Paper claims (Cray T3D, 256 processors): the 2-D -> 1-D conversion costs
// at most 0.9x the 1-RHS FBsolve time, ~0.5x on average, and amortizes
// over repeated solves.
#include <iostream>

#include "bench_common.hpp"
#include "redist/redist.hpp"
#include "simpar/machine.hpp"

namespace sparts::bench {
namespace {

void run() {
  print_header("E9/E12 (Figure 6, §5)",
               "2-D -> 1-D redistribution cost vs 1-RHS solve");
  const double scale = bench_scale();
  const index_t p = std::min<index_t>(bench_max_p(), 64);

  TextTable table({"matrix", "N", "redist time (s)", "FBsolve time (s)",
                   "ratio"});
  double sum_ratio = 0.0, max_ratio = 0.0;
  int count = 0;
  for (auto& problem : solver::paper_test_suite(scale)) {
    PreparedProblem prob = prepare(std::move(problem));
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(prob.part, p);
    double rt = 0.0;
    {
      simpar::Machine machine(t3d_config(p));
      rt = redist::redistribute_factor(machine, prob.factor, map).time();
    }
    const SolveMeasurement solve = measure_solve(prob, p, 1);
    const double ratio = rt / solve.fb_time;
    sum_ratio += ratio;
    max_ratio = std::max(max_ratio, ratio);
    ++count;
    table.new_row();
    table.add(prob.name);
    table.add(static_cast<long long>(prob.a.n()));
    table.add(rt, 4);
    table.add(solve.fb_time, 4);
    table.add(ratio, 2);
  }
  std::cout << table;
  std::cout << "\nmax ratio = " << format_fixed(max_ratio, 2)
            << " (paper: at most 0.9)   average ratio = "
            << format_fixed(sum_ratio / count, 2) << " (paper: ~0.5)\n"
            << "The conversion is a one-time cost amortized over every "
               "subsequent right-hand side.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() {
  sparts::bench::run();
  return 0;
}
