// E18 — task-DAG backend vs thread backend on irregular elimination trees.
//
// Both backends run the *same* SPMD programs (parallel multifrontal
// factorization; pipelined forward+backward trisolve) and produce
// bit-identical numbers; what differs is how the p ranks are executed:
//
//   * threads — one OS thread per rank.  Every blocked recv parks the
//     thread on a condvar, and every matching send pays a kernel wakeup
//     plus a scheduler migration.  With p ranks on few cores the run is
//     mostly handoffs.
//   * tasks — every rank is a fiber multiplexed on a work-stealing worker
//     pool (as many workers as cores).  A blocked recv suspends the fiber
//     in user space and the matching send resumes it on the sender's
//     worker: the handoff is a context switch, not a kernel round trip.
//
// The gap is widest where the elimination tree gives the schedule the
// least slack and the message:compute ratio is highest — the two
// irregular workloads below:
//
//   * chain — a tridiagonal matrix in natural order: the etree is a path,
//     every supernode has width 1, and the root path is shared by the
//     whole group, so the solve is one long pipelined relay.
//   * wide-flat — a block-diagonal forest of small chains: thousands of
//     independent tiny supernodes, so the cost is almost pure task
//     dispatch.
//
// A nested-dissection grid rides along as the regular-etree control.
// Reported per (workload, p): best-of-k wall seconds per backend for the
// factorization and the forward+backward solve, and the tasks-over-threads
// speedups.  JSON lands in BENCH_taskdag.json (tools/bench_gate.py keeps
// the speedups honest in CI).
#include <algorithm>
#include <thread>

#include "bench_common.hpp"
#include "exec/stats.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "parfact/parfact.hpp"

namespace sparts::bench {
namespace {

// chain_matrix / wide_flat_matrix / prepare_natural live in
// bench_common.hpp, shared with bench_real_vs_sim's message-path rows.

/// Wall seconds of one parallel multifrontal factorization on `comm`.
double factor_time(const PreparedProblem& prob, exec::Comm& comm) {
  const mapping::SubcubeMapping map = mapping::subtree_to_subcube(
      prob.part, comm.nprocs(), mapping::factor_work_weights(prob.part));
  numeric::SupernodalFactor factor;
  const parfact::Report report =
      parfact::parallel_multifrontal(comm, prob.a, prob.part, map, factor);
  return report.time();
}

/// Wall seconds of one pipelined forward+backward solve on `comm`.  If
/// `copied` is non-null it receives the bytes the backend memcpy'd on the
/// message path (the zero-copy handoff lane keeps this near zero).
double solve_time(const PreparedProblem& prob, exec::Comm& comm, index_t m,
                  nnz_t* copied = nullptr) {
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.part, comm.nprocs());
  partrisolve::DistributedTrisolver solver(prob.factor, map, {});
  const index_t n = prob.a.n();
  Rng rng(1234);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  auto [fw, bw] = solver.solve(comm, b, x, m);
  if (copied != nullptr) {
    *copied = fw.stats.total_bytes_copied() + bw.stats.total_bytes_copied();
  }
  return fw.time() + bw.time();
}

void run_workload(const char* etree, const PreparedProblem& prob, index_t m,
                  BenchJson& json) {
  std::cout << "\nworkload: " << prob.description << "  N = " << prob.a.n()
            << "  supernodes = " << prob.part.num_supernodes()
            << "  nrhs = " << m << "\n";
  TextTable table({"p", "fact thr (s)", "fact task (s)", "fact gain",
                   "solve thr (s)", "solve task (s)", "solve gain",
                   "solve copied MB"});
  constexpr int kReps = 3;
  for (index_t p = 8; p <= std::min<index_t>(bench_max_p(), 16); p *= 2) {
    double fact_thr = 0.0, fact_task = 0.0;
    double solve_thr = 0.0, solve_task = 0.0;
    nnz_t solve_copied = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      {
        exec::ThreadBackend::Config cfg;
        cfg.nprocs = p;
        exec::ThreadBackend backend(cfg);
        const double ft = factor_time(prob, backend);
        const double st = solve_time(prob, backend, m, &solve_copied);
        fact_thr = rep == 0 ? ft : std::min(fact_thr, ft);
        solve_thr = rep == 0 ? st : std::min(solve_thr, st);
      }
      {
        exec::TaskBackend::Config cfg;
        cfg.nprocs = p;
        exec::TaskBackend backend(cfg);
        const double ft = factor_time(prob, backend);
        const double st = solve_time(prob, backend, m);
        fact_task = rep == 0 ? ft : std::min(fact_task, ft);
        solve_task = rep == 0 ? st : std::min(solve_task, st);
      }
    }
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(fact_thr, 5);
    table.add(fact_task, 5);
    table.add(exec::speedup(fact_thr, fact_task), 2);
    table.add(solve_thr, 5);
    table.add(solve_task, 5);
    table.add(exec::speedup(solve_thr, solve_task), 2);
    table.add(static_cast<double>(solve_copied) / (1024.0 * 1024.0), 3);
    json.row()
        .field("workload", prob.description)
        .field("etree", std::string(etree))
        .field("n", prob.a.n())
        .field("supernodes", prob.part.num_supernodes())
        .field("nrhs", m)
        .field("p", p)
        .field("factor_threads_seconds", fact_thr)
        .field("factor_tasks_seconds", fact_task)
        .field("factor_tasks_speedup", exec::speedup(fact_thr, fact_task))
        .field("solve_threads_seconds", solve_thr)
        .field("solve_tasks_seconds", solve_task)
        .field("solve_tasks_speedup", exec::speedup(solve_thr, solve_task))
        .field("solve_copied_mb",
               static_cast<double>(solve_copied) / (1024.0 * 1024.0));
  }
  std::cout << table;
}

void run() {
  print_header("E18 (taskdag)",
               "fiber task-DAG backend vs one-thread-per-rank on irregular "
               "etrees");
  std::cout << "hardware threads on this host: "
            << std::thread::hardware_concurrency() << "\n";
  const double scale = bench_scale();
  BenchJson json("taskdag", "SPARTS_BENCH_TASKDAG_JSON");

  const index_t chain_n =
      std::max<index_t>(600, static_cast<index_t>(4000 * scale));
  run_workload("chain",
               prepare_natural("chain",
                               "chain " + std::to_string(chain_n),
                               chain_matrix(chain_n)),
               4, json);

  const index_t blocks =
      std::max<index_t>(32, static_cast<index_t>(192 * scale));
  const index_t bs = 16;
  run_workload(
      "wide-flat",
      prepare_natural("wideflat",
                      "wide-flat " + std::to_string(blocks) + "x" +
                          std::to_string(bs),
                      wide_flat_matrix(blocks, bs)),
      4, json);

  const index_t k = std::max<index_t>(31, static_cast<index_t>(63 * scale));
  run_workload("grid-nd", prepare_grid(k, k), 4, json);

  json.write();
  std::cout << "\nReading: 'gain' columns are thread-backend wall clock over "
               "task-backend wall\nclock for the identical SPMD program "
               "(both backends produce bit-identical\nnumbers).  The chain "
               "and wide-flat rows are the irregular etrees the task\n"
               "backend exists for; the grid row is the regular-etree "
               "control.\n";
}

}  // namespace
}  // namespace sparts::bench

int main() { sparts::bench::run(); }
