file(REMOVE_RECURSE
  "CMakeFiles/bench_1d_vs_2d_solve.dir/bench_1d_vs_2d_solve.cpp.o"
  "CMakeFiles/bench_1d_vs_2d_solve.dir/bench_1d_vs_2d_solve.cpp.o.d"
  "bench_1d_vs_2d_solve"
  "bench_1d_vs_2d_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_1d_vs_2d_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
