# Empty dependencies file for bench_1d_vs_2d_solve.
# This may be replaced when dependencies are built.
