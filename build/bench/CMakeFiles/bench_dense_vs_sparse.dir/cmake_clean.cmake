file(REMOVE_RECURSE
  "CMakeFiles/bench_dense_vs_sparse.dir/bench_dense_vs_sparse.cpp.o"
  "CMakeFiles/bench_dense_vs_sparse.dir/bench_dense_vs_sparse.cpp.o.d"
  "bench_dense_vs_sparse"
  "bench_dense_vs_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dense_vs_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
