# Empty dependencies file for bench_dense_vs_sparse.
# This may be replaced when dependencies are built.
