file(REMOVE_RECURSE
  "CMakeFiles/bench_eq12_model_fit.dir/bench_eq12_model_fit.cpp.o"
  "CMakeFiles/bench_eq12_model_fit.dir/bench_eq12_model_fit.cpp.o.d"
  "bench_eq12_model_fit"
  "bench_eq12_model_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq12_model_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
