# Empty dependencies file for bench_eq12_model_fit.
# This may be replaced when dependencies are built.
