file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_pipeline_back.dir/bench_fig4_pipeline_back.cpp.o"
  "CMakeFiles/bench_fig4_pipeline_back.dir/bench_fig4_pipeline_back.cpp.o.d"
  "bench_fig4_pipeline_back"
  "bench_fig4_pipeline_back.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_pipeline_back.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
