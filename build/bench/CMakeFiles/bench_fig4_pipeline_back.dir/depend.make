# Empty dependencies file for bench_fig4_pipeline_back.
# This may be replaced when dependencies are built.
