# Empty compiler generated dependencies file for bench_fig5_table.
# This may be replaced when dependencies are built.
