# Empty dependencies file for bench_isoefficiency.
# This may be replaced when dependencies are built.
