file(REMOVE_RECURSE
  "CMakeFiles/bench_load_imbalance.dir/bench_load_imbalance.cpp.o"
  "CMakeFiles/bench_load_imbalance.dir/bench_load_imbalance.cpp.o.d"
  "bench_load_imbalance"
  "bench_load_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_load_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
