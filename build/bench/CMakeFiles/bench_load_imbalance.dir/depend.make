# Empty dependencies file for bench_load_imbalance.
# This may be replaced when dependencies are built.
