file(REMOVE_RECURSE
  "CMakeFiles/bench_parallel_phases.dir/bench_parallel_phases.cpp.o"
  "CMakeFiles/bench_parallel_phases.dir/bench_parallel_phases.cpp.o.d"
  "bench_parallel_phases"
  "bench_parallel_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parallel_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
