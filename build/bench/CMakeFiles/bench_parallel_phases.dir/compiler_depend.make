# Empty compiler generated dependencies file for bench_parallel_phases.
# This may be replaced when dependencies are built.
