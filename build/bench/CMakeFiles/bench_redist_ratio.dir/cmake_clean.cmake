file(REMOVE_RECURSE
  "CMakeFiles/bench_redist_ratio.dir/bench_redist_ratio.cpp.o"
  "CMakeFiles/bench_redist_ratio.dir/bench_redist_ratio.cpp.o.d"
  "bench_redist_ratio"
  "bench_redist_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_redist_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
