# Empty dependencies file for bench_redist_ratio.
# This may be replaced when dependencies are built.
