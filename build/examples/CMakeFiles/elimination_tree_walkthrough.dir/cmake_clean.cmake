file(REMOVE_RECURSE
  "CMakeFiles/elimination_tree_walkthrough.dir/elimination_tree_walkthrough.cpp.o"
  "CMakeFiles/elimination_tree_walkthrough.dir/elimination_tree_walkthrough.cpp.o.d"
  "elimination_tree_walkthrough"
  "elimination_tree_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elimination_tree_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
