# Empty dependencies file for elimination_tree_walkthrough.
# This may be replaced when dependencies are built.
