file(REMOVE_RECURSE
  "CMakeFiles/factor_cache.dir/factor_cache.cpp.o"
  "CMakeFiles/factor_cache.dir/factor_cache.cpp.o.d"
  "factor_cache"
  "factor_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factor_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
