# Empty dependencies file for factor_cache.
# This may be replaced when dependencies are built.
