file(REMOVE_RECURSE
  "CMakeFiles/poisson2d_orderings.dir/poisson2d_orderings.cpp.o"
  "CMakeFiles/poisson2d_orderings.dir/poisson2d_orderings.cpp.o.d"
  "poisson2d_orderings"
  "poisson2d_orderings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poisson2d_orderings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
