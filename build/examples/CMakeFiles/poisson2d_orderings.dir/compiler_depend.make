# Empty compiler generated dependencies file for poisson2d_orderings.
# This may be replaced when dependencies are built.
