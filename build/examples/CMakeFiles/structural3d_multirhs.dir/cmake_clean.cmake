file(REMOVE_RECURSE
  "CMakeFiles/structural3d_multirhs.dir/structural3d_multirhs.cpp.o"
  "CMakeFiles/structural3d_multirhs.dir/structural3d_multirhs.cpp.o.d"
  "structural3d_multirhs"
  "structural3d_multirhs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural3d_multirhs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
