# Empty compiler generated dependencies file for structural3d_multirhs.
# This may be replaced when dependencies are built.
