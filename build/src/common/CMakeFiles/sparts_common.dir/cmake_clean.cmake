file(REMOVE_RECURSE
  "CMakeFiles/sparts_common.dir/error.cpp.o"
  "CMakeFiles/sparts_common.dir/error.cpp.o.d"
  "CMakeFiles/sparts_common.dir/rng.cpp.o"
  "CMakeFiles/sparts_common.dir/rng.cpp.o.d"
  "CMakeFiles/sparts_common.dir/table.cpp.o"
  "CMakeFiles/sparts_common.dir/table.cpp.o.d"
  "CMakeFiles/sparts_common.dir/timer.cpp.o"
  "CMakeFiles/sparts_common.dir/timer.cpp.o.d"
  "libsparts_common.a"
  "libsparts_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
