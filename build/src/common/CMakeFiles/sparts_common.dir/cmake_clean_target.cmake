file(REMOVE_RECURSE
  "libsparts_common.a"
)
