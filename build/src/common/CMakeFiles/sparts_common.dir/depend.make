# Empty dependencies file for sparts_common.
# This may be replaced when dependencies are built.
