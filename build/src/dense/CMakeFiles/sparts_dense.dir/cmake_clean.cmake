file(REMOVE_RECURSE
  "CMakeFiles/sparts_dense.dir/cholesky.cpp.o"
  "CMakeFiles/sparts_dense.dir/cholesky.cpp.o.d"
  "CMakeFiles/sparts_dense.dir/kernels.cpp.o"
  "CMakeFiles/sparts_dense.dir/kernels.cpp.o.d"
  "CMakeFiles/sparts_dense.dir/matrix.cpp.o"
  "CMakeFiles/sparts_dense.dir/matrix.cpp.o.d"
  "libsparts_dense.a"
  "libsparts_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
