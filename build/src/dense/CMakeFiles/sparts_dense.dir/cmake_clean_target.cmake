file(REMOVE_RECURSE
  "libsparts_dense.a"
)
