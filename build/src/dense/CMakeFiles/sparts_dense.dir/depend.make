# Empty dependencies file for sparts_dense.
# This may be replaced when dependencies are built.
