
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/block_cyclic.cpp" "src/mapping/CMakeFiles/sparts_mapping.dir/block_cyclic.cpp.o" "gcc" "src/mapping/CMakeFiles/sparts_mapping.dir/block_cyclic.cpp.o.d"
  "/root/repo/src/mapping/load_balance.cpp" "src/mapping/CMakeFiles/sparts_mapping.dir/load_balance.cpp.o" "gcc" "src/mapping/CMakeFiles/sparts_mapping.dir/load_balance.cpp.o.d"
  "/root/repo/src/mapping/subtree_to_subcube.cpp" "src/mapping/CMakeFiles/sparts_mapping.dir/subtree_to_subcube.cpp.o" "gcc" "src/mapping/CMakeFiles/sparts_mapping.dir/subtree_to_subcube.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/sparts_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/simpar/CMakeFiles/sparts_simpar.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/sparts_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sparts_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
