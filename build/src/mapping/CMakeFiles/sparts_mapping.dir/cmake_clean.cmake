file(REMOVE_RECURSE
  "CMakeFiles/sparts_mapping.dir/block_cyclic.cpp.o"
  "CMakeFiles/sparts_mapping.dir/block_cyclic.cpp.o.d"
  "CMakeFiles/sparts_mapping.dir/load_balance.cpp.o"
  "CMakeFiles/sparts_mapping.dir/load_balance.cpp.o.d"
  "CMakeFiles/sparts_mapping.dir/subtree_to_subcube.cpp.o"
  "CMakeFiles/sparts_mapping.dir/subtree_to_subcube.cpp.o.d"
  "libsparts_mapping.a"
  "libsparts_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
