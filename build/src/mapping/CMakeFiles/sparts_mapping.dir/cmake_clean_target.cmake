file(REMOVE_RECURSE
  "libsparts_mapping.a"
)
