# Empty dependencies file for sparts_mapping.
# This may be replaced when dependencies are built.
