file(REMOVE_RECURSE
  "CMakeFiles/sparts_model.dir/model.cpp.o"
  "CMakeFiles/sparts_model.dir/model.cpp.o.d"
  "libsparts_model.a"
  "libsparts_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
