file(REMOVE_RECURSE
  "libsparts_model.a"
)
