# Empty dependencies file for sparts_model.
# This may be replaced when dependencies are built.
