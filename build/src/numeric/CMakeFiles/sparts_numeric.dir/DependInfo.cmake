
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/factor_io.cpp" "src/numeric/CMakeFiles/sparts_numeric.dir/factor_io.cpp.o" "gcc" "src/numeric/CMakeFiles/sparts_numeric.dir/factor_io.cpp.o.d"
  "/root/repo/src/numeric/ldlt.cpp" "src/numeric/CMakeFiles/sparts_numeric.dir/ldlt.cpp.o" "gcc" "src/numeric/CMakeFiles/sparts_numeric.dir/ldlt.cpp.o.d"
  "/root/repo/src/numeric/multifrontal.cpp" "src/numeric/CMakeFiles/sparts_numeric.dir/multifrontal.cpp.o" "gcc" "src/numeric/CMakeFiles/sparts_numeric.dir/multifrontal.cpp.o.d"
  "/root/repo/src/numeric/simplicial.cpp" "src/numeric/CMakeFiles/sparts_numeric.dir/simplicial.cpp.o" "gcc" "src/numeric/CMakeFiles/sparts_numeric.dir/simplicial.cpp.o.d"
  "/root/repo/src/numeric/supernodal_factor.cpp" "src/numeric/CMakeFiles/sparts_numeric.dir/supernodal_factor.cpp.o" "gcc" "src/numeric/CMakeFiles/sparts_numeric.dir/supernodal_factor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sparts_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/sparts_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/sparts_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/sparts_dense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
