file(REMOVE_RECURSE
  "CMakeFiles/sparts_numeric.dir/factor_io.cpp.o"
  "CMakeFiles/sparts_numeric.dir/factor_io.cpp.o.d"
  "CMakeFiles/sparts_numeric.dir/ldlt.cpp.o"
  "CMakeFiles/sparts_numeric.dir/ldlt.cpp.o.d"
  "CMakeFiles/sparts_numeric.dir/multifrontal.cpp.o"
  "CMakeFiles/sparts_numeric.dir/multifrontal.cpp.o.d"
  "CMakeFiles/sparts_numeric.dir/simplicial.cpp.o"
  "CMakeFiles/sparts_numeric.dir/simplicial.cpp.o.d"
  "CMakeFiles/sparts_numeric.dir/supernodal_factor.cpp.o"
  "CMakeFiles/sparts_numeric.dir/supernodal_factor.cpp.o.d"
  "libsparts_numeric.a"
  "libsparts_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
