file(REMOVE_RECURSE
  "libsparts_numeric.a"
)
