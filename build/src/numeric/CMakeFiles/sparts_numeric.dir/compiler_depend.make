# Empty compiler generated dependencies file for sparts_numeric.
# This may be replaced when dependencies are built.
