
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/etree.cpp" "src/ordering/CMakeFiles/sparts_ordering.dir/etree.cpp.o" "gcc" "src/ordering/CMakeFiles/sparts_ordering.dir/etree.cpp.o.d"
  "/root/repo/src/ordering/mindeg.cpp" "src/ordering/CMakeFiles/sparts_ordering.dir/mindeg.cpp.o" "gcc" "src/ordering/CMakeFiles/sparts_ordering.dir/mindeg.cpp.o.d"
  "/root/repo/src/ordering/multilevel.cpp" "src/ordering/CMakeFiles/sparts_ordering.dir/multilevel.cpp.o" "gcc" "src/ordering/CMakeFiles/sparts_ordering.dir/multilevel.cpp.o.d"
  "/root/repo/src/ordering/nested_dissection.cpp" "src/ordering/CMakeFiles/sparts_ordering.dir/nested_dissection.cpp.o" "gcc" "src/ordering/CMakeFiles/sparts_ordering.dir/nested_dissection.cpp.o.d"
  "/root/repo/src/ordering/rcm.cpp" "src/ordering/CMakeFiles/sparts_ordering.dir/rcm.cpp.o" "gcc" "src/ordering/CMakeFiles/sparts_ordering.dir/rcm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sparts_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
