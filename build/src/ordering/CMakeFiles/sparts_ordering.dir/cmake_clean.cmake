file(REMOVE_RECURSE
  "CMakeFiles/sparts_ordering.dir/etree.cpp.o"
  "CMakeFiles/sparts_ordering.dir/etree.cpp.o.d"
  "CMakeFiles/sparts_ordering.dir/mindeg.cpp.o"
  "CMakeFiles/sparts_ordering.dir/mindeg.cpp.o.d"
  "CMakeFiles/sparts_ordering.dir/multilevel.cpp.o"
  "CMakeFiles/sparts_ordering.dir/multilevel.cpp.o.d"
  "CMakeFiles/sparts_ordering.dir/nested_dissection.cpp.o"
  "CMakeFiles/sparts_ordering.dir/nested_dissection.cpp.o.d"
  "CMakeFiles/sparts_ordering.dir/rcm.cpp.o"
  "CMakeFiles/sparts_ordering.dir/rcm.cpp.o.d"
  "libsparts_ordering.a"
  "libsparts_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
