file(REMOVE_RECURSE
  "libsparts_ordering.a"
)
