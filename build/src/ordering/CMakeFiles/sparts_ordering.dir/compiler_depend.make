# Empty compiler generated dependencies file for sparts_ordering.
# This may be replaced when dependencies are built.
