file(REMOVE_RECURSE
  "CMakeFiles/sparts_parfact.dir/parfact.cpp.o"
  "CMakeFiles/sparts_parfact.dir/parfact.cpp.o.d"
  "CMakeFiles/sparts_parfact.dir/parsymbolic.cpp.o"
  "CMakeFiles/sparts_parfact.dir/parsymbolic.cpp.o.d"
  "libsparts_parfact.a"
  "libsparts_parfact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_parfact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
