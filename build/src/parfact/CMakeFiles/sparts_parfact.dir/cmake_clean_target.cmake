file(REMOVE_RECURSE
  "libsparts_parfact.a"
)
