# Empty dependencies file for sparts_parfact.
# This may be replaced when dependencies are built.
