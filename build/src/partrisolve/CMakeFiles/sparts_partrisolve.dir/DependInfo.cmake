
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/partrisolve/dense_trisolve.cpp" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/dense_trisolve.cpp.o" "gcc" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/dense_trisolve.cpp.o.d"
  "/root/repo/src/partrisolve/dist_factor.cpp" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/dist_factor.cpp.o" "gcc" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/dist_factor.cpp.o.d"
  "/root/repo/src/partrisolve/packets.cpp" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/packets.cpp.o" "gcc" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/packets.cpp.o.d"
  "/root/repo/src/partrisolve/partrisolve.cpp" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/partrisolve.cpp.o" "gcc" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/partrisolve.cpp.o.d"
  "/root/repo/src/partrisolve/twodim.cpp" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/twodim.cpp.o" "gcc" "src/partrisolve/CMakeFiles/sparts_partrisolve.dir/twodim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sparts_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/sparts_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/simpar/CMakeFiles/sparts_simpar.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/sparts_dense.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/sparts_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/sparts_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sparts_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
