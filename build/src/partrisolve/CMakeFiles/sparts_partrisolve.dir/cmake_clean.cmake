file(REMOVE_RECURSE
  "CMakeFiles/sparts_partrisolve.dir/dense_trisolve.cpp.o"
  "CMakeFiles/sparts_partrisolve.dir/dense_trisolve.cpp.o.d"
  "CMakeFiles/sparts_partrisolve.dir/dist_factor.cpp.o"
  "CMakeFiles/sparts_partrisolve.dir/dist_factor.cpp.o.d"
  "CMakeFiles/sparts_partrisolve.dir/packets.cpp.o"
  "CMakeFiles/sparts_partrisolve.dir/packets.cpp.o.d"
  "CMakeFiles/sparts_partrisolve.dir/partrisolve.cpp.o"
  "CMakeFiles/sparts_partrisolve.dir/partrisolve.cpp.o.d"
  "CMakeFiles/sparts_partrisolve.dir/twodim.cpp.o"
  "CMakeFiles/sparts_partrisolve.dir/twodim.cpp.o.d"
  "libsparts_partrisolve.a"
  "libsparts_partrisolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_partrisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
