file(REMOVE_RECURSE
  "libsparts_partrisolve.a"
)
