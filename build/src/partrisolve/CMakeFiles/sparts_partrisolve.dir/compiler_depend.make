# Empty compiler generated dependencies file for sparts_partrisolve.
# This may be replaced when dependencies are built.
