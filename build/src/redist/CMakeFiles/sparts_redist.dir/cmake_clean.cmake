file(REMOVE_RECURSE
  "CMakeFiles/sparts_redist.dir/redist.cpp.o"
  "CMakeFiles/sparts_redist.dir/redist.cpp.o.d"
  "libsparts_redist.a"
  "libsparts_redist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_redist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
