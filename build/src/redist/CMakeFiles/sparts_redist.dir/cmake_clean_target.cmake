file(REMOVE_RECURSE
  "libsparts_redist.a"
)
