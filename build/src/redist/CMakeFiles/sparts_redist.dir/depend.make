# Empty dependencies file for sparts_redist.
# This may be replaced when dependencies are built.
