file(REMOVE_RECURSE
  "CMakeFiles/sparts_simpar.dir/collectives.cpp.o"
  "CMakeFiles/sparts_simpar.dir/collectives.cpp.o.d"
  "CMakeFiles/sparts_simpar.dir/machine.cpp.o"
  "CMakeFiles/sparts_simpar.dir/machine.cpp.o.d"
  "libsparts_simpar.a"
  "libsparts_simpar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_simpar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
