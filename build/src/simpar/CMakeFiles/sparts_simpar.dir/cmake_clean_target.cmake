file(REMOVE_RECURSE
  "libsparts_simpar.a"
)
