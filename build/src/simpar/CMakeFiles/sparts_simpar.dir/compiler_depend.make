# Empty compiler generated dependencies file for sparts_simpar.
# This may be replaced when dependencies are built.
