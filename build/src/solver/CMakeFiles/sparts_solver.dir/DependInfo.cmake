
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/condest.cpp" "src/solver/CMakeFiles/sparts_solver.dir/condest.cpp.o" "gcc" "src/solver/CMakeFiles/sparts_solver.dir/condest.cpp.o.d"
  "/root/repo/src/solver/report.cpp" "src/solver/CMakeFiles/sparts_solver.dir/report.cpp.o" "gcc" "src/solver/CMakeFiles/sparts_solver.dir/report.cpp.o.d"
  "/root/repo/src/solver/sparse_solver.cpp" "src/solver/CMakeFiles/sparts_solver.dir/sparse_solver.cpp.o" "gcc" "src/solver/CMakeFiles/sparts_solver.dir/sparse_solver.cpp.o.d"
  "/root/repo/src/solver/workloads.cpp" "src/solver/CMakeFiles/sparts_solver.dir/workloads.cpp.o" "gcc" "src/solver/CMakeFiles/sparts_solver.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/sparts_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/sparts_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/symbolic/CMakeFiles/sparts_symbolic.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/sparts_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/trisolve/CMakeFiles/sparts_trisolve.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/sparts_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/simpar/CMakeFiles/sparts_simpar.dir/DependInfo.cmake"
  "/root/repo/build/src/partrisolve/CMakeFiles/sparts_partrisolve.dir/DependInfo.cmake"
  "/root/repo/build/src/parfact/CMakeFiles/sparts_parfact.dir/DependInfo.cmake"
  "/root/repo/build/src/redist/CMakeFiles/sparts_redist.dir/DependInfo.cmake"
  "/root/repo/build/src/dense/CMakeFiles/sparts_dense.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
