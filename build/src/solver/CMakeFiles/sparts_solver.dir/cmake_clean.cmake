file(REMOVE_RECURSE
  "CMakeFiles/sparts_solver.dir/condest.cpp.o"
  "CMakeFiles/sparts_solver.dir/condest.cpp.o.d"
  "CMakeFiles/sparts_solver.dir/report.cpp.o"
  "CMakeFiles/sparts_solver.dir/report.cpp.o.d"
  "CMakeFiles/sparts_solver.dir/sparse_solver.cpp.o"
  "CMakeFiles/sparts_solver.dir/sparse_solver.cpp.o.d"
  "CMakeFiles/sparts_solver.dir/workloads.cpp.o"
  "CMakeFiles/sparts_solver.dir/workloads.cpp.o.d"
  "libsparts_solver.a"
  "libsparts_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
