file(REMOVE_RECURSE
  "libsparts_solver.a"
)
