# Empty compiler generated dependencies file for sparts_solver.
# This may be replaced when dependencies are built.
