
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sparse/formats.cpp" "src/sparse/CMakeFiles/sparts_sparse.dir/formats.cpp.o" "gcc" "src/sparse/CMakeFiles/sparts_sparse.dir/formats.cpp.o.d"
  "/root/repo/src/sparse/generators.cpp" "src/sparse/CMakeFiles/sparts_sparse.dir/generators.cpp.o" "gcc" "src/sparse/CMakeFiles/sparts_sparse.dir/generators.cpp.o.d"
  "/root/repo/src/sparse/io.cpp" "src/sparse/CMakeFiles/sparts_sparse.dir/io.cpp.o" "gcc" "src/sparse/CMakeFiles/sparts_sparse.dir/io.cpp.o.d"
  "/root/repo/src/sparse/permutation.cpp" "src/sparse/CMakeFiles/sparts_sparse.dir/permutation.cpp.o" "gcc" "src/sparse/CMakeFiles/sparts_sparse.dir/permutation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sparts_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
