file(REMOVE_RECURSE
  "CMakeFiles/sparts_sparse.dir/formats.cpp.o"
  "CMakeFiles/sparts_sparse.dir/formats.cpp.o.d"
  "CMakeFiles/sparts_sparse.dir/generators.cpp.o"
  "CMakeFiles/sparts_sparse.dir/generators.cpp.o.d"
  "CMakeFiles/sparts_sparse.dir/io.cpp.o"
  "CMakeFiles/sparts_sparse.dir/io.cpp.o.d"
  "CMakeFiles/sparts_sparse.dir/permutation.cpp.o"
  "CMakeFiles/sparts_sparse.dir/permutation.cpp.o.d"
  "libsparts_sparse.a"
  "libsparts_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
