file(REMOVE_RECURSE
  "libsparts_sparse.a"
)
