# Empty compiler generated dependencies file for sparts_sparse.
# This may be replaced when dependencies are built.
