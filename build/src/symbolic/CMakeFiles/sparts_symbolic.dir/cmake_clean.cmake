file(REMOVE_RECURSE
  "CMakeFiles/sparts_symbolic.dir/supernodes.cpp.o"
  "CMakeFiles/sparts_symbolic.dir/supernodes.cpp.o.d"
  "CMakeFiles/sparts_symbolic.dir/symbolic.cpp.o"
  "CMakeFiles/sparts_symbolic.dir/symbolic.cpp.o.d"
  "libsparts_symbolic.a"
  "libsparts_symbolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_symbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
