file(REMOVE_RECURSE
  "libsparts_symbolic.a"
)
