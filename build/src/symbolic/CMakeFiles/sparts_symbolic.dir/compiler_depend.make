# Empty compiler generated dependencies file for sparts_symbolic.
# This may be replaced when dependencies are built.
