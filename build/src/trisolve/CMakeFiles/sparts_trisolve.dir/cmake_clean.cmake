file(REMOVE_RECURSE
  "CMakeFiles/sparts_trisolve.dir/trisolve.cpp.o"
  "CMakeFiles/sparts_trisolve.dir/trisolve.cpp.o.d"
  "libsparts_trisolve.a"
  "libsparts_trisolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_trisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
