file(REMOVE_RECURSE
  "libsparts_trisolve.a"
)
