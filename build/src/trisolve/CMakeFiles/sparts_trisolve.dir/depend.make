# Empty dependencies file for sparts_trisolve.
# This may be replaced when dependencies are built.
