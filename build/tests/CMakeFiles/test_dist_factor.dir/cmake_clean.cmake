file(REMOVE_RECURSE
  "CMakeFiles/test_dist_factor.dir/test_dist_factor.cpp.o"
  "CMakeFiles/test_dist_factor.dir/test_dist_factor.cpp.o.d"
  "test_dist_factor"
  "test_dist_factor.pdb"
  "test_dist_factor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dist_factor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
