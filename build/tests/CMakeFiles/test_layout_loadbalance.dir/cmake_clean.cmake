file(REMOVE_RECURSE
  "CMakeFiles/test_layout_loadbalance.dir/test_layout_loadbalance.cpp.o"
  "CMakeFiles/test_layout_loadbalance.dir/test_layout_loadbalance.cpp.o.d"
  "test_layout_loadbalance"
  "test_layout_loadbalance.pdb"
  "test_layout_loadbalance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layout_loadbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
