# Empty dependencies file for test_layout_loadbalance.
# This may be replaced when dependencies are built.
