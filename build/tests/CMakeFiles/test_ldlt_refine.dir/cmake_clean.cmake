file(REMOVE_RECURSE
  "CMakeFiles/test_ldlt_refine.dir/test_ldlt_refine.cpp.o"
  "CMakeFiles/test_ldlt_refine.dir/test_ldlt_refine.cpp.o.d"
  "test_ldlt_refine"
  "test_ldlt_refine.pdb"
  "test_ldlt_refine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldlt_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
