# Empty compiler generated dependencies file for test_ldlt_refine.
# This may be replaced when dependencies are built.
