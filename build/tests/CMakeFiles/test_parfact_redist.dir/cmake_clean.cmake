file(REMOVE_RECURSE
  "CMakeFiles/test_parfact_redist.dir/test_parfact_redist.cpp.o"
  "CMakeFiles/test_parfact_redist.dir/test_parfact_redist.cpp.o.d"
  "test_parfact_redist"
  "test_parfact_redist.pdb"
  "test_parfact_redist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parfact_redist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
