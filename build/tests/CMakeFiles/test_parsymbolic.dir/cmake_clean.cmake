file(REMOVE_RECURSE
  "CMakeFiles/test_parsymbolic.dir/test_parsymbolic.cpp.o"
  "CMakeFiles/test_parsymbolic.dir/test_parsymbolic.cpp.o.d"
  "test_parsymbolic"
  "test_parsymbolic.pdb"
  "test_parsymbolic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parsymbolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
