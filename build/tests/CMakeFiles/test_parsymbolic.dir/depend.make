# Empty dependencies file for test_parsymbolic.
# This may be replaced when dependencies are built.
