file(REMOVE_RECURSE
  "CMakeFiles/test_partrisolve.dir/test_partrisolve.cpp.o"
  "CMakeFiles/test_partrisolve.dir/test_partrisolve.cpp.o.d"
  "test_partrisolve"
  "test_partrisolve.pdb"
  "test_partrisolve[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partrisolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
