# Empty compiler generated dependencies file for test_partrisolve.
# This may be replaced when dependencies are built.
