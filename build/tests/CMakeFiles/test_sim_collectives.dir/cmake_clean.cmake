file(REMOVE_RECURSE
  "CMakeFiles/test_sim_collectives.dir/test_sim_collectives.cpp.o"
  "CMakeFiles/test_sim_collectives.dir/test_sim_collectives.cpp.o.d"
  "test_sim_collectives"
  "test_sim_collectives.pdb"
  "test_sim_collectives[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
