file(REMOVE_RECURSE
  "CMakeFiles/test_sim_machine.dir/test_sim_machine.cpp.o"
  "CMakeFiles/test_sim_machine.dir/test_sim_machine.cpp.o.d"
  "test_sim_machine"
  "test_sim_machine.pdb"
  "test_sim_machine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
