file(REMOVE_RECURSE
  "CMakeFiles/test_solver_model.dir/test_solver_model.cpp.o"
  "CMakeFiles/test_solver_model.dir/test_solver_model.cpp.o.d"
  "test_solver_model"
  "test_solver_model.pdb"
  "test_solver_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_solver_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
