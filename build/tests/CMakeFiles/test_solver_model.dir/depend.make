# Empty dependencies file for test_solver_model.
# This may be replaced when dependencies are built.
