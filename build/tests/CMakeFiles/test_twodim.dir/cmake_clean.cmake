file(REMOVE_RECURSE
  "CMakeFiles/test_twodim.dir/test_twodim.cpp.o"
  "CMakeFiles/test_twodim.dir/test_twodim.cpp.o.d"
  "test_twodim"
  "test_twodim.pdb"
  "test_twodim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_twodim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
