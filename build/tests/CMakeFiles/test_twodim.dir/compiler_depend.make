# Empty compiler generated dependencies file for test_twodim.
# This may be replaced when dependencies are built.
