# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_smoke[1]_include.cmake")
include("/root/repo/build/tests/test_sim_machine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_partrisolve[1]_include.cmake")
include("/root/repo/build/tests/test_parfact_redist[1]_include.cmake")
include("/root/repo/build/tests/test_dense[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_ordering[1]_include.cmake")
include("/root/repo/build/tests/test_symbolic[1]_include.cmake")
include("/root/repo/build/tests/test_numeric[1]_include.cmake")
include("/root/repo/build/tests/test_solver_model[1]_include.cmake")
include("/root/repo/build/tests/test_ldlt_refine[1]_include.cmake")
include("/root/repo/build/tests/test_layout_loadbalance[1]_include.cmake")
include("/root/repo/build/tests/test_dist_factor[1]_include.cmake")
include("/root/repo/build/tests/test_twodim[1]_include.cmake")
include("/root/repo/build/tests/test_parsymbolic[1]_include.cmake")
