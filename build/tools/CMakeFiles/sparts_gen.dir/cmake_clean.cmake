file(REMOVE_RECURSE
  "CMakeFiles/sparts_gen.dir/sparts_gen.cpp.o"
  "CMakeFiles/sparts_gen.dir/sparts_gen.cpp.o.d"
  "sparts_gen"
  "sparts_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
