# Empty compiler generated dependencies file for sparts_gen.
# This may be replaced when dependencies are built.
