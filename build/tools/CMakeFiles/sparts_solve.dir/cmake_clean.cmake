file(REMOVE_RECURSE
  "CMakeFiles/sparts_solve.dir/sparts_solve.cpp.o"
  "CMakeFiles/sparts_solve.dir/sparts_solve.cpp.o.d"
  "sparts_solve"
  "sparts_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparts_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
