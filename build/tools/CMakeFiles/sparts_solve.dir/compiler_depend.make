# Empty compiler generated dependencies file for sparts_solve.
# This may be replaced when dependencies are built.
