# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_grid2d "/root/repo/build/tools/sparts_solve" "--grid2d" "12" "--nrhs" "2")
set_tests_properties(cli_grid2d PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_grid3d_parallel "/root/repo/build/tools/sparts_solve" "--grid3d" "6" "--procs" "8")
set_tests_properties(cli_grid3d_parallel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_refine "/root/repo/build/tools/sparts_solve" "--grid2d" "10" "--refine" "2" "--ordering" "md")
set_tests_properties(cli_refine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_amalgamate "/root/repo/build/tools/sparts_solve" "--grid2d" "14" "--amalgamate" "16,8")
set_tests_properties(cli_amalgamate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/sparts_solve" "--grid2d" "10" "--report")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_gen_and_solve "sh" "-c" "/root/repo/build/tools/sparts_gen --grid2d 9 --dof 2 -o /root/repo/build/tools/t.mtx && /root/repo/build/tools/sparts_solve --matrix /root/repo/build/tools/t.mtx --nrhs 2")
set_tests_properties(cli_gen_and_solve PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_args "/root/repo/build/tools/sparts_solve" "--bogus")
set_tests_properties(cli_bad_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;15;add_test;/root/repo/tools/CMakeLists.txt;0;")
