// E2 — a narrated walk through forward elimination on the paper's Figure 1
// example: what data each supernode gathers, computes, and passes to its
// parent (the dataflow of Figure 2).
//
// Build & run:  ./build/examples/elimination_tree_walkthrough
#include <iomanip>
#include <iostream>
#include <vector>

#include "dense/kernels.hpp"
#include "numeric/multifrontal.hpp"
#include "sparse/generators.hpp"
#include "symbolic/supernodes.hpp"
#include "trisolve/trisolve.hpp"

int main() {
  using namespace sparts;

  const sparse::SymmetricCsc a = sparse::figure1_matrix();
  const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const auto& part = l.partition();
  std::cout << "Figure 1 example: N = " << a.n() << ", "
            << part.num_supernodes() << " supernodes\n\n";

  // RHS = A * ones, so the solution of the forward+backward pair is ones.
  const index_t n = a.n();
  std::vector<real_t> ones(static_cast<std::size_t>(n), 1.0);
  std::vector<real_t> b(static_cast<std::size_t>(n), 0.0);
  a.symv(1.0, ones, b);
  std::vector<real_t> v = b;

  std::cout << std::fixed << std::setprecision(3);
  std::cout << "FORWARD ELIMINATION (leaves -> root), L y = b:\n";
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const index_t t = part.width(s);
    const index_t ns = part.height(s);
    const index_t j0 = part.first_col[static_cast<std::size_t>(s)];
    auto rows = part.row_indices(s);
    auto block = l.block(s);

    std::cout << "supernode " << s << " (cols " << j0 << ".." << j0 + t - 1
              << ", trapezoid " << ns << "x" << t << "): ";
    std::cout << "gather rhs entries {";
    for (index_t i = 0; i < t; ++i) {
      std::cout << (i ? ", " : "") << v[static_cast<std::size_t>(j0 + i)];
    }
    std::cout << "}, solve " << t << "x" << t << " triangle";

    dense::panel_trsm_lower(t, 1, block.data(), ns, v.data() + j0, n);
    const index_t below = ns - t;
    if (below > 0) {
      // temp = L21 * y1; subtract into the ancestor entries.
      std::vector<real_t> temp(static_cast<std::size_t>(below), 0.0);
      dense::panel_gemm(below, 1, t, 1.0, block.data() + t, ns,
                        v.data() + j0, n, temp.data(), below);
      std::cout << ", pass " << below << " updates up to rows {";
      for (index_t i = 0; i < below; ++i) {
        const index_t row = rows[static_cast<std::size_t>(t + i)];
        v[static_cast<std::size_t>(row)] -= temp[static_cast<std::size_t>(i)];
        std::cout << (i ? ", " : "") << row;
      }
      std::cout << "}";
    } else {
      std::cout << " (root: nothing to pass up)";
    }
    std::cout << "\n";
  }

  std::cout << "\nBACKWARD SUBSTITUTION (root -> leaves), L^T x = y:\n";
  trisolve::backward_solve(l, v.data(), 1);
  std::cout << "x = {";
  for (index_t i = 0; i < n; ++i) std::cout << (i ? ", " : "") << v[static_cast<std::size_t>(i)];
  std::cout << "}\n(expected all ones)\n";

  real_t err = 0.0;
  for (real_t x : v) err = std::max(err, std::abs(x - 1.0));
  std::cout << "max |x_i - 1| = " << std::scientific << err << "\n";
  return err < 1e-10 ? 0 : 1;
}
