// Factor caching: factor once, serialize to disk, reload in a later
// process, and keep solving — the paper's amortization argument extended
// across program runs.
//
// Build & run:  ./build/examples/factor_cache
#include <cstdio>
#include <iostream>
#include <vector>

#include "common/timer.hpp"
#include "numeric/factor_io.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"

int main() {
  using namespace sparts;
  const char* cache_path = "factor_cache.sparts";

  const index_t k = 40;
  const sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  std::cout << "matrix: grid2d " << k << "x" << k << " (N = " << a.n()
            << ")\n";

  // --- "First run": factor and cache. ---
  WallTimer timer;
  {
    const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
    numeric::write_factor(l, cache_path);
    std::cout << "factored and cached in " << timer.seconds() << " s ("
              << l.factor_nnz() << " nonzeros)\n";
  }

  // --- "Later run": load and solve without re-factoring. ---
  timer.reset();
  const numeric::SupernodalFactor l = numeric::read_factor(cache_path);
  std::cout << "loaded factor in " << timer.seconds() << " s\n";

  const index_t m = 3;
  Rng rng(99);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
  std::vector<real_t> x = b;
  timer.reset();
  trisolve::full_solve(l, x.data(), m);
  const real_t resid = trisolve::relative_residual(a, x, b, m);
  std::cout << "solved " << m << " right-hand sides in " << timer.seconds()
            << " s, residual " << resid << "\n";

  std::remove(cache_path);
  return resid < 1e-10 ? 0 : 1;
}
