// Ordering study on a 2-D finite-element problem: how the fill-reducing
// ordering changes nnz(L), factorization flops, and solve time — the
// reason the paper assumes nested dissection.
//
// Build & run:  ./build/examples/poisson2d_orderings
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "common/timer.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "trisolve/trisolve.hpp"

int main() {
  using namespace sparts;

  const index_t k = 60;
  const sparse::SymmetricCsc a = sparse::grid2d(k, k, /*stencil=*/9);
  std::cout << "2-D FEM-style problem: " << k << "x" << k
            << " 9-point stencil, N = " << a.n() << "\n\n";

  TextTable table({"ordering", "nnz(L)", "factor flops", "factor time (s)",
                   "solve time (ms)", "residual"});

  struct Entry {
    const char* name;
    solver::OrderingMethod method;
  };
  const Entry entries[] = {
      {"natural", solver::OrderingMethod::natural},
      {"RCM", solver::OrderingMethod::rcm},
      {"minimum degree", solver::OrderingMethod::minimum_degree},
      {"nested dissection", solver::OrderingMethod::nested_dissection},
  };

  Rng rng(3);
  const index_t m = 1;
  const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);

  for (const Entry& e : entries) {
    solver::Options opt;
    opt.ordering = e.method;
    WallTimer timer;
    const solver::SparseSolver s = solver::SparseSolver::factorize(a, opt);
    const double factor_seconds = timer.seconds();

    timer.reset();
    const std::vector<real_t> x = s.solve(b, m);
    const double solve_seconds = timer.seconds();

    table.new_row();
    table.add(e.name);
    table.add(static_cast<long long>(s.info().factor_nnz));
    table.add(format_si(static_cast<double>(s.info().factor_flops)));
    table.add(factor_seconds, 3);
    table.add(solve_seconds * 1e3, 2);
    table.add(trisolve::relative_residual(a, x, b, m), 2);
  }
  std::cout << table;
  std::cout << "\nNested dissection gives the least fill and — crucially "
               "for the paper — a balanced\nelimination tree, which is what "
               "makes subtree-to-subcube parallelism effective.\n";
  return 0;
}
