// Quickstart: solve a sparse SPD system end to end with the sequential
// solver facade.
//
//   1. build (or load) a symmetric positive definite matrix,
//   2. factorize (ordering + symbolic + numeric),
//   3. solve for one or more right-hand sides,
//   4. check the residual.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <vector>

#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "trisolve/trisolve.hpp"

int main() {
  using namespace sparts;

  // A 2-D Poisson problem on a 50x50 grid (N = 2500).
  const sparse::SymmetricCsc a = sparse::grid2d(50, 50);
  std::cout << "matrix: N = " << a.n() << ", nnz(lower) = " << a.nnz_lower()
            << "\n";

  // Factorize with nested-dissection ordering (the default).
  const solver::SparseSolver s = solver::SparseSolver::factorize(a);
  std::cout << "factor: nnz(L) = " << s.info().factor_nnz
            << ", factorization flops = " << s.info().factor_flops
            << ", supernodes = " << s.info().num_supernodes << "\n";

  // Solve A X = B for 4 right-hand sides at once.
  const index_t m = 4;
  Rng rng(7);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
  const std::vector<real_t> x = s.solve(b, m);

  const real_t residual = trisolve::relative_residual(a, x, b, m);
  std::cout << "relative residual over " << m << " right-hand sides: "
            << residual << "\n";
  return residual < 1e-10 ? 0 : 1;
}
