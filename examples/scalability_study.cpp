// Scalability study: speedup and efficiency of the distributed triangular
// solvers as the simulated machine grows, exactly the experiment a user
// would run before sizing a production deployment.
//
// Build & run:  ./build/examples/scalability_study
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"
#include "simpar/machine.hpp"

int main() {
  using namespace sparts;

  const index_t kx = 80, ky = 80;
  const sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(kx, ky), ordering::nested_dissection_grid2d(kx, ky));
  const numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  std::cout << "grid2d " << kx << "x" << ky << " (N = " << a.n()
            << "), nnz(L) = " << l.factor_nnz() << "\n\n";

  const index_t m = 1;
  Rng rng(5);
  const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);

  TextTable table({"p", "FBsolve time (s)", "speedup", "efficiency",
                   "MFLOPS", "messages"});
  double t1 = 0.0;
  for (index_t p = 1; p <= 64; p *= 2) {
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(l.partition(), p);
    partrisolve::DistributedTrisolver solver(l, map, {});
    simpar::Machine::Config cfg;
    cfg.nprocs = p;
    cfg.cost = simpar::CostModel::t3d();
    simpar::Machine machine(cfg);
    std::vector<real_t> x(b.size(), 0.0);
    auto [fw, bw] = solver.solve(machine, b, x, m);
    const double t = fw.time() + bw.time();
    if (p == 1) t1 = t;
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(t, 4);
    table.add(t1 / t, 2);
    table.add(t1 / (static_cast<double>(p) * t), 3);
    table.add(static_cast<double>(4 * l.factor_nnz() * m) / t / 1e6, 1);
    table.add(static_cast<long long>(fw.stats.total_messages() +
                                     bw.stats.total_messages()));
  }
  std::cout << table;
  std::cout << "\nSpeedup grows but efficiency decays — the O(p^2) "
               "isoefficiency of triangular solves.\nGrow the problem like "
               "W ~ p^2 to hold efficiency (see bench_isoefficiency).\n";
  return 0;
}
