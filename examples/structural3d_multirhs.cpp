// A 3-D structural-analysis scenario: one stiffness matrix, many load
// cases — the setting where the paper's parallel triangular solvers pay
// off.  Runs the full distributed pipeline (2-D-partitioned factorization,
// redistribution, pipelined solves) on the simulated machine and shows the
// amortization across right-hand sides.
//
// Build & run:  ./build/examples/structural3d_multirhs
#include <iostream>
#include <vector>

#include "common/table.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"
#include "trisolve/trisolve.hpp"

int main() {
  using namespace sparts;

  // A 14^3 hexahedral mesh (N = 2744) standing in for a component model.
  const index_t k = 14;
  const sparse::SymmetricCsc a = sparse::grid3d(k, k, k);
  const index_t p = 16;
  std::cout << "3-D mesh " << k << "^3 (N = " << a.n() << "), " << p
            << " simulated processors\n\n";

  TextTable table({"load cases (NRHS)", "factor (s)", "redistribute (s)",
                   "fw+bw solve (s)", "total (s)", "solve share",
                   "residual"});
  for (index_t m : {1, 8, 32}) {
    Rng rng(11);
    const std::vector<real_t> b = sparse::random_rhs(a.n(), m, rng);
    const solver::ParallelSolveResult r = solver::parallel_solve(a, b, m, p);
    const double total = r.factor_time + r.redist_time + r.solve_time();
    table.new_row();
    table.add(static_cast<long long>(m));
    table.add(r.factor_time, 4);
    table.add(r.redist_time, 4);
    table.add(r.solve_time(), 4);
    table.add(total, 4);
    table.add(format_fixed(100.0 * r.solve_time() / total, 1) + "%");
    table.add(trisolve::relative_residual(a, r.x, b, m), 2);
  }
  std::cout << table;
  std::cout << "\nFactorization and redistribution are one-time costs; the "
               "triangular solves are what\nrepeats per load case — which "
               "is why the paper parallelizes them even though they\nare "
               "less scalable than factorization.\n";
  return 0;
}
