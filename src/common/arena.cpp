#include "common/arena.hpp"

#include <sys/mman.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/checks.hpp"

// ASan cannot poison or track arena-recycled memory, so use-after-free in
// payload buffers would become invisible.  Force the plain-heap path (the
// tagged header keeps the code path shape identical).
#if defined(__SANITIZE_ADDRESS__)
#define SPARTS_ARENA_FORCED_OFF 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPARTS_ARENA_FORCED_OFF 1
#endif
#endif

namespace sparts::common {

namespace {

// ---------------------------------------------------------------------------
// Block headers
// ---------------------------------------------------------------------------

constexpr std::uint32_t kMagicChunk = 0x5Aa11001;  ///< size-class block
constexpr std::uint32_t kMagicHeap = 0x5Aa11002;   ///< operator new block
constexpr std::uint32_t kMagicBig = 0x5Aa11003;    ///< dedicated mmap

/// 64 bytes so chunk-backed payloads stay cache-line aligned.
struct alignas(64) BlockHeader {
  std::uint32_t magic = 0;
  std::uint32_t size_class = 0;  ///< kMagicChunk only
  std::uint64_t payload_bytes = 0;
  std::uint64_t mapped_bytes = 0;  ///< kMagicBig only: munmap length
  /// Freelist link while the block is free (the payload itself may not be
  /// written to: a stale reader could still hold the pointer only in
  /// buggy code, but keeping links out of payload also helps debugging).
  void* next_free = nullptr;
};
static_assert(sizeof(BlockHeader) == 64);

constexpr std::size_t kHeaderBytes = sizeof(BlockHeader);

BlockHeader* header_of(void* payload) {
  return reinterpret_cast<BlockHeader*>(static_cast<std::byte*>(payload) -
                                        kHeaderBytes);
}
void* payload_of(BlockHeader* h) {
  return reinterpret_cast<std::byte*>(h) + kHeaderBytes;
}

// ---------------------------------------------------------------------------
// Size classes: 64 B << c, c in [0, kNumClasses)
// ---------------------------------------------------------------------------

constexpr std::size_t kMinClassBytes = 64;
constexpr std::size_t kNumClasses = 15;  ///< 64 B .. 1 MiB
constexpr std::size_t kMaxClassBytes = kMinClassBytes << (kNumClasses - 1);
constexpr std::size_t kChunkBytes = std::size_t{8} << 20;

std::size_t class_of(std::size_t bytes) {
  std::size_t c = 0;
  std::size_t sz = kMinClassBytes;
  while (sz < bytes) {
    sz <<= 1U;
    ++c;
  }
  return c;
}
std::size_t class_bytes(std::size_t c) { return kMinClassBytes << c; }

// ---------------------------------------------------------------------------
// Global state (leaked singleton: payloads may be freed during static
// destruction, so this must outlive everything)
// ---------------------------------------------------------------------------

struct Span {
  std::byte* cur = nullptr;
  std::byte* end = nullptr;
  std::size_t left() const { return static_cast<std::size_t>(end - cur); }
};

struct FreeList {
  BlockHeader* head = nullptr;
  BlockHeader* tail = nullptr;
  std::size_t count = 0;

  void push(BlockHeader* h) {
    h->next_free = head;
    head = h;
    if (tail == nullptr) tail = h;
    ++count;
  }
  BlockHeader* pop() {
    BlockHeader* h = head;
    if (h != nullptr) {
      head = static_cast<BlockHeader*>(h->next_free);
      if (head == nullptr) tail = nullptr;
      --count;
    }
    return h;
  }
  /// Splice `other` in front of this list; `other` is emptied.
  void splice(FreeList& other) {
    if (other.head == nullptr) return;
    other.tail->next_free = head;
    if (head == nullptr) tail = other.tail;
    head = other.head;
    count += other.count;
    other.head = other.tail = nullptr;
    other.count = 0;
  }
};

struct Global {
  std::mutex mutex;
  FreeList free_lists[kNumClasses];
  std::vector<Span> partial_chunks;  ///< donated bump-space remainders

  std::atomic<std::size_t> chunks{0};
  std::atomic<std::size_t> chunk_bytes{0};
  std::atomic<std::size_t> huge_chunks{0};
  std::atomic<std::size_t> live_bytes{0};
  std::atomic<std::size_t> total_allocs{0};
  std::atomic<std::size_t> heap_fallbacks{0};
};

Global& global() {
  // Leaked on purpose; see the class comment.
  static Global* g = new Global;  // sparts-lint: allow(naked-new)
  return *g;
}

bool env_flag(const char* name, bool dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0 ||
           std::strcmp(v, "false") == 0);
}

std::atomic<int> g_forced_mode{-1};  ///< -1 env, 0 off, 1 on

bool hugepages_enabled() {
  static const bool on = env_flag("SPARTS_HUGEPAGES", false);
  return on;
}

bool numa_local_enabled() {
  static const bool on = env_flag("SPARTS_NUMA", true);
  return on;
}

/// Map a fresh chunk (never unmapped).  Returns empty span on failure.
Span map_chunk(std::size_t bytes) {
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return {};
  Global& g = global();
  if (hugepages_enabled()) {
#ifdef MADV_HUGEPAGE
    if (::madvise(p, bytes, MADV_HUGEPAGE) == 0) {
      g.huge_chunks.fetch_add(1, std::memory_order_relaxed);
    }
#endif
  }
  g.chunks.fetch_add(1, std::memory_order_relaxed);
  g.chunk_bytes.fetch_add(bytes, std::memory_order_relaxed);
  return Span{static_cast<std::byte*>(p), static_cast<std::byte*>(p) + bytes};
}

// ---------------------------------------------------------------------------
// Thread cache
// ---------------------------------------------------------------------------

struct ThreadCache {
  Span chunk;
  FreeList free_lists[kNumClasses];
  bool alive = true;

  ~ThreadCache() {
    // Donate everything so per-run rank threads don't strand memory.
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    for (std::size_t c = 0; c < kNumClasses; ++c) {
      g.free_lists[c].splice(free_lists[c]);
    }
    if (chunk.left() >= kHeaderBytes + kMinClassBytes) {
      g.partial_chunks.push_back(chunk);
    }
    chunk = {};
    alive = false;
  }
};

/// The cache, plus a destruction flag readable after the dtor ran (the
/// object memory persists; `alive` flips false).  A rank thread's payload
/// can be freed by the main thread during static destruction, after the
/// main thread's own cache died — route those to the global lists.
ThreadCache* thread_cache() {
  thread_local ThreadCache cache;
  return &cache;
}

BlockHeader* carve_from(Span& span, std::size_t c) {
  const std::size_t need = kHeaderBytes + class_bytes(c);
  if (span.left() < need) return nullptr;
  auto* h = reinterpret_cast<BlockHeader*>(span.cur);
  span.cur += need;
  h->magic = kMagicChunk;
  h->size_class = static_cast<std::uint32_t>(c);
  h->next_free = nullptr;
  return h;
}

/// Slow path: refill from the global pool or a fresh chunk.  Returns
/// nullptr if mmap fails (caller falls back to the heap).
BlockHeader* alloc_class_global(std::size_t c) {
  Global& g = global();
  std::lock_guard<std::mutex> lock(g.mutex);
  if (BlockHeader* h = g.free_lists[c].pop(); h != nullptr) return h;
  for (auto& span : g.partial_chunks) {
    if (BlockHeader* h = carve_from(span, c); h != nullptr) return h;
  }
  Span fresh = map_chunk(kChunkBytes);
  if (fresh.cur == nullptr) return nullptr;
  BlockHeader* h = carve_from(fresh, c);
  g.partial_chunks.push_back(fresh);
  return h;
}

BlockHeader* alloc_class(std::size_t c) {
  if (!numa_local_enabled()) return alloc_class_global(c);
  ThreadCache* tc = thread_cache();
  if (!tc->alive) return alloc_class_global(c);
  if (BlockHeader* h = tc->free_lists[c].pop(); h != nullptr) return h;
  if (BlockHeader* h = carve_from(tc->chunk, c); h != nullptr) return h;
  // Retire the remainder (usable by smaller classes) and start a fresh
  // chunk mapped — and thus first-touched — by this thread.
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mutex);
    if (BlockHeader* h = g.free_lists[c].pop(); h != nullptr) return h;
    if (tc->chunk.left() >= kHeaderBytes + kMinClassBytes) {
      g.partial_chunks.push_back(tc->chunk);
      tc->chunk = {};
    }
  }
  Span fresh = map_chunk(kChunkBytes);
  if (fresh.cur == nullptr) return nullptr;
  tc->chunk = fresh;
  return carve_from(tc->chunk, c);
}

void* alloc_heap(std::size_t bytes) {
  Global& g = global();
  g.heap_fallbacks.fetch_add(1, std::memory_order_relaxed);
  // Raw operator new: the block needs a header the smart-pointer idiom
  // cannot prepend.
  auto* h = static_cast<BlockHeader*>(
      ::operator new(kHeaderBytes + bytes));  // sparts-lint: allow(naked-new)
  h->magic = kMagicHeap;
  h->size_class = 0;
  h->payload_bytes = bytes;
  h->next_free = nullptr;
  return payload_of(h);
}

void* alloc_big(std::size_t bytes) {
  const std::size_t total = kHeaderBytes + bytes;
  const std::size_t page = std::size_t{1} << 21U;  // round to 2 MiB
  const std::size_t mapped = (total + page - 1) / page * page;
  void* p = ::mmap(nullptr, mapped, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) return alloc_heap(bytes);
  if (hugepages_enabled()) {
#ifdef MADV_HUGEPAGE
    ::madvise(p, mapped, MADV_HUGEPAGE);
#endif
  }
  auto* h = static_cast<BlockHeader*>(p);
  h->magic = kMagicBig;
  h->size_class = 0;
  h->payload_bytes = bytes;
  h->mapped_bytes = mapped;
  h->next_free = nullptr;
  return payload_of(h);
}

}  // namespace

bool arena_enabled() {
#ifdef SPARTS_ARENA_FORCED_OFF
  return false;
#else
  const int forced = g_forced_mode.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool on = env_flag("SPARTS_ARENA", true);
  return on;
#endif
}

bool arena_hugepages() { return hugepages_enabled(); }
bool arena_numa_local() { return numa_local_enabled(); }

void arena_force_enabled_for_test(bool on) {
  g_forced_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

void* arena_alloc(std::size_t bytes) {
  Global& g = global();
  g.total_allocs.fetch_add(1, std::memory_order_relaxed);
  g.live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (bytes == 0) bytes = 1;
  if (!arena_enabled()) return alloc_heap(bytes);
  if (bytes > kMaxClassBytes) return alloc_big(bytes);
  const std::size_t c = class_of(bytes);
  BlockHeader* h = alloc_class(c);
  if (h == nullptr) return alloc_heap(bytes);  // mmap exhausted
  h->payload_bytes = bytes;
  return payload_of(h);
}

void arena_free(void* p) noexcept {
  if (p == nullptr) return;
  BlockHeader* h = header_of(p);
  Global& g = global();
  g.live_bytes.fetch_sub(h->payload_bytes, std::memory_order_relaxed);
  switch (h->magic) {
    case kMagicHeap:
      ::operator delete(h);
      return;
    case kMagicBig:
      ::munmap(h, h->mapped_bytes);
      return;
    case kMagicChunk: {
      const std::size_t c = h->size_class;
      if (numa_local_enabled()) {
        ThreadCache* tc = thread_cache();
        if (tc->alive) {
          tc->free_lists[c].push(h);
          return;
        }
      }
      std::lock_guard<std::mutex> lock(g.mutex);
      g.free_lists[c].push(h);
      return;
    }
    default:
      SPARTS_CHECK(false, "arena_free: corrupt or foreign block header");
  }
}

ArenaStats arena_stats() {
  Global& g = global();
  ArenaStats s;
  s.chunks = g.chunks.load(std::memory_order_relaxed);
  s.chunk_bytes = g.chunk_bytes.load(std::memory_order_relaxed);
  s.huge_chunks = g.huge_chunks.load(std::memory_order_relaxed);
  s.live_bytes = g.live_bytes.load(std::memory_order_relaxed);
  s.total_allocs = g.total_allocs.load(std::memory_order_relaxed);
  s.heap_fallbacks = g.heap_fallbacks.load(std::memory_order_relaxed);
  return s;
}

}  // namespace sparts::common
