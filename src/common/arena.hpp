// NUMA-aware arena allocator for the hot buffers of the solve pipeline:
// message payloads, rank-local factor panels, and the solvers' RHS
// staging buffers (see docs/memory.md).
//
// Design (tcmalloc-shaped, deliberately small):
//   * Memory comes from large mmap'd chunks.  Each thread bump-allocates
//     from a private chunk and caches freed blocks in private per-size-
//     class freelists, so on a NUMA machine first-touch places a panel on
//     the node of the thread that allocated (and will consume) it, and
//     the steady-state alloc/free path takes no lock.
//   * Every block — arena or plain-heap — carries a 64-byte tagged header,
//     so allocation policy can change at any time (tests toggle it, the
//     env knob latches it) and arena_free() always routes a pointer back
//     to the policy that produced it.
//   * When a thread exits, its chunk remainder and freelists are donated
//     to a global pool under a mutex; new threads refill from that pool
//     before mapping fresh chunks, which bounds the footprint of backends
//     that spawn fresh rank threads per run.  Chunks are never unmapped:
//     a payload allocated by a rank thread may outlive the thread (moved
//     into the caller's result), so chunk memory must stay valid for the
//     process lifetime.
//   * Blocks larger than the largest size class get a dedicated mmap that
//     IS unmapped on free (nothing else lives in it).
//
// Knobs (read once, at first allocation):
//   SPARTS_ARENA=off      plain operator new/delete behind the same header
//                         (default: on; forced off under AddressSanitizer,
//                         which cannot poison arena memory).
//   SPARTS_HUGEPAGES=on   madvise(MADV_HUGEPAGE) every chunk (default: off).
//   SPARTS_NUMA=off       disable the per-thread caches: all allocation
//                         goes through the shared pool under the mutex
//                         (default: local = per-thread first-touch arenas).
//
// The allocator-injection idiom (a stateless std allocator delegating to
// the arena, so containers opt in per-type alias) follows dphim's
// pmem_allocator.hpp.
#pragma once

#include <cstddef>
#include <vector>

namespace sparts::common {

/// Arena-wide counters (approximate: updated with relaxed atomics).
struct ArenaStats {
  std::size_t chunks = 0;           ///< chunks ever mapped
  std::size_t chunk_bytes = 0;      ///< bytes in those chunks
  std::size_t huge_chunks = 0;      ///< chunks with MADV_HUGEPAGE applied
  std::size_t live_bytes = 0;       ///< payload bytes currently allocated
  std::size_t total_allocs = 0;     ///< arena_alloc calls ever
  std::size_t heap_fallbacks = 0;   ///< allocs served by operator new
};

/// Whether arena allocation is active (latched from SPARTS_ARENA on first
/// use; always false under AddressSanitizer).
bool arena_enabled();
/// Whether chunks are madvise'd to huge pages (SPARTS_HUGEPAGES).
bool arena_hugepages();
/// Whether per-thread caches are active (SPARTS_NUMA != off).
bool arena_numa_local();

/// Allocate `bytes` (payload is at least 16-byte aligned, 64-byte aligned
/// when chunk-backed).  Never returns nullptr (throws std::bad_alloc).
void* arena_alloc(std::size_t bytes);
/// Release a block from arena_alloc.  Safe from any thread, including
/// after the allocating thread exited.  nullptr is ignored.
void arena_free(void* p) noexcept;

ArenaStats arena_stats();

/// Test hook: override the SPARTS_ARENA decision.  Safe at any time —
/// blocks remember how they were allocated — but not thread-safe against
/// concurrent first use; call from a quiescent test body only.
void arena_force_enabled_for_test(bool on);

/// Stateless std allocator delegating to the arena.  Containers opt in
/// via alias, e.g. exec::Payload and partrisolve's factor blocks.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() noexcept = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) noexcept {}  // NOLINT(implicit)

  T* allocate(std::size_t n) {
    return static_cast<T*>(arena_alloc(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t /*n*/) noexcept { arena_free(p); }

  friend bool operator==(const ArenaAllocator&, const ArenaAllocator&) {
    return true;
  }
  friend bool operator!=(const ArenaAllocator&, const ArenaAllocator&) {
    return false;
  }
};

/// The standard arena-backed container alias.
template <typename T>
using ArenaVector = std::vector<T, ArenaAllocator<T>>;

}  // namespace sparts::common
