#include "common/checks.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace sparts {

namespace {

#ifndef SPARTS_CHECKS_DEFAULT_LEVEL
#define SPARTS_CHECKS_DEFAULT_LEVEL 1
#endif

/// -1 = not resolved yet; otherwise a CheckLevel value.
std::atomic<int> g_level{-1};

CheckLevel resolve_from_environment() {
  const char* env = std::getenv("SPARTS_CHECKS");
  if (env != nullptr && env[0] != '\0') {
    return parse_check_level(env);
  }
  return static_cast<CheckLevel>(SPARTS_CHECKS_DEFAULT_LEVEL);
}

}  // namespace

CheckLevel parse_check_level(const std::string& name) {
  if (name == "off" || name == "0" || name == "none") return CheckLevel::off;
  if (name == "cheap" || name == "1") return CheckLevel::cheap;
  if (name == "expensive" || name == "2" || name == "full") {
    return CheckLevel::expensive;
  }
  throw InvalidArgument("unknown check level '" + name +
                        "' (expected off, cheap, or expensive)");
}

const char* to_string(CheckLevel level) {
  switch (level) {
    case CheckLevel::off:
      return "off";
    case CheckLevel::cheap:
      return "cheap";
    case CheckLevel::expensive:
      return "expensive";
  }
  return "unknown";
}

CheckLevel check_level() {
  int v = g_level.load(std::memory_order_acquire);
  if (v < 0) {
    v = static_cast<int>(resolve_from_environment());
    int expected = -1;
    // First resolver wins; a concurrent set_check_level keeps its value.
    g_level.compare_exchange_strong(expected, v, std::memory_order_acq_rel);
    v = g_level.load(std::memory_order_acquire);
  }
  return static_cast<CheckLevel>(v);
}

void set_check_level(CheckLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_release);
}

}  // namespace sparts
