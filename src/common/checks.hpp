// Leveled structural-invariant checking (the SPARTS_CHECKS system).
//
// SPARTS_CHECK / SPARTS_DCHECK (common/error.hpp) guard local, O(1)
// preconditions.  The validators spread through the solver stack (CSC
// sortedness, permutation bijectivity, etree acyclicity, supernode
// contiguity, block-cyclic ownership, ...) can cost as much as the
// computation they protect, so they are gated behind a runtime level:
//
//   off        no structural validation (benchmark mode)
//   cheap      O(n)-ish validation at module entry points   [default]
//   expensive  full validation, including O(nnz)/O(n log n) passes and
//              re-validation of intermediate results
//
// The level is chosen, in order of precedence:
//   1. set_check_level() (tests),
//   2. the SPARTS_CHECKS environment variable ("off"|"cheap"|"expensive"
//      or "0"|"1"|"2"),
//   3. the compile-time default from the SPARTS_CHECKS CMake option
//      (macro SPARTS_CHECKS_DEFAULT_LEVEL, 1 = cheap when unset).
//
// Usage:
//   if (checks_at_least(CheckLevel::cheap)) validate_csc(...);
//   SPARTS_VALIDATE_CHEAP(validate_etree(tree));
//
// Validators themselves always throw sparts::Error with a message naming
// the violated invariant (a bracketed [invariant-name] tag); the level
// only decides whether they run.
#pragma once

#include "common/error.hpp"

namespace sparts {

enum class CheckLevel : int {
  off = 0,
  cheap = 1,
  expensive = 2,
};

/// The active validation level (cached after the first query).
CheckLevel check_level();

/// Override the level at runtime (tests / tools).  Passing the current
/// level is fine; the override wins over the environment.
void set_check_level(CheckLevel level);

/// True when the active level is `level` or stricter.
inline bool checks_at_least(CheckLevel level) {
  return static_cast<int>(check_level()) >= static_cast<int>(level);
}

/// Parse "off"/"cheap"/"expensive" (or "0"/"1"/"2"); throws
/// InvalidArgument on anything else.
CheckLevel parse_check_level(const std::string& name);

/// Printable name of a level.
const char* to_string(CheckLevel level);

}  // namespace sparts

/// Run a validator expression only at the given level or stricter.
#define SPARTS_VALIDATE_CHEAP(expr)                                   \
  do {                                                                \
    if (::sparts::checks_at_least(::sparts::CheckLevel::cheap)) {     \
      expr;                                                           \
    }                                                                 \
  } while (0)

#define SPARTS_VALIDATE_EXPENSIVE(expr)                               \
  do {                                                                \
    if (::sparts::checks_at_least(::sparts::CheckLevel::expensive)) { \
      expr;                                                           \
    }                                                                 \
  } while (0)
