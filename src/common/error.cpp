#include "common/error.hpp"

#include <sstream>

namespace sparts::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream oss;
  oss << "SPARTS_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw Error(oss.str());
}

}  // namespace sparts::detail
