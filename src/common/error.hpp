// Error handling: SPARTS reports precondition violations and runtime
// failures through exceptions carrying formatted messages.
//
// SPARTS_CHECK(cond, msg...)   -- always-on invariant check (throws).
// SPARTS_DCHECK(cond)          -- debug-only assert (compiled out in NDEBUG).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sparts {

/// Base class of all SPARTS exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Numerical failure (e.g. non-positive pivot in Cholesky).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Malformed input file.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// The simulated machine deadlocked (every rank blocked in recv).
class DeadlockError : public Error {
 public:
  explicit DeadlockError(const std::string& what) : Error(what) {}
};

/// A bounded wait gave up: the reliability envelope (exec/reliable.hpp)
/// exhausted its retransmit budget, or a deadline-based abort fired.
/// Carries the per-rank progress report composed by the envelope.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// Thrown by exec::FaultyBackend when a FaultPlan crash event fires on a
/// rank — models a rank dying mid-run so shutdown paths can be tested.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& what) : Error(what) {}
};

/// The checked execution backend (exec::CheckedBackend) finished a run
/// with correctness findings — wildcard-receive races, tag collisions,
/// orphaned sends, or deadlock wait-for cycles — and was configured to
/// fail on them.
class AnalysisError : public Error {
 public:
  explicit AnalysisError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace sparts

#define SPARTS_CHECK(cond, ...)                                         \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::std::ostringstream sparts_check_oss_;                           \
      sparts_check_oss_ << "" __VA_ARGS__;                              \
      ::sparts::detail::throw_check_failure(#cond, __FILE__, __LINE__,  \
                                            sparts_check_oss_.str());   \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define SPARTS_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define SPARTS_DCHECK(cond) SPARTS_CHECK(cond)
#endif
