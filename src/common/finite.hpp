// Cheap NaN/Inf screening for the numeric hot paths.
//
// A single non-finite value produced (or received) during factorization
// or triangular solution silently poisons every downstream entry; with
// message loss in the picture it can also masquerade as a protocol bug.
// check_finite() turns it into an immediate NumericalError naming the
// producer.  The `_cheap` form is gated on SPARTS_CHECKS >= cheap, which
// is the default level; benchmark runs (SPARTS_CHECKS=off) skip the scan.
#pragma once

#include <cmath>
#include <span>
#include <string>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts {

/// Throw NumericalError if any entry of `values` is NaN or infinite.
/// `what` names the data ("fw token", "extend-add payload"); `id` is a
/// context index (supernode, panel) included in the message.
inline void check_finite(std::span<const real_t> values, const char* what,
                         index_t id) {
  for (std::size_t z = 0; z < values.size(); ++z) {
    if (!std::isfinite(values[z])) {
      throw NumericalError(std::string(what) + ": non-finite value at entry " +
                           std::to_string(z) + " (context " +
                           std::to_string(id) + ")");
    }
  }
}

/// check_finite() gated on the cheap validation level.
inline void check_finite_cheap(std::span<const real_t> values,
                               const char* what, index_t id) {
  if (checks_at_least(CheckLevel::cheap)) check_finite(values, what, id);
}

}  // namespace sparts
