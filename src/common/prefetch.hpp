// Software prefetch helpers for the pipelined trapezoid walks.
//
// The solvers walk a rank's block rows in a fixed cyclic order, so the
// address of the next panel is known one GEMM ahead of its use — long
// enough to hide a trip to DRAM, short enough that the lines survive in
// L2.  These wrap __builtin_prefetch so call sites stay portable (the
// hint compiles away entirely on compilers without it).
#pragma once

#include <cstddef>

namespace sparts::common {

/// Read-prefetch one cache line, high temporal locality.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Read-prefetch the leading cache lines of a buffer, capped so a huge
/// panel cannot flush the cache it is trying to warm.  4 KiB is about one
/// panel column — enough to cover the first micro-panel packs of the next
/// GEMM while its tail streams in behind them.
inline void prefetch_panel(const void* p, std::size_t bytes) {
  constexpr std::size_t kLine = 64;
  constexpr std::size_t kCap = 4096;
  if (bytes > kCap) bytes = kCap;
  const char* c = static_cast<const char*>(p);
  for (std::size_t off = 0; off < bytes; off += kLine) prefetch_read(c + off);
}

}  // namespace sparts::common
