#include "common/rng.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace sparts {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  SPARTS_CHECK(n > 0, "next_below requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::normal() {
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 1e-300) u1 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::split() { return Rng(next_u64() ^ 0xabcdef0123456789ULL); }

}  // namespace sparts
