// Deterministic random number generation.
//
// Every randomized workload in tests and benchmarks draws from Rng seeded
// explicitly, so all experiments are exactly reproducible run-to-run.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace sparts {

/// Small, fast, splittable PRNG (xoshiro256**).  Not cryptographic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Uniform in [0, 2^64).
  std::uint64_t next_u64();

  /// Uniform in [0, n).  n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Uniform real in [0, 1).
  double next_double();

  /// Uniform real in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller.
  double normal();

  /// An independent generator split off from this one.
  Rng split();

  /// Fisher-Yates shuffle of v.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace sparts
