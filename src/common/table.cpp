#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace sparts {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SPARTS_CHECK(!headers_.empty(), "table needs at least one column");
}

void TextTable::new_row() { rows_.emplace_back(); }

void TextTable::add(std::string cell) {
  SPARTS_CHECK(!rows_.empty(), "call new_row() before add()");
  SPARTS_CHECK(rows_.back().size() < headers_.size(),
               "row has more cells than headers");
  rows_.back().push_back(std::move(cell));
}

void TextTable::add(double v, int precision) {
  add(format_fixed(v, precision));
}

void TextTable::add(long long v) { add(std::to_string(v)); }

void TextTable::add_rule() { rules_.push_back(rows_.size()); }

std::string TextTable::str() const {
  const std::size_t ncols = headers_.size();
  std::vector<std::size_t> width(ncols);
  for (std::size_t c = 0; c < ncols; ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      oss << std::setw(static_cast<int>(width[c])) << cell;
      if (c + 1 < ncols) oss << "  ";
    }
    oss << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < ncols; ++c) {
      oss << std::string(width[c], '-');
      if (c + 1 < ncols) oss << "--";
    }
    oss << '\n';
  };

  emit_row(headers_);
  emit_rule();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    emit_row(rows_[r]);
    if (std::find(rules_.begin(), rules_.end(), r + 1) != rules_.end()) {
      emit_rule();
    }
  }
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.str();
}

std::string format_fixed(double v, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << v;
  return oss.str();
}

std::string format_si(double v) {
  const char* suffix = "";
  double scaled = v;
  if (std::abs(v) >= 1e9) {
    scaled = v / 1e9;
    suffix = "G";
  } else if (std::abs(v) >= 1e6) {
    scaled = v / 1e6;
    suffix = "M";
  } else if (std::abs(v) >= 1e3) {
    scaled = v / 1e3;
    suffix = "K";
  }
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(2) << scaled << suffix;
  return oss.str();
}

}  // namespace sparts
