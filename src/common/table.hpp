// Aligned ASCII table printer used by the benchmark harness to reproduce the
// paper's tables (Figs. 5 and 7) in a readable fixed-width layout.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace sparts {

/// Builds a column-aligned text table.  Cells are strings; numeric helpers
/// format with fixed precision.  Rows may be separators.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Begin a new row; subsequent add() calls fill its cells left to right.
  void new_row();

  /// Append a cell to the current row.
  void add(std::string cell);
  void add(double v, int precision = 3);
  void add(long long v);
  void add_int(long long v) { add(v); }

  /// Insert a horizontal rule after the current row.
  void add_rule();

  /// Render with single-space-padded columns and a header rule.
  std::string str() const;

  /// Render directly to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::size_t> rules_;  // row indices after which to draw a rule
};

/// Format `v` with `precision` digits after the point.
std::string format_fixed(double v, int precision);

/// Human-readable count, e.g. 1234567 -> "1.23M".
std::string format_si(double v);

}  // namespace sparts
