// Wall-clock timing for host-side measurements (benchmark harness).
// Simulated time lives in simpar::Clock, not here.
#pragma once

#include <chrono>

namespace sparts {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer();

  /// Restart the stopwatch.
  void reset();

  /// Seconds elapsed since construction or last reset().
  double seconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sparts
