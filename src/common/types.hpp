// Fundamental scalar and index types used throughout SPARTS.
//
// All sparse-matrix indices are 64-bit: the structures produced by
// factorization (nnz(L), operation counts) routinely exceed 2^31 for the
// 3-D problems the paper evaluates.
#pragma once

#include <cstdint>

namespace sparts {

/// Row/column index into a sparse or dense matrix.
using index_t = std::int64_t;

/// Count of nonzeros / offsets into nonzero arrays.
using nnz_t = std::int64_t;

/// Floating-point scalar.  The paper's experiments are double precision.
using real_t = double;

}  // namespace sparts
