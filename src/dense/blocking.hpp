// Cache-blocking parameters and packing routines for the tiled dense
// kernels (see docs/kernels.md).
//
// The tiled GEMM follows the classic three-level blocking scheme
// (Goto/BLIS): the operand matrices are cut into KC x NC blocks of B
// (packed once per block, reused across the whole M dimension) and
// MC x KC blocks of A (packed into contiguous MR-row micro-panels so the
// microkernel streams them with unit stride).  Packing also
//   * folds the alpha scale into B, so the microkernel is a pure
//     multiply-accumulate;
//   * zero-pads ragged edges up to MR/NR, so the microkernel never needs
//     a bounds check (the caller discards the padded rows/columns when
//     accumulating into C);
//   * absorbs arbitrary row/column strides, which lets one core routine
//     serve A, A^T and the B^T operand of SYRK.
//
// Everything here has internal linkage (static): this header is included
// by per-ISA translation units compiled with different instruction-set
// flags (kernels_tiled_*.cpp), and external-linkage inline functions
// would COMDAT-merge across those TUs, letting e.g. an AVX2-compiled
// packing routine leak into the portable code path.
#pragma once

#include <algorithm>
#include <vector>

#include "common/types.hpp"

namespace sparts::dense::detail {

/// Microkernel register tile: MR x NR accumulators.  A per-ISA translation
/// unit may widen the tile by defining SPARTS_TILE_MR before including
/// this header (the AVX-512 TU uses 16: two 8-double zmm rows per column).
/// Plain `constexpr` — internal linkage — so each TU's value is private
/// and cannot COMDAT-merge with another TU's.
#ifndef SPARTS_TILE_MR
#define SPARTS_TILE_MR 8
#endif
constexpr index_t kMR = SPARTS_TILE_MR;
constexpr index_t kNR = 4;

/// Cache blocks: A-pack is MC x KC (sized for L2), B-pack is KC x NC.
constexpr index_t kMC = 128;
constexpr index_t kKC = 256;
constexpr index_t kNC = 512;

/// Diagonal-tile width for the blocked TRSM / Cholesky algorithms: the
/// t x t triangle is solved in TB-wide tiles, everything below/right of a
/// tile is updated through the tiled GEMM core.
constexpr index_t kTB = 64;

/// Strip length (elements per column) for the fused-AXPY small-n GEMM:
/// n + 1 strips of this size stay resident in L1.
constexpr index_t kStrip = 512;

static inline index_t round_up(index_t v, index_t unit) {
  return (v + unit - 1) / unit * unit;
}

/// Pack an mc x kc block of A, with general element strides
/// A(i, l) = a[i * rs + l * cs], into MR-row micro-panels:
/// out holds ceil(mc/MR) panels of kc * MR values, panel p storing
/// rows [p*MR, p*MR + MR) column by column, zero-padded past row mc.
static inline void pack_a(index_t mc, index_t kc, const real_t* a, index_t rs,
                   index_t cs, real_t* out) {
  for (index_t i0 = 0; i0 < mc; i0 += kMR) {
    const index_t mr = std::min(kMR, mc - i0);
    const real_t* ablk = a + i0 * rs;
    for (index_t l = 0; l < kc; ++l) {
      for (index_t i = 0; i < mr; ++i) out[i] = ablk[i * rs + l * cs];
      for (index_t i = mr; i < kMR; ++i) out[i] = 0.0;
      out += kMR;
    }
  }
}

/// Pack a kc x nc block of B, with general element strides
/// B(l, j) = b[l * rs + j * cs], scaled by alpha, into NR-column
/// micro-panels (kc * NR values each), zero-padded past column nc.
static inline void pack_b(index_t kc, index_t nc, real_t alpha, const real_t* b,
                   index_t rs, index_t cs, real_t* out) {
  for (index_t j0 = 0; j0 < nc; j0 += kNR) {
    const index_t nr = std::min(kNR, nc - j0);
    const real_t* bblk = b + j0 * cs;
    for (index_t l = 0; l < kc; ++l) {
      for (index_t j = 0; j < nr; ++j) out[j] = alpha * bblk[l * rs + j * cs];
      for (index_t j = nr; j < kNR; ++j) out[j] = 0.0;
      out += kNR;
    }
  }
}

/// Per-thread packing workspace.  thread_local so the ThreadBackend's
/// rank threads never contend.
struct PackWorkspace {
  std::vector<real_t> a;
  std::vector<real_t> b;
};

static inline PackWorkspace& pack_workspace() {
  thread_local PackWorkspace ws;
  return ws;
}

}  // namespace sparts::dense::detail
