#include "dense/cholesky.hpp"

#include "dense/kernels.hpp"

namespace sparts::dense {

Matrix cholesky(const Matrix& a) {
  SPARTS_CHECK(a.rows() == a.cols(), "cholesky needs a square matrix");
  const index_t n = a.rows();
  Matrix l = a;
  if (n > 0) {
    panel_cholesky(n, n, l.col(0), n);
  }
  // Zero the strictly-upper part (panel_cholesky leaves A's values there).
  for (index_t j = 1; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) l(i, j) = 0.0;
  }
  return l;
}

Matrix solve_lower(const Matrix& l, const Matrix& b) {
  Matrix x = b;
  trsm_lower_left(l, x, /*transpose_l=*/false);
  return x;
}

Matrix solve_lower_transposed(const Matrix& l, const Matrix& b) {
  Matrix x = b;
  trsm_lower_left(l, x, /*transpose_l=*/true);
  return x;
}

Matrix solve_spd(const Matrix& a, const Matrix& b) {
  const Matrix l = cholesky(a);
  return solve_lower_transposed(l, solve_lower(l, b));
}

nnz_t cholesky_flops(index_t n) {
  return static_cast<nnz_t>(n) * n * n / 3;
}

nnz_t trisolve_flops(index_t n, index_t m) {
  return static_cast<nnz_t>(n) * n * m;
}

}  // namespace sparts::dense
