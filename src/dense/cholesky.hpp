// Dense Cholesky factorization and dense triangular solves.
//
// These serve as the reference implementation against which the sparse
// factorization is tested, and as the computational model for the dense
// solver scalability comparison of paper §3.3.
#pragma once

#include "common/types.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense {

/// Factor SPD matrix A = L * L^T.  Returns L (lower triangular, upper part
/// zeroed).  Throws NumericalError if A is not positive definite.
Matrix cholesky(const Matrix& a);

/// Solve L * X = B for lower-triangular L.  Returns X.
Matrix solve_lower(const Matrix& l, const Matrix& b);

/// Solve L^T * X = B for lower-triangular L.  Returns X.
Matrix solve_lower_transposed(const Matrix& l, const Matrix& b);

/// Full SPD solve A * X = B via Cholesky.  Returns X.
Matrix solve_spd(const Matrix& a, const Matrix& b);

/// Exact flop count of an n x n dense Cholesky (n^3/3 + lower order).
nnz_t cholesky_flops(index_t n);

/// Exact flop count of a dense triangular solve with m right-hand sides.
nnz_t trisolve_flops(index_t n, index_t m);

}  // namespace sparts::dense
