// Public kernel API: shape validation, implementation dispatch, flop
// accounting.
//
// Two implementations sit behind this layer (see docs/kernels.md):
//   * reference — naive loops (kernels_ref.cpp), the conformance oracle;
//   * tiled     — the blocked/packed kernels, compiled once per ISA
//                 target (kernels_tiled_*.cpp).  The best table for the
//                 running CPU is picked once, at first use.
#include "dense/kernels.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "common/error.hpp"
#include "dense/kernels_ref.hpp"
#include "dense/kernels_tiled.hpp"
#include "obs/metrics.hpp"

namespace sparts::dense {

// ===========================================================================
// Implementation dispatch.
// ===========================================================================

KernelImpl kernel_impl_from_env() {
  const char* env = std::getenv("SPARTS_KERNELS");
  if (env == nullptr || *env == '\0') return KernelImpl::tiled;
  const std::string s(env);
  if (s == "reference" || s == "ref" || s == "naive") {
    return KernelImpl::reference;
  }
  if (s == "tiled" || s == "blocked") return KernelImpl::tiled;
  throw InvalidArgument("SPARTS_KERNELS must be 'reference' or 'tiled' (got '" +
                        s + "')");
}

namespace {

std::atomic<KernelImpl>& impl_state() {
  static std::atomic<KernelImpl> state{kernel_impl_from_env()};
  return state;
}

/// The tiled kernel table for the running CPU, widest ISA first:
/// AVX-512 when the host supports it, then AVX2+FMA, then the
/// baseline-ISA build (on aarch64: the NEON build, unconditionally).
const detail::TiledKernels& tiled() {
  static const detail::TiledKernels& table = []() -> const auto& {
#ifdef SPARTS_HAVE_AVX512_TU
    if (__builtin_cpu_supports("avx512f")) {
      return detail::tiled_avx512_kernels();
    }
#endif
#ifdef SPARTS_HAVE_AVX2_TU
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
      return detail::tiled_avx2_kernels();
    }
#endif
#ifdef SPARTS_HAVE_NEON_TU
    return detail::tiled_neon_kernels();
#else
    return detail::tiled_portable_kernels();
#endif
  }();
  return table;
}

/// Call/flop/wall-time counters for one kernel entry point, resolved from
/// the registry once per process ("kernel.<name>.calls" etc.).  Sites pay
/// for the lookup only on their first metered call.
struct KernelCounters {
  obs::Counter& calls;
  obs::Counter& flops;
  obs::Counter& nanos;
  explicit KernelCounters(const std::string& name)
      : calls(obs::metrics().counter("kernel." + name + ".calls")),
        flops(obs::metrics().counter("kernel." + name + ".flops")),
        nanos(obs::metrics().counter("kernel." + name + ".nanos")) {}

  void record(std::chrono::steady_clock::time_point t0, nnz_t flop_count) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    calls.add();
    flops.add(flop_count);
    nanos.add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count());
  }
};

std::chrono::steady_clock::time_point metered_start(bool metered) {
  return metered ? std::chrono::steady_clock::now()
                 : std::chrono::steady_clock::time_point{};
}

}  // namespace

KernelImpl kernel_impl() {
  return impl_state().load(std::memory_order_relaxed);
}

void set_kernel_impl(KernelImpl impl) {
  impl_state().store(impl, std::memory_order_relaxed);
}

const char* kernel_impl_name(KernelImpl impl) {
  return impl == KernelImpl::reference ? "reference" : "tiled";
}

// ===========================================================================
// Public API: validate shapes, dispatch to the active implementation,
// return the documented flop counts (identical for both implementations).
// ===========================================================================

void gemm(real_t alpha, const Matrix& a, bool transpose_a, const Matrix& b,
          bool transpose_b, Matrix& c) {
  const index_t m = transpose_a ? a.cols() : a.rows();
  const index_t k = transpose_a ? a.rows() : a.cols();
  const index_t kb = transpose_b ? b.cols() : b.rows();
  const index_t n = transpose_b ? b.rows() : b.cols();
  SPARTS_CHECK(k == kb, "gemm inner dimensions mismatch");
  SPARTS_CHECK(c.rows() == m && c.cols() == n, "gemm output shape mismatch");
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (kernel_impl() == KernelImpl::reference) {
    ref::gemm(alpha, a, transpose_a, b, transpose_b, c);
    return;
  }
  const real_t* ap = a.data().data();
  const real_t* bp = b.data().data();
  const index_t rs_a = transpose_a ? a.rows() : 1;
  const index_t cs_a = transpose_a ? 1 : a.rows();
  const index_t rs_b = transpose_b ? b.rows() : 1;
  const index_t cs_b = transpose_b ? 1 : b.rows();
  tiled().gemm_strided(m, n, k, alpha, ap, rs_a, cs_a, bp, rs_b, cs_b,
                       c.data().data(), c.rows());
}

void gemv(real_t alpha, const Matrix& a, std::span<const real_t> x,
          std::span<real_t> y) {
  SPARTS_CHECK(static_cast<index_t>(x.size()) == a.cols());
  SPARTS_CHECK(static_cast<index_t>(y.size()) == a.rows());
  if (kernel_impl() == KernelImpl::reference) {
    ref::gemv(alpha, a, x, y);
  } else {
    tiled().gemv(alpha, a, x, y);
  }
}

void trsm_lower_left(const Matrix& l, Matrix& b, bool transpose_l,
                     bool unit_diag) {
  const index_t n = l.rows();
  SPARTS_CHECK(l.cols() == n, "L must be square");
  SPARTS_CHECK(b.rows() == n, "B row count mismatch");
  for (index_t j = 0; j < b.cols(); ++j) {
    real_t* x = b.col(j);
    if (!transpose_l) {
      for (index_t i = 0; i < n; ++i) {
        real_t s = x[i];
        for (index_t k = 0; k < i; ++k) s -= l(i, k) * x[k];
        x[i] = unit_diag ? s : s / l(i, i);
      }
    } else {
      for (index_t i = n - 1; i >= 0; --i) {
        real_t s = x[i];
        for (index_t k = i + 1; k < n; ++k) s -= l(k, i) * x[k];
        x[i] = unit_diag ? s : s / l(i, i);
      }
    }
  }
}

void trsm_upper_left(const Matrix& u, Matrix& b) {
  const index_t n = u.rows();
  SPARTS_CHECK(u.cols() == n, "U must be square");
  SPARTS_CHECK(b.rows() == n, "B row count mismatch");
  for (index_t j = 0; j < b.cols(); ++j) {
    real_t* x = b.col(j);
    for (index_t i = n - 1; i >= 0; --i) {
      real_t s = x[i];
      for (index_t k = i + 1; k < n; ++k) s -= u(i, k) * x[k];
      x[i] = s / u(i, i);
    }
  }
}

void syrk_lower(const Matrix& a, Matrix& c) {
  const index_t m = a.rows();
  SPARTS_CHECK(c.rows() == m && c.cols() == m, "syrk output must be m x m");
  if (m <= 0 || a.cols() <= 0) return;
  panel_syrk(m, m, a.cols(), a.col(0), a.rows(), a.col(0), a.rows(), c.col(0),
             c.rows(), /*lower_only=*/true);
}

void panel_gemm(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
                index_t lda, const real_t* b, index_t ldb, real_t* c,
                index_t ldc) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_gemm(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    tiled().panel_gemm(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
  if (metered) {
    static KernelCounters mc("panel_gemm");
    mc.record(t0, gemm_flops(m, n, k));
  }
}

void panel_gemm_at(index_t m, index_t n, index_t k, real_t alpha,
                   const real_t* a, index_t lda, const real_t* b, index_t ldb,
                   real_t* c, index_t ldc) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_gemm_at(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  } else {
    tiled().panel_gemm_at(m, n, k, alpha, a, lda, b, ldb, c, ldc);
  }
  if (metered) {
    static KernelCounters mc("panel_gemm_at");
    mc.record(t0, gemm_flops(m, n, k));
  }
}

nnz_t panel_trsm_lower(index_t t, index_t n, const real_t* l, index_t ldl,
                       real_t* b, index_t ldb) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_trsm_lower(t, n, l, ldl, b, ldb);
  } else {
    tiled().panel_trsm_lower(t, n, l, ldl, b, ldb);
  }
  if (metered) {
    static KernelCounters mc("panel_trsm_lower");
    mc.record(t0, trsm_panel_flops(t, n));
  }
  return trsm_panel_flops(t, n);
}

nnz_t panel_trsm_lower_transposed(index_t t, index_t n, const real_t* l,
                                  index_t ldl, real_t* b, index_t ldb) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_trsm_lower_transposed(t, n, l, ldl, b, ldb);
  } else {
    tiled().panel_trsm_lower_transposed(t, n, l, ldl, b, ldb);
  }
  if (metered) {
    static KernelCounters mc("panel_trsm_lower_transposed");
    mc.record(t0, trsm_panel_flops(t, n));
  }
  return trsm_panel_flops(t, n);
}

nnz_t panel_trsm_right_lt(index_t m, index_t k, const real_t* l, index_t ldl,
                          real_t* x, index_t ldx) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_trsm_right_lt(m, k, l, ldl, x, ldx);
  } else {
    tiled().panel_trsm_right_lt(m, k, l, ldl, x, ldx);
  }
  if (metered) {
    static KernelCounters mc("panel_trsm_right_lt");
    mc.record(t0, trsm_right_lt_flops(m, k));
  }
  return trsm_right_lt_flops(m, k);
}

nnz_t panel_cholesky(index_t m, index_t t, real_t* a, index_t lda) {
  SPARTS_CHECK(m >= t, "panel must have at least t rows");
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_cholesky(m, t, a, lda, /*col_offset=*/0);
  } else {
    tiled().panel_cholesky(m, t, a, lda);
  }
  if (metered) {
    static KernelCounters mc("panel_cholesky");
    mc.record(t0, cholesky_panel_flops(m, t));
  }
  return cholesky_panel_flops(m, t);
}

void panel_syrk(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* a2, index_t lda2, real_t* c, index_t ldc,
                bool lower_only) {
  const bool metered = obs::metrics_enabled();
  const auto t0 = metered_start(metered);
  if (kernel_impl() == KernelImpl::reference) {
    ref::panel_syrk(m, n, k, a, lda, a2, lda2, c, ldc, lower_only);
  } else {
    tiled().panel_syrk(m, n, k, a, lda, a2, lda2, c, ldc, lower_only);
  }
  if (metered) {
    static KernelCounters mc("panel_syrk");
    mc.record(t0, syrk_flops(m, n, k, lower_only));
  }
}

}  // namespace sparts::dense
