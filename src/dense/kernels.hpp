// Dense BLAS-style kernels written against raw column-major panels.
//
// Two interfaces are provided:
//   * Matrix-level convenience wrappers (gemm, trsm, syrk, gemv) used by
//     tests and small call sites.
//   * Raw-pointer panel kernels (panel_*) operating on column-major blocks
//     with an explicit leading dimension, used by the supernodal solvers and
//     the multifrontal factorization where supernodes are sub-panels of a
//     larger allocation.
//
// Every kernel exists in two implementations behind one API (see
// docs/kernels.md):
//   * reference — the naive loops, kept as the conformance oracle;
//   * tiled     — cache-blocked, register-tiled, vectorizer-friendly
//                 kernels built on a packing GEMM core (blocking.hpp,
//                 microkernel.hpp), with small-n right-hand-side
//                 specializations for the trisolve pipeline.
// The active implementation is selected process-wide with
// set_kernel_impl() (or the SPARTS_KERNELS environment variable); both
// return byte-identical flop counts, so simulated machine traces do not
// depend on which implementation ran.
//
// Output panels must not alias the input panels (the supernodal call
// sites never do; the tiled kernels rely on it).
//
// All kernels also report the exact flop count they performed so the
// simulator's cost model can charge for them.
#pragma once

#include "common/types.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense {

// ---------------------------------------------------------------------------
// Kernel implementation dispatch.
// ---------------------------------------------------------------------------

enum class KernelImpl {
  reference,  ///< naive triple loops (conformance oracle)
  tiled,      ///< cache-blocked + register-tiled (default)
};

/// Implementation requested by the SPARTS_KERNELS environment variable
/// ("reference"/"ref" or "tiled"); `tiled` when unset.  Throws
/// InvalidArgument on an unrecognized value.
KernelImpl kernel_impl_from_env();

/// Currently active implementation (initially kernel_impl_from_env()).
KernelImpl kernel_impl();

/// Select the implementation process-wide.  Thread-safe (atomic), but
/// meant to be called between solves, not concurrently with them.
void set_kernel_impl(KernelImpl impl);

/// "reference" or "tiled".
const char* kernel_impl_name(KernelImpl impl);

// ---------------------------------------------------------------------------
// Flop accounting.
//
// The panel kernels return these exact counts (independent of the active
// implementation); the simulator charges its cost model from them, so
// they are part of the reproducibility contract.
// ---------------------------------------------------------------------------

/// Flop count of a (m x k) * (k x n) multiply-accumulate.
inline nnz_t gemm_flops(index_t m, index_t n, index_t k) {
  return 2 * static_cast<nnz_t>(m) * n * k;
}

/// Flop count charged for a t x t triangular panel solve with n
/// right-hand sides: t divisions plus t*(t-1) multiply-subtract flops
/// per column, rounded up to t^2 per column => t^2 * n total.
inline nnz_t trsm_panel_flops(index_t t, index_t n) {
  return static_cast<nnz_t>(t) * t * n;
}

/// Flop count charged for X := X * L^{-T} with X m x k, L k x k lower
/// triangular: k^2 flops per row of X => m * k^2.
inline nnz_t trsm_right_lt_flops(index_t m, index_t k) {
  return static_cast<nnz_t>(m) * k * k;
}

/// Flop count charged for the partial Cholesky of an m x t panel:
/// m*t^2 - floor(2*t^3 / 3) (the t = m case is the classic n^3/3).
/// Non-negative for every valid panel shape m >= t >= 0.
inline nnz_t cholesky_panel_flops(index_t m, index_t t) {
  return static_cast<nnz_t>(m) * t * t -
         2 * static_cast<nnz_t>(t) * t * t / 3;
}

/// Flop count charged for C(mxn) -= A * A2^T with inner dimension k:
/// half of the full 2*m*n*k multiply-add count when only the lower
/// triangle is updated.
inline nnz_t syrk_flops(index_t m, index_t n, index_t k, bool lower_only) {
  const nnz_t full = 2 * static_cast<nnz_t>(m) * n * k;
  return lower_only ? full / 2 : full;
}

// ---------------------------------------------------------------------------
// Matrix-level wrappers.
// ---------------------------------------------------------------------------

/// C += alpha * A(^T) * B(^T).  Shapes are checked.
void gemm(real_t alpha, const Matrix& a, bool transpose_a, const Matrix& b,
          bool transpose_b, Matrix& c);

/// y += alpha * A * x  (x, y are n-vectors stored as k x 1 matrices or spans).
void gemv(real_t alpha, const Matrix& a, std::span<const real_t> x,
          std::span<real_t> y);

/// Solve op(L) * X = B in place of B, where L is lower triangular
/// (unit_diag selects implicit unit diagonal).
void trsm_lower_left(const Matrix& l, Matrix& b, bool transpose_l = false,
                     bool unit_diag = false);

/// Solve U * X = B in place of B, where U is upper triangular.
void trsm_upper_left(const Matrix& u, Matrix& b);

/// C -= A * A^T restricted to the lower triangle of C (Cholesky update).
void syrk_lower(const Matrix& a, Matrix& c);

// ---------------------------------------------------------------------------
// Raw column-major panel kernels.  `ld*` are leading dimensions.
// ---------------------------------------------------------------------------

/// C(mxn) += alpha * A(mxk) * B(kxn).
void panel_gemm(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
                index_t lda, const real_t* b, index_t ldb, real_t* c,
                index_t ldc);

/// C(mxn) += alpha * A^T(kxm as m of k) * B(kxn); A is stored k x m.
void panel_gemm_at(index_t m, index_t n, index_t k, real_t alpha,
                   const real_t* a, index_t lda, const real_t* b, index_t ldb,
                   real_t* c, index_t ldc);

/// In-place solve L(txt lower, column-major, lda) X = B (t x n, ldb).
/// Returns trsm_panel_flops(t, n).
nnz_t panel_trsm_lower(index_t t, index_t n, const real_t* l, index_t ldl,
                       real_t* b, index_t ldb);

/// In-place solve L^T(txt) X = B (t x n, ldb) where L is lower triangular.
/// Returns trsm_panel_flops(t, n).  Used by backward substitution with
/// L^T = U.
nnz_t panel_trsm_lower_transposed(index_t t, index_t n, const real_t* l,
                                  index_t ldl, real_t* b, index_t ldb);

/// In-place X := X * L^{-T} where X is (m x k, ldx) and L is k x k lower
/// triangular (ldl).  This is the row-panel solve of blocked right-looking
/// Cholesky: L21 = A21 * L11^{-T}.  Returns trsm_right_lt_flops(m, k).
nnz_t panel_trsm_right_lt(index_t m, index_t k, const real_t* l, index_t ldl,
                          real_t* x, index_t ldx);

/// Dense Cholesky of the leading t x t lower triangle of a column-major
/// panel (in place), then apply to the remaining (m - t) rows:
///   A21 <- A21 * L11^{-T}.  Panel is m x t.  Entries strictly above the
/// diagonal of the t x t triangle are never read or written.  Returns
/// cholesky_panel_flops(m, t).  Throws NumericalError on a non-positive
/// pivot.
nnz_t panel_cholesky(index_t m, index_t t, real_t* a, index_t lda);

/// C(mxn) -= A(mxk) * A2(nxk)^T, where A2 is stored n x k with leading
/// dimension lda2 (i.e. B(l,j) = a2[j + l*lda2]).  Used for the Schur
/// complement update of a frontal matrix; only entries with row >= col
/// are updated when `lower_only` (entries above the diagonal are never
/// touched).
void panel_syrk(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* a2, index_t lda2, real_t* c, index_t ldc,
                bool lower_only);

}  // namespace sparts::dense
