// Dense BLAS-style kernels written against raw column-major panels.
//
// Two interfaces are provided:
//   * Matrix-level convenience wrappers (gemm, trsm, syrk, gemv) used by
//     tests and small call sites.
//   * Raw-pointer panel kernels (panel_*) operating on column-major blocks
//     with an explicit leading dimension, used by the supernodal solvers and
//     the multifrontal factorization where supernodes are sub-panels of a
//     larger allocation.
//
// All kernels also report the exact flop count they performed so the
// simulator's cost model can charge for them.
#pragma once

#include "common/types.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense {

// ---------------------------------------------------------------------------
// Matrix-level wrappers.
// ---------------------------------------------------------------------------

/// C += alpha * A(^T) * B(^T).  Shapes are checked.
void gemm(real_t alpha, const Matrix& a, bool transpose_a, const Matrix& b,
          bool transpose_b, Matrix& c);

/// y += alpha * A * x  (x, y are n-vectors stored as k x 1 matrices or spans).
void gemv(real_t alpha, const Matrix& a, std::span<const real_t> x,
          std::span<real_t> y);

/// Solve op(L) * X = B in place of B, where L is lower triangular
/// (unit_diag selects implicit unit diagonal).
void trsm_lower_left(const Matrix& l, Matrix& b, bool transpose_l = false,
                     bool unit_diag = false);

/// Solve U * X = B in place of B, where U is upper triangular.
void trsm_upper_left(const Matrix& u, Matrix& b);

/// C -= A * A^T restricted to the lower triangle of C (Cholesky update).
void syrk_lower(const Matrix& a, Matrix& c);

// ---------------------------------------------------------------------------
// Raw column-major panel kernels.  `ld*` are leading dimensions.
// ---------------------------------------------------------------------------

/// Flop count of a (m x k) * (k x n) multiply-accumulate.
inline nnz_t gemm_flops(index_t m, index_t n, index_t k) {
  return 2 * static_cast<nnz_t>(m) * n * k;
}

/// C(mxn) += alpha * A(mxk) * B(kxn).
void panel_gemm(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
                index_t lda, const real_t* b, index_t ldb, real_t* c,
                index_t ldc);

/// C(mxn) += alpha * A^T(kxm as m of k) * B(kxn); A is stored k x m.
void panel_gemm_at(index_t m, index_t n, index_t k, real_t alpha,
                   const real_t* a, index_t lda, const real_t* b, index_t ldb,
                   real_t* c, index_t ldc);

/// In-place solve L(txt lower, column-major, lda) X = B (t x n, ldb).
/// Returns flop count.
nnz_t panel_trsm_lower(index_t t, index_t n, const real_t* l, index_t ldl,
                       real_t* b, index_t ldb);

/// In-place solve L^T(txt) X = B (t x n, ldb) where L is lower triangular.
/// Returns flop count.  Used by backward substitution with L^T = U.
nnz_t panel_trsm_lower_transposed(index_t t, index_t n, const real_t* l,
                                  index_t ldl, real_t* b, index_t ldb);

/// In-place X := X * L^{-T} where X is (m x k, ldx) and L is k x k lower
/// triangular (ldl).  This is the row-panel solve of blocked right-looking
/// Cholesky: L21 = A21 * L11^{-T}.  Returns flop count.
nnz_t panel_trsm_right_lt(index_t m, index_t k, const real_t* l, index_t ldl,
                          real_t* x, index_t ldx);

/// Dense Cholesky of the leading t x t lower triangle of a column-major
/// panel (in place), then apply to the remaining (m - t) rows:
///   A21 <- A21 * L11^{-T}.  Panel is m x t.  Returns flop count.
/// Throws NumericalError on a non-positive pivot.
nnz_t panel_cholesky(index_t m, index_t t, real_t* a, index_t lda);

/// C(mxn, lower triangle when square) -= A(mxk) * A(nxk)^T.
/// Used for the Schur complement update of a frontal matrix; only entries
/// with row >= col are updated when `lower_only`.
void panel_syrk(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* a2, index_t lda2, real_t* c, index_t ldc,
                bool lower_only);

}  // namespace sparts::dense
