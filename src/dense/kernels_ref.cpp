// Reference kernels: the naive loops, kept as the conformance oracle.
// Dense data has no zeros worth skipping, so there are no per-element
// zero checks (they would defeat vectorization and silently drop NaN/Inf
// propagation); sparsity exploitation belongs above the panel level.
#include "dense/kernels_ref.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "dense/pivot.hpp"

namespace sparts::dense::ref {

void panel_gemm(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
                index_t lda, const real_t* b, index_t ldb, real_t* c,
                index_t ldc) {
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + j * ldc;
    for (index_t l = 0; l < k; ++l) {
      const real_t s = alpha * b[l + j * ldb];
      const real_t* al = a + l * lda;
      for (index_t i = 0; i < m; ++i) cj[i] += s * al[i];
    }
  }
}

void panel_gemm_at(index_t m, index_t n, index_t k, real_t alpha,
                   const real_t* a, index_t lda, const real_t* b, index_t ldb,
                   real_t* c, index_t ldc) {
  // C(i,j) += alpha * sum_l A(l,i) * B(l,j); A stored k x m with ld lda.
  for (index_t j = 0; j < n; ++j) {
    const real_t* bj = b + j * ldb;
    real_t* cj = c + j * ldc;
    for (index_t i = 0; i < m; ++i) {
      const real_t* ai = a + i * lda;
      real_t s = 0.0;
      for (index_t l = 0; l < k; ++l) s += ai[l] * bj[l];
      cj[i] += alpha * s;
    }
  }
}

void panel_trsm_lower(index_t t, index_t n, const real_t* l, index_t ldl,
                      real_t* b, index_t ldb) {
  for (index_t j = 0; j < n; ++j) {
    real_t* x = b + j * ldb;
    for (index_t i = 0; i < t; ++i) {
      real_t s = x[i];
      const real_t* li = l + i;  // row i, walk by columns
      for (index_t k = 0; k < i; ++k) s -= li[k * ldl] * x[k];
      x[i] = s / l[i + i * ldl];
    }
  }
}

void panel_trsm_lower_transposed(index_t t, index_t n, const real_t* l,
                                 index_t ldl, real_t* b, index_t ldb) {
  for (index_t j = 0; j < n; ++j) {
    real_t* x = b + j * ldb;
    for (index_t i = t - 1; i >= 0; --i) {
      real_t s = x[i];
      const real_t* li = l + i * ldl;  // column i of L = row i of L^T
      for (index_t k = i + 1; k < t; ++k) s -= li[k] * x[k];
      x[i] = s / li[i];
    }
  }
}

void panel_trsm_right_lt(index_t m, index_t k, const real_t* l, index_t ldl,
                         real_t* x, index_t ldx) {
  for (index_t c = 0; c < k; ++c) {
    real_t* xc = x + c * ldx;
    const real_t* lc = l + c;  // row c of L, walk by columns
    for (index_t cp = 0; cp < c; ++cp) {
      const real_t s = lc[cp * ldl];
      const real_t* xcp = x + cp * ldx;
      for (index_t i = 0; i < m; ++i) xc[i] -= s * xcp[i];
    }
    const real_t inv = 1.0 / lc[c * ldl];
    for (index_t i = 0; i < m; ++i) xc[i] *= inv;
  }
}

void panel_cholesky(index_t m, index_t t, real_t* a, index_t lda,
                    index_t col_offset) {
  for (index_t k = 0; k < t; ++k) {
    real_t* ak = a + k * lda;
    real_t d = ak[k];
    if (!(d > 0.0)) {
      d = resolve_bad_pivot(d, "panel_cholesky", col_offset + k);
    }
    const real_t dk = std::sqrt(d);
    ak[k] = dk;
    const real_t inv = 1.0 / dk;
    for (index_t i = k + 1; i < m; ++i) ak[i] *= inv;
    for (index_t j = k + 1; j < t; ++j) {
      const real_t s = ak[j];
      real_t* aj = a + j * lda;
      for (index_t i = j; i < m; ++i) aj[i] -= s * ak[i];
    }
  }
}

void panel_syrk(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* a2, index_t lda2, real_t* c, index_t ldc,
                bool lower_only) {
  for (index_t j = 0; j < n; ++j) {
    real_t* cj = c + j * ldc;
    const index_t i0 = lower_only ? j : 0;
    for (index_t l = 0; l < k; ++l) {
      const real_t s = a2[j + l * lda2];
      const real_t* al = a + l * lda;
      for (index_t i = i0; i < m; ++i) cj[i] -= s * al[i];
    }
  }
}

void gemm(real_t alpha, const Matrix& a, bool transpose_a, const Matrix& b,
          bool transpose_b, Matrix& c) {
  const index_t m = c.rows();
  const index_t n = c.cols();
  const index_t k = transpose_a ? a.rows() : a.cols();
  for (index_t j = 0; j < n; ++j) {
    for (index_t l = 0; l < k; ++l) {
      const real_t s = alpha * (transpose_b ? b(j, l) : b(l, j));
      for (index_t i = 0; i < m; ++i) {
        const real_t ail = transpose_a ? a(l, i) : a(i, l);
        c(i, j) += s * ail;
      }
    }
  }
}

void gemv(real_t alpha, const Matrix& a, std::span<const real_t> x,
          std::span<real_t> y) {
  for (index_t j = 0; j < a.cols(); ++j) {
    const real_t s = alpha * x[static_cast<std::size_t>(j)];
    const real_t* col = a.col(j);
    for (index_t i = 0; i < a.rows(); ++i) {
      y[static_cast<std::size_t>(i)] += s * col[i];
    }
  }
}

}  // namespace sparts::dense::ref
