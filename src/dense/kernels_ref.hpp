// Internal header: the reference (naive-loop) kernel implementations.
//
// These are the conformance oracle for the tiled kernels and also serve
// as the in-tile solvers of the blocked TRSM / Cholesky algorithms (the
// diagonal tiles are small, so the naive loops are fine there).  They are
// deliberately compiled once, in kernels_ref.cpp, with the project's
// baseline flags — unlike the tiled kernels, which are compiled per ISA.
//
// Not part of the public API; include dense/kernels.hpp instead.
#pragma once

#include <span>

#include "common/types.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense::ref {

void panel_gemm(index_t m, index_t n, index_t k, real_t alpha, const real_t* a,
                index_t lda, const real_t* b, index_t ldb, real_t* c,
                index_t ldc);

void panel_gemm_at(index_t m, index_t n, index_t k, real_t alpha,
                   const real_t* a, index_t lda, const real_t* b, index_t ldb,
                   real_t* c, index_t ldc);

void panel_trsm_lower(index_t t, index_t n, const real_t* l, index_t ldl,
                      real_t* b, index_t ldb);

void panel_trsm_lower_transposed(index_t t, index_t n, const real_t* l,
                                 index_t ldl, real_t* b, index_t ldb);

void panel_trsm_right_lt(index_t m, index_t k, const real_t* l, index_t ldl,
                         real_t* x, index_t ldx);

/// `col_offset` only shifts the column index reported on a failed pivot,
/// so the blocked algorithm reports the panel-global column.
void panel_cholesky(index_t m, index_t t, real_t* a, index_t lda,
                    index_t col_offset);

void panel_syrk(index_t m, index_t n, index_t k, const real_t* a, index_t lda,
                const real_t* a2, index_t lda2, real_t* c, index_t ldc,
                bool lower_only);

void gemm(real_t alpha, const Matrix& a, bool transpose_a, const Matrix& b,
          bool transpose_b, Matrix& c);

void gemv(real_t alpha, const Matrix& a, std::span<const real_t> x,
          std::span<real_t> y);

}  // namespace sparts::dense::ref
