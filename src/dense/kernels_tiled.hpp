// Internal header: the function table exported by each ISA-specialized
// build of the tiled kernels.
//
// The tiled implementation (kernels_tiled.inc) is compiled once per
// instruction-set target: kernels_tiled_portable.cpp with the project's
// baseline flags, and — on x86-64 — kernels_tiled_avx2.cpp with
// -mavx2 -mfma (guarded by SPARTS_HAVE_AVX2_TU).  Each translation unit
// keeps every kernel in an anonymous namespace (so no AVX2 code can leak
// into another TU through COMDAT merging) and exposes exactly one entry
// point returning this table.  kernels.cpp picks the best table once at
// startup via __builtin_cpu_supports.
//
// Not part of the public API; include dense/kernels.hpp instead.
#pragma once

#include <span>

#include "common/types.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense::detail {

struct TiledKernels {
  void (*panel_gemm)(index_t m, index_t n, index_t k, real_t alpha,
                     const real_t* a, index_t lda, const real_t* b, index_t ldb,
                     real_t* c, index_t ldc);
  void (*panel_gemm_at)(index_t m, index_t n, index_t k, real_t alpha,
                        const real_t* a, index_t lda, const real_t* b,
                        index_t ldb, real_t* c, index_t ldc);
  void (*panel_trsm_lower)(index_t t, index_t n, const real_t* l, index_t ldl,
                           real_t* b, index_t ldb);
  void (*panel_trsm_lower_transposed)(index_t t, index_t n, const real_t* l,
                                      index_t ldl, real_t* b, index_t ldb);
  void (*panel_trsm_right_lt)(index_t m, index_t k, const real_t* l,
                              index_t ldl, real_t* x, index_t ldx);
  void (*panel_cholesky)(index_t m, index_t t, real_t* a, index_t lda);
  void (*panel_syrk)(index_t m, index_t n, index_t k, const real_t* a,
                     index_t lda, const real_t* a2, index_t lda2, real_t* c,
                     index_t ldc, bool lower_only);
  /// The general strided GEMM core, exposed for the Matrix-level gemm
  /// wrapper (which maps transpose flags onto element strides).
  void (*gemm_strided)(index_t m, index_t n, index_t k, real_t alpha,
                       const real_t* a, index_t rs_a, index_t cs_a,
                       const real_t* b, index_t rs_b, index_t cs_b, real_t* c,
                       index_t ldc);
  void (*gemv)(real_t alpha, const Matrix& a, std::span<const real_t> x,
               std::span<real_t> y);
};

/// Tiled kernels compiled with the baseline (portable) flags.
const TiledKernels& tiled_portable_kernels();

#ifdef SPARTS_HAVE_AVX2_TU
/// Tiled kernels compiled with -mavx2 -mfma.  Only callable after a
/// runtime __builtin_cpu_supports("avx2") / ("fma") check.
const TiledKernels& tiled_avx2_kernels();
#endif

#ifdef SPARTS_HAVE_AVX512_TU
/// Tiled kernels compiled with AVX-512 (widened 16x4 register tile, see
/// microkernel.hpp).  Only callable after a runtime
/// __builtin_cpu_supports("avx512f") check; checked before the AVX2
/// table so the widest ISA wins.
const TiledKernels& tiled_avx512_kernels();
#endif

#ifdef SPARTS_HAVE_NEON_TU
/// Tiled kernels for aarch64 Advanced SIMD (vfmaq_f64 microkernel).
/// NEON is architecturally mandatory on aarch64: no runtime check.
const TiledKernels& tiled_neon_kernels();
#endif

}  // namespace sparts::dense::detail
