// Tiled kernels compiled with -mavx2 -mfma (see src/dense/CMakeLists.txt).
// Only added to the build on x86-64, and only entered at runtime after a
// __builtin_cpu_supports check in kernels.cpp, so the baseline binary
// stays runnable on pre-AVX2 hardware.
#define SPARTS_TILED_ENTRY tiled_avx2_kernels
#include "dense/kernels_tiled.inc"
