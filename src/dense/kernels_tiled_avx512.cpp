// Tiled kernels compiled with AVX-512 enabled (see src/dense/CMakeLists.txt
// for the exact -mavx512* flag set).  Only added to the build on x86-64,
// and only entered at runtime after a __builtin_cpu_supports("avx512f")
// check in kernels.cpp, so the baseline binary stays runnable on hardware
// without AVX-512.
//
// Widening the register tile to 16 x 4 gives the microkernel eight zmm
// accumulators (two 8-double rows per column) — enough independent fma
// chains to cover the 4-cycle fma latency at 2 fma/cycle without
// exhausting the 32 zmm registers on loads.
#define SPARTS_TILE_MR 16
#define SPARTS_TILED_ENTRY tiled_avx512_kernels
#include "dense/kernels_tiled.inc"
