// Tiled kernels for aarch64, where NEON (Advanced SIMD) is mandatory —
// no runtime CPU check is needed, kernels.cpp selects this table
// unconditionally when it exists.  The value over the portable TU is the
// explicit vfmaq_f64 microkernel in microkernel.hpp (the portable body
// relies on autovectorization, which on some compilers refuses to keep
// the full 8 x 4 tile in q-registers) plus the unroll-friendly flags this
// TU is compiled with.
#define SPARTS_TILED_ENTRY tiled_neon_kernels
#include "dense/kernels_tiled.inc"
