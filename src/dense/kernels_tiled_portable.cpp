// Tiled kernels compiled with the project's baseline flags (the fallback
// on hosts without the ISA extensions of the specialized TUs).
#define SPARTS_TILED_ENTRY tiled_portable_kernels
#include "dense/kernels_tiled.inc"
