#include "dense/matrix.hpp"

#include <cmath>

namespace sparts::dense {

Matrix Matrix::from_rows(
    std::initializer_list<std::initializer_list<real_t>> rows) {
  const index_t m = static_cast<index_t>(rows.size());
  const index_t n = m > 0 ? static_cast<index_t>(rows.begin()->size()) : 0;
  Matrix a(m, n);
  index_t i = 0;
  for (const auto& row : rows) {
    SPARTS_CHECK(static_cast<index_t>(row.size()) == n,
                 "ragged initializer list");
    index_t j = 0;
    for (real_t v : row) a(i, j++) = v;
    ++i;
  }
  return a;
}

Matrix Matrix::identity(index_t n) {
  Matrix a(n, n);
  for (index_t i = 0; i < n; ++i) a(i, i) = 1.0;
  return a;
}

void Matrix::fill(real_t v) {
  for (auto& x : data_) x = v;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SPARTS_CHECK(same_shape(other));
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SPARTS_CHECK(same_shape(other));
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (index_t j = 0; j < cols_; ++j) {
    for (index_t i = 0; i < rows_; ++i) t(j, i) = (*this)(i, j);
  }
  return t;
}

real_t Matrix::max_abs() const {
  real_t m = 0.0;
  for (real_t v : data_) m = std::max(m, std::abs(v));
  return m;
}

real_t frobenius_distance(const Matrix& a, const Matrix& b) {
  SPARTS_CHECK(a.same_shape(b));
  real_t s = 0.0;
  auto da = a.data();
  auto db = b.data();
  for (std::size_t k = 0; k < da.size(); ++k) {
    const real_t d = da[k] - db[k];
    s += d * d;
  }
  return std::sqrt(s);
}

real_t frobenius_norm(const Matrix& a) {
  real_t s = 0.0;
  for (real_t v : a.data()) s += v * v;
  return std::sqrt(s);
}

}  // namespace sparts::dense
