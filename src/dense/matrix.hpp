// Column-major dense matrix.
//
// Supernodes of the sparse factor are stored as dense trapezoids; frontal
// matrices in the multifrontal method are dense squares; right-hand sides
// with NRHS > 1 are dense N x m blocks.  This class is the storage for all
// of them.
#pragma once

#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::dense {

/// Column-major dense matrix of real_t.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(index_t rows, index_t cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows * cols), 0.0) {
    SPARTS_CHECK(rows >= 0 && cols >= 0);
  }

  /// Construct from rows of an initializer list (row-major input for
  /// readability in tests; storage stays column-major).
  static Matrix from_rows(
      std::initializer_list<std::initializer_list<real_t>> rows);

  /// n x n identity.
  static Matrix identity(index_t n);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  real_t& operator()(index_t i, index_t j) {
    SPARTS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }
  real_t operator()(index_t i, index_t j) const {
    SPARTS_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<std::size_t>(j * rows_ + i)];
  }

  /// Pointer to the top of column j.
  real_t* col(index_t j) {
    SPARTS_DCHECK(j >= 0 && j < cols_);
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }
  const real_t* col(index_t j) const {
    SPARTS_DCHECK(j >= 0 && j < cols_);
    return data_.data() + static_cast<std::size_t>(j * rows_);
  }

  std::span<real_t> data() { return data_; }
  std::span<const real_t> data() const { return data_; }

  /// Set every entry to v.
  void fill(real_t v);

  /// this += other (same shape).
  Matrix& operator+=(const Matrix& other);
  /// this -= other (same shape).
  Matrix& operator-=(const Matrix& other);

  /// Transposed copy.
  Matrix transposed() const;

  /// max |a_ij|.
  real_t max_abs() const;

  bool same_shape(const Matrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  index_t rows_ = 0;
  index_t cols_ = 0;
  std::vector<real_t> data_;
};

/// Frobenius norm of A - B.  Shapes must match.
real_t frobenius_distance(const Matrix& a, const Matrix& b);

/// Frobenius norm.
real_t frobenius_norm(const Matrix& a);

}  // namespace sparts::dense
