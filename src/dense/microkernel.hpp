// Register-tiled MR x NR microkernel of the tiled GEMM core.
//
// Operates on packed micro-panels produced by pack_a / pack_b
// (blocking.hpp): `ap` walks MR A-values per k step, `bp` walks NR
// B-values per k step, both with unit stride.  The accumulators live in a
// fixed-size local tile that the compiler keeps in vector registers; the
// update is AXPY-shaped (each accumulator lane is an independent
// dependence chain), so it vectorizes under -O3 without
// -ffast-math-style reassociation.
//
// static linkage for the same reason as blocking.hpp: each per-ISA
// translation unit must get its own copy compiled with its own flags.
#pragma once

#include "common/types.hpp"
#include "dense/blocking.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SPARTS_RESTRICT __restrict__
#else
#define SPARTS_RESTRICT
#endif

namespace sparts::dense::detail {

/// acc (MR x NR, column-major) = sum over kc of a_panel(:, l) *
/// b_panel(l, :).  Alpha is pre-folded into the packed B panel.
static inline void micro_kernel(index_t kc, const real_t* SPARTS_RESTRICT ap,
                         const real_t* SPARTS_RESTRICT bp,
                         real_t* SPARTS_RESTRICT acc) {
  real_t c[kMR * kNR] = {};
  for (index_t l = 0; l < kc; ++l, ap += kMR, bp += kNR) {
    for (index_t j = 0; j < kNR; ++j) {
      const real_t bv = bp[j];
      real_t* SPARTS_RESTRICT cj = c + j * kMR;
      for (index_t i = 0; i < kMR; ++i) cj[i] += ap[i] * bv;
    }
  }
  for (index_t q = 0; q < kMR * kNR; ++q) acc[q] = c[q];
}

}  // namespace sparts::dense::detail
