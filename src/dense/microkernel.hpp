// Register-tiled MR x NR microkernel of the tiled GEMM core.
//
// Operates on packed micro-panels produced by pack_a / pack_b
// (blocking.hpp): `ap` walks MR A-values per k step, `bp` walks NR
// B-values per k step, both with unit stride.
//
// Three bodies, chosen by the flags of the including translation unit:
//   * AVX-512 (compiled under -mavx512f with kMR a multiple of 8): the
//     accumulator tile is (MR/8) x NR zmm registers updated with
//     _mm512_fmadd_pd; the AVX-512 TU widens MR to 16 (blocking.hpp) so
//     the tile is 8 zmm accumulators fed by 2 unaligned column loads.
//   * NEON (aarch64, where it is mandatory): (MR/2) x NR float64x2_t
//     accumulators updated with vfmaq_f64.
//   * portable: a fixed-size local tile the compiler keeps in whatever
//     vector registers the baseline ISA offers; the update is AXPY-shaped
//     (each accumulator lane an independent dependence chain), so it
//     vectorizes under -O3 without -ffast-math-style reassociation.
// All three accumulate in the same mathematical order (pure fma/mul-add
// per lane, k-major), so a TU's result can differ from the reference
// kernel only by the usual fused-multiply rounding the conformance tests
// pin down against the naive oracle.
//
// static linkage for the same reason as blocking.hpp: each per-ISA
// translation unit must get its own copy compiled with its own flags.
#pragma once

#include "common/types.hpp"
#include "dense/blocking.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define SPARTS_RESTRICT __restrict__
#else
#define SPARTS_RESTRICT
#endif

#if defined(__AVX512F__)
#include <immintrin.h>
#elif defined(__ARM_NEON) || defined(__aarch64__)
#include <arm_neon.h>
#endif

namespace sparts::dense::detail {

/// acc (MR x NR, column-major) = sum over kc of a_panel(:, l) *
/// b_panel(l, :).  Alpha is pre-folded into the packed B panel.
#if defined(__AVX512F__) && (SPARTS_TILE_MR % 8 == 0)

static inline void micro_kernel(index_t kc, const real_t* SPARTS_RESTRICT ap,
                                const real_t* SPARTS_RESTRICT bp,
                                real_t* SPARTS_RESTRICT acc) {
  constexpr index_t kRows = kMR / 8;  // zmm registers per column
  __m512d c[kRows * kNR];
  for (index_t q = 0; q < kRows * kNR; ++q) c[q] = _mm512_setzero_pd();
  for (index_t l = 0; l < kc; ++l, ap += kMR, bp += kNR) {
    __m512d a[kRows];
    for (index_t r = 0; r < kRows; ++r) a[r] = _mm512_loadu_pd(ap + 8 * r);
    for (index_t j = 0; j < kNR; ++j) {
      const __m512d bv = _mm512_set1_pd(bp[j]);
      for (index_t r = 0; r < kRows; ++r) {
        c[j * kRows + r] = _mm512_fmadd_pd(a[r], bv, c[j * kRows + r]);
      }
    }
  }
  for (index_t j = 0; j < kNR; ++j) {
    for (index_t r = 0; r < kRows; ++r) {
      _mm512_storeu_pd(acc + j * kMR + 8 * r, c[j * kRows + r]);
    }
  }
}

#elif (defined(__ARM_NEON) || defined(__aarch64__)) && (SPARTS_TILE_MR % 2 == 0)

static inline void micro_kernel(index_t kc, const real_t* SPARTS_RESTRICT ap,
                                const real_t* SPARTS_RESTRICT bp,
                                real_t* SPARTS_RESTRICT acc) {
  constexpr index_t kRows = kMR / 2;  // q-registers per column
  float64x2_t c[kRows * kNR];
  for (index_t q = 0; q < kRows * kNR; ++q) c[q] = vdupq_n_f64(0.0);
  for (index_t l = 0; l < kc; ++l, ap += kMR, bp += kNR) {
    float64x2_t a[kRows];
    for (index_t r = 0; r < kRows; ++r) a[r] = vld1q_f64(ap + 2 * r);
    for (index_t j = 0; j < kNR; ++j) {
      const float64x2_t bv = vdupq_n_f64(bp[j]);
      for (index_t r = 0; r < kRows; ++r) {
        c[j * kRows + r] = vfmaq_f64(c[j * kRows + r], a[r], bv);
      }
    }
  }
  for (index_t j = 0; j < kNR; ++j) {
    for (index_t r = 0; r < kRows; ++r) {
      vst1q_f64(acc + j * kMR + 2 * r, c[j * kRows + r]);
    }
  }
}

#else

static inline void micro_kernel(index_t kc, const real_t* SPARTS_RESTRICT ap,
                                const real_t* SPARTS_RESTRICT bp,
                                real_t* SPARTS_RESTRICT acc) {
  real_t c[kMR * kNR] = {};
  for (index_t l = 0; l < kc; ++l, ap += kMR, bp += kNR) {
    for (index_t j = 0; j < kNR; ++j) {
      const real_t bv = bp[j];
      real_t* SPARTS_RESTRICT cj = c + j * kMR;
      for (index_t i = 0; i < kMR; ++i) cj[i] += ap[i] * bv;
    }
  }
  for (index_t q = 0; q < kMR * kNR; ++q) acc[q] = c[q];
}

#endif

}  // namespace sparts::dense::detail
