#include "dense/pivot.hpp"

#include <atomic>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace sparts::dense {

namespace {

// Packed into one atomic word so a concurrent set/read tears nothing:
// callers set the policy before launching ranks, but reads happen from
// every factorization thread.
std::atomic<int> g_mode{static_cast<int>(PivotMode::fail)};
std::atomic<double> g_rel_floor{1e-12};
std::atomic<std::int64_t> g_perturbations{0};

}  // namespace

void set_pivot_policy(const PivotPolicy& policy) {
  g_mode.store(static_cast<int>(policy.mode), std::memory_order_relaxed);
  g_rel_floor.store(policy.rel_floor, std::memory_order_relaxed);
}

PivotPolicy pivot_policy() {
  PivotPolicy p;
  p.mode = static_cast<PivotMode>(g_mode.load(std::memory_order_relaxed));
  p.rel_floor = g_rel_floor.load(std::memory_order_relaxed);
  return p;
}

std::int64_t pivot_perturbations() {
  return g_perturbations.load(std::memory_order_relaxed);
}

void reset_pivot_perturbations() {
  g_perturbations.store(0, std::memory_order_relaxed);
}

real_t resolve_bad_pivot(real_t d, const char* what, index_t column) {
  const PivotPolicy policy = pivot_policy();
  if (policy.mode == PivotMode::fail || !std::isfinite(d)) {
    throw NumericalError(std::string(what) +
                         ": non-positive pivot at column " +
                         std::to_string(column) +
                         (std::isfinite(d) ? "" : " (non-finite)"));
  }
  const double scale = std::max(std::abs(static_cast<double>(d)), 1.0);
  const real_t boosted = static_cast<real_t>(policy.rel_floor * scale);
  g_perturbations.fetch_add(1, std::memory_order_relaxed);
  if (obs::metrics_enabled()) {
    obs::metrics().counter("numeric.pivot_perturbations").add(1);
  }
  return boosted;
}

}  // namespace sparts::dense
