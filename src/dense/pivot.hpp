// Process-wide pivot policy for the Cholesky kernels.
//
// Every pivot in the code base funnels through two sites —
// ref::panel_cholesky (which the tiled kernels and the multifrontal /
// parallel factorizations delegate their diagonal blocks to) and
// numeric::simplicial_cholesky.  Both consult this policy when a computed
// diagonal entry is not safely positive:
//
//   * PivotMode::fail (default): throw NumericalError, the historical
//     behaviour.  A non-SPD input is a caller bug.
//   * PivotMode::perturb: boost the pivot to a small positive floor
//     (rel_floor * max(|d|, scale, 1)) and keep going, counting the
//     perturbation.  The factor is then exact for a nearby matrix; the
//     solver compensates with iterative refinement and reports the solve
//     as "degraded" (see docs/robustness.md).
//
// The policy is process-wide (set before a factorization, read-only
// during) and the perturbation counter is atomic, so concurrent ranks of
// the thread backend can factor panels simultaneously.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace sparts::dense {

enum class PivotMode {
  fail,     ///< throw NumericalError on a non-positive pivot
  perturb,  ///< boost the pivot to a positive floor and keep going
};

struct PivotPolicy {
  PivotMode mode = PivotMode::fail;
  /// Floor for a perturbed pivot, relative to the larger of the offending
  /// diagonal magnitude and 1.
  double rel_floor = 1e-12;
};

void set_pivot_policy(const PivotPolicy& policy);
PivotPolicy pivot_policy();

/// Perturbations applied since the last reset (atomic; safe to read from
/// any thread).
std::int64_t pivot_perturbations();
void reset_pivot_perturbations();

/// Resolve a questionable pivot according to the current policy: returns
/// the value to use (the boosted floor under PivotMode::perturb) or throws
/// NumericalError under PivotMode::fail.  `what` names the kernel for the
/// error message; `column` is the global column index.
real_t resolve_bad_pivot(real_t d, const char* what, index_t column);

}  // namespace sparts::dense
