#include "exec/checked_backend.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>

#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

/// A vector clock: one logical-event counter per rank.
using Clock = std::vector<std::uint64_t>;

/// Componentwise a <= b.
bool clock_leq(const Clock& a, const Clock& b) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

/// Two events are concurrent iff their clocks are incomparable.
bool clock_concurrent(const Clock& a, const Clock& b) {
  return !clock_leq(a, b) && !clock_leq(b, a);
}

}  // namespace

const char* to_string(Finding::Kind kind) {
  switch (kind) {
    case Finding::Kind::wildcard_race:
      return "wildcard-race";
    case Finding::Kind::tag_collision:
      return "tag-collision";
    case Finding::Kind::orphaned_send:
      return "orphaned-send";
    case Finding::Kind::deadlock_cycle:
      return "deadlock-cycle";
  }
  return "unknown";
}

std::int64_t AnalysisReport::count(Finding::Kind kind) const {
  std::int64_t total = 0;
  for (const Finding& f : findings) {
    if (f.kind == kind) total += f.count;
  }
  return total;
}

std::string AnalysisReport::summary() const {
  std::ostringstream oss;
  oss << "checked backend: " << findings.size() << " finding kind(s) over "
      << sends << " send(s), " << recvs << " recv(s) (" << wildcard_recvs
      << " wildcard)";
  if (findings_truncated) oss << " [finding table truncated]";
  if (history_truncated) oss << " [race history truncated]";
  for (const Finding& f : findings) {
    oss << "\n  [" << to_string(f.kind) << "] x" << f.count << ": " << f.detail;
  }
  return oss.str();
}

/// All mutable checker state for one run(), guarded by one mutex.  The
/// simulator calls in from a single thread; the threaded backend from p
/// threads.  Serializing the bookkeeping is fine — this backend trades
/// throughput for diagnostics by design.
struct CheckedBackend::Checker {
  /// One in-flight send on an edge: the sender's clock right after the
  /// send event, for the happens-before race pass.
  struct SendRecord {
    Clock clock;
    std::size_t bytes = 0;
  };

  /// A recv(kAnySource) that matched: replayed against the send history
  /// in the post-run race pass.
  struct WildcardMatch {
    index_t dst = -1;
    int tag = 0;
    index_t matched_src = -1;
    Clock matched_clock;
    double ts = -1.0;  ///< backend-local clock of the match
  };

  using EdgeKey = std::tuple<index_t, index_t, int>;  ///< (src, dst, tag)
  using SinkKey = std::pair<index_t, int>;            ///< (dst, tag)

  explicit Checker(index_t nprocs, const Options& opts)
      : options(opts),
        p(static_cast<std::size_t>(nprocs)),
        clocks(p, Clock(p, 0)),
        traces(p),
        blocked_on(p) {}

  Options options;
  std::size_t p;
  std::mutex mutex;

  std::vector<Clock> clocks;
  /// In-flight sends per edge, FIFO.  Front is what the backend matches.
  std::map<EdgeKey, std::deque<SendRecord>> pending;
  /// How many in-flight sends per (dst, tag), broken down by source —
  /// the online wildcard-race check scans this at match time.
  std::map<SinkKey, std::map<index_t, std::int64_t>> pending_sources;
  /// Every send ever made to (dst, tag), for the post-run race pass.
  std::map<SinkKey, std::vector<std::pair<index_t, Clock>>> history;
  std::size_t history_size = 0;
  std::vector<WildcardMatch> wildcard_matches;

  /// Per-rank ring buffer of recent operations (deadlock context).
  std::vector<std::deque<std::string>> traces;
  /// (src, tag) each rank is currently blocked on, if any.
  std::vector<std::optional<std::pair<index_t, int>>> blocked_on;
  bool deadlock_analyzed = false;
  std::string deadlock_context;

  std::map<std::tuple<Finding::Kind, index_t, index_t, int>, Finding> findings;
  AnalysisReport report;

  /// `ts` is the reporting rank's backend-local clock at detection time,
  /// or a negative value when no rank clock applies (post-run passes);
  /// those findings land at the current end of the trace timeline.
  void record(Finding::Kind kind, index_t src, index_t dst, int tag,
              const std::string& detail, double ts = -1.0) {
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const double when =
          ts >= 0.0 ? tracer.to_timeline(ts) : tracer.timeline();
      tracer.record(static_cast<std::int32_t>(dst), obs::EventKind::instant,
                    obs::Category::check, to_string(kind), when,
                    static_cast<std::int64_t>(src),
                    static_cast<std::int64_t>(tag));
    }
    auto key = std::make_tuple(kind, src, dst, tag);
    auto it = findings.find(key);
    if (it != findings.end()) {
      ++it->second.count;
      return;
    }
    if (findings.size() >= options.max_findings) {
      report.findings_truncated = true;
      return;
    }
    findings.emplace(key, Finding{kind, src, dst, tag, 1, detail});
  }

  void trace(index_t rank, std::string line) {
    auto& t = traces[static_cast<std::size_t>(rank)];
    if (t.size() >= options.trace_depth) t.pop_front();
    t.push_back(std::move(line));
  }

  void on_ctrl_message() {
    std::lock_guard<std::mutex> lock(mutex);
    ++report.ctrl_messages;
  }

  void on_send(index_t rank, index_t dst, int tag, std::size_t bytes,
               double ts = -1.0) {
    std::lock_guard<std::mutex> lock(mutex);
    Clock& c = clocks[static_cast<std::size_t>(rank)];
    ++c[static_cast<std::size_t>(rank)];
    ++report.sends;

    EdgeKey edge{rank, dst, tag};
    auto& fifo = pending[edge];
    if (!fifo.empty()) {
      std::ostringstream oss;
      oss << "rank " << rank << " sent to rank " << dst << " with tag " << tag
          << " while " << fifo.size()
          << " earlier message(s) on the same (src, dst, tag) edge were "
             "still in flight; the tag no longer identifies a unique message";
      record(Finding::Kind::tag_collision, rank, dst, tag, oss.str(), ts);
    }
    fifo.push_back(SendRecord{c, bytes});
    ++pending_sources[SinkKey{dst, tag}][rank];

    if (history_size < options.max_history) {
      history[SinkKey{dst, tag}].emplace_back(rank, c);
      ++history_size;
    } else {
      report.history_truncated = true;
    }

    std::ostringstream oss;
    oss << "send dst=" << dst << " tag=" << tag << " bytes=" << bytes;
    trace(rank, oss.str());
  }

  void on_recv_blocked(index_t rank, index_t src, int tag) {
    std::lock_guard<std::mutex> lock(mutex);
    blocked_on[static_cast<std::size_t>(rank)] = {src, tag};
    std::ostringstream oss;
    oss << "recv-wait src=";
    if (src == kAnySource) {
      oss << "any";
    } else {
      oss << src;
    }
    oss << " tag=" << tag;
    trace(rank, oss.str());
  }

  void on_recv_matched(index_t rank, index_t requested_src, int tag,
                       index_t actual_src, std::size_t bytes,
                       double ts = -1.0) {
    std::lock_guard<std::mutex> lock(mutex);
    blocked_on[static_cast<std::size_t>(rank)].reset();
    ++report.recvs;

    EdgeKey edge{actual_src, rank, tag};
    auto it = pending.find(edge);
    SPARTS_CHECK(it != pending.end() && !it->second.empty(),
                 "checked backend: recv matched a message the checker never "
                 "saw sent (src="
                     << actual_src << ", dst=" << rank << ", tag=" << tag
                     << ")");
    SendRecord rec = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) pending.erase(it);

    SinkKey sink{rank, tag};
    auto ps = pending_sources.find(sink);
    if (ps != pending_sources.end()) {
      auto src_it = ps->second.find(actual_src);
      if (src_it != ps->second.end() && --src_it->second <= 0) {
        ps->second.erase(src_it);
      }
      if (requested_src == kAnySource) {
        // Online race check: another source's message is matchable right
        // now, so the backend's pick decided the outcome.
        for (const auto& [other_src, n] : ps->second) {
          if (other_src == actual_src || n <= 0) continue;
          std::ostringstream oss;
          oss << "rank " << rank << " recv(kAnySource, tag=" << tag
              << ") matched rank " << actual_src << " while a message from "
              << "rank " << other_src
              << " with the same tag was also pending; the match is "
                 "schedule-dependent";
          record(Finding::Kind::wildcard_race, other_src, rank, tag,
                 oss.str(), ts);
        }
      }
      if (ps->second.empty()) pending_sources.erase(ps);
    }

    if (requested_src == kAnySource) {
      ++report.wildcard_recvs;
      wildcard_matches.push_back(
          WildcardMatch{rank, tag, actual_src, rec.clock, ts});
    }

    // Receive event: tick own component, then join the sender's clock.
    Clock& c = clocks[static_cast<std::size_t>(rank)];
    ++c[static_cast<std::size_t>(rank)];
    for (std::size_t i = 0; i < p; ++i) {
      c[i] = std::max(c[i], rec.clock[i]);
    }

    std::ostringstream oss;
    oss << "recv src=" << actual_src << " tag=" << tag << " bytes=" << bytes;
    trace(rank, oss.str());
  }

  /// Called when the inner backend throws DeadlockError out of recv():
  /// snapshot the wait-for graph once and look for a cycle.
  void on_deadlock(index_t rank) {
    std::lock_guard<std::mutex> lock(mutex);
    if (deadlock_analyzed) return;
    deadlock_analyzed = true;

    std::ostringstream ctx;
    ctx << "wait-for snapshot at first deadlock report (rank " << rank
        << " threw):";
    for (std::size_t r = 0; r < p; ++r) {
      ctx << "\n  rank " << r << ": ";
      if (blocked_on[r].has_value()) {
        auto [src, tag] = *blocked_on[r];
        ctx << "blocked in recv(src=";
        if (src == kAnySource) {
          ctx << "any";
        } else {
          ctx << src;
        }
        ctx << ", tag=" << tag << ")";
      } else {
        ctx << "not blocked";
      }
      for (const std::string& line : traces[r]) {
        ctx << "\n    recent: " << line;
      }
    }
    deadlock_context = ctx.str();

    // Each blocked rank waits on at most one concrete source, so the
    // wait-for graph is functional; a stamped walk finds any cycle.
    std::vector<int> mark(p, 0);
    int stamp = 0;
    for (std::size_t start = 0; start < p; ++start) {
      if (mark[start] != 0) continue;
      ++stamp;
      std::size_t r = start;
      std::vector<std::size_t> path;
      while (mark[r] == 0 && blocked_on[r].has_value() &&
             blocked_on[r]->first != kAnySource) {
        mark[r] = stamp;
        path.push_back(r);
        r = static_cast<std::size_t>(blocked_on[r]->first);
      }
      if (mark[r] == stamp) {
        // Walked back into this walk: the suffix of `path` from r is a
        // genuine cycle of ranks each waiting on the next.
        auto cycle_begin = std::find(path.begin(), path.end(), r);
        std::ostringstream oss;
        oss << "deadlock cycle: ";
        for (auto it = cycle_begin; it != path.end(); ++it) {
          auto [src, tag] = *blocked_on[*it];
          oss << "rank " << *it << " waits on rank " << src << " (tag " << tag
              << ") -> ";
        }
        oss << "rank " << r;
        const index_t member = static_cast<index_t>(*cycle_begin);
        record(Finding::Kind::deadlock_cycle, member, member,
               blocked_on[*cycle_begin]->second, oss.str());
        for (auto it = cycle_begin; it != path.end(); ++it) mark[*it] = -1;
      }
      for (std::size_t q : path) {
        if (mark[q] == stamp) mark[q] = -1;
      }
      if (mark[r] == 0) mark[r] = -1;
    }
  }

  /// Post-run work: orphaned sends and the happens-before race pass.
  void finalize() {
    std::lock_guard<std::mutex> lock(mutex);

    for (const auto& [edge, fifo] : pending) {
      if (fifo.empty()) continue;
      auto [src, dst, tag] = edge;
      std::ostringstream oss;
      oss << fifo.size() << " message(s) from rank " << src << " to rank "
          << dst << " with tag " << tag
          << " were sent but never received";
      record(Finding::Kind::orphaned_send, src, dst, tag, oss.str());
      // record() dedups on the edge; fold the in-flight count in directly.
      auto it = findings.find(
          std::make_tuple(Finding::Kind::orphaned_send, src, dst, tag));
      if (it != findings.end()) {
        it->second.count = static_cast<std::int64_t>(fifo.size());
      }
    }

    // Happens-before pass: a wildcard match races with any send of the
    // same (dst, tag) from a different source whose clock is concurrent
    // with the matched send's.  A later send ordered after the recv has
    // joined the matched clock and is filtered out by the comparison.
    for (const WildcardMatch& m : wildcard_matches) {
      auto it = history.find(SinkKey{m.dst, m.tag});
      if (it == history.end()) continue;
      for (const auto& [src, clock] : it->second) {
        if (src == m.matched_src) continue;
        if (!clock_concurrent(clock, m.matched_clock)) continue;
        std::ostringstream oss;
        oss << "rank " << m.dst << " recv(kAnySource, tag=" << m.tag
            << ") matched rank " << m.matched_src << ", but a send from rank "
            << src
            << " with the same tag is concurrent with the matched send "
               "(vector clocks incomparable); another schedule can deliver "
               "the other message first";
        record(Finding::Kind::wildcard_race, src, m.dst, m.tag, oss.str(),
               m.ts);
      }
    }

    report.findings.reserve(findings.size());
    for (auto& [key, f] : findings) {
      report.findings.push_back(std::move(f));
    }
  }
};

/// Per-rank Process decorator: forwards everything, tells the checker
/// about message traffic.
class CheckedBackend::CheckedProcess final : public Process {
 public:
  CheckedProcess(Checker* checker, Process* inner)
      : checker_(checker), inner_(inner) {}

  index_t rank() const override { return inner_->rank(); }
  index_t nprocs() const override { return inner_->nprocs(); }
  double now() const override { return inner_->now(); }
  void compute(double flops, FlopKind kind) override {
    inner_->compute(flops, kind);
  }
  void compute_at(double flops, double seconds_per_flop) override {
    inner_->compute_at(flops, seconds_per_flop);
  }
  void elapse(double seconds) override { inner_->elapse(seconds); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  void send(index_t dst, int tag, std::span<const std::byte> payload) override {
    if (tag == kCtrlTag) {
      // Control-plane traffic (reliability envelope acks/nacks/fins) is
      // at-least-once by design; auditing it against the solver's
      // unique-tag discipline would only produce noise.
      checker_->on_ctrl_message();
      inner_->send(dst, tag, payload);
      return;
    }
    // Record before forwarding so the receiver always finds the record.
    const double ts = obs::Tracer::enabled() ? inner_->now() : -1.0;
    checker_->on_send(inner_->rank(), dst, tag, payload.size(), ts);
    inner_->send(dst, tag, payload);
  }

  ReceivedMessage recv(index_t src, int tag) override {
    const index_t self = inner_->rank();
    if (tag == kCtrlTag) return inner_->recv(src, tag);
    checker_->on_recv_blocked(self, src, tag);
    ReceivedMessage msg;
    try {
      msg = inner_->recv(src, tag);
    } catch (const DeadlockError&) {
      checker_->on_deadlock(self);
      throw;
    }
    const double ts = obs::Tracer::enabled() ? inner_->now() : -1.0;
    checker_->on_recv_matched(self, src, tag, msg.source, msg.payload.size(),
                              ts);
    return msg;
  }

  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    if (!inner_->try_recv(src, tag, out)) return false;
    if (tag != kCtrlTag) {
      const double ts = obs::Tracer::enabled() ? inner_->now() : -1.0;
      checker_->on_recv_matched(inner_->rank(), src, tag, out->source,
                                out->payload.size(), ts);
    }
    return true;
  }

  void poll_wait(double seconds) override { inner_->poll_wait(seconds); }

 private:
  Checker* checker_;
  Process* inner_;
};

CheckedBackend::CheckedBackend(Comm& inner)
    : CheckedBackend(inner, Options{}) {}

CheckedBackend::CheckedBackend(Comm& inner, Options options)
    : inner_(&inner), options_(options) {}

CheckedBackend::CheckedBackend(std::unique_ptr<Comm> inner)
    : CheckedBackend(std::move(inner), Options{}) {}

CheckedBackend::CheckedBackend(std::unique_ptr<Comm> inner, Options options)
    : inner_(inner.get()), owned_(std::move(inner)), options_(options) {
  SPARTS_CHECK(inner_ != nullptr, "checked backend needs an inner backend");
}

CheckedBackend::~CheckedBackend() = default;

RunStats CheckedBackend::run(const std::function<void(Process&)>& spmd) {
  checker_ = std::make_unique<Checker>(inner_->nprocs(), options_);
  Checker* checker = checker_.get();

  RunStats stats;
  std::exception_ptr error;
  try {
    stats = inner_->run([checker, &spmd](Process& p) {
      CheckedProcess cp(checker, &p);
      spmd(cp);
    });
  } catch (...) {
    error = std::current_exception();
  }

  checker_->finalize();
  report_ = std::move(checker_->report);
  const std::string deadlock_context = std::move(checker_->deadlock_context);
  checker_.reset();

  if (error) {
    try {
      std::rethrow_exception(error);
    } catch (const DeadlockError& e) {
      // Re-raise with the checker's wait-for analysis attached.
      std::ostringstream oss;
      oss << e.what();
      for (const Finding& f : report_.findings) {
        if (f.kind == Finding::Kind::deadlock_cycle) {
          oss << "\n" << f.detail;
        }
      }
      if (!deadlock_context.empty()) oss << "\n" << deadlock_context;
      throw DeadlockError(oss.str());
    }
    // Not a deadlock: surface the root cause unchanged.
  }

  if (options_.throw_on_findings && !report_.clean()) {
    throw AnalysisError(report_.summary());
  }
  return stats;
}

}  // namespace sparts::exec
