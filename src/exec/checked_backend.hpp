// The checked execution backend: a decorator over any Comm that watches
// every send/recv crossing the Process interface and reports message-
// passing hazards that the underlying backend would silently tolerate.
//
// The checker maintains one vector clock per rank (ticked on every send
// and recv, joined into the receiver on every match) and a per-edge
// (src, dst, tag) FIFO of in-flight sends.  Both backends deliver
// messages FIFO per (src, dst, tag) — queue order on threads, arrival
// time with a deterministic tie-break on the simulator — so the front of
// the checker's FIFO is always the message the inner backend hands back.
//
// Findings:
//   * wildcard_race   — a recv(kAnySource, tag) whose matched send is
//     concurrent (vector-clock incomparable) with a send of the same tag
//     to the same rank from a *different* source.  Which message wins is
//     schedule-dependent.  Detected both online (another matchable
//     message pending at match time) and in a post-run happens-before
//     pass, so the sequential simulator — which may never have two
//     messages pending at once — still reports the race deterministically.
//   * tag_collision   — a send on an edge whose (src, dst, tag) FIFO is
//     already non-empty.  Legal under the contract (FIFO order holds) but
//     it means the tag does not uniquely identify a message in flight;
//     flagged because the solver's tag discipline promises one message
//     per (edge, tag) at a time.
//   * orphaned_send   — messages still in flight when the run ends:
//     sent, never received.
//   * deadlock_cycle  — when the inner backend declares a deadlock, the
//     checker snapshots which (src, tag) every rank is blocked on, walks
//     the wait-for graph, and reports any cycle together with each
//     involved rank's recent operations.  The rethrown DeadlockError
//     message is enriched with the same context.
//
// A run with Options::throw_on_findings set throws AnalysisError at the
// end of run() if any finding was recorded.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/process.hpp"

namespace sparts::exec {

/// One hazard discovered by the checked backend.  Findings are
/// deduplicated on (kind, src, dst, tag); `count` is how many concrete
/// occurrences were merged into this record.
struct Finding {
  enum class Kind {
    wildcard_race,
    tag_collision,
    orphaned_send,
    deadlock_cycle,
  };

  Kind kind = Kind::wildcard_race;
  index_t src = -1;  ///< sending rank (or a cycle member for deadlocks)
  index_t dst = -1;  ///< receiving rank
  int tag = 0;
  std::int64_t count = 1;
  std::string detail;  ///< human-readable diagnosis with ranks and tags
};

const char* to_string(Finding::Kind kind);

/// Everything the checker learned from one run().
struct AnalysisReport {
  std::vector<Finding> findings;
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t wildcard_recvs = 0;
  /// Messages on the reserved control tag (exec::kCtrlTag).  The
  /// reliability envelope's ack/nack/fin traffic is at-least-once by
  /// design, so it is counted here but exempt from the FIFO/race/orphan
  /// bookkeeping that assumes the solver's one-message-per-(edge, tag)
  /// discipline.
  std::int64_t ctrl_messages = 0;
  /// True if the finding-deduplication table hit Options::max_findings
  /// and later findings were dropped.
  bool findings_truncated = false;
  /// True if the send history kept for the post-run happens-before pass
  /// hit Options::max_history and the race pass is incomplete.
  bool history_truncated = false;

  bool clean() const { return findings.empty(); }
  std::int64_t count(Finding::Kind kind) const;
  /// Multi-line human-readable report (one line per finding plus totals).
  std::string summary() const;
};

/// Decorator Comm: forwards to an inner backend and checks the traffic.
class CheckedBackend final : public Comm {
 public:
  struct Options {
    /// Cap on distinct (kind, src, dst, tag) findings kept.
    std::size_t max_findings = 256;
    /// Per-rank recent-operation ring buffer depth (deadlock context).
    std::size_t trace_depth = 8;
    /// Cap on send records kept for the post-run happens-before pass.
    std::size_t max_history = 1 << 20;
    /// Throw AnalysisError from run() if the report is not clean.
    bool throw_on_findings = false;
  };

  /// Wrap a borrowed backend (caller keeps ownership and lifetime).
  explicit CheckedBackend(Comm& inner);
  CheckedBackend(Comm& inner, Options options);
  /// Wrap and own a backend.
  explicit CheckedBackend(std::unique_ptr<Comm> inner);
  CheckedBackend(std::unique_ptr<Comm> inner, Options options);
  ~CheckedBackend() override;

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return inner_->nprocs(); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  /// Report of the most recent run() (empty before the first run).
  const AnalysisReport& report() const { return report_; }

 private:
  class CheckedProcess;
  struct Checker;

  Comm* inner_;
  std::unique_ptr<Comm> owned_;
  Options options_;
  std::unique_ptr<Checker> checker_;  ///< live during run()
  AnalysisReport report_;
};

}  // namespace sparts::exec
