#include "exec/collectives.hpp"

#include <bit>
#include <cstring>

#include "common/error.hpp"
#include "obs/span.hpp"

namespace sparts::exec {

namespace {

index_t log2_exact(index_t q) {
  SPARTS_CHECK(q >= 1 && (q & (q - 1)) == 0,
               "group size must be a power of two, got " << q);
  return static_cast<index_t>(std::bit_width(static_cast<std::uint64_t>(q)) -
                              1);
}

/// A routed packet inside all_to_all / gather: (src, dest, payload).
struct Packet {
  index_t src;
  index_t dest;
  std::vector<real_t> data;
};

Payload serialize(const std::vector<Packet>& packets) {
  std::size_t bytes = 0;
  for (const auto& p : packets) {
    bytes += 2 * sizeof(index_t) + sizeof(index_t) +
             p.data.size() * sizeof(real_t);
  }
  Payload out(bytes);
  std::size_t off = 0;
  auto put = [&](const void* src, std::size_t len) {
    // len == 0 carries a null src (empty vector::data()); memcpy's
    // pointer arguments must be non-null even then.
    if (len != 0) std::memcpy(out.data() + off, src, len);
    off += len;
  };
  for (const auto& p : packets) {
    const index_t len = static_cast<index_t>(p.data.size());
    put(&p.src, sizeof(index_t));
    put(&p.dest, sizeof(index_t));
    put(&len, sizeof(index_t));
    put(p.data.data(), p.data.size() * sizeof(real_t));
  }
  return out;
}

std::vector<Packet> deserialize(std::span<const std::byte> bytes) {
  std::vector<Packet> packets;
  std::size_t off = 0;
  auto get = [&](void* dst, std::size_t len) {
    SPARTS_CHECK(off + len <= bytes.size(), "truncated packet stream");
    if (len != 0) std::memcpy(dst, bytes.data() + off, len);
    off += len;
  };
  while (off < bytes.size()) {
    Packet p;
    index_t len = 0;
    get(&p.src, sizeof(index_t));
    get(&p.dest, sizeof(index_t));
    get(&len, sizeof(index_t));
    p.data.resize(static_cast<std::size_t>(len));
    get(p.data.data(), p.data.size() * sizeof(real_t));
    packets.push_back(std::move(p));
  }
  return packets;
}

}  // namespace

void broadcast(Process& proc, const Group& g, std::vector<real_t>& data,
               int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "broadcast",
                    static_cast<std::int64_t>(data.size()),
                    static_cast<std::int64_t>(q));
  if (q == 1) return;
  const index_t logq = log2_exact(q);
  const index_t me = g.local(proc.rank());
  SPARTS_CHECK(me >= 0 && me < q, "rank not in group");

  index_t first_send_dim = 0;
  if (me != 0) {
    const index_t msb = static_cast<index_t>(
        std::bit_width(static_cast<std::uint64_t>(me)) - 1);
    data = proc.recv_values<real_t>(g.world(me ^ (index_t{1} << msb)), tag);
    first_send_dim = msb + 1;
  }
  for (index_t k = first_send_dim; k < logq; ++k) {
    const index_t partner = me | (index_t{1} << k);
    if (partner < q && partner != me) {
      proc.send_values<real_t>(g.world(partner), tag, data);
    }
  }
}

void broadcast_from(Process& proc, const Group& g, index_t root,
                    std::vector<real_t>& data, int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "broadcast_from",
                    static_cast<std::int64_t>(data.size()),
                    static_cast<std::int64_t>(q));
  if (q == 1) return;
  SPARTS_CHECK(root >= 0 && root < q, "broadcast root out of group");
  const index_t logq = log2_exact(q);
  const index_t me_abs = g.local(proc.rank());
  // Relabel so the root is relative rank 0; the binomial tree pattern is
  // unchanged.
  const index_t me = (me_abs - root + q) % q;
  auto world_of_rel = [&](index_t rel) {
    return g.world((rel + root) % q);
  };

  index_t first_send_dim = 0;
  if (me != 0) {
    const index_t msb = static_cast<index_t>(
        std::bit_width(static_cast<std::uint64_t>(me)) - 1);
    data = proc.recv_values<real_t>(world_of_rel(me ^ (index_t{1} << msb)),
                                    tag);
    first_send_dim = msb + 1;
  }
  for (index_t k = first_send_dim; k < logq; ++k) {
    const index_t partner = me | (index_t{1} << k);
    if (partner < q && partner != me) {
      proc.send_values<real_t>(world_of_rel(partner), tag, data);
    }
  }
}

std::vector<std::vector<real_t>> allgather(Process& proc, const Group& g,
                                           std::vector<real_t> mine,
                                           int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "allgather",
                    static_cast<std::int64_t>(mine.size()),
                    static_cast<std::int64_t>(q));
  const index_t me = g.local(proc.rank());
  std::vector<std::vector<real_t>> result(static_cast<std::size_t>(q));
  result[static_cast<std::size_t>(me)] = std::move(mine);
  if (q == 1) return result;
  // Ring: in step k, send the piece originated by (me - k) mod q to the
  // next rank and receive the piece originated by (me - k - 1) mod q.
  // Each step gets its own tag (tag + k): a fast rank may push step k+1
  // into a neighbor's mailbox before the neighbor consumed step k, and
  // two in-flight messages must never share (src, dst, tag).
  const index_t next = g.world((me + 1) % q);
  const index_t prev = g.world((me + q - 1) % q);
  for (index_t k = 0; k < q - 1; ++k) {
    const index_t out_origin = (me - k + q) % q;
    const index_t in_origin = (me - k - 1 + 2 * q) % q;
    proc.send_values<real_t>(next, tag + static_cast<int>(k),
                             result[static_cast<std::size_t>(out_origin)]);
    result[static_cast<std::size_t>(in_origin)] =
        proc.recv_values<real_t>(prev, tag + static_cast<int>(k));
  }
  return result;
}

void reduce_sum(Process& proc, const Group& g, std::vector<real_t>& data,
                int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "reduce_sum",
                    static_cast<std::int64_t>(data.size()),
                    static_cast<std::int64_t>(q));
  if (q == 1) return;
  const index_t logq = log2_exact(q);
  const index_t me = g.local(proc.rank());
  SPARTS_CHECK(me >= 0 && me < q, "rank not in group");

  for (index_t k = 0; k < logq; ++k) {
    const index_t bit = index_t{1} << k;
    if ((me & bit) != 0) {
      proc.send_values<real_t>(g.world(me ^ bit), tag, data);
      return;
    }
    const index_t partner = me | bit;
    if (partner < q) {
      auto other = proc.recv_values<real_t>(g.world(partner), tag);
      SPARTS_CHECK(other.size() == data.size(),
                   "reduce_sum length mismatch");
      proc.compute(static_cast<double>(data.size()), FlopKind::blas1);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
    }
  }
}

void reduce_sum_to(Process& proc, const Group& g, index_t root,
                   std::vector<real_t>& data, int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "reduce_sum_to",
                    static_cast<std::int64_t>(data.size()),
                    static_cast<std::int64_t>(q));
  if (q == 1) return;
  SPARTS_CHECK(root >= 0 && root < q, "reduce root out of group");
  const index_t logq = log2_exact(q);
  const index_t me = (g.local(proc.rank()) - root + q) % q;
  auto world_of_rel = [&](index_t rel) { return g.world((rel + root) % q); };
  for (index_t k = 0; k < logq; ++k) {
    const index_t bit = index_t{1} << k;
    if ((me & bit) != 0) {
      proc.send_values<real_t>(world_of_rel(me ^ bit), tag, data);
      return;
    }
    const index_t partner = me | bit;
    if (partner < q) {
      auto other = proc.recv_values<real_t>(world_of_rel(partner), tag);
      SPARTS_CHECK(other.size() == data.size(),
                   "reduce_sum_to length mismatch");
      proc.compute(static_cast<double>(data.size()), FlopKind::blas1);
      for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
    }
  }
}

void allreduce_sum(Process& proc, const Group& g, std::vector<real_t>& data,
                   int tag) {
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "allreduce_sum",
                    static_cast<std::int64_t>(data.size()),
                    static_cast<std::int64_t>(g.count));
  reduce_sum(proc, g, data, tag);
  broadcast(proc, g, data, tag + 1);
}

void barrier(Process& proc, const Group& g, int tag) {
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "barrier", 0,
                    static_cast<std::int64_t>(g.count));
  std::vector<real_t> token(1, 0.0);
  allreduce_sum(proc, g, token, tag);
}

std::vector<std::vector<real_t>> all_to_all_personalized(
    Process& proc, const Group& g, std::vector<std::vector<real_t>> outgoing,
    int tag) {
  const index_t q = g.count;
  SPARTS_CHECK(static_cast<index_t>(outgoing.size()) == q,
               "need one outgoing buffer per group rank");
  std::int64_t out_words = 0;
  for (const auto& v : outgoing) {
    out_words += static_cast<std::int64_t>(v.size());
  }
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "all_to_all_personalized",
                    out_words, static_cast<std::int64_t>(q));
  const index_t me = g.local(proc.rank());
  SPARTS_CHECK(me >= 0 && me < q, "rank not in group");

  std::vector<Packet> held;
  held.reserve(static_cast<std::size_t>(q));
  for (index_t r = 0; r < q; ++r) {
    held.push_back(Packet{me, r, std::move(outgoing[static_cast<std::size_t>(r)])});
  }

  const index_t logq = log2_exact(q);
  for (index_t k = 0; k < logq; ++k) {
    const index_t bit = index_t{1} << k;
    const index_t partner = me ^ bit;

    std::vector<Packet> to_send;
    std::vector<Packet> to_keep;
    for (auto& p : held) {
      if (((p.dest ^ me) & bit) != 0) {
        to_send.push_back(std::move(p));
      } else {
        to_keep.push_back(std::move(p));
      }
    }
    held = std::move(to_keep);

    // Pairwise exchange: the lower rank sends first; arrival-time matching
    // in the simulator makes the order irrelevant for correctness, but a
    // fixed order keeps traces readable.
    Payload payload = serialize(to_send);
    if (me < partner) {
      proc.send_owned(g.world(partner), tag + static_cast<int>(k),
                      std::move(payload));
      auto msg = proc.recv(g.world(partner), tag + static_cast<int>(k));
      for (auto& p : deserialize(msg.payload)) held.push_back(std::move(p));
    } else {
      auto msg = proc.recv(g.world(partner), tag + static_cast<int>(k));
      proc.send_owned(g.world(partner), tag + static_cast<int>(k),
                      std::move(payload));
      for (auto& p : deserialize(msg.payload)) held.push_back(std::move(p));
    }
  }

  std::vector<std::vector<real_t>> incoming(static_cast<std::size_t>(q));
  for (auto& p : held) {
    SPARTS_CHECK(p.dest == me, "routing error in all_to_all_personalized");
    incoming[static_cast<std::size_t>(p.src)] = std::move(p.data);
  }
  return incoming;
}

std::vector<std::vector<real_t>> gather(Process& proc, const Group& g,
                                        std::vector<real_t> mine, int tag) {
  const index_t q = g.count;
  SPARTS_TRACE_SPAN(proc, obs::Category::collective, "gather",
                    static_cast<std::int64_t>(mine.size()),
                    static_cast<std::int64_t>(q));
  const index_t me = g.local(proc.rank());
  SPARTS_CHECK(me >= 0 && me < q, "rank not in group");

  std::vector<Packet> held;
  held.push_back(Packet{me, 0, std::move(mine)});
  const index_t logq = log2_exact(q);
  for (index_t k = 0; k < logq; ++k) {
    const index_t bit = index_t{1} << k;
    if ((me & bit) != 0) {
      proc.send(g.world(me ^ bit), tag + static_cast<int>(k),
                serialize(held));
      held.clear();
      break;
    }
    const index_t partner = me | bit;
    if (partner < q) {
      auto msg = proc.recv(g.world(partner), tag + static_cast<int>(k));
      for (auto& p : deserialize(msg.payload)) held.push_back(std::move(p));
    }
  }

  std::vector<std::vector<real_t>> result;
  if (me == 0) {
    result.resize(static_cast<std::size_t>(q));
    for (auto& p : held) {
      result[static_cast<std::size_t>(p.src)] = std::move(p.data);
    }
  }
  return result;
}

}  // namespace sparts::exec
