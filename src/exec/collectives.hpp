// Collective operations layered on send/recv with the classic hypercube
// algorithms (Kumar et al., ch. 4).  Each collective operates on a
// contiguous group of ranks [base, base + count) of the machine, because
// subtree-to-subcube mapping repeatedly runs collectives on subcubes.
//
// Backend-agnostic: only the Process contract is used, so the same
// collectives run simulated or on real threads.
//
// Tag discipline: a collective with base tag t may use tags t .. t + K,
// where K is the number of internal rounds (ring steps for allgather,
// hypercube rounds for all_to_all / gather, +1 for allreduce / barrier).
// Callers must space base tags so concurrent collectives never overlap;
// no two in-flight messages then share a (src, dst, tag) triple, which
// is what exec::CheckedBackend verifies.
//
// Costs under the simulated backend (unit-tested in test_sim_collectives):
//   broadcast / reduce:  log q * (t_s + m t_w)   (+ hop terms)
//   all_to_all_personalized (hypercube pairwise): sum over log q rounds.
//   barrier: reduce + broadcast of an empty token.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "exec/process.hpp"

namespace sparts::exec {

/// A group of ranks acting as a q-processor subcube: members are
/// base, base + stride, ..., base + (count-1)*stride.  Subtree-to-subcube
/// groups are contiguous (stride 1); the grid columns of a 2-D processor
/// grid are strided.  q must be a power of two for the hypercube
/// algorithms.
struct Group {
  index_t base = 0;
  index_t count = 1;
  index_t stride = 1;

  index_t local(index_t world_rank) const {
    return (world_rank - base) / stride;
  }
  index_t world(index_t local_rank) const {
    return base + local_rank * stride;
  }
  bool contains(index_t world_rank) const {
    if (world_rank < base) return false;
    const index_t d = world_rank - base;
    return d % stride == 0 && d / stride < count;
  }
};

/// Broadcast `data` from group-local root 0 to all ranks of the group.
/// On non-root ranks, `data` is resized and overwritten.
void broadcast(Process& proc, const Group& g, std::vector<real_t>& data,
               int tag);

/// Broadcast from an arbitrary group-local root.
void broadcast_from(Process& proc, const Group& g, index_t root,
                    std::vector<real_t>& data, int tag);

/// Ring all-gather of variable-length contributions: returns result[r] =
/// the vector contributed by group-local rank r, on every rank.  Uses
/// tags tag .. tag + count - 2 (one per ring step).
std::vector<std::vector<real_t>> allgather(Process& proc, const Group& g,
                                           std::vector<real_t> mine, int tag);

/// Element-wise sum-reduction to group-local root 0.  All ranks pass a
/// vector of identical length; the root's vector holds the sum afterwards.
void reduce_sum(Process& proc, const Group& g, std::vector<real_t>& data,
                int tag);

/// Sum-reduction to an arbitrary group-local root.
void reduce_sum_to(Process& proc, const Group& g, index_t root,
                   std::vector<real_t>& data, int tag);

/// reduce_sum followed by broadcast.
void allreduce_sum(Process& proc, const Group& g, std::vector<real_t>& data,
                   int tag);

/// Synchronize the group: no rank returns before every rank has entered.
void barrier(Process& proc, const Group& g, int tag);

/// All-to-all personalized exchange: `outgoing[r]` is this rank's data for
/// group-local rank r.  Returns incoming[r] = data sent by group-local
/// rank r to this rank.  Hypercube pairwise-exchange algorithm
/// (log q rounds, each rank forwarding half its accumulated load).
std::vector<std::vector<real_t>> all_to_all_personalized(
    Process& proc, const Group& g, std::vector<std::vector<real_t>> outgoing,
    int tag);

/// Gather variable-length vectors to group-local root 0:
/// root receives contributions[r] from each rank r (its own included).
std::vector<std::vector<real_t>> gather(Process& proc, const Group& g,
                                        std::vector<real_t> mine, int tag);

}  // namespace sparts::exec
