// The analytic cost model shared by every execution backend.
//
// This is exactly the model the paper's analysis is written in (Kumar,
// Grama, Gupta, Karypis, "Introduction to Parallel Computing"):
//   * computation:    flops * t_c        (t_c depends on the kernel class)
//   * point-to-point: t_s + l*t_h + m*t_w  (startup, per-hop, per-word)
//
// The simulated backend (simpar::Machine) uses it to advance virtual
// clocks; the threaded backend carries it only so SPMD code that asks for
// per-flop hints (e.g. panel_flop for BLAS-2/3 interpolation) works
// unchanged — real time there comes from the wall clock.
//
// The defaults are calibrated against the paper's Cray T3D observations:
// one processor sustains ~6.2 MFLOPS on a 1-RHS sparse triangular solve
// (BLAS-2-like), ~30 MFLOPS with 30 right-hand sides, and ~34.6 MFLOPS in
// supernodal factorization (BLAS-3) — see bench_calibration.
#pragma once

#include "common/types.hpp"

namespace sparts::exec {

/// Kernel class for per-flop costs.
enum class FlopKind {
  blas1,  ///< vector-vector: dominated by memory traffic
  blas2,  ///< matrix-vector: one operand reused
  blas3,  ///< matrix-matrix: cache-blocked, near peak
};

struct CostModel {
  // Seconds per flop by kernel class.
  double t_c_blas1 = 0.20e-6;   ///< ~5 MFLOPS
  double t_c_blas2 = 0.16e-6;   ///< ~6.2 MFLOPS
  double t_c_blas3 = 0.029e-6;  ///< ~34.5 MFLOPS

  // Communication parameters.
  double t_s = 40e-6;    ///< message startup (seconds)
  double t_w = 0.07e-6;  ///< per 8-byte word transfer time
  double t_h = 0.5e-6;   ///< per-hop latency

  /// Local memory movement (gather/scatter/copy), per 8-byte word.  Much
  /// cheaper than a BLAS-1 flop: index arithmetic is done once per row and
  /// amortizes over the right-hand sides (paper §5).
  double t_mem = 0.04e-6;

  double per_flop(FlopKind kind) const {
    switch (kind) {
      case FlopKind::blas1: return t_c_blas1;
      case FlopKind::blas2: return t_c_blas2;
      case FlopKind::blas3: return t_c_blas3;
    }
    return t_c_blas1;
  }

  /// Per-flop cost of a dense panel operation applied to m right-hand
  /// sides: BLAS-2 speed for m = 1, approaching BLAS-3 speed as the
  /// per-column index arithmetic amortizes (paper §5: "the use of multiple
  /// right-hand side vectors enhances performance due to effective use of
  /// BLAS-3").
  double panel_flop(index_t m) const {
    if (m <= 0) return t_c_blas2;
    return t_c_blas3 + (t_c_blas2 - t_c_blas3) / static_cast<double>(m);
  }

  /// Time the sender is occupied by an m-word message.
  double send_occupancy(nnz_t words) const {
    return t_s + static_cast<double>(words) * t_w;
  }

  /// In-flight latency after the sender releases the message.
  double network_latency(index_t hops) const {
    return static_cast<double>(hops) * t_h;
  }

  /// The T3D-calibrated default.
  static CostModel t3d() { return CostModel{}; }

  /// Free communication — useful in unit tests isolating computation.
  static CostModel zero_comm() {
    CostModel c;
    c.t_s = c.t_w = c.t_h = 0.0;
    c.t_mem = 0.0;
    return c;
  }

  /// Unit costs (t_s = 1, t_w = 1, t_h = 0, flops free): lets tests assert
  /// closed-form communication counts exactly.
  static CostModel unit_comm() {
    CostModel c;
    c.t_c_blas1 = c.t_c_blas2 = c.t_c_blas3 = 0.0;
    c.t_s = 1.0;
    c.t_w = 1.0;
    c.t_h = 0.0;
    c.t_mem = 0.0;
    return c;
  }
};

}  // namespace sparts::exec
