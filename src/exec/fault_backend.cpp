#include "exec/fault_backend.hpp"

#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer.  Good enough to
/// turn (seed, rank, counter) into independent uniform draws.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0, 1) from the plan seed and a per-message identity.
double u01(std::uint64_t seed, index_t rank, std::int64_t counter) {
  const std::uint64_t h =
      mix64(seed ^ mix64(static_cast<std::uint64_t>(rank) * 0x100000001b3ULL +
                         static_cast<std::uint64_t>(counter)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_double(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const double d = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return d;
  } catch (const std::exception&) {
    throw InvalidArgument("FaultPlan: bad numeric value for " + key + ": " +
                          v);
  }
}

std::int64_t parse_int(const std::string& key, const std::string& v) {
  try {
    std::size_t pos = 0;
    const long long i = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return static_cast<std::int64_t>(i);
  } catch (const std::exception&) {
    throw InvalidArgument("FaultPlan: bad integer value for " + key + ": " +
                          v);
  }
}

double parse_prob(const std::string& key, const std::string& v) {
  const double p = parse_double(key, v);
  if (p < 0.0 || p > 1.0) {
    throw InvalidArgument("FaultPlan: " + key + " must be in [0, 1], got " +
                          v);
  }
  return p;
}

void record_fault(const char* name, index_t rank, index_t peer, int tag) {
  if (obs::metrics_enabled()) {
    obs::metrics().counter(std::string("faults.injected.") + name).add();
  }
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().record(static_cast<std::int32_t>(rank),
                                   obs::EventKind::instant,
                                   obs::Category::fault, name,
                                   obs::Tracer::instance().timeline(),
                                   static_cast<std::int64_t>(peer),
                                   static_cast<std::int64_t>(tag));
  }
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos) {
      throw InvalidArgument("FaultPlan: expected key=value, got: " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = static_cast<std::uint64_t>(parse_int(key, value));
    } else if (key == "drop") {
      plan.drop = parse_prob(key, value);
    } else if (key == "dup") {
      plan.dup = parse_prob(key, value);
    } else if (key == "delay") {
      const auto colon = value.find(':');
      if (colon == std::string::npos) {
        throw InvalidArgument("FaultPlan: delay expects prob:seconds, got: " +
                              value);
      }
      plan.delay_prob = parse_prob(key, value.substr(0, colon));
      plan.delay_seconds = parse_double(key, value.substr(colon + 1));
      if (plan.delay_seconds < 0.0) {
        throw InvalidArgument("FaultPlan: delay seconds must be >= 0");
      }
    } else if (key == "reorder") {
      plan.reorder = parse_prob(key, value);
    } else if (key == "stall") {
      const auto at = value.find('@');
      if (at == std::string::npos) {
        throw InvalidArgument("FaultPlan: stall expects rank@seconds, got: " +
                              value);
      }
      plan.stall_rank = static_cast<index_t>(
          parse_int(key, value.substr(0, at)));
      plan.stall_seconds = parse_double(key, value.substr(at + 1));
      if (plan.stall_seconds < 0.0) {
        throw InvalidArgument("FaultPlan: stall seconds must be >= 0");
      }
    } else if (key == "crash") {
      const auto at = value.find('@');
      if (at == std::string::npos) {
        throw InvalidArgument(
            "FaultPlan: crash expects rank@op-count, got: " + value);
      }
      plan.crash_rank = static_cast<index_t>(
          parse_int(key, value.substr(0, at)));
      plan.crash_after = parse_int(key, value.substr(at + 1));
    } else if (key == "max_faults") {
      plan.max_faults = parse_int(key, value);
    } else {
      throw InvalidArgument("FaultPlan: unknown key: " + key);
    }
  }
  if (plan.drop + plan.dup + plan.delay_prob + plan.reorder > 1.0) {
    throw InvalidArgument(
        "FaultPlan: drop+dup+delay+reorder probabilities exceed 1");
  }
  return plan;
}

std::string FaultPlan::summary() const {
  std::ostringstream oss;
  oss << "seed=" << seed;
  if (drop > 0.0) oss << " drop=" << drop;
  if (dup > 0.0) oss << " dup=" << dup;
  if (delay_prob > 0.0) {
    oss << " delay=" << delay_prob << ":" << delay_seconds << "s";
  }
  if (reorder > 0.0) oss << " reorder=" << reorder;
  if (stall_rank >= 0) {
    oss << " stall=rank" << stall_rank << "@" << stall_seconds << "s";
  }
  if (crash_rank >= 0) {
    oss << " crash=rank" << crash_rank << "@op" << crash_after;
  }
  if (max_faults >= 0) oss << " max_faults=" << max_faults;
  return oss.str();
}

std::string FaultStats::summary() const {
  std::ostringstream oss;
  oss << "injected " << injected() << " fault(s): " << drops << " drop(s), "
      << dups << " dup(s), " << delays << " delay(s), " << reorders
      << " reorder(s), " << stalls << " stall(s), " << crashes
      << " crash(es)";
  return oss.str();
}

// ---------------------------------------------------------------------------
// FaultyProcess
// ---------------------------------------------------------------------------

/// Per-rank Process decorator.  All state is owned by the rank's thread;
/// the backend only reads the stats after merge() under its mutex.
class FaultyBackend::FaultyProcess final : public Process {
 public:
  FaultyProcess(FaultyBackend* backend, Process* inner)
      : backend_(backend), plan_(backend->plan_), inner_(inner) {}

  index_t rank() const override { return inner_->rank(); }
  index_t nprocs() const override { return inner_->nprocs(); }
  double now() const override { return inner_->now(); }
  void compute(double flops, FlopKind kind) override {
    inner_->compute(flops, kind);
  }
  void compute_at(double flops, double seconds_per_flop) override {
    inner_->compute_at(flops, seconds_per_flop);
  }
  void elapse(double seconds) override { inner_->elapse(seconds); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    on_operation();
    release_due(now());
    const double r = budget_left()
                         ? u01(plan_.seed, rank(), sends_++)
                         : 2.0;  // > any cumulative probability: no fault
    if (r < plan_.drop) {
      ++stats_.drops;
      record_fault("drop", rank(), dst, tag);
      release_reorder_slot();
      return;
    }
    if (r < plan_.drop + plan_.dup) {
      ++stats_.dups;
      record_fault("dup", rank(), dst, tag);
      inner_->send(dst, tag, payload);
      inner_->send(dst, tag, payload);
      release_reorder_slot();
      return;
    }
    if (r < plan_.drop + plan_.dup + plan_.delay_prob) {
      ++stats_.delays;
      record_fault("delay", rank(), dst, tag);
      held_.push_back(Held{dst, tag, now() + plan_.delay_seconds,
                           std::vector<std::byte>(payload.begin(),
                                                  payload.end())});
      return;
    }
    if (r < plan_.drop + plan_.dup + plan_.delay_prob + plan_.reorder &&
        !reorder_slot_.has_value()) {
      ++stats_.reorders;
      record_fault("reorder", rank(), dst, tag);
      reorder_slot_ = Held{dst, tag, 0.0,
                           std::vector<std::byte>(payload.begin(),
                                                  payload.end())};
      return;
    }
    inner_->send(dst, tag, payload);
    // A message was waiting to be overtaken: it goes out after this one,
    // completing the swap.
    release_reorder_slot();
  }

  ReceivedMessage recv(index_t src, int tag) override {
    on_operation();
    // A blocking recv may wait on a peer that in turn waits on one of our
    // held messages; release everything rather than risk a deadlock the
    // plan did not ask for.
    release_all();
    return inner_->recv(src, tag);
  }

  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    release_due(now());
    return inner_->try_recv(src, tag, out);
  }

  void poll_wait(double seconds) override {
    inner_->poll_wait(seconds);
    release_due(now());
  }

  /// End-of-body flush: anything still held goes out so a fault plan can
  /// delay but never silently un-send a message the plan said to deliver.
  void finish() { release_all(); }

  const FaultStats& stats() const { return stats_; }

 private:
  struct Held {
    index_t dst;
    int tag;
    double release_at;
    std::vector<std::byte> payload;
  };

  bool budget_left() const {
    return plan_.max_faults < 0 ||
           stats_.drops + stats_.dups + stats_.delays + stats_.reorders <
               plan_.max_faults;
  }

  /// Crash/stall triggers, checked at every send/recv operation.
  void on_operation() {
    ++ops_;
    if (plan_.stall_rank == rank() && !stalled_ &&
        ops_ >= plan_.stall_after) {
      stalled_ = true;
      ++stats_.stalls;
      record_fault("stall", rank(), rank(), 0);
      inner_->poll_wait(plan_.stall_seconds);
    }
    if (plan_.crash_rank == rank() && ops_ >= plan_.crash_after) {
      ++stats_.crashes;
      record_fault("crash", rank(), rank(), 0);
      backend_->merge(stats_);
      stats_ = FaultStats{};  // merged; don't double-count in finish path
      throw InjectedFault(
          "injected crash on rank " + std::to_string(rank()) + " after " +
          std::to_string(ops_) + " operations (fault plan: " +
          plan_.summary() + ")");
    }
  }

  void release_due(double time_now) {
    for (std::size_t i = 0; i < held_.size();) {
      if (held_[i].release_at <= time_now) {
        inner_->send(held_[i].dst, held_[i].tag, held_[i].payload);
        held_.erase(held_.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }

  void release_reorder_slot() {
    if (!reorder_slot_.has_value()) return;
    inner_->send(reorder_slot_->dst, reorder_slot_->tag,
                 reorder_slot_->payload);
    reorder_slot_.reset();
  }

  void release_all() {
    release_reorder_slot();
    for (const Held& h : held_) inner_->send(h.dst, h.tag, h.payload);
    held_.clear();
  }

  FaultyBackend* backend_;
  const FaultPlan plan_;
  Process* inner_;
  FaultStats stats_;
  std::int64_t ops_ = 0;
  std::int64_t sends_ = 0;
  bool stalled_ = false;
  std::vector<Held> held_;
  std::optional<Held> reorder_slot_;
};

// ---------------------------------------------------------------------------
// FaultyBackend
// ---------------------------------------------------------------------------

FaultyBackend::FaultyBackend(std::unique_ptr<Comm> inner, FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan) {
  SPARTS_CHECK(inner_ != nullptr, "faulty backend needs an inner backend");
  if (plan_.crash_rank >= 0) {
    SPARTS_CHECK(plan_.crash_rank < inner_->nprocs(),
                 "FaultPlan crash rank " << plan_.crash_rank
                                         << " out of range");
  }
  if (plan_.stall_rank >= 0) {
    SPARTS_CHECK(plan_.stall_rank < inner_->nprocs(),
                 "FaultPlan stall rank " << plan_.stall_rank
                                         << " out of range");
  }
}

FaultyBackend::~FaultyBackend() = default;

void FaultyBackend::merge(const FaultStats& rank_stats) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.drops += rank_stats.drops;
  stats_.dups += rank_stats.dups;
  stats_.delays += rank_stats.delays;
  stats_.reorders += rank_stats.reorders;
  stats_.stalls += rank_stats.stalls;
  stats_.crashes += rank_stats.crashes;
}

RunStats FaultyBackend::run(const std::function<void(Process&)>& spmd) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_ = FaultStats{};
  }
  FaultyBackend* self = this;
  return inner_->run([self, &spmd](Process& p) {
    FaultyProcess fp(self, &p);
    try {
      spmd(fp);
      fp.finish();
    } catch (...) {
      self->merge(fp.stats());
      throw;
    }
    self->merge(fp.stats());
  });
}

}  // namespace sparts::exec
