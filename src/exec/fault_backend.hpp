// Deterministic fault injection for any exec backend.
//
// FaultyBackend is a Comm decorator (the same pattern as CheckedBackend):
// it wraps an inner backend and perturbs the message traffic crossing the
// Process interface according to a seeded FaultPlan — message drop,
// duplication, delay, and reordering, plus one-shot rank stall and rank
// crash events.  Every per-message decision is a pure function of
// (seed, rank, per-rank send counter), so a scenario replays identically
// on the simulator and, up to wall-clock timing, on the thread backend.
//
// Faults are injected *below* the reliability envelope (exec/reliable.hpp)
// in the solver's faulty stack, so the envelope sees drops/dups/delays and
// must recover from them; control traffic (acks/nacks) passes through the
// fault layer too and can itself be lost, which is what the bounded-retry
// budget is for.
//
// Delay semantics: a delayed message is held inside the *sender's* fault
// layer and released on a later envelope operation once the sender's clock
// passes the release time.  A blocking recv() flushes all held messages
// first (a sender blocked in recv can release its queue, avoiding
// self-inflicted deadlocks when no polling consumer runs above).
//
// Crash semantics: the configured rank throws InjectedFault once its
// send+recv operation counter reaches the threshold.  Both backends abort
// the run and rethrow InjectedFault ahead of the secondary unwinds.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "exec/process.hpp"

namespace sparts::exec {

/// A seeded scenario of faults to inject.  Parsed from a compact spec
/// string (tools/sparts_solve --faults, docs/robustness.md):
///
///   seed=42,drop=0.05,dup=0.02,delay=0.1:0.01,reorder=0.05,
///   stall=2@0.5,crash=1@40,max_faults=100
///
/// Probabilities are per data message; delay is prob:seconds; stall is
/// rank@seconds (fires once, at that rank's first operation); crash is
/// rank@op-count.  max_faults caps the total number of injected message
/// faults (drop+dup+delay+reorder) across the run.
struct FaultPlan {
  std::uint64_t seed = 1;
  double drop = 0.0;           ///< P(message silently dropped)
  double dup = 0.0;            ///< P(message delivered twice)
  double delay_prob = 0.0;     ///< P(message held for delay_seconds)
  double delay_seconds = 0.0;
  double reorder = 0.0;        ///< P(message swapped with the next send)
  index_t stall_rank = -1;     ///< -1: no stall
  double stall_seconds = 0.0;
  std::int64_t stall_after = 1;  ///< op count at which the stall fires
  index_t crash_rank = -1;     ///< -1: no crash
  std::int64_t crash_after = 0;  ///< op count at which the crash fires
  std::int64_t max_faults = -1;  ///< cap on injected message faults; -1: no cap

  /// Parse the spec syntax above.  Throws InvalidArgument on unknown keys
  /// or malformed values.
  static FaultPlan parse(const std::string& spec);

  /// One-line human-readable rendering (CLI banner, test logs).
  std::string summary() const;

  bool any_message_faults() const {
    return drop > 0.0 || dup > 0.0 || delay_prob > 0.0 || reorder > 0.0;
  }
};

/// Counts of injected events, aggregated over all ranks of the last run.
struct FaultStats {
  std::int64_t drops = 0;
  std::int64_t dups = 0;
  std::int64_t delays = 0;
  std::int64_t reorders = 0;
  std::int64_t stalls = 0;
  std::int64_t crashes = 0;

  std::int64_t injected() const {
    return drops + dups + delays + reorders + stalls + crashes;
  }
  std::string summary() const;
};

/// Decorator Comm: forwards to an inner backend while injecting the
/// FaultPlan's events into the traffic.
class FaultyBackend final : public Comm {
 public:
  FaultyBackend(std::unique_ptr<Comm> inner, FaultPlan plan);
  ~FaultyBackend() override;

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return inner_->nprocs(); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  const FaultPlan& plan() const { return plan_; }
  /// Injection counts of the most recent run() (zero before the first).
  const FaultStats& stats() const { return stats_; }

 private:
  class FaultyProcess;
  friend class FaultyProcess;

  void merge(const FaultStats& rank_stats);

  std::unique_ptr<Comm> inner_;
  FaultPlan plan_;
  FaultStats stats_;
  std::mutex stats_mutex_;
};

}  // namespace sparts::exec
