// The backend-agnostic execution layer.
//
// Every parallel algorithm in this repo is written as an SPMD function
// `void(Process&)`: the paper's pipelined trisolvers, the 2-D→1-D
// redistribution, the multifrontal factorization, and the collectives.
// `Process` is the handle a rank uses to talk to its peers; `Comm` is the
// machine that runs p ranks to completion and returns their statistics.
//
// Two backends implement this contract:
//   * simpar::Machine — a conservative sequential discrete-event simulator.
//     Deterministic, cost-model clocks; reproduces the paper's T3D numbers.
//   * exec::ThreadBackend — each rank is a real std::thread with a
//     mutex+condvar mailbox; wall-clock timing, real speedup.
//
// SPMD code must not assume more than the contract gives it:
//   * send() is asynchronous and never blocks waiting for the receiver
//     (buffered-send semantics on both backends).
//   * recv() blocks until a message matching (src|kAnySource, tag) exists.
//     When several match, the backend picks its canonical one (earliest
//     simulated arrival / first queued); code needing a total order must
//     disambiguate with tags.
//   * compute()/compute_at()/elapse() declare work to the backend's clock;
//     on the threaded backend real time is measured, so these only count
//     flops.
#pragma once

#include <cstddef>
#include <cstring>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/error.hpp"
#include "common/types.hpp"
#include "exec/cost_model.hpp"
#include "exec/stats.hpp"
#include "exec/topology.hpp"

namespace sparts::exec {

/// Wildcard source rank for recv.
inline constexpr index_t kAnySource = -1;

/// Reserved control tag used by the reliability envelope (exec/reliable.hpp)
/// for its ack/nack/fin traffic.  Every algorithm-level tag scheme in the
/// repo (partrisolve, parfact's TagScheme, redist) produces non-negative
/// tags, so this negative plane can never collide with data traffic.
inline constexpr int kCtrlTag = -1000001;

/// The message payload buffer type, arena-backed (common/arena.hpp) so
/// panels land in the per-thread NUMA arenas and so an owned buffer can
/// move through a backend's ring without a copy (send_owned below).
using Payload = std::vector<std::byte, common::ArenaAllocator<std::byte>>;

/// Payloads at least this large take the zero-copy lane when sent with
/// send_owned on a backend that supports it; smaller ones are copied
/// inline (the copy is cheaper than bouncing the buffer's cache lines
/// and the allocator between threads).
inline constexpr std::size_t kZeroCopyThreshold = 256;

/// A received message.
struct ReceivedMessage {
  index_t source = -1;
  int tag = 0;
  Payload payload;
};

/// Handle through which SPMD code interacts with its processor.  Only valid
/// inside Comm::run, on the thread executing that rank.
class Process {
 public:
  virtual ~Process() = default;
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  virtual index_t rank() const = 0;
  virtual index_t nprocs() const = 0;

  /// Local time: simulated seconds on the simulator, wall-clock seconds
  /// since the start of the run on the threaded backend.
  virtual double now() const = 0;

  /// Declare `flops * t_c(kind)` of computation.
  virtual void compute(double flops, FlopKind kind = FlopKind::blas1) = 0;

  /// Declare `flops` of computation at an explicit per-flop cost (used for
  /// the BLAS-2/3 interpolation on multi-RHS panels).
  virtual void compute_at(double flops, double seconds_per_flop) = 0;

  /// Declare raw seconds of local work (e.g. fixed overheads).
  virtual void elapse(double seconds) = 0;

  /// Send `payload` to `dst` with `tag`.  Buffered-send semantics: returns
  /// once the payload is captured, without waiting for the receiver.
  virtual void send(index_t dst, int tag,
                    std::span<const std::byte> payload) = 0;

  /// Zero-copy send: the caller hands over ownership of the buffer and the
  /// backend moves it to the receiver without copying the bytes (thread
  /// and task backends; payloads under kZeroCopyThreshold stay on the
  /// copy lane).  Semantics are identical to send() — same matching, same
  /// buffered-send guarantee — so the default forwards to send(), which
  /// is also what makes decorators compose unchanged: CheckedBackend and
  /// ReliableBackend override only send() and inherit this forwarding, so
  /// an owned send through them is audited / enveloped exactly like a
  /// plain one (at the cost of the copy; the envelope appends a wire
  /// trailer and could never be zero-copy anyway).
  virtual void send_owned(index_t dst, int tag, Payload&& payload) {
    send(dst, tag, {payload.data(), payload.size()});
  }

  /// Blocking receive.  `src` may be kAnySource.
  virtual ReceivedMessage recv(index_t src, int tag) = 0;

  /// Non-blocking receive: if a message matching (src|kAnySource, tag) is
  /// available *now*, consume it into `*out` and return true; otherwise
  /// return false without waiting.  On the simulator "now" means the rank
  /// first yields to the strict-handoff scheduler, so by the time it is
  /// resumed every peer with an earlier clock has run as far as it can —
  /// a false result is causally meaningful, not a scheduling accident.
  /// The default implementation throws: backends (and decorators) that
  /// support polling override it.  Only the reliability envelope should
  /// call this directly (tools/lint.py flags other call sites).
  virtual bool try_recv(index_t src, int tag, ReceivedMessage* out) {
    (void)src;
    (void)tag;
    (void)out;
    throw Error("try_recv is not supported by this Process implementation");
  }

  /// Sleep `seconds` of backend time while remaining responsive to
  /// message delivery: on the simulator the rank's clock advances and the
  /// scheduler token is handed back (so peers can run); on the threaded
  /// backend the calling thread waits on its mailbox and wakes early when
  /// a message arrives or the run aborts.  Used by polling loops between
  /// try_recv attempts; defaults to elapse() for backends without a
  /// dedicated implementation.
  virtual void poll_wait(double seconds) { elapse(seconds); }

  virtual const CostModel& cost() const = 0;
  virtual const Topology& topology() const = 0;

  /// Typed helper: send a span of trivially copyable values.
  template <typename T>
  void send_values(index_t dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag,
         {reinterpret_cast<const std::byte*>(values.data()),
          values.size() * sizeof(T)});
  }

  /// Typed helper: send a single value.
  template <typename T>
  void send_value(index_t dst, int tag, const T& value) {
    send_values<T>(dst, tag, {&value, 1});
  }

  /// Typed helper: receive a vector of trivially copyable values.
  template <typename T>
  std::vector<T> recv_values(index_t src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReceivedMessage msg = recv(src, tag);
    SPARTS_CHECK(msg.payload.size() % sizeof(T) == 0,
                 "payload size not a multiple of the element size");
    std::vector<T> out(msg.payload.size() / sizeof(T));
    if (!msg.payload.empty()) {
      std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    }
    return out;
  }

  /// Typed helper: receive exactly one value.
  template <typename T>
  T recv_value(index_t src, int tag) {
    auto v = recv_values<T>(src, tag);
    SPARTS_CHECK(v.size() == 1, "expected a single value");
    return v[0];
  }

 protected:
  Process() = default;
};

/// Rethrow priority for per-rank errors collected by a backend's run():
/// genuine root causes (numerical failures, injected faults, ...) beat
/// TimeoutError (a bounded wait that gave up, usually because of the root
/// cause) which beats DeadlockError (the secondary unwind of blocked
/// peers).  Lower class = higher priority.
inline int error_priority(const std::exception_ptr& err) {
  try {
    std::rethrow_exception(err);
  } catch (const DeadlockError&) {
    return 2;
  } catch (const TimeoutError&) {
    return 1;
  } catch (...) {
    return 0;
  }
}

/// An execution backend: runs an SPMD function on nprocs() ranks.
class Comm {
 public:
  virtual ~Comm() = default;

  /// Run `spmd` on every rank to completion; returns per-rank statistics.
  /// Rethrows the first exception thrown by user code (by rank order,
  /// non-deadlock errors first so the root cause surfaces).  Throws
  /// DeadlockError if ranks block in recv forever.
  virtual RunStats run(const std::function<void(Process&)>& spmd) = 0;

  virtual index_t nprocs() const = 0;
  virtual const CostModel& cost() const = 0;
  virtual const Topology& topology() const = 0;
};

}  // namespace sparts::exec
