#include "exec/reliable.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

constexpr std::uint32_t kMagic = 0x53505254u;  // "SPRT"

/// Trailer appended to every data frame, after the user payload.  A
/// trailer rather than a prefix so stripping it on receive is an O(1)
/// resize instead of a whole-payload memmove — the envelope's per-message
/// cost must stay negligible against the solver's panel-sized messages.
struct WireHeader {
  std::uint32_t magic;
  std::uint32_t kind;  ///< 0 = data
  std::uint64_t seq;
};

/// Full payload of a control-tag message.
struct CtrlMsg {
  std::uint32_t magic;
  std::uint32_t kind;  ///< 1 = ack, 2 = nack, 3 = fin
  std::int32_t tag;    ///< the data tag the ack/nack refers to
  std::uint32_t pad;
  std::uint64_t seq;
};

constexpr std::uint32_t kData = 0;
constexpr std::uint32_t kAck = 1;
constexpr std::uint32_t kNack = 2;
constexpr std::uint32_t kFin = 3;

static_assert(std::is_trivially_copyable_v<WireHeader>);
static_assert(std::is_trivially_copyable_v<CtrlMsg>);

void record_instant(const char* name, index_t rank, index_t peer, int tag) {
  if (!obs::Tracer::enabled()) return;
  obs::Tracer::instance().record(static_cast<std::int32_t>(rank),
                                 obs::EventKind::instant, obs::Category::fault,
                                 name, obs::Tracer::instance().timeline(),
                                 static_cast<std::int64_t>(peer),
                                 static_cast<std::int64_t>(tag));
}

}  // namespace

ReliableConfig ReliableConfig::for_simulated() {
  ReliableConfig cfg;
  // T3D message latencies are ~1e-5 simulated seconds; a millisecond is
  // an eternity of simulated network time, so a clean run never NACKs.
  cfg.timeout = 1e-3;
  return cfg;
}

ReliableConfig ReliableConfig::for_threads() {
  ReliableConfig cfg;
  cfg.timeout = 0.05;
  return cfg;
}

ReliableConfig& ReliableConfig::from_env() {
  if (const char* env = std::getenv("SPARTS_TIMEOUT_MS")) {
    const double ms = std::atof(env);
    if (ms > 0.0) timeout = ms / 1000.0;
  }
  if (const char* env = std::getenv("SPARTS_MAX_RETRY")) {
    const long n = std::atol(env);
    if (n >= 0) max_retry = static_cast<int>(n);
  }
  if (const char* env = std::getenv("SPARTS_RELIABLE_ACKS")) {
    acks = !(env[0] == '0' && env[1] == '\0');
  }
  return *this;
}

std::string ReliableStats::summary() const {
  std::ostringstream oss;
  oss << data_sends << " data send(s), " << retransmits << " retransmit(s), "
      << dup_discarded << " duplicate(s) discarded, " << nacks_sent
      << " nack(s), " << acks_sent << " ack(s), " << timeouts
      << " timeout(s)";
  return oss.str();
}

// ---------------------------------------------------------------------------
// ReliableProcess
// ---------------------------------------------------------------------------

/// Per-rank envelope state; owned by the rank's thread, merged into the
/// backend under its mutex when the rank finishes or dies.
class ReliableBackend::ReliableProcess final : public Process {
 public:
  ReliableProcess(ReliableBackend* backend, Process* inner)
      : backend_(backend),
        cfg_(backend->config_),
        inner_(inner),
        rank_(inner->rank()),
        p_(inner->nprocs()) {
    tick_ = cfg_.poll_tick > 0.0 ? cfg_.poll_tick : cfg_.timeout / 16.0;
    if (cfg_.fin_timeout > 0.0) {
      fin_timeout_ = cfg_.fin_timeout;
    } else {
      // Full retry horizon of a peer still waiting on one of my messages:
      // it NACKs at timeout, timeout*backoff, ... (capped) — I must stay
      // around to service the last round or a tail drop becomes
      // unrecoverable.
      double horizon = 0.0, wait = cfg_.timeout;
      for (int i = 0; i <= cfg_.max_retry; ++i) {
        horizon += wait;
        wait = backed_off(wait);
      }
      fin_timeout_ = horizon + cfg_.timeout;
    }
  }

  index_t rank() const override { return rank_; }
  index_t nprocs() const override { return p_; }
  double now() const override { return inner_->now(); }
  void compute(double flops, FlopKind kind) override {
    inner_->compute(flops, kind);
  }
  void compute_at(double flops, double seconds_per_flop) override {
    inner_->compute_at(flops, seconds_per_flop);
  }
  void elapse(double seconds) override { inner_->elapse(seconds); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    SPARTS_CHECK(tag != kCtrlTag,
                 "the control tag is reserved for the reliability envelope");
    WireHeader h{kMagic, kData, next_seq_[{dst, tag}]++};
    std::vector<std::byte> wire(payload.size() + sizeof(WireHeader));
    if (!payload.empty()) {
      std::memcpy(wire.data(), payload.data(), payload.size());
    }
    std::memcpy(wire.data() + payload.size(), &h, sizeof(WireHeader));
    inner_->send(dst, tag, wire);
    ++stats_.data_sends;
    ++prog_.sends;
    buffer_.emplace(BufferKey{dst, tag, h.seq}, std::move(wire));
    service_ctrl();
  }

  ReceivedMessage recv(index_t src, int tag) override {
    SPARTS_CHECK(tag != kCtrlTag,
                 "the control tag is reserved for the reliability envelope");
    {
      std::ostringstream oss;
      oss << "src=";
      if (src == kAnySource) {
        oss << "any";
      } else {
        oss << src;
      }
      oss << " tag=" << tag;
      prog_.last_wait = oss.str();
    }
    double wait = cfg_.timeout;
    double waited = 0.0;
    int attempts = 0;
    for (;;) {
      service_ctrl();
      ReceivedMessage m;
      if (inner_->try_recv(src, tag, &m)) {
        WireHeader h;
        SPARTS_CHECK(m.payload.size() >= sizeof(WireHeader),
                     "reliable envelope: short data frame on tag " << tag);
        std::memcpy(&h,
                    m.payload.data() + m.payload.size() - sizeof(WireHeader),
                    sizeof(WireHeader));
        SPARTS_CHECK(h.magic == kMagic && h.kind == kData,
                     "reliable envelope: malformed data frame on tag "
                         << tag << " (was this sent outside the envelope?)");
        if (!delivered_[{m.source, tag}].insert(h.seq).second) {
          // Duplicate: discard, but re-ack (the original ack may be the
          // thing that was lost).
          ++stats_.dup_discarded;
          ++prog_.dup_discarded;
          record_instant("dup_discarded", rank_, m.source, tag);
          if (cfg_.acks) send_ack(m.source, tag, h.seq);
          continue;
        }
        if (cfg_.acks) {
          send_ack(m.source, tag, h.seq);
          ++stats_.acks_sent;
        }
        ++prog_.recvs;
        prog_.last_wait.clear();
        m.payload.resize(m.payload.size() - sizeof(WireHeader));
        return m;
      }
      if (waited >= wait) {
        if (attempts >= cfg_.max_retry) {
          ++stats_.timeouts;
          record_instant("recv_timeout", rank_, src, tag);
          std::ostringstream oss;
          oss << "reliable envelope: rank " << rank_
              << " gave up waiting for " << prog_.last_wait << " after "
              << attempts << " retransmit request(s)";
          if (!prog_.note.empty()) oss << " (progress: " << prog_.note << ")";
          throw TimeoutError(oss.str());
        }
        ++attempts;
        send_nack(src, tag);
        waited = 0.0;
        wait = backed_off(wait);
      } else {
        inner_->poll_wait(tick_);
        waited += tick_;
      }
    }
  }

  void set_note(std::string note) { prog_.note = std::move(note); }

  /// Post-body termination protocol: announce FIN, linger servicing
  /// retransmit requests until every peer announced theirs (bounded).
  void finish_body() {
    prog_.finished = true;
    if (p_ > 1) {
      CtrlMsg fin{kMagic, kFin, 0, 0, 0};
      for (index_t q = 0; q < p_; ++q) {
        if (q != rank_) send_ctrl(q, fin);
      }
      double waited = 0.0;
      while (static_cast<index_t>(fins_.size()) < p_ - 1 &&
             waited < fin_timeout_) {
        // A serviced NACK proves a peer is still blocked on one of my
        // messages: restart the linger clock rather than abandoning it
        // mid-recovery.  (A crashed or absent peer sends no NACKs, so
        // the linger still expires in bounded time.)
        if (service_ctrl() > 0) waited = 0.0;
        if (static_cast<index_t>(fins_.size()) >= p_ - 1) break;
        inner_->poll_wait(tick_);
        waited += tick_;
      }
    }
  }

  void merge_into_backend() { backend_->merge(rank_, stats_, prog_); }

 private:
  using BufferKey = std::tuple<index_t, int, std::uint64_t>;

  /// Next NACK wait: exponential, capped at timeout * backoff_cap so the
  /// late rounds stay evenly spaced (see ReliableConfig::backoff_cap).
  double backed_off(double wait) const {
    wait *= cfg_.backoff;
    if (cfg_.backoff_cap > 1.0) {
      wait = std::min(wait, cfg_.timeout * cfg_.backoff_cap);
    }
    return wait;
  }

  void send_ctrl(index_t dst, const CtrlMsg& c) {
    inner_->send(dst, kCtrlTag,
                 {reinterpret_cast<const std::byte*>(&c), sizeof(CtrlMsg)});
  }

  void send_ack(index_t dst, int tag, std::uint64_t seq) {
    send_ctrl(dst, CtrlMsg{kMagic, kAck, tag, 0, seq});
  }

  void send_nack(index_t src, int tag) {
    const CtrlMsg nack{kMagic, kNack, tag, 0, 0};
    ++stats_.nacks_sent;
    record_instant("nack", rank_, src, tag);
    if (src == kAnySource) {
      // Wildcard recv: the sender is unknown, so ask everyone; peers with
      // nothing buffered on this (dst, tag) edge ignore it.
      for (index_t q = 0; q < p_; ++q) {
        if (q != rank_) send_ctrl(q, nack);
      }
    } else {
      send_ctrl(src, nack);
    }
  }

  /// Drain and act on pending control messages; never blocks.  Returns
  /// the number of NACKs serviced, so the FIN linger can tell whether a
  /// peer still actively needs this rank.
  int service_ctrl() {
    int nacks = 0;
    ReceivedMessage m;
    while (inner_->try_recv(kAnySource, kCtrlTag, &m)) {
      CtrlMsg c;
      SPARTS_CHECK(m.payload.size() == sizeof(CtrlMsg),
                   "reliable envelope: malformed control message");
      std::memcpy(&c, m.payload.data(), sizeof(CtrlMsg));
      SPARTS_CHECK(c.magic == kMagic,
                   "reliable envelope: bad control-message magic");
      switch (c.kind) {
        case kAck:
          buffer_.erase(BufferKey{m.source, c.tag, c.seq});
          break;
        case kNack:
          retransmit(m.source, c.tag);
          ++nacks;
          break;
        case kFin:
          fins_.insert(m.source);
          break;
        default:
          throw Error("reliable envelope: unknown control kind " +
                      std::to_string(c.kind));
      }
    }
    return nacks;
  }

  /// Resend every unacknowledged frame previously sent to `dst` on `tag`.
  void retransmit(index_t dst, int tag) {
    auto it = buffer_.lower_bound(BufferKey{dst, tag, 0});
    for (; it != buffer_.end(); ++it) {
      const auto& [key_dst, key_tag, key_seq] = it->first;
      if (key_dst != dst || key_tag != tag) break;
      inner_->send(dst, tag, it->second);
      ++stats_.retransmits;
      ++prog_.retransmits;
      record_instant("retransmit", rank_, dst, tag);
    }
  }

  ReliableBackend* backend_;
  const ReliableConfig cfg_;
  Process* inner_;
  index_t rank_;
  index_t p_;
  double tick_ = 0.0;
  double fin_timeout_ = 0.0;

  std::map<std::pair<index_t, int>, std::uint64_t> next_seq_;
  std::map<BufferKey, std::vector<std::byte>> buffer_;
  std::map<std::pair<index_t, int>, std::set<std::uint64_t>> delivered_;
  std::set<index_t> fins_;
  ReliableStats stats_;
  RankProgress prog_;
};

// ---------------------------------------------------------------------------
// ReliableBackend
// ---------------------------------------------------------------------------

ReliableBackend::ReliableBackend(std::unique_ptr<Comm> inner,
                                 ReliableConfig config)
    : inner_(std::move(inner)), config_(config) {
  SPARTS_CHECK(inner_ != nullptr, "reliable backend needs an inner backend");
  SPARTS_CHECK(config_.timeout > 0.0, "envelope timeout must be positive");
  SPARTS_CHECK(config_.backoff >= 1.0, "envelope backoff must be >= 1");
  SPARTS_CHECK(config_.max_retry >= 0, "envelope max_retry must be >= 0");
}

ReliableBackend::~ReliableBackend() = default;

void ReliableBackend::merge(index_t rank, const ReliableStats& stats,
                            const RankProgress& prog) {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.data_sends += stats.data_sends;
  stats_.retransmits += stats.retransmits;
  stats_.dup_discarded += stats.dup_discarded;
  stats_.nacks_sent += stats.nacks_sent;
  stats_.acks_sent += stats.acks_sent;
  stats_.timeouts += stats.timeouts;
  progress_[static_cast<std::size_t>(rank)] = prog;
  if (obs::metrics_enabled()) {
    auto& m = obs::metrics();
    m.counter("reliable.data_sends").add(stats.data_sends);
    m.counter("reliable.retransmits").add(stats.retransmits);
    m.counter("reliable.dup_discarded").add(stats.dup_discarded);
    m.counter("reliable.nacks").add(stats.nacks_sent);
    m.counter("reliable.acks").add(stats.acks_sent);
    m.counter("reliable.timeouts").add(stats.timeouts);
  }
}

std::string ReliableBackend::progress_report() const {
  std::ostringstream oss;
  oss << "per-rank progress:";
  for (std::size_t r = 0; r < progress_.size(); ++r) {
    const RankProgress& pr = progress_[r];
    oss << "\n  rank " << r << ": " << pr.sends << " send(s), " << pr.recvs
        << " recv(s), " << pr.retransmits << " retransmit(s), "
        << pr.dup_discarded << " dup(s) discarded, "
        << (pr.finished ? "finished" : "did not finish");
    if (!pr.last_wait.empty()) oss << ", blocked on " << pr.last_wait;
    if (!pr.note.empty()) oss << ", at " << pr.note;
  }
  return oss.str();
}

RunStats ReliableBackend::run(const std::function<void(Process&)>& spmd) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = ReliableStats{};
    progress_.assign(static_cast<std::size_t>(inner_->nprocs()),
                     RankProgress{});
  }
  ReliableBackend* self = this;
  try {
    return inner_->run([self, &spmd](Process& p) {
      ReliableProcess rp(self, &p);
      try {
        spmd(rp);
        rp.finish_body();
      } catch (...) {
        rp.merge_into_backend();
        throw;
      }
      rp.merge_into_backend();
    });
  } catch (const TimeoutError& e) {
    // Deadline-based abort: enrich with the per-rank progress snapshot so
    // the caller sees where every rank was, then let the solver turn it
    // into a structured SolveError.
    throw TimeoutError(std::string(e.what()) + "\n" + progress_report());
  }
}

void note_progress(Process& proc, const std::string& note) {
  if (auto* rp = dynamic_cast<ReliableBackend::ReliableProcess*>(&proc)) {
    rp->set_note(note);
  }
}

}  // namespace sparts::exec
