// The reliability envelope: at-least-once delivery with receiver-side
// deduplication over any exec backend.
//
// ReliableBackend is a Comm decorator (like CheckedBackend and
// FaultyBackend).  Every data send keeps its user tag but carries a small
// wire trailer with a per-(dst, tag) sequence number and is buffered for
// retransmission; every recv becomes a polling loop built on
// Process::try_recv / poll_wait that
//
//   * discards duplicates (same (src, tag, seq) seen before),
//   * acknowledges first deliveries on the reserved control tag
//     (exec::kCtrlTag) so senders can trim their retransmit buffers,
//   * after `timeout` seconds without the expected message sends a NACK
//     to the source (all peers for a wildcard recv), asking it to
//     retransmit everything unacknowledged on that (dst, tag) edge, and
//   * retries with capped exponential backoff up to `max_retry` times
//     before throwing TimeoutError with a per-rank progress report
//     attached — a deadline-based abort instead of a hang.  The cap
//     matters: a NACK for a frame the sender has not produced yet is a
//     no-op, so when the sender is itself blocked upstream (a cascaded
//     delay) pure exponential backoff would burn nearly the whole retry
//     budget on those useless early rounds and leave one or two rare
//     late rounds that a lossy network can swallow whole.
//
// When the SPMD body returns, the rank broadcasts FIN on the control tag
// and lingers (bounded by `fin_timeout`), servicing NACKs for messages it
// sent late in its life, until every peer's FIN arrives.  Each serviced
// NACK resets the linger clock — a peer actively requesting retransmits
// is proof this rank is still needed.  This closes the classic tail
// window where a dropped final message could never be retransmitted
// because its sender had already exited.
//
// The envelope changes simulated timings (polling advances the virtual
// clock), so the solver only applies it on the fault-injecting backends;
// the paper-reproduction backends stay byte-identical to earlier PRs.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/process.hpp"

namespace sparts::exec {

/// Tuning knobs of the envelope.  `from_env()` applies the
/// SPARTS_TIMEOUT_MS and SPARTS_MAX_RETRY environment variables on top of
/// whatever defaults the caller picked (see docs/robustness.md).
struct ReliableConfig {
  /// Seconds of backend time a recv waits before its first NACK.
  double timeout = 0.05;
  /// Multiplier applied to the wait after every NACK.
  double backoff = 2.0;
  /// Cap on the backed-off wait, as a multiple of `timeout`.  Pure
  /// exponential backoff wastes the early rounds when the sender is
  /// itself blocked upstream (a cascaded delay) and leaves too few late
  /// rounds to survive message drops; the cap keeps late NACK rounds
  /// evenly spaced.  <= 1 disables the cap.
  double backoff_cap = 8.0;
  /// NACKs sent before a recv gives up with TimeoutError.
  int max_retry = 20;
  /// Polling granularity; <= 0 picks timeout / 16.
  double poll_tick = -1.0;
  /// Bound on the post-body FIN linger; <= 0 picks the full retry horizon
  /// (sum of every peer's backed-off waits, plus one timeout) so a
  /// finished sender outlives the last NACK a blocked peer can send.
  double fin_timeout = -1.0;
  /// Acknowledge first deliveries so senders can trim their buffers.
  /// With acks off, buffers are retained until the end of the run (more
  /// memory, fewer control messages).
  bool acks = true;

  /// Defaults scaled for simulated seconds (message latencies ~1e-5 s
  /// under the T3D cost model).
  static ReliableConfig for_simulated();
  /// Defaults scaled for wall-clock seconds on the thread backend.
  static ReliableConfig for_threads();
  /// Apply SPARTS_TIMEOUT_MS / SPARTS_MAX_RETRY overrides and return self.
  ReliableConfig& from_env();
};

/// Envelope activity, aggregated over all ranks of the last run.
struct ReliableStats {
  std::int64_t data_sends = 0;
  std::int64_t retransmits = 0;
  std::int64_t dup_discarded = 0;
  std::int64_t nacks_sent = 0;
  std::int64_t acks_sent = 0;
  std::int64_t timeouts = 0;
  std::string summary() const;
};

/// What one rank had achieved when the run ended (normally or not);
/// rendered into TimeoutError messages and solver::SolveError reports.
struct RankProgress {
  std::int64_t sends = 0;
  std::int64_t recvs = 0;
  std::int64_t retransmits = 0;
  std::int64_t dup_discarded = 0;
  bool finished = false;     ///< SPMD body ran to completion
  std::string note;          ///< last exec::note_progress() annotation
  std::string last_wait;     ///< "src=.. tag=.." if the rank died waiting
};

class ReliableBackend final : public Comm {
 public:
  ReliableBackend(std::unique_ptr<Comm> inner, ReliableConfig config);
  ~ReliableBackend() override;

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return inner_->nprocs(); }
  const CostModel& cost() const override { return inner_->cost(); }
  const Topology& topology() const override { return inner_->topology(); }

  const ReliableConfig& config() const { return config_; }
  /// Envelope totals of the most recent run().
  const ReliableStats& stats() const { return stats_; }
  /// Per-rank progress of the most recent run().
  const std::vector<RankProgress>& progress() const { return progress_; }
  /// Multi-line per-rank progress report (one line per rank).
  std::string progress_report() const;
  /// The wrapped backend (e.g. to reach a FaultyBackend's stats()).
  const Comm& inner() const { return *inner_; }

  class ReliableProcess;

 private:
  friend class ReliableProcess;

  void merge(index_t rank, const ReliableStats& stats,
             const RankProgress& prog);

  std::unique_ptr<Comm> inner_;
  ReliableConfig config_;
  ReliableStats stats_;
  std::vector<RankProgress> progress_;
  std::mutex mutex_;
};

/// Attach a short progress annotation ("fw supernode 12", "panel 3/8") to
/// the calling rank if it runs under the reliability envelope; a no-op on
/// every other backend.  Solver code calls this so a timeout or crash
/// report can say *where* each rank was.
void note_progress(Process& proc, const std::string& note);

}  // namespace sparts::exec
