// Lock-free bounded single-producer/single-consumer ring, the fast path
// of the thread and task backends' message mailboxes.
//
// One ring exists per (src, dst) rank pair, which is what makes it truly
// SPSC: the only producer is the source rank and the only consumer the
// destination rank.  (On the task backend a rank's fiber migrates between
// workers, but it executes on one worker at a time with happens-before
// edges supplied by the scheduler, so the single-logical-producer/
// consumer requirement still holds.)
//
// Memory ordering is the textbook pair: the producer publishes a slot
// with a release store of tail_, the consumer acquires tail_ before
// reading the slot, and symmetrically for head_ so the producer never
// overwrites a slot still being moved out.  head_ and tail_ live on
// separate cache lines so the two sides don't false-share.
//
// The ring is a fast path, not a contract: try_push may fail when the
// ring is full (the backends spill to their locked fallback mailbox so
// send() never blocks), and the element is NOT consumed on failure.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace sparts::exec {

template <typename T>
class SpscRing {
 public:
  /// Capacity is fixed at construction and must be a power of two.
  explicit SpscRing(std::size_t capacity = kDefaultCapacity)
      : slots_(capacity), mask_(capacity - 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false (leaving `v` intact) when full.
  bool try_push(T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when empty.
  bool try_pop(T* out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    *out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Racy occupancy probe (either side; exact only for its caller's role).
  bool has_items() const {
    return tail_.load(std::memory_order_acquire) !=
           head_.load(std::memory_order_relaxed);
  }

  /// Deliberately small: the ring is a latency device, not a buffer.  A
  /// deep ring means a message burst walks p x capacity cold slots (each
  /// push/pop touching a line the cache already evicted), and measured
  /// end-to-end solve times on burst-heavy etrees get *worse* as the
  /// ring grows; bursts beyond this depth spill to the locked fallback
  /// queue, which amortizes one mutex + one wakeup over the whole batch.
  static constexpr std::size_t kDefaultCapacity = 8;

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< producer cursor
};

}  // namespace sparts::exec
