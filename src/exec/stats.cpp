#include "exec/stats.hpp"

#include <algorithm>

namespace sparts::exec {

double RunStats::parallel_time() const {
  double t = 0.0;
  for (const auto& p : procs) t = std::max(t, p.clock);
  return t;
}

nnz_t RunStats::total_flops() const {
  nnz_t f = 0;
  for (const auto& p : procs) f += p.flops;
  return f;
}

nnz_t RunStats::total_messages() const {
  nnz_t m = 0;
  for (const auto& p : procs) m += p.messages_sent;
  return m;
}

nnz_t RunStats::total_words() const {
  nnz_t w = 0;
  for (const auto& p : procs) w += p.words_sent;
  return w;
}

nnz_t RunStats::total_messages_received() const {
  nnz_t m = 0;
  for (const auto& p : procs) m += p.messages_received;
  return m;
}

nnz_t RunStats::total_bytes_copied() const {
  nnz_t b = 0;
  for (const auto& p : procs) b += p.bytes_copied;
  return b;
}

double RunStats::efficiency() const {
  const double tp = parallel_time();
  if (tp <= 0.0 || procs.empty()) return 1.0;
  double busy = 0.0;
  for (const auto& p : procs) busy += p.compute_time;
  return busy / (tp * static_cast<double>(procs.size()));
}

double speedup(double t_serial, double t_parallel) {
  if (t_parallel <= 0.0) return 0.0;
  return t_serial / t_parallel;
}

double efficiency(double t_serial, index_t p, double t_parallel) {
  if (t_parallel <= 0.0 || p <= 0) return 0.0;
  return t_serial / (static_cast<double>(p) * t_parallel);
}

obs::ParallelPhaseStats to_phase_stats(const RunStats& rs) {
  obs::ParallelPhaseStats ps;
  ps.procs = static_cast<int>(rs.procs.size());
  ps.parallel_time = rs.parallel_time();
  ps.flops = rs.total_flops();
  ps.messages = rs.total_messages();
  ps.words = rs.total_words();
  for (const auto& pr : rs.procs) {
    ps.compute_time.push_back(pr.compute_time);
    ps.send_time.push_back(pr.send_time);
    ps.idle_time.push_back(pr.idle_time);
  }
  return ps;
}

}  // namespace sparts::exec
