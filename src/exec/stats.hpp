// Per-processor and per-run statistics, shared by every execution backend.
//
// Both backends fill the same fields; what differs is the clock that feeds
// them.  On the simulated backend (simpar::Machine) every time is a virtual
// cost-model time — clock is the processor's simulated finishing time,
// compute_time is sum(flops * t_c), and so on.  On exec::ThreadBackend all
// times are wall-clock seconds measured with std::chrono::steady_clock —
// compute_time is the time spent between communication calls, idle_time the
// time blocked inside recv().  Either way, `flops`/`messages_sent`/
// `words_sent` count identical events, and efficiency() means the same
// thing: the fraction of p * parallel_time spent computing.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "obs/phase.hpp"

namespace sparts::exec {

/// Per-processor statistics, available after the run.
struct ProcStats {
  double clock = 0.0;         ///< local time at termination
  double compute_time = 0.0;  ///< time spent computing
  double send_time = 0.0;     ///< sender occupancy of send()
  double idle_time = 0.0;     ///< time spent waiting in recv()
  nnz_t flops = 0;
  nnz_t messages_sent = 0;
  nnz_t words_sent = 0;
  nnz_t messages_received = 0;
  nnz_t words_received = 0;
  /// Payload bytes memcpy'd by the backend's message path (the capture
  /// copy of send()).  Zero-copy sends move the buffer instead, so this
  /// is the number the zero-copy lane drives to ~0; words_sent still
  /// counts the logical traffic either way.
  nnz_t bytes_copied = 0;
};

/// Aggregated statistics of a run.
struct RunStats {
  std::vector<ProcStats> procs;

  /// Parallel runtime: the maximum local clock.
  double parallel_time() const;
  /// Total flops across all processors.
  nnz_t total_flops() const;
  /// Total messages across all processors.
  nnz_t total_messages() const;
  /// Total words across all processors.
  nnz_t total_words() const;
  /// Total received messages across all processors.  In a closed run
  /// (every send matched by a recv) this equals total_messages().
  nnz_t total_messages_received() const;
  /// Total backend-side payload copy bytes (see ProcStats::bytes_copied).
  nnz_t total_bytes_copied() const;
  /// sum(compute_time) / (p * parallel_time)
  double efficiency() const;
};

/// S = t_serial / t_parallel.  Returns 0 when t_parallel is not positive.
double speedup(double t_serial, double t_parallel);

/// E = t_serial / (p * t_parallel): the standard efficiency of a p-processor
/// run against a serial baseline.  Every bench table reports this; keep the
/// formula here instead of re-deriving it per bench.
double efficiency(double t_serial, index_t p, double t_parallel);

/// Flatten a RunStats into the POD the phase profiler consumes
/// (obs/ cannot depend on exec/, so the adapter lives here).
obs::ParallelPhaseStats to_phase_stats(const RunStats& rs);

}  // namespace sparts::exec
