#include "exec/task_backend.hpp"

#include <ucontext.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Sanitizer fiber annotations: ASan must be told about stack switches or
// its stack bookkeeping flags false use-after-return; TSan must be told or
// it sees one OS thread's accesses interleaved across many logical stacks
// and reports phantom races.  Both are attribute-detected so the plain
// build compiles them away entirely.
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SPARTS_ASAN_FIBERS 1
#endif
#if __has_feature(thread_sanitizer)
#define SPARTS_TSAN_FIBERS 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) && !defined(SPARTS_ASAN_FIBERS)
#define SPARTS_ASAN_FIBERS 1
#endif
#if defined(__SANITIZE_THREAD__) && !defined(SPARTS_TSAN_FIBERS)
#define SPARTS_TSAN_FIBERS 1
#endif
#ifdef SPARTS_ASAN_FIBERS
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef SPARTS_TSAN_FIBERS
#include <sanitizer/tsan_interface.h>
#endif

namespace sparts::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::size_t env_stack_kb() {
  const char* v = std::getenv("SPARTS_TASK_STACK_KB");
  if (v == nullptr || *v == '\0') return 0;
  const long kb = std::strtol(v, nullptr, 10);
  return kb > 0 ? static_cast<std::size_t>(kb) : 0;
}

bool env_spsc_enabled() {
  const char* v = std::getenv("SPARTS_SPSC");
  if (v == nullptr || *v == '\0') return true;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
}

/// Rings are O(p^2); past this rank count fall back to the locked mailboxes.
constexpr index_t kMaxRingRanks = 128;

#ifdef SPARTS_ASAN_FIBERS
// ASan fake-stack handle of the worker thread, saved while it is parked
// inside a fiber.  One per OS thread: a worker resumes exactly one fiber
// at a time.
thread_local void* tl_worker_fake_stack = nullptr;
#endif

}  // namespace

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

struct TaskBackend::Fiber {
  index_t rank = -1;
  TaskBackend* backend = nullptr;
  const std::function<void(Process&)>* spmd = nullptr;

  ucontext_t ctx{};
  /// The suspended worker context to swap back into; refreshed on every
  /// resume because the fiber may migrate between workers.
  ucontext_t* return_ctx = nullptr;
  std::unique_ptr<std::byte[]> stack;
  std::size_t stack_size = 0;

  /// Why the fiber handed control back to its worker.
  enum class Pause : std::uint8_t { none, blocked, yielded, finished };
  Pause pause = Pause::none;

  // Wait descriptor, valid while pause == blocked.
  index_t wait_src = 0;
  int wait_tag = 0;
  /// Drained-but-unmatched messages, private to this fiber's executor
  /// (the fiber itself, or its worker while the fiber is suspended).
  std::deque<Message> pending;
  /// Context fully saved and registered as waiting — only then may a
  /// sender re-ready the fiber.  All transitions happen under
  /// state_mutex_; atomic so deliver() can probe it lock-free after its
  /// ring push (seq_cst handshake, see resume()/deliver()).
  std::atomic<bool> parked{false};
  /// Set under state_mutex_ when the run aborts; the fiber throws on its
  /// next resume.
  bool abort_on_resume = false;
  std::string abort_msg;

  std::unique_ptr<FiberProcess> proc;
  ProcStats stats;
  std::exception_ptr error;

#ifdef SPARTS_TSAN_FIBERS
  void* tsan_fiber = nullptr;
  void* tsan_return = nullptr;
#endif
#ifdef SPARTS_ASAN_FIBERS
  void* asan_fake = nullptr;  ///< fiber's fake stack while suspended
  const void* asan_return_bottom = nullptr;
  std::size_t asan_return_size = 0;
#endif
};

/// Bookkeeping on arrival inside a fiber (first entry or after resume).
void TaskBackend::finish_switch_into_fiber(Fiber& f) {
#ifdef SPARTS_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(f.asan_fake, &f.asan_return_bottom,
                                  &f.asan_return_size);
  f.asan_fake = nullptr;
#else
  (void)f;
#endif
}

/// Suspend the calling fiber: save its context and return to the worker.
/// On a later resume, execution continues after the swapcontext.
void TaskBackend::switch_out_of_fiber(Fiber& f) {
  const bool finishing = f.pause == Fiber::Pause::finished;
#ifdef SPARTS_ASAN_FIBERS
  __sanitizer_start_switch_fiber(finishing ? nullptr : &f.asan_fake,
                                 f.asan_return_bottom, f.asan_return_size);
#endif
#ifdef SPARTS_TSAN_FIBERS
  __tsan_switch_to_fiber(f.tsan_return, 0);
#endif
  (void)finishing;
  SPARTS_CHECK(swapcontext(&f.ctx, f.return_ctx) == 0,
               "swapcontext out of fiber failed");
  // Resumed (never reached when finishing).
  finish_switch_into_fiber(f);
}

// ---------------------------------------------------------------------------
// FiberProcess — the Process implementation handed to SPMD code
// ---------------------------------------------------------------------------

// Stats accounting mirrors ThreadBackend::RankProcess: wall time between
// communication calls is compute time, time suspended in recv is idle
// time.  Fibers are non-preemptive, so between communication calls a rank
// runs uninterrupted and the wall interval is honestly its own.
class TaskBackend::FiberProcess final : public Process {
 public:
  FiberProcess(TaskBackend* backend, Fiber* fiber)
      : backend_(backend), fiber_(fiber), last_mark_(Clock::now()) {}

  index_t rank() const override { return fiber_->rank; }
  index_t nprocs() const override { return backend_->config_.nprocs; }

  double now() const override {
    return seconds_between(backend_->epoch_, Clock::now());
  }

  void compute(double flops, FlopKind /*kind*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void compute_at(double flops, double /*seconds_per_flop*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void elapse(double seconds) override { SPARTS_CHECK(seconds >= 0.0); }

  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    // Copy lane: capture the payload into a fresh (arena) buffer.
    post(dst, tag, Payload(payload.begin(), payload.end()),
         /*copied_bytes=*/payload.size());
  }

  void send_owned(index_t dst, int tag, Payload&& payload) override {
    if (payload.size() < kZeroCopyThreshold) {
      send(dst, tag, {payload.data(), payload.size()});
      return;
    }
    // Zero-copy lane: the buffer itself travels through the ring.
    post(dst, tag, std::move(payload), /*copied_bytes=*/0);
  }

  ReceivedMessage recv(index_t src, int tag) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    const Clock::time_point t0 = flush_busy();
    Message msg = backend_->take_match(*fiber_, src, tag);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(fiber_->rank);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(msg.payload.size()),
                          static_cast<std::int64_t>(msg.src));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t1));
    }
    return ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
  }

  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    SPARTS_CHECK(out != nullptr);
    Message msg;
    if (!backend_->take_match_now(*fiber_, src, tag, &msg)) return false;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    *out = ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
    return true;
  }

  void poll_wait(double seconds) override {
    SPARTS_CHECK(seconds >= 0.0);
    const Clock::time_point t0 = flush_busy();
    backend_->fiber_poll_wait(*fiber_, seconds);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
  }

  const CostModel& cost() const override { return backend_->config_.cost; }
  const Topology& topology() const override { return backend_->topology_; }

  /// Close the final busy segment and stamp the finishing time.
  ProcStats finish() {
    flush_busy();
    stats_.clock = now();
    return stats_;
  }

 private:
  /// Shared tail of both send lanes: deliver + stats + tracing.
  void post(index_t dst, int tag, Payload payload, std::size_t copied_bytes) {
    SPARTS_CHECK(dst >= 0 && dst < nprocs(),
                 "send destination " << dst << " out of range");
    const std::size_t bytes = payload.size();
    const Clock::time_point t0 = flush_busy();
    backend_->deliver(*fiber_, dst, Message{fiber_->rank, tag,
                                            std::move(payload)});
    const Clock::time_point t1 = Clock::now();
    stats_.send_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_sent;
    stats_.words_sent +=
        static_cast<nnz_t>((bytes + sizeof(real_t) - 1) / sizeof(real_t));
    stats_.bytes_copied += static_cast<nnz_t>(copied_bytes);
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(fiber_->rank);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(bytes),
                          static_cast<std::int64_t>(dst));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t1));
    }
    if (obs::metrics_enabled()) {
      obs::metrics().histogram("comm.message_bytes")
          .observe(static_cast<std::int64_t>(bytes));
    }
  }

  Clock::time_point flush_busy() {
    const Clock::time_point t = Clock::now();
    stats_.compute_time += seconds_between(last_mark_, t);
    last_mark_ = t;
    return t;
  }

  TaskBackend* backend_;
  Fiber* fiber_;
  ProcStats stats_;
  Clock::time_point last_mark_;
};

// ---------------------------------------------------------------------------
// TaskBackend
// ---------------------------------------------------------------------------

TaskBackend::TaskBackend(const Config& config)
    : config_(config), topology_(config.topology, config.nprocs) {
  SPARTS_CHECK(config.nprocs >= 1, "need at least one processor");
  std::size_t kb = config.stack_kb;
  if (kb == 0) kb = env_stack_kb();
  if (kb == 0) kb = 1024;
  stack_bytes_ = kb * 1024;
}

TaskBackend::~TaskBackend() = default;

// makecontext passes only ints; split the fiber pointer across two.
void TaskBackend::trampoline(unsigned hi, unsigned lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32U) | static_cast<std::uintptr_t>(lo);
  Fiber* f = reinterpret_cast<Fiber*>(bits);
  f->backend->fiber_main(*f);
}

void TaskBackend::fiber_main(Fiber& f) {
  finish_switch_into_fiber(f);
  try {
    (*f.spmd)(*f.proc);
  } catch (...) {
    f.error = std::current_exception();
    std::lock_guard<std::mutex> lock(state_mutex_);
    abort_all_locked("task backend run aborted: rank " +
                     std::to_string(f.rank) + " failed");
  }
  f.stats = f.proc->finish();
  f.pause = Fiber::Pause::finished;
  switch_out_of_fiber(f);
  SPARTS_CHECK(false, "finished fiber resumed");  // unreachable
}

void TaskBackend::schedule(Fiber& f, int affinity, bool low_priority) {
  scheduler_->submit(
      [this, fp = &f](const JobContext& ctx) { resume(*fp, ctx); }, affinity,
      low_priority);
}

void TaskBackend::resume(Fiber& f, const JobContext& ctx) {
  const bool tracing = obs::Tracer::enabled();
  if (tracing) {
    auto& tracer = obs::Tracer::instance();
    const auto r32 = static_cast<std::int32_t>(f.rank);
    const double ts = seconds_between(epoch_, Clock::now());
    if (ctx.stolen) {
      tracer.record_local(r32, obs::EventKind::instant, obs::Category::task,
                          "task_steal", ts,
                          static_cast<std::int64_t>(ctx.worker));
    }
    tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::task,
                        "task_run", ts, static_cast<std::int64_t>(ctx.worker),
                        static_cast<std::int64_t>(f.rank));
  }

  ucontext_t sched_ctx;
  f.return_ctx = &sched_ctx;
#ifdef SPARTS_ASAN_FIBERS
  __sanitizer_start_switch_fiber(&tl_worker_fake_stack, f.stack.get(),
                                 f.stack_size);
#endif
#ifdef SPARTS_TSAN_FIBERS
  f.tsan_return = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(f.tsan_fiber, 0);
#endif
  SPARTS_CHECK(swapcontext(&sched_ctx, &f.ctx) == 0,
               "swapcontext into fiber failed");
#ifdef SPARTS_ASAN_FIBERS
  __sanitizer_finish_switch_fiber(tl_worker_fake_stack, nullptr, nullptr);
#endif

  if (tracing) {
    obs::Tracer::instance().record_local(
        static_cast<std::int32_t>(f.rank), obs::EventKind::span_end,
        obs::Category::task, "task_run",
        seconds_between(epoch_, Clock::now()));
  }

  switch (f.pause) {
    case Fiber::Pause::finished: {
#ifdef SPARTS_TSAN_FIBERS
      __tsan_destroy_fiber(f.tsan_fiber);
      f.tsan_fiber = nullptr;
#endif
      {
        std::lock_guard<std::mutex> lock(state_mutex_);
        --live_;
        // A rank exiting can expose a deadlock: peers blocked on it wait
        // forever now.
        check_stalled_locked();
      }
      done_->count_down();
      break;
    }
    case Fiber::Pause::blocked: {
      std::unique_lock<std::mutex> lock(state_mutex_);
      // The context is saved now; re-check the window between the fiber
      // releasing the lock and reaching the worker: a message may have
      // arrived, or the run may have aborted.
      if (aborted_) {
        if (!f.abort_on_resume) {
          f.abort_on_resume = true;
          f.abort_msg = "task backend run aborted: rank " +
                        std::to_string(f.rank) +
                        " was waiting in recv when another rank failed";
        }
        lock.unlock();
        schedule(f, ctx.worker);
        break;
      }
      // Dekker handshake with deliver(): advertise the park, then drain.
      // A sender either pushed before our drain (we see the message here)
      // or probes parked after our store (it sees true and unparks us).
      f.parked.store(true, std::memory_order_seq_cst);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      drain_overflow_locked(f);
      drain_rings(f);
      if (match_pending(f, f.wait_src, f.wait_tag, /*pop=*/false, nullptr)) {
        f.parked.store(false, std::memory_order_relaxed);
        lock.unlock();
        schedule(f, ctx.worker);
      } else {
        ++blocked_;
        check_stalled_locked();
      }
      break;
    }
    case Fiber::Pause::yielded:
      // Steal end of the current worker's deque: queue-mates run first.
      schedule(f, ctx.worker, /*low_priority=*/true);
      break;
    case Fiber::Pause::none:
      SPARTS_CHECK(false, "fiber suspended without a pause reason");
  }
}

bool TaskBackend::drain_rings(Fiber& f) {
  if (!rings_on_) return false;
  bool any = false;
  Message m;
  for (index_t s = 0; s < config_.nprocs; ++s) {
    while (ring(s, f.rank).try_pop(&m)) {
      f.pending.push_back(std::move(m));
      any = true;
    }
  }
  return any;
}

bool TaskBackend::drain_overflow_locked(Fiber& f) {
  auto& box = mailboxes_[static_cast<std::size_t>(f.rank)];
  if (box.empty()) return false;
  while (!box.empty()) {
    f.pending.push_back(std::move(box.front()));
    box.pop_front();
  }
  return true;
}

bool TaskBackend::match_pending(Fiber& f, index_t src, int tag, bool pop,
                                Message* out) {
  for (auto it = f.pending.begin(); it != f.pending.end(); ++it) {
    if (it->tag == tag && (src == kAnySource || it->src == src)) {
      if (pop) {
        *out = std::move(*it);
        f.pending.erase(it);
      }
      return true;
    }
  }
  return false;
}

void TaskBackend::abort_all_locked(const std::string& reason) {
  if (aborted_) return;
  aborted_ = true;
  for (auto& fp : fibers_) {
    Fiber& f = *fp;
    if (!f.parked.load(std::memory_order_relaxed)) continue;
    f.parked.store(false, std::memory_order_relaxed);
    --blocked_;
    f.abort_on_resume = true;
    f.abort_msg = reason + "; rank " + std::to_string(f.rank) +
                  " was waiting for src=" + std::to_string(f.wait_src) +
                  " tag=" + std::to_string(f.wait_tag);
    schedule(f, /*affinity=*/-1);
  }
}

void TaskBackend::check_stalled_locked() {
  if (aborted_ || live_ == 0 || blocked_ < live_) return;
  // Every live fiber is suspended in recv with no matching message and
  // every possible sender is itself suspended or finished: deadlock.
  std::string who;
  for (const auto& fp : fibers_) {
    if (fp->parked.load(std::memory_order_relaxed)) {
      who = "rank " + std::to_string(fp->rank) + " waits for src=" +
            std::to_string(fp->wait_src) + " tag=" +
            std::to_string(fp->wait_tag);
      break;
    }
  }
  abort_all_locked("task backend deadlock: every live rank is blocked in "
                   "recv (" + who + ") and no sender can run");
}

TaskBackend::Message TaskBackend::take_match(Fiber& f, index_t src, int tag) {
  for (;;) {
    // Fast path: drain own rings and match without the state mutex.
    drain_rings(f);
    Message out;
    if (match_pending(f, src, tag, /*pop=*/true, &out)) return out;
    {
      std::lock_guard<std::mutex> lock(state_mutex_);
      if (f.abort_on_resume) {
        f.abort_on_resume = false;
        throw DeadlockError(f.abort_msg);
      }
      if (aborted_) {
        throw DeadlockError("task backend run aborted: rank " +
                            std::to_string(f.rank) +
                            " was waiting in recv when another rank failed");
      }
      drain_overflow_locked(f);
      if (match_pending(f, src, tag, /*pop=*/true, &out)) return out;
      f.wait_src = src;
      f.wait_tag = tag;
      f.pause = Fiber::Pause::blocked;
    }
    // Unlocked handoff: the worker re-checks the mailbox under the lock
    // once the context is parked, so a send racing with this suspend is
    // never lost (senders only re-ready fibers whose parked flag is set).
    switch_out_of_fiber(f);
    if (obs::Tracer::enabled()) {
      obs::Tracer::instance().record_local(
          static_cast<std::int32_t>(f.rank), obs::EventKind::instant,
          obs::Category::task, "task_ready",
          seconds_between(epoch_, Clock::now()), static_cast<std::int64_t>(tag));
    }
  }
}

bool TaskBackend::take_match_now(Fiber& f, index_t src, int tag,
                                 Message* out) {
  drain_rings(f);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (aborted_) {
      throw DeadlockError("task backend run aborted: rank " +
                          std::to_string(f.rank) +
                          " was polling when another rank failed");
    }
    drain_overflow_locked(f);
  }
  return match_pending(f, src, tag, /*pop=*/true, out);
}

void TaskBackend::deliver(Fiber& sender, index_t dst, Message msg) {
  const int tag = msg.tag;
  Fiber& d = *fibers_[static_cast<std::size_t>(dst)];
  if (rings_on_ && ring(sender.rank, dst).try_push(msg)) {
    // Dekker handshake with the consumer's park sequence in resume():
    // the seq_cst fence orders our ring publish before the parked probe,
    // so either we see parked==true here, or the consumer's post-park
    // drain sees our message.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (!d.parked.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (d.parked.load(std::memory_order_relaxed) && d.wait_tag == tag &&
        (d.wait_src == kAnySource || d.wait_src == sender.rank)) {
      d.parked.store(false, std::memory_order_relaxed);
      --blocked_;
      // Re-ready on the sending fiber's worker: the payload is hot in its
      // cache, and the LIFO deque runs the consumer as soon as the sender
      // next suspends — producer-consumer chains execute depth-first.
      schedule(d, /*affinity=*/-1);
    }
    return;
  }
  // Ring full or fast path off: locked overflow queue.
  std::lock_guard<std::mutex> lock(state_mutex_);
  mailboxes_[static_cast<std::size_t>(dst)].push_back(std::move(msg));
  if (d.parked.load(std::memory_order_relaxed) && d.wait_tag == tag &&
      (d.wait_src == kAnySource || d.wait_src == sender.rank)) {
    d.parked.store(false, std::memory_order_relaxed);
    --blocked_;
    schedule(d, /*affinity=*/-1);
  }
}

void TaskBackend::fiber_poll_wait(Fiber& f, double /*seconds*/) {
  // A fiber cannot sleep wall-clock time without wedging its worker, and
  // it does not need to: yielding reschedules it behind every runnable
  // peer, so by the time it runs again anything that could arrive "soon"
  // has arrived.  The poll loops above this (exec/reliable.cpp) treat the
  // elapsed wait as backend time, which for this backend is simply the
  // time the other fibers used.
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (aborted_) {
      throw DeadlockError("task backend run aborted: rank " +
                          std::to_string(f.rank) +
                          " was polling when another rank failed");
    }
    if (live_ <= 1) return;  // no peer can send: don't bother yielding
    f.pause = Fiber::Pause::yielded;
  }
  switch_out_of_fiber(f);
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (f.abort_on_resume || aborted_) {
    f.abort_on_resume = false;
    throw DeadlockError("task backend run aborted: rank " +
                        std::to_string(f.rank) +
                        " was polling when another rank failed");
  }
}

RunStats TaskBackend::run(const std::function<void(Process&)>& spmd) {
  SPARTS_CHECK(!running_, "TaskBackend::run is not reentrant");
  running_ = true;
  aborted_ = false;
  const index_t p = config_.nprocs;
  mailboxes_.assign(static_cast<std::size_t>(p), {});
  rings_on_ = env_spsc_enabled() && p <= kMaxRingRanks;
  rings_ = rings_on_ ? std::make_unique<SpscRing<Message>[]>(
                           static_cast<std::size_t>(p) *
                           static_cast<std::size_t>(p))
                     : nullptr;
  fibers_.clear();
  fibers_.reserve(static_cast<std::size_t>(p));
  live_ = p;
  blocked_ = 0;
  epoch_ = Clock::now();
  if (obs::Tracer::enabled()) obs::Tracer::instance().begin_run();

  scheduler_ = std::make_unique<TaskScheduler>(config_.scheduler);
  Latch done(p);
  done_ = &done;

  for (index_t r = 0; r < p; ++r) {
    auto f = std::make_unique<Fiber>();
    f->rank = r;
    f->backend = this;
    f->spmd = &spmd;
    // for_overwrite: value-initializing the stack would memset 1 MiB per
    // fiber per run, which dominates small runs (the fiber writes every
    // byte it reads).
    f->stack = std::make_unique_for_overwrite<std::byte[]>(stack_bytes_);
    f->stack_size = stack_bytes_;
    f->proc = std::make_unique<FiberProcess>(this, f.get());
    SPARTS_CHECK(getcontext(&f->ctx) == 0, "getcontext failed");
    f->ctx.uc_stack.ss_sp = f->stack.get();
    f->ctx.uc_stack.ss_size = f->stack_size;
    f->ctx.uc_link = nullptr;
    const auto bits = reinterpret_cast<std::uintptr_t>(f.get());
    makecontext(&f->ctx, reinterpret_cast<void (*)()>(&TaskBackend::trampoline),
                2, static_cast<unsigned>(bits >> 32U),
                static_cast<unsigned>(bits & 0xffffffffU));
#ifdef SPARTS_TSAN_FIBERS
    f->tsan_fiber = __tsan_create_fiber(0);
#endif
    fibers_.push_back(std::move(f));
  }

  // Topology-aware placement: contiguous rank blocks per worker, so the
  // subtree-to-subcube mapping's neighbouring ranks start on the same
  // worker (and, via the scheduler's victim order, stay within a steal
  // cluster when they overflow).
  const int w = scheduler_->workers();
  for (index_t r = 0; r < p; ++r) {
    schedule(*fibers_[static_cast<std::size_t>(r)],
             static_cast<int>((r * w) / p));
  }

  done.wait();
  sched_stats_ = scheduler_->stats();
  scheduler_.reset();  // joins the workers
  done_ = nullptr;
  running_ = false;

  std::exception_ptr best_error;
  int best_priority = 3;
  for (const auto& f : fibers_) {
    if (!f->error) continue;
    const int priority = error_priority(f->error);
    if (priority < best_priority) {
      best_priority = priority;
      best_error = f->error;
    }
  }
  if (best_error) {
    fibers_.clear();
    std::rethrow_exception(best_error);
  }

  RunStats out;
  out.procs.reserve(static_cast<std::size_t>(p));
  for (auto& f : fibers_) out.procs.push_back(f->stats);
  fibers_.clear();
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().end_run(out.parallel_time());
  }
  return out;
}

}  // namespace sparts::exec
