// The task-DAG execution backend: ranks are fibers on a work-stealing pool.
//
// Where ThreadBackend gives every rank its own OS thread, TaskBackend gives
// every rank a ucontext fiber and multiplexes the fibers onto
// TaskScheduler's worker pool (as many workers as the host has cores, not
// as many as the program has ranks).  A rank runs until its recv() finds
// no matching message; the fiber then suspends — the wait becomes a
// *dynamic dependency edge* — and the worker picks up another runnable
// rank from its deque.  A send() that satisfies a suspended rank's wait
// re-readies that fiber on the sender's worker, so a producer-consumer
// chain of supernodes executes depth-first on one core with user-space
// context switches instead of condvar wakeups through the kernel
// scheduler.  This is what makes the backend win on irregular elimination
// trees (chains, wide flat forests) where ThreadBackend's p threads spend
// their lives parked at merge points — see bench/bench_taskdag.cpp.
//
// Semantics are those of the Process contract, matching ThreadBackend:
//   * buffered sends, blocking tag-matched recv, try_recv polling;
//   * compute()/compute_at() count flops; times are wall-clock seconds;
//   * per-rank ProcStats with the same busy/idle accounting;
//   * an exception on one rank aborts the run (blocked peers unwind with
//     a secondary DeadlockError) and run() rethrows the root cause.
// Because the repo's message discipline keeps every in-flight (src, dst,
// tag) unique — and no solver code receives from kAnySource — any correct
// backend matches the same sends to the same recvs, so a solve on this
// backend is bit-identical to one on ThreadBackend or the simulator.
//
// Deadlock detection is exact rather than timeout-based: all messages
// come from the run's own fibers, so the moment every live fiber is
// suspended in recv with no match, no progress is possible and the run
// aborts with DeadlockError (this subsumes ThreadBackend's "every other
// rank already finished" rule).
//
// Message path: like ThreadBackend, messages travel through per-(src,dst)
// lock-free SPSC rings (spsc_ring.hpp) and a parked receiver is re-readied
// through a seq_cst publish/probe handshake against the sender; the locked
// per-rank mailbox is the ring-overflow fallback.  send_owned() moves the
// payload buffer through the ring (zero-copy for large panels).
//
// Tuning knobs (environment): SPARTS_TASK_WORKERS, SPARTS_TASK_CLUSTER
// (see task_scheduler.hpp), SPARTS_TASK_STACK_KB (per-fiber stack,
// default 1024) and SPARTS_SPSC=off (disable the ring fast path).
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "exec/process.hpp"
#include "exec/spsc_ring.hpp"
#include "exec/task_scheduler.hpp"
#include "exec/waitgroup.hpp"

namespace sparts::exec {

class TaskBackend final : public Comm {
 public:
  struct Config {
    index_t nprocs = 1;
    /// Carried as a hint source only; this backend measures wall clock.
    CostModel cost{};
    TopologyKind topology = TopologyKind::fully_connected;
    /// Worker pool shape (worker count, steal clusters, spin budget).
    TaskScheduler::Config scheduler{};
    /// Per-fiber stack in KiB; 0 = $SPARTS_TASK_STACK_KB, else 1024.
    std::size_t stack_kb = 0;
  };

  explicit TaskBackend(const Config& config);
  ~TaskBackend() override;

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return config_.nprocs; }
  const CostModel& cost() const override { return config_.cost; }
  const Topology& topology() const override { return topology_; }

  /// Scheduler counters of the most recent run() (steals, parks, ...).
  SchedulerStats last_scheduler_stats() const { return sched_stats_; }

 private:
  struct Fiber;
  class FiberProcess;
  friend class FiberProcess;

  struct Message {
    index_t src;
    int tag;
    Payload payload;
  };

  /// Job body: run `f` until it suspends or finishes, then file it.
  void resume(Fiber& f, const JobContext& ctx);
  /// Enqueue a resume of `f` on the scheduler.
  void schedule(Fiber& f, int affinity, bool low_priority = false);
  /// Entry point of every fiber (runs on its own stack).
  void fiber_main(Fiber& f);

  /// Blocking receive for a fiber: suspends until a match arrives.
  Message take_match(Fiber& f, index_t src, int tag);
  /// Non-blocking receive; throws DeadlockError when the run is aborted.
  bool take_match_now(Fiber& f, index_t src, int tag, Message* out);
  /// Deliver to `dst`'s mailbox, waking its fiber if the message matches
  /// the wait it is parked on.
  void deliver(Fiber& sender, index_t dst, Message msg);
  /// Responsive sleep: yields the fiber once (see Process::poll_wait).
  void fiber_poll_wait(Fiber& f, double seconds);

  /// Consumer side, lock-free: move everything from rank `f`'s rings into
  /// its private pending list.  Safe from the fiber itself or (while it is
  /// suspended) from the worker in resume(): the scheduler hands a fiber
  /// to one executor at a time, so the SPSC consumer role is preserved.
  bool drain_rings(Fiber& f);
  /// Consumer side, under state_mutex_: splice ring-overflow messages
  /// (and everything when rings are off) into the pending list.
  bool drain_overflow_locked(Fiber& f);
  /// Scan `f`'s pending list for the first (src|kAnySource, tag) match.
  bool match_pending(Fiber& f, index_t src, int tag, bool pop, Message* out);
  /// The SPSC ring carrying src→dst traffic (valid when rings_on_).
  SpscRing<Message>& ring(index_t src, index_t dst) {
    return rings_[static_cast<std::size_t>(dst) *
                      static_cast<std::size_t>(config_.nprocs) +
                  static_cast<std::size_t>(src)];
  }
  /// Abort the run: mark it dead and re-ready every parked fiber so it
  /// unwinds with DeadlockError.  Idempotent.
  void abort_all_locked(const std::string& reason);
  /// Deadlock check: every live fiber suspended with no match in sight.
  void check_stalled_locked();

  static void trampoline(unsigned hi, unsigned lo);
  /// Sanitizer bookkeeping on arrival inside a fiber.
  static void finish_switch_into_fiber(Fiber& f);
  /// Save the calling fiber's context and return to its worker.
  static void switch_out_of_fiber(Fiber& f);

  Config config_;
  Topology topology_;
  std::size_t stack_bytes_ = 0;

  // --- per-run state -------------------------------------------------
  std::unique_ptr<TaskScheduler> scheduler_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  /// Ring-overflow queues, one per destination rank (every message when
  /// the ring fast path is off).  Guarded by state_mutex_.
  std::vector<std::deque<Message>> mailboxes_;
  /// p*p SPSC rings, src→dst at rings_[dst*p + src]; null when the fast
  /// path is off (SPARTS_SPSC=off or nprocs too large).
  std::unique_ptr<SpscRing<Message>[]> rings_;
  bool rings_on_ = false;
  /// Guards mailboxes_, fiber park/abort flags and the live/blocked
  /// counters.  Never held across a context switch.
  std::mutex state_mutex_;
  index_t live_ = 0;     ///< fibers still inside spmd()
  index_t blocked_ = 0;  ///< fibers parked in recv
  bool aborted_ = false;
  Latch* done_ = nullptr;
  std::chrono::steady_clock::time_point epoch_{};
  bool running_ = false;
  SchedulerStats sched_stats_{};
};

}  // namespace sparts::exec
