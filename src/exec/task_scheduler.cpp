#include "exec/task_scheduler.hpp"

#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "exec/waitgroup.hpp"
#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

// Identity of the calling thread inside its pool.  A scheduler pointer is
// kept alongside the index so submit(affinity = -1) can tell "worker of
// *this* scheduler" from "worker of some other scheduler" (tests nest
// pools).
thread_local const TaskScheduler* tl_scheduler = nullptr;
thread_local int tl_worker = -1;

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return static_cast<int>(std::strtol(v, nullptr, 10));
}

}  // namespace

TaskScheduler::TaskScheduler() : TaskScheduler(Config{}) {}

TaskScheduler::TaskScheduler(const Config& config) {
  int w = config.workers;
  if (w <= 0) w = env_int("SPARTS_TASK_WORKERS", 0);
  if (w <= 0) w = static_cast<int>(std::thread::hardware_concurrency());
  if (w <= 0) w = 1;
  int cluster = config.cluster_size;
  if (cluster <= 0) cluster = env_int("SPARTS_TASK_CLUSTER", 0);
  if (cluster <= 0) cluster = 4;
  spin_sweeps_ = config.spin_sweeps > 0 ? config.spin_sweeps : 1;

  workers_.reserve(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) workers_.push_back(std::make_unique<Worker>());

  // Victim order for worker i: the rest of i's cluster first, then the
  // other workers; both groups rotated by i so thieves fan out instead of
  // converging on worker 0.
  victim_order_.assign(static_cast<std::size_t>(w), {});
  for (int i = 0; i < w; ++i) {
    auto& order = victim_order_[static_cast<std::size_t>(i)];
    const int my_cluster = i / cluster;
    std::vector<int> remote;
    for (int k = 1; k < w; ++k) {
      const int v = (i + k) % w;
      if (v / cluster == my_cluster) {
        order.push_back(v);
      } else {
        remote.push_back(v);
      }
    }
    order.insert(order.end(), remote.begin(), remote.end());
  }

  for (int i = 0; i < w; ++i) {
    workers_[static_cast<std::size_t>(i)]->thread =
        std::thread([this, i] { worker_loop(i); });
  }
}

TaskScheduler::~TaskScheduler() {
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
    stop_ = true;
  }
  park_cv_.notify_all();
  for (auto& w : workers_) w->thread.join();
}

int TaskScheduler::current_worker() { return tl_worker; }

void TaskScheduler::submit(Job job, int affinity, bool low_priority) {
  const int w = workers();
  int target;
  if (affinity >= 0) {
    target = affinity % w;
  } else if (tl_scheduler == this && tl_worker >= 0) {
    target = tl_worker;
  } else {
    target = static_cast<int>(
        next_rr_.fetch_add(1, std::memory_order_relaxed) % w);
  }
  Worker& wk = *workers_[static_cast<std::size_t>(target)];
  {
    std::lock_guard<std::mutex> lock(wk.mutex);
    if (low_priority) {
      wk.jobs.push_front(std::move(job));
    } else {
      wk.jobs.push_back(std::move(job));
    }
  }
  queued_.fetch_add(1, std::memory_order_release);
  // Pairing with the queued_ check under park_mutex_ in worker_loop: a
  // worker that misses the increment is still holding the mutex we are
  // about to take, so the notify cannot be lost.
  {
    std::lock_guard<std::mutex> lock(park_mutex_);
  }
  park_cv_.notify_all();
}

bool TaskScheduler::try_pop(int w, Job* out) {
  Worker& wk = *workers_[static_cast<std::size_t>(w)];
  std::lock_guard<std::mutex> lock(wk.mutex);
  if (wk.jobs.empty()) return false;
  *out = std::move(wk.jobs.back());
  wk.jobs.pop_back();
  return true;
}

bool TaskScheduler::try_steal(int w, Job* out) {
  for (const int v : victim_order_[static_cast<std::size_t>(w)]) {
    Worker& victim = *workers_[static_cast<std::size_t>(v)];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (victim.jobs.empty()) continue;
    *out = std::move(victim.jobs.front());
    victim.jobs.pop_front();
    return true;
  }
  return false;
}

void TaskScheduler::worker_loop(int w) {
  tl_scheduler = this;
  tl_worker = w;
  Worker& self = *workers_[static_cast<std::size_t>(w)];
  for (;;) {
    Job job;
    bool found = false;
    bool stolen = false;
    for (int sweep = 0; sweep < spin_sweeps_ && !found; ++sweep) {
      if (try_pop(w, &job)) {
        found = true;
      } else if (try_steal(w, &job)) {
        found = true;
        stolen = true;
      }
    }
    if (found) {
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      if (stolen) self.steals.fetch_add(1, std::memory_order_relaxed);
      self.jobs_run.fetch_add(1, std::memory_order_relaxed);
      job(JobContext{w, stolen});
      continue;
    }
    std::unique_lock<std::mutex> lock(park_mutex_);
    if (stop_) return;
    if (queued_.load(std::memory_order_acquire) > 0) continue;
    self.parks.fetch_add(1, std::memory_order_relaxed);
    park_cv_.wait(lock, [&] {
      return stop_ || queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_) return;
  }
}

SchedulerStats TaskScheduler::stats() const {
  SchedulerStats st;
  st.workers = workers();
  for (const auto& w : workers_) {
    st.jobs_run += w->jobs_run.load(std::memory_order_relaxed);
    st.steals += w->steals.load(std::memory_order_relaxed);
    st.parks += w->parks.load(std::memory_order_relaxed);
  }
  return st;
}

void TaskScheduler::run_graph(const TaskGraph& graph) {
  SPARTS_CHECK(tl_scheduler != this,
               "run_graph must not be called from a worker of the same pool");
  const index_t n = graph.num_tasks();
  if (n == 0) return;

  struct RunState {
    std::vector<std::atomic<index_t>> pending;
    WaitGroup wg;
    std::atomic<bool> cancelled{false};
    std::mutex err_mutex;
    std::exception_ptr first_error;
    explicit RunState(index_t count)
        : pending(static_cast<std::size_t>(count)), wg(count) {}
  };
  RunState state(n);
  for (TaskId id = 0; id < n; ++id) {
    state.pending[static_cast<std::size_t>(id)].store(
        graph.num_predecessors(id), std::memory_order_relaxed);
  }

  // Release = enqueue on the node's preferred worker (or wherever the
  // releasing job is running, for locality).  Bodies that throw flip
  // `cancelled`: later tasks skip their bodies but still drain the DAG so
  // the wait group reaches zero.
  std::function<void(TaskId)> release = [&](TaskId id) {
    submit(
        [&state, &graph, &release, id](const JobContext& ctx) {
          const TaskNode& nd = graph.node(id);
          if (!state.cancelled.load(std::memory_order_acquire)) {
            const bool tracing = obs::Tracer::enabled();
            if (tracing) {
              auto& tracer = obs::Tracer::instance();
              tracer.instant_now(static_cast<std::int32_t>(ctx.worker),
                                 obs::Category::task,
                                 ctx.stolen ? "task_steal" : "task_ready",
                                 static_cast<std::int64_t>(id),
                                 static_cast<std::int64_t>(nd.item));
              tracer.record(static_cast<std::int32_t>(ctx.worker),
                            obs::EventKind::span_begin, obs::Category::task,
                            "task_run", obs::Tracer::instance().timeline(),
                            static_cast<std::int64_t>(id),
                            static_cast<std::int64_t>(nd.item));
            }
            try {
              if (nd.body) nd.body();
            } catch (...) {
              std::lock_guard<std::mutex> lock(state.err_mutex);
              if (!state.first_error) {
                state.first_error = std::current_exception();
              }
              state.cancelled.store(true, std::memory_order_release);
            }
            if (tracing) {
              obs::Tracer::instance().record(
                  static_cast<std::int32_t>(ctx.worker),
                  obs::EventKind::span_end, obs::Category::task, "task_run",
                  obs::Tracer::instance().timeline());
            }
          }
          for (const TaskId s : graph.successors(id)) {
            if (state.pending[static_cast<std::size_t>(s)].fetch_sub(
                    1, std::memory_order_acq_rel) == 1) {
              release(s);
            }
          }
          state.wg.done();
        },
        graph.node(id).affinity);
  };
  for (TaskId id = 0; id < n; ++id) {
    if (graph.num_predecessors(id) == 0) release(id);
  }
  state.wg.wait();
  if (state.first_error) std::rethrow_exception(state.first_error);
}

}  // namespace sparts::exec
