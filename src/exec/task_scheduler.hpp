// Work-stealing task scheduler: the execution engine under exec::TaskBackend
// and TaskGraph runs.
//
// Structure is the classic Cilk/TBB shape:
//   * one deque per worker thread, guarded by its own mutex.  The owner
//     pushes and pops at the back (LIFO — depth-first, cache-warm);
//     thieves steal from the front (FIFO — oldest, biggest subtrees);
//   * topology-aware victim order: workers are grouped into clusters of
//     `cluster_size` (modelling a shared L2/L3 or NUMA node), and a thief
//     sweeps its own cluster before crossing cluster boundaries;
//   * idle policy: a starved worker re-sweeps every deque a few times,
//     then parks on a condition variable; submit() wakes parked workers.
//
// The scheduler runs two kinds of clients: explicit TaskGraph executions
// (run_graph: atomically count down predecessors, release successors) and
// the fiber resume-jobs of TaskBackend.  It knows nothing about either —
// a job is just a callable receiving the worker it landed on and whether
// it was stolen, which is what the tracing layer wants to know.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"
#include "exec/taskgraph.hpp"

namespace sparts::exec {

/// Where a job ran: handed to the job body for tracing/affinity decisions.
struct JobContext {
  int worker = 0;       ///< worker index the job executed on
  bool stolen = false;  ///< true when it ran off another worker's deque
};

/// Aggregate scheduler counters (relaxed snapshots; exact once quiescent).
struct SchedulerStats {
  int workers = 0;
  std::int64_t jobs_run = 0;
  std::int64_t steals = 0;  ///< jobs that ran on a worker other than their deque's
  std::int64_t parks = 0;   ///< times a starved worker went to sleep
};

class TaskScheduler {
 public:
  struct Config {
    /// Worker thread count; 0 = $SPARTS_TASK_WORKERS, else the host's
    /// hardware concurrency (at least 1).
    int workers = 0;
    /// Workers per cluster for the victim order; 0 = $SPARTS_TASK_CLUSTER,
    /// else 4 (a typical core-complex / L3 group size).
    int cluster_size = 0;
    /// Full steal sweeps before a starved worker parks.
    int spin_sweeps = 2;
  };

  using Job = std::function<void(const JobContext&)>;

  TaskScheduler();  ///< default Config
  explicit TaskScheduler(const Config& config);
  ~TaskScheduler();

  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;

  /// Enqueue a job.  `affinity` names the worker whose deque receives it
  /// (taken modulo the pool size); -1 means the calling worker when the
  /// caller is a worker thread, round-robin otherwise.  `low_priority`
  /// pushes to the steal end instead of the owner end: the job runs after
  /// everything already queued there — used for yields, so a polling
  /// fiber cannot starve its queue-mates.
  void submit(Job job, int affinity = -1, bool low_priority = false);

  /// Execute an explicit task graph to completion.  Tasks are released as
  /// their predecessors finish; a task body throwing cancels every
  /// not-yet-started body (the DAG still drains structurally) and the
  /// first error is rethrown here.  Blocks the calling thread; must not
  /// be called from a worker.
  void run_graph(const TaskGraph& graph);

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Index of the calling worker thread in its scheduler, -1 off-pool.
  static int current_worker();

  SchedulerStats stats() const;

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<Job> jobs;  ///< owner end = back, steal end = front
    std::atomic<std::int64_t> jobs_run{0};
    std::atomic<std::int64_t> steals{0};
    std::atomic<std::int64_t> parks{0};
    std::thread thread;
  };

  void worker_loop(int w);
  bool try_pop(int w, Job* out);
  bool try_steal(int w, Job* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::vector<int>> victim_order_;  ///< per worker, cluster-first
  int spin_sweeps_ = 2;

  std::atomic<std::int64_t> queued_{0};  ///< jobs pushed, not yet popped
  std::atomic<std::int64_t> next_rr_{0};
  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  bool stop_ = false;  ///< guarded by park_mutex_
};

}  // namespace sparts::exec
