#include "exec/taskgraph.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace sparts::exec {

const char* to_string(TaskKind kind) {
  switch (kind) {
    case TaskKind::generic:
      return "generic";
    case TaskKind::panel_factor:
      return "panel_factor";
    case TaskKind::update:
      return "update";
    case TaskKind::fwd_solve:
      return "fwd_solve";
    case TaskKind::bwd_solve:
      return "bwd_solve";
  }
  return "generic";
}

TaskId TaskGraph::add_task(TaskNode node) {
  SPARTS_CHECK(node.cost >= 0.0, "task cost must be non-negative");
  const TaskId id = num_tasks();
  nodes_.push_back(std::move(node));
  succ_.emplace_back();
  indegree_.push_back(0);
  return id;
}

TaskId TaskGraph::add_task(std::string label, std::function<void()> body,
                           TaskKind kind, double cost) {
  TaskNode node;
  node.label = std::move(label);
  node.body = std::move(body);
  node.kind = kind;
  node.cost = cost;
  return add_task(std::move(node));
}

void TaskGraph::add_edge(TaskId from, TaskId to) {
  SPARTS_CHECK(from >= 0 && from < num_tasks(), "edge source out of range");
  SPARTS_CHECK(to >= 0 && to < num_tasks(), "edge target out of range");
  SPARTS_CHECK(from != to, "self-edge in task graph");
  auto& succ = succ_[static_cast<std::size_t>(from)];
  if (std::find(succ.begin(), succ.end(), to) != succ.end()) return;
  succ.push_back(to);
  ++indegree_[static_cast<std::size_t>(to)];
  ++num_edges_;
}

std::vector<TaskId> TaskGraph::topo_schedule() const {
  const index_t n = num_tasks();
  std::vector<index_t> pending(indegree_.begin(), indegree_.end());
  // Min-heap over ready ids: deterministic output independent of the
  // order edges were added.
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId id = 0; id < n; ++id) {
    if (pending[static_cast<std::size_t>(id)] == 0) ready.push(id);
  }
  std::vector<TaskId> order;
  order.reserve(static_cast<std::size_t>(n));
  while (!ready.empty()) {
    const TaskId id = ready.top();
    ready.pop();
    order.push_back(id);
    for (const TaskId s : succ_[static_cast<std::size_t>(id)]) {
      if (--pending[static_cast<std::size_t>(s)] == 0) ready.push(s);
    }
  }
  SPARTS_CHECK(static_cast<index_t>(order.size()) == n,
               "task graph contains a cycle");
  return order;
}

GraphStats TaskGraph::analyze() const {
  GraphStats st;
  st.tasks = num_tasks();
  st.edges = num_edges_;
  const std::vector<TaskId> order = topo_schedule();

  // Longest root-to-task chains, by cost and by task count, in one sweep.
  std::vector<double> path_cost(nodes_.size(), 0.0);
  std::vector<std::int64_t> level(nodes_.size(), 0);
  std::vector<std::int64_t> width;
  for (const TaskId id : order) {
    const auto i = static_cast<std::size_t>(id);
    const TaskNode& nd = nodes_[i];
    st.total_cost += nd.cost;
    ++st.kind_counts[static_cast<std::size_t>(nd.kind)];
    path_cost[i] += nd.cost;
    st.critical_path_cost = std::max(st.critical_path_cost, path_cost[i]);
    st.depth = std::max(st.depth, level[i] + 1);
    if (static_cast<std::int64_t>(width.size()) <= level[i]) {
      width.resize(static_cast<std::size_t>(level[i]) + 1, 0);
    }
    ++width[static_cast<std::size_t>(level[i])];
    for (const TaskId s : succ_[i]) {
      const auto j = static_cast<std::size_t>(s);
      path_cost[j] = std::max(path_cost[j], path_cost[i]);
      level[j] = std::max(level[j], level[i] + 1);
    }
  }
  for (const std::int64_t w : width) st.max_width = std::max(st.max_width, w);
  st.avg_parallelism = st.critical_path_cost > 0.0
                           ? st.total_cost / st.critical_path_cost
                           : 0.0;
  return st;
}

}  // namespace sparts::exec
