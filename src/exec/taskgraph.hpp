// Explicit task DAGs: the data structure the parallel algorithms lower to.
//
// A TaskGraph is a static DAG of named tasks with dependency edges
// (from -> to means `from` must finish before `to` may start).  Two
// consumers exist:
//
//   * TaskScheduler::run_graph executes the bodies on the work-stealing
//     pool, releasing each task when its last predecessor completes
//     (the shared-memory lowering of factorization / trisolve);
//   * the SPMD lowerings in parfact/partrisolve walk topo_schedule() and
//     execute the subset of tasks their rank owns, which keeps the
//     message-passing code an explicit traversal of the same graph.
//
// Bodies are optional: a structure-only graph (no bodies) still supports
// topo_schedule() and analyze(), which is what the solver report uses to
// print DAG statistics without running anything.
#pragma once

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::exec {

using TaskId = index_t;

/// The kind of work a task performs; used for labels, tracing, and the
/// per-kind counts in GraphStats.  The values mirror the paper's block
/// operations: panel factorization / Schur update for the factorization
/// DAG, forward / backward substitution blocks for the solve DAGs.
enum class TaskKind : std::uint8_t {
  generic,
  panel_factor,  ///< factor a supernode's pivot block (chol + trsm)
  update,        ///< Schur-complement / extend-add contribution
  fwd_solve,     ///< forward-substitution block
  bwd_solve,     ///< backward-substitution block
};

const char* to_string(TaskKind kind);

struct TaskNode {
  std::string label;            ///< human-readable (traces, dumps)
  TaskKind kind = TaskKind::generic;
  std::function<void()> body;   ///< may be empty (structure-only graphs)
  double cost = 1.0;            ///< relative weight for critical-path stats
  index_t item = -1;            ///< algorithm payload id (supernode, ...)
  int affinity = -1;            ///< preferred worker, -1 = don't care
};

/// Summary statistics of a graph, computed by analyze().
struct GraphStats {
  std::int64_t tasks = 0;
  std::int64_t edges = 0;
  double total_cost = 0.0;
  double critical_path_cost = 0.0;  ///< heaviest root-to-leaf cost chain
  std::int64_t depth = 0;           ///< longest chain, counted in tasks
  std::int64_t max_width = 0;       ///< most tasks at one depth level
  /// total_cost / critical_path_cost: the speedup an infinite machine
  /// could reach on this graph — the number the bench tables compare
  /// the schedulers against.
  double avg_parallelism = 0.0;
  std::int64_t count_of(TaskKind kind) const {
    return kind_counts[static_cast<std::size_t>(kind)];
  }
  std::int64_t kind_counts[5] = {0, 0, 0, 0, 0};
};

class TaskGraph {
 public:
  /// Add a task; returns its id.  Ids are dense and ordered by insertion.
  TaskId add_task(TaskNode node);

  /// Convenience: label + body only.
  TaskId add_task(std::string label, std::function<void()> body = {},
                  TaskKind kind = TaskKind::generic, double cost = 1.0);

  /// `from` must complete before `to` starts.  Self-edges are rejected;
  /// duplicate edges are allowed and collapse to one.
  void add_edge(TaskId from, TaskId to);

  index_t num_tasks() const { return static_cast<index_t>(nodes_.size()); }
  std::int64_t num_edges() const { return num_edges_; }
  const TaskNode& node(TaskId id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  TaskNode& node(TaskId id) { return nodes_[static_cast<std::size_t>(id)]; }
  std::span<const TaskId> successors(TaskId id) const {
    return succ_[static_cast<std::size_t>(id)];
  }
  index_t num_predecessors(TaskId id) const {
    return indegree_[static_cast<std::size_t>(id)];
  }

  /// Deterministic topological order (Kahn's algorithm, smallest-id-first
  /// among ready tasks).  Throws InvalidArgument on a cycle.  For the
  /// supernode DAGs — where tasks are added bottom-up — this returns
  /// insertion order, which is what the SPMD lowerings walk.
  std::vector<TaskId> topo_schedule() const;

  /// Structural statistics (critical path, width, parallelism).
  GraphStats analyze() const;

 private:
  std::vector<TaskNode> nodes_;
  std::vector<std::vector<TaskId>> succ_;
  std::vector<index_t> indegree_;
  std::int64_t num_edges_ = 0;
};

}  // namespace sparts::exec
