#include "exec/thread_backend.hpp"

#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

// ---------------------------------------------------------------------------
// RankProcess
// ---------------------------------------------------------------------------

// The per-thread Process implementation.  All mutable state (stats, the
// busy-time mark) is owned by the rank's thread; run() reads it only after
// join(), so no locking is needed here.
class ThreadBackend::RankProcess final : public Process {
 public:
  RankProcess(ThreadBackend* backend, index_t rank)
      : backend_(backend), rank_(rank), last_mark_(Clock::now()) {}

  index_t rank() const override { return rank_; }
  index_t nprocs() const override { return backend_->config_.nprocs; }

  double now() const override {
    return seconds_between(backend_->epoch_, Clock::now());
  }

  void compute(double flops, FlopKind /*kind*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void compute_at(double flops, double /*seconds_per_flop*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void elapse(double seconds) override { SPARTS_CHECK(seconds >= 0.0); }

  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    SPARTS_CHECK(dst >= 0 && dst < nprocs(),
                 "send destination " << dst << " out of range");
    const Clock::time_point t0 = flush_busy();
    backend_->deliver(
        dst, Message{rank_, tag,
                     std::vector<std::byte>(payload.begin(), payload.end())});
    const Clock::time_point t1 = Clock::now();
    stats_.send_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_sent;
    stats_.words_sent += static_cast<nnz_t>(
        (payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(rank_);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(payload.size()),
                          static_cast<std::int64_t>(dst));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t1));
    }
    if (obs::metrics_enabled()) {
      obs::metrics().histogram("comm.message_bytes")
          .observe(static_cast<std::int64_t>(payload.size()));
    }
  }

  ReceivedMessage recv(index_t src, int tag) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    const Clock::time_point t0 = flush_busy();
    Message msg = backend_->take_match(rank_, src, tag);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(rank_);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(msg.payload.size()),
                          static_cast<std::int64_t>(msg.src));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t1));
    }
    return ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
  }

  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    SPARTS_CHECK(out != nullptr);
    Message msg;
    if (!backend_->take_match_now(rank_, src, tag, &msg)) return false;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    *out = ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
    return true;
  }

  void poll_wait(double seconds) override {
    SPARTS_CHECK(seconds >= 0.0);
    const Clock::time_point t0 = flush_busy();
    backend_->wait_on_mailbox(rank_, seconds);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
  }

  const CostModel& cost() const override { return backend_->config_.cost; }
  const Topology& topology() const override { return backend_->topology_; }

  /// Close the final busy segment and stamp the finishing time.
  ProcStats finish() {
    flush_busy();
    stats_.clock = now();
    return stats_;
  }

 private:
  /// Credit wall time since the last communication call as compute time.
  Clock::time_point flush_busy() {
    const Clock::time_point t = Clock::now();
    stats_.compute_time += seconds_between(last_mark_, t);
    last_mark_ = t;
    return t;
  }

  ThreadBackend* backend_;
  index_t rank_;
  ProcStats stats_;
  Clock::time_point last_mark_;
};

// ---------------------------------------------------------------------------
// ThreadBackend
// ---------------------------------------------------------------------------

ThreadBackend::ThreadBackend(const Config& config)
    : config_(config), topology_(config.topology, config.nprocs) {
  SPARTS_CHECK(config.nprocs >= 1, "need at least one processor");
  SPARTS_CHECK(config.recv_timeout > 0.0, "recv_timeout must be positive");
}

void ThreadBackend::deliver(index_t dst, Message msg) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
  }
  mb.cv.notify_all();
}

ThreadBackend::Message ThreadBackend::take_match(index_t rank, index_t src,
                                                 int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(mb.mutex);
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.recv_timeout));

  auto find = [&] {
    for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
      if (it->tag == tag && (src == kAnySource || it->src == src)) return it;
    }
    return mb.queue.end();
  };

  for (;;) {
    if (auto it = find(); it != mb.queue.end()) {
      Message msg = std::move(*it);
      mb.queue.erase(it);
      return msg;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      throw DeadlockError("thread backend run aborted: rank " +
                          std::to_string(rank) +
                          " was waiting in recv when another rank failed");
    }
    if (active_.load(std::memory_order_acquire) <= 1) {
      throw DeadlockError(
          "thread backend deadlock: rank " + std::to_string(rank) +
          " waits for src=" + std::to_string(src) +
          " tag=" + std::to_string(tag) +
          " but every other rank already finished");
    }
    if (mb.cv.wait_until(lock, deadline) == std::cv_status::timeout &&
        find() == mb.queue.end()) {
      throw DeadlockError(
          "thread backend recv timed out after " +
          std::to_string(config_.recv_timeout) + "s: rank " +
          std::to_string(rank) + " waits for src=" + std::to_string(src) +
          " tag=" + std::to_string(tag) + " (likely deadlock)");
    }
  }
}

bool ThreadBackend::take_match_now(index_t rank, index_t src, int tag,
                                   Message* out) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  std::lock_guard<std::mutex> lock(mb.mutex);
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
  for (auto it = mb.queue.begin(); it != mb.queue.end(); ++it) {
    if (it->tag == tag && (src == kAnySource || it->src == src)) {
      *out = std::move(*it);
      mb.queue.erase(it);
      return true;
    }
  }
  return false;
}

void ThreadBackend::wait_on_mailbox(index_t rank, double seconds) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  std::unique_lock<std::mutex> lock(mb.mutex);
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
  // Every peer finished: nothing new can arrive, so return at once and
  // let the caller's retry budget expire instead of sleeping it out.
  if (active_.load(std::memory_order_acquire) <= 1) return;
  mb.cv.wait_for(lock, std::chrono::duration<double>(seconds));
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
}

void ThreadBackend::wake_all_mailboxes() {
  for (auto& mb : mailboxes_) {
    { std::lock_guard<std::mutex> lock(mb->mutex); }
    mb->cv.notify_all();
  }
}

RunStats ThreadBackend::run(const std::function<void(Process&)>& spmd) {
  SPARTS_CHECK(!running_, "ThreadBackend::run is not reentrant");
  running_ = true;
  aborted_.store(false, std::memory_order_release);
  mailboxes_.clear();
  mailboxes_.reserve(static_cast<std::size_t>(config_.nprocs));
  for (index_t r = 0; r < config_.nprocs; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  errors_.assign(static_cast<std::size_t>(config_.nprocs), nullptr);
  active_.store(config_.nprocs, std::memory_order_release);
  std::vector<ProcStats> stats(static_cast<std::size_t>(config_.nprocs));
  epoch_ = Clock::now();
  if (obs::Tracer::enabled()) obs::Tracer::instance().begin_run();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.nprocs));
  for (index_t r = 0; r < config_.nprocs; ++r) {
    threads.emplace_back([this, r, &spmd, &stats] {
      RankProcess proc(this, r);
      try {
        spmd(proc);
      } catch (...) {
        errors_[static_cast<std::size_t>(r)] = std::current_exception();
        aborted_.store(true, std::memory_order_release);
      }
      stats[static_cast<std::size_t>(r)] = proc.finish();
      active_.fetch_sub(1, std::memory_order_acq_rel);
      // Wake peers either to abort or to detect that this rank can no
      // longer send them anything.
      wake_all_mailboxes();
    });
  }
  for (auto& t : threads) t.join();
  running_ = false;

  // Propagate the highest-priority user error (root causes beat timeouts
  // beat secondary deadlock unwinds), ties broken by rank order.  All
  // threads are already joined at this point, so a crashed rank can never
  // leave peers running or mailboxes live past this rethrow.
  std::exception_ptr best_error;
  int best_priority = 3;
  for (const auto& err : errors_) {
    if (!err) continue;
    const int priority = error_priority(err);
    if (priority < best_priority) {
      best_priority = priority;
      best_error = err;
    }
  }
  if (best_error) std::rethrow_exception(best_error);

  RunStats out;
  out.procs = std::move(stats);
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().end_run(out.parallel_time());
  }
  return out;
}

}  // namespace sparts::exec
