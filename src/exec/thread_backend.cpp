#include "exec/thread_backend.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::exec {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Rings are O(p^2) per backend; past this rank count fall back to the
/// locked mailboxes (which are O(p)).
constexpr index_t kMaxRingRanks = 128;
// Mailbox::ring_hint is 2 x 64 bits, one bit per possible ring source.
static_assert(kMaxRingRanks <= 128,
              "ring_hint words must cover every ring source rank");

/// Yield-based spin budget before parking.  yield (not pause): rank
/// threads routinely oversubscribe the cores, so giving the scheduler the
/// core is what lets the producer actually produce.
constexpr int kSpinYields = 32;

/// Spinning pays only while a yield is likely to run the producer next:
/// with every rank on its own core, or with exactly two ranks (ping-pong
/// — the yield is a directed handoff even on one core).  Once many ranks
/// share few cores, each blocked rank's yields cycle through the *other*
/// spinners before the one runnable producer, multiplying context
/// switches per delivered message — park immediately instead.
int spin_budget(index_t nprocs) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return nprocs <= std::max<index_t>(2, static_cast<index_t>(hw))
             ? kSpinYields
             : 0;
}

/// Parked waiters re-check their rings at least this often — a liveness
/// backstop (the Dekker handshake should make every wakeup explicit) that
/// also bounds the cost of any missed edge to one slice.
constexpr auto kParkSlice = std::chrono::milliseconds(5);

bool env_spsc_default(bool config_default) {
  const char* v = std::getenv("SPARTS_SPSC");
  if (v == nullptr || *v == '\0') return config_default;
  return !(std::strcmp(v, "off") == 0 || std::strcmp(v, "0") == 0);
}

}  // namespace

// ---------------------------------------------------------------------------
// RankProcess
// ---------------------------------------------------------------------------

// The per-thread Process implementation.  All mutable state (stats, the
// busy-time mark) is owned by the rank's thread; run() reads it only after
// join(), so no locking is needed here.
class ThreadBackend::RankProcess final : public Process {
 public:
  RankProcess(ThreadBackend* backend, index_t rank)
      : backend_(backend), rank_(rank), last_mark_(Clock::now()) {}

  index_t rank() const override { return rank_; }
  index_t nprocs() const override { return backend_->config_.nprocs; }

  double now() const override {
    return seconds_between(backend_->epoch_, Clock::now());
  }

  void compute(double flops, FlopKind /*kind*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void compute_at(double flops, double /*seconds_per_flop*/) override {
    SPARTS_CHECK(flops >= 0.0);
    stats_.flops += static_cast<nnz_t>(flops);
  }

  void elapse(double seconds) override { SPARTS_CHECK(seconds >= 0.0); }

  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    // Copy lane: capture the payload into a fresh (arena) buffer.
    post(dst, tag, Payload(payload.begin(), payload.end()),
         /*copied_bytes=*/payload.size());
  }

  void send_owned(index_t dst, int tag, Payload&& payload) override {
    if (payload.size() < kZeroCopyThreshold) {
      send(dst, tag, {payload.data(), payload.size()});
      return;
    }
    // Zero-copy lane: the buffer itself travels through the ring.
    post(dst, tag, std::move(payload), /*copied_bytes=*/0);
  }

  ReceivedMessage recv(index_t src, int tag) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    const Clock::time_point t0 = flush_busy();
    Message msg = backend_->take_match(rank_, src, tag);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(rank_);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(msg.payload.size()),
                          static_cast<std::int64_t>(msg.src));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "recv", seconds_between(backend_->epoch_, t1));
    }
    return ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
  }

  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    SPARTS_CHECK(src == kAnySource || (src >= 0 && src < nprocs()),
                 "recv source " << src << " out of range");
    SPARTS_CHECK(out != nullptr);
    Message msg;
    if (!backend_->take_match_now(rank_, src, tag, &msg)) return false;
    ++stats_.messages_received;
    stats_.words_received += static_cast<nnz_t>(
        (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
    *out = ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
    return true;
  }

  void poll_wait(double seconds) override {
    SPARTS_CHECK(seconds >= 0.0);
    const Clock::time_point t0 = flush_busy();
    backend_->wait_on_mailbox(rank_, seconds);
    const Clock::time_point t1 = Clock::now();
    stats_.idle_time += seconds_between(t0, t1);
    last_mark_ = t1;
  }

  const CostModel& cost() const override { return backend_->config_.cost; }
  const Topology& topology() const override { return backend_->topology_; }

  /// Close the final busy segment and stamp the finishing time.
  ProcStats finish() {
    flush_busy();
    stats_.clock = now();
    return stats_;
  }

 private:
  /// Shared tail of both send lanes: deliver + stats + tracing.
  void post(index_t dst, int tag, Payload payload, std::size_t copied_bytes) {
    SPARTS_CHECK(dst >= 0 && dst < nprocs(),
                 "send destination " << dst << " out of range");
    const std::size_t bytes = payload.size();
    const Clock::time_point t0 = flush_busy();
    backend_->deliver(dst, Message{rank_, tag, std::move(payload)});
    const Clock::time_point t1 = Clock::now();
    stats_.send_time += seconds_between(t0, t1);
    last_mark_ = t1;
    ++stats_.messages_sent;
    stats_.words_sent +=
        static_cast<nnz_t>((bytes + sizeof(real_t) - 1) / sizeof(real_t));
    stats_.bytes_copied += static_cast<nnz_t>(copied_bytes);
    if (obs::Tracer::enabled()) {
      auto& tracer = obs::Tracer::instance();
      const auto r32 = static_cast<std::int32_t>(rank_);
      tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t0),
                          static_cast<std::int64_t>(bytes),
                          static_cast<std::int64_t>(dst));
      tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                          "send", seconds_between(backend_->epoch_, t1));
    }
    if (obs::metrics_enabled()) {
      obs::metrics().histogram("comm.message_bytes")
          .observe(static_cast<std::int64_t>(bytes));
    }
  }

  /// Credit wall time since the last communication call as compute time.
  Clock::time_point flush_busy() {
    const Clock::time_point t = Clock::now();
    stats_.compute_time += seconds_between(last_mark_, t);
    last_mark_ = t;
    return t;
  }

  ThreadBackend* backend_;
  index_t rank_;
  ProcStats stats_;
  Clock::time_point last_mark_;
};

// ---------------------------------------------------------------------------
// ThreadBackend
// ---------------------------------------------------------------------------

ThreadBackend::ThreadBackend(const Config& config)
    : config_(config), topology_(config.topology, config.nprocs) {
  SPARTS_CHECK(config.nprocs >= 1, "need at least one processor");
  SPARTS_CHECK(config.recv_timeout > 0.0, "recv_timeout must be positive");
  config_.use_spsc = env_spsc_default(config.use_spsc);
}

void ThreadBackend::deliver(index_t dst, Message msg) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(dst)];
  const index_t src = msg.src;
  if (mb.rings != nullptr &&
      mb.rings[static_cast<std::size_t>(src)].try_push(msg)) {
    // Flag our ring as possibly-nonempty so the consumer's drain visits
    // only rings with traffic (O(active sources), not O(p)).  The
    // seq_cst RMW keeps the Dekker argument below intact: it is ordered
    // before the waiting probe, so a consumer that set waiting first
    // observes the hint (and hence the message) in its post-park drain.
    mb.ring_hint[src >> 6].fetch_or(std::uint64_t{1} << (src & 63),
                                    std::memory_order_seq_cst);
    // Dekker handshake with the consumer's park sequence: the seq_cst
    // fence orders our ring publish before the waiting probe, so either
    // we see waiting==true here (and notify), or the consumer's
    // post-waiting drain sees our message.  The empty lock/unlock pins
    // the notify after the consumer has actually entered cv.wait.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    // Edge-triggered wake: the first push of a burst *claims* the waiting
    // flag (exchange true->false) and pays the lock+notify round trip;
    // the rest of the burst sees false and stays on the pure ring path.
    // The claim cannot lose a wakeup — the claimer always notifies, and a
    // consumer that re-parks re-arms the flag before its Dekker drain.
    if (mb.waiting.load(std::memory_order_relaxed) &&
        mb.waiting.exchange(false, std::memory_order_seq_cst)) {
      { std::lock_guard<std::mutex> lock(mb.mutex); }
      mb.cv.notify_one();
    }
    return;
  }
  // Ring full or fast path off: locked fallback queue.
  {
    std::lock_guard<std::mutex> lock(mb.mutex);
    mb.queue.push_back(std::move(msg));
    mb.queue_size.store(mb.queue.size(), std::memory_order_release);
  }
  // Targeted wakeup: each mailbox has exactly one owner, so notify_one
  // suffices (the old notify_all woke the whole herd at high p).  With
  // the rings on the wakeup is edge-triggered like the ring path's: the
  // push happened under the same mutex the consumer's pre-park queue
  // drain holds, so a consumer observed waiting is genuinely parked and
  // one claimed notify per park is enough — a burst that overflows the
  // ring pays the futex wake once, not per spilled message.
  if (mb.rings == nullptr ||
      (mb.waiting.load(std::memory_order_relaxed) &&
       mb.waiting.exchange(false, std::memory_order_seq_cst))) {
    mb.cv.notify_one();
  }
}

bool ThreadBackend::drain_rings(Mailbox& mb) {
  if (mb.rings == nullptr) return false;
  bool any = false;
  Message m;
  // Visit only the rings whose producers flagged traffic since the last
  // drain.  exchange(0) claims the whole hint word: a bit set *during*
  // the drain is either satisfied now (we pop the item anyway) or re-read
  // on the next drain; a stale bit (item already popped) costs one empty
  // try_pop.  seq_cst pairs with the producer's fetch_or (see deliver).
  for (std::size_t w = 0; w < 2; ++w) {
    std::uint64_t bits = mb.ring_hint[w].exchange(0, std::memory_order_seq_cst);
    while (bits != 0) {
      const int bit = std::countr_zero(bits);
      bits &= bits - 1;
      const std::size_t s = w * 64 + static_cast<std::size_t>(bit);
      while (mb.rings[s].try_pop(&m)) {
        mb.pending.push_back(std::move(m));
        any = true;
      }
    }
  }
  return any;
}

bool ThreadBackend::drain_queue_locked(Mailbox& mb) {
  if (mb.queue.empty()) return false;
  while (!mb.queue.empty()) {
    mb.pending.push_back(std::move(mb.queue.front()));
    mb.queue.pop_front();
  }
  mb.queue_size.store(0, std::memory_order_release);
  return true;
}

bool ThreadBackend::pop_pending(Mailbox& mb, index_t src, int tag,
                                Message* out) {
  for (auto it = mb.pending.begin(); it != mb.pending.end(); ++it) {
    if (it->tag == tag && (src == kAnySource || it->src == src)) {
      *out = std::move(*it);
      mb.pending.erase(it);
      return true;
    }
  }
  return false;
}

ThreadBackend::Message ThreadBackend::take_match(index_t rank, index_t src,
                                                 int tag) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  Message out;
  if (pop_pending(mb, src, tag, &out)) return out;
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config_.recv_timeout));

  auto throw_aborted = [&] {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was waiting in recv when another rank failed");
  };

  const int spins = spin_budget(config_.nprocs);
  int idle_rounds = 0;
  for (;;) {
    // Fast path: drain the rings and match from pending.
    if (drain_rings(mb)) {
      if (pop_pending(mb, src, tag, &out)) return out;
      idle_rounds = 0;  // traffic is flowing; keep consuming the burst
      continue;
    }
    if (aborted_.load(std::memory_order_acquire)) throw_aborted();
    if (idle_rounds < spins) {
      ++idle_rounds;
      std::this_thread::yield();
      continue;
    }

    // Slow path: fallback queue, then park.
    std::unique_lock<std::mutex> lock(mb.mutex);
    drain_queue_locked(mb);
    if (pop_pending(mb, src, tag, &out)) return out;
    mb.waiting.store(true, std::memory_order_seq_cst);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (drain_rings(mb)) {  // consumer half of the Dekker handshake
      mb.waiting.store(false, std::memory_order_relaxed);
      if (pop_pending(mb, src, tag, &out)) return out;
      idle_rounds = 0;
      continue;
    }
    if (aborted_.load(std::memory_order_acquire)) {
      mb.waiting.store(false, std::memory_order_relaxed);
      throw_aborted();
    }
    if (active_.load(std::memory_order_acquire) <= 1) {
      mb.waiting.store(false, std::memory_order_relaxed);
      throw DeadlockError(
          "thread backend deadlock: rank " + std::to_string(rank) +
          " waits for src=" + std::to_string(src) +
          " tag=" + std::to_string(tag) +
          " but every other rank already finished");
    }
    mb.cv.wait_until(lock, std::min(deadline, Clock::now() + kParkSlice));
    mb.waiting.store(false, std::memory_order_relaxed);
    drain_queue_locked(mb);
    drain_rings(mb);
    if (pop_pending(mb, src, tag, &out)) return out;
    if (Clock::now() >= deadline) {
      throw DeadlockError(
          "thread backend recv timed out after " +
          std::to_string(config_.recv_timeout) + "s: rank " +
          std::to_string(rank) + " waits for src=" + std::to_string(src) +
          " tag=" + std::to_string(tag) + " (likely deadlock)");
    }
    idle_rounds = 0;
  }
}

bool ThreadBackend::take_match_now(index_t rank, index_t src, int tag,
                                   Message* out) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  drain_rings(mb);
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
  // With the rings on, the fallback queue only sees overflow traffic:
  // skip the mutex round trip whenever the atomic size says it is empty.
  // A concurrent overflow push we race past is caught by the caller's
  // poll loop (the producer's notify wakes the next poll_wait).
  if (mb.rings == nullptr ||
      mb.queue_size.load(std::memory_order_acquire) != 0) {
    std::lock_guard<std::mutex> lock(mb.mutex);
    drain_queue_locked(mb);
  }
  return pop_pending(mb, src, tag, out);
}

void ThreadBackend::wait_on_mailbox(index_t rank, double seconds) {
  Mailbox& mb = *mailboxes_[static_cast<std::size_t>(rank)];
  // Lock-free early out: arrivals since the caller's last drain mean its
  // next try_recv will find traffic, so skip the mutex and the condvar
  // entirely.  (The caller's take_match_now drains rings and hints first,
  // so a stale hint bit cannot make this loop spin.)
  if (mb.rings != nullptr &&
      !aborted_.load(std::memory_order_acquire) &&
      (mb.queue_size.load(std::memory_order_acquire) != 0 ||
       mb.ring_hint[0].load(std::memory_order_seq_cst) != 0 ||
       mb.ring_hint[1].load(std::memory_order_seq_cst) != 0)) {
    return;
  }
  std::unique_lock<std::mutex> lock(mb.mutex);
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
  // Every peer finished: nothing new can arrive, so return at once and
  // let the caller's retry budget expire instead of sleeping it out.
  if (active_.load(std::memory_order_acquire) <= 1) return;
  mb.waiting.store(true, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Undrained ring items (or fallback-queue items) arrived after the
  // caller's last try_recv drain: that is exactly the "message delivery"
  // this wait is supposed to wake early for.
  bool arrivals = !mb.queue.empty();
  if (!arrivals && mb.rings != nullptr) {
    // Peek (not exchange): wait_on_mailbox does not drain, so consuming
    // the hint here would hide the arrival from the next drain_rings.
    // A stale hint bit causes at worst one early return; the caller's
    // retry loop re-polls and comes back.
    arrivals = mb.ring_hint[0].load(std::memory_order_seq_cst) != 0 ||
               mb.ring_hint[1].load(std::memory_order_seq_cst) != 0;
  }
  if (!arrivals) {
    mb.cv.wait_for(lock, std::chrono::duration<double>(seconds));
  }
  mb.waiting.store(false, std::memory_order_relaxed);
  if (aborted_.load(std::memory_order_acquire)) {
    throw DeadlockError("thread backend run aborted: rank " +
                        std::to_string(rank) +
                        " was polling when another rank failed");
  }
}

void ThreadBackend::wake_all_mailboxes() {
  for (auto& mb : mailboxes_) {
    { std::lock_guard<std::mutex> lock(mb->mutex); }
    mb->cv.notify_all();
  }
}

RunStats ThreadBackend::run(const std::function<void(Process&)>& spmd) {
  SPARTS_CHECK(!running_, "ThreadBackend::run is not reentrant");
  running_ = true;
  aborted_.store(false, std::memory_order_release);
  mailboxes_.clear();
  mailboxes_.reserve(static_cast<std::size_t>(config_.nprocs));
  const bool rings_on = config_.use_spsc && config_.nprocs <= kMaxRingRanks;
  for (index_t r = 0; r < config_.nprocs; ++r) {
    auto mb = std::make_unique<Mailbox>();
    if (rings_on) {
      mb->rings = std::make_unique<SpscRing<Message>[]>(
          static_cast<std::size_t>(config_.nprocs));
    }
    mailboxes_.push_back(std::move(mb));
  }
  errors_.assign(static_cast<std::size_t>(config_.nprocs), nullptr);
  active_.store(config_.nprocs, std::memory_order_release);
  std::vector<ProcStats> stats(static_cast<std::size_t>(config_.nprocs));
  epoch_ = Clock::now();
  if (obs::Tracer::enabled()) obs::Tracer::instance().begin_run();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.nprocs));
  for (index_t r = 0; r < config_.nprocs; ++r) {
    threads.emplace_back([this, r, &spmd, &stats] {
      RankProcess proc(this, r);
      try {
        spmd(proc);
      } catch (...) {
        errors_[static_cast<std::size_t>(r)] = std::current_exception();
        aborted_.store(true, std::memory_order_release);
      }
      stats[static_cast<std::size_t>(r)] = proc.finish();
      active_.fetch_sub(1, std::memory_order_acq_rel);
      // Wake peers either to abort or to detect that this rank can no
      // longer send them anything.
      wake_all_mailboxes();
    });
  }
  for (auto& t : threads) t.join();
  running_ = false;

  // Propagate the highest-priority user error (root causes beat timeouts
  // beat secondary deadlock unwinds), ties broken by rank order.  All
  // threads are already joined at this point, so a crashed rank can never
  // leave peers running or mailboxes live past this rethrow.
  std::exception_ptr best_error;
  int best_priority = 3;
  for (const auto& err : errors_) {
    if (!err) continue;
    const int priority = error_priority(err);
    if (priority < best_priority) {
      best_priority = priority;
      best_error = err;
    }
  }
  if (best_error) std::rethrow_exception(best_error);

  RunStats out;
  out.procs = std::move(stats);
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().end_run(out.parallel_time());
  }
  return out;
}

}  // namespace sparts::exec
