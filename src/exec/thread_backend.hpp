// The real multithreaded backend: each rank is a std::thread, messages move
// through per-rank mutex+condvar MPSC mailboxes, and every statistic is a
// wall-clock measurement.
//
// Semantics relative to the Process contract:
//   * send() copies the payload into the destination mailbox and returns —
//     buffered-send, never blocks on the receiver (matching the simulator).
//   * recv() blocks until a message matching (src|kAnySource, tag) is in
//     the mailbox; among matches it takes the earliest in queue order,
//     which is arrival order because senders push under the mailbox lock.
//   * compute()/compute_at() only count flops: the caller's kernel already
//     ran for real, so wall time is the truth.  elapse() is a no-op.
//   * now() is wall-clock seconds since the start of the current run.
//
// Failure handling mirrors simpar::Machine: an exception on one rank
// aborts the run (waiting ranks unwind with a secondary DeadlockError) and
// run() rethrows the root cause by rank order.  A genuine deadlock — every
// peer finished, or no matching message within `recv_timeout` seconds —
// also raises DeadlockError rather than hanging the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/process.hpp"

namespace sparts::exec {

class ThreadBackend final : public Comm {
 public:
  struct Config {
    index_t nprocs = 1;
    /// Carried only as a hint source (panel_flop etc.); the threaded
    /// backend never charges model time.
    CostModel cost{};
    TopologyKind topology = TopologyKind::fully_connected;
    /// A recv() with no match for this long is declared a deadlock.
    double recv_timeout = 60.0;
  };

  explicit ThreadBackend(const Config& config);

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return config_.nprocs; }
  const CostModel& cost() const override { return config_.cost; }
  const Topology& topology() const override { return topology_; }

 private:
  class RankProcess;
  friend class RankProcess;

  struct Message {
    index_t src;
    int tag;
    std::vector<std::byte> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;  ///< push order == arrival order
  };

  /// Push `msg` into rank `dst`'s mailbox and wake its owner.
  void deliver(index_t dst, Message msg);

  /// Remove and return the first queued message for `rank` matching
  /// (src|kAnySource, tag); blocks until one exists.  Throws DeadlockError
  /// on abort, timeout, or when no live peer can still send one.
  Message take_match(index_t rank, index_t src, int tag);

  /// Non-blocking variant: pop a match if one is queued right now.
  /// Throws DeadlockError when the run has been aborted (a crashed rank
  /// must not leave pollers spinning on a dead run).
  bool take_match_now(index_t rank, index_t src, int tag, Message* out);

  /// Wait up to `seconds` on the rank's mailbox; wakes early on message
  /// delivery, peer exit, or abort (abort throws, as above).
  void wait_on_mailbox(index_t rank, double seconds);

  /// Briefly acquire and release every mailbox lock, then notify: ensures
  /// ranks mid-predicate-check cannot miss an abort / peer-exit signal.
  void wake_all_mailboxes();

  Config config_;
  Topology topology_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> aborted_{false};
  std::atomic<index_t> active_{0};  ///< ranks still inside spmd()
  std::chrono::steady_clock::time_point epoch_{};
  bool running_ = false;
};

}  // namespace sparts::exec
