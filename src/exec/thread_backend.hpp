// The real multithreaded backend: each rank is a std::thread and messages
// move through per-(src,dst) lock-free SPSC rings with a mutex+condvar
// mailbox as the overflow/parking fallback.
//
// Message path (see also spsc_ring.hpp):
//   * send() pushes into the destination's ring for this source — no lock,
//     no allocation beyond the payload capture — and wakes the receiver
//     only if it advertised that it is parked.  A full ring spills to the
//     locked fallback queue, so send() never blocks (buffered-send).
//   * send_owned() is the zero-copy lane: the payload buffer itself moves
//     through the ring, so the backend copies zero bytes for large panels
//     (ProcStats::bytes_copied counts what the copy lane still copies).
//   * recv() drains the rings into a consumer-private pending list and
//     matches (src|kAnySource, tag) there; with no match it spins briefly
//     (yield-based: on an oversubscribed host the sender needs the core),
//     then parks on the mailbox condvar with a Dekker-style seq_cst
//     handshake against the sender's wakeup check so no wakeup is lost.
//     Per-source arrival order is preserved; cross-source order among
//     matches is whatever the drain observed, which the Process contract
//     permits (the repo's tag discipline keeps in-flight (src,dst,tag)
//     unique, so matching is unambiguous anyway).
//   * compute()/compute_at() only count flops: the caller's kernel already
//     ran for real, so wall time is the truth.  elapse() is a no-op.
//   * now() is wall-clock seconds since the start of the current run.
//
// Failure handling mirrors simpar::Machine: an exception on one rank
// aborts the run (waiting ranks unwind with a secondary DeadlockError) and
// run() rethrows the root cause by rank order.  A genuine deadlock — every
// peer finished, or no matching message within `recv_timeout` seconds —
// also raises DeadlockError rather than hanging the process.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "exec/process.hpp"
#include "exec/spsc_ring.hpp"

namespace sparts::exec {

class ThreadBackend final : public Comm {
 public:
  struct Config {
    index_t nprocs = 1;
    /// Carried only as a hint source (panel_flop etc.); the threaded
    /// backend never charges model time.
    CostModel cost{};
    TopologyKind topology = TopologyKind::fully_connected;
    /// A recv() with no match for this long is declared a deadlock.
    double recv_timeout = 60.0;
    /// Use the SPSC ring fast path (false = every message through the
    /// locked fallback mailbox; SPARTS_SPSC=off flips the default —
    /// bench_msgpath uses this for its before/after columns).
    bool use_spsc = true;
  };

  explicit ThreadBackend(const Config& config);

  RunStats run(const std::function<void(Process&)>& spmd) override;
  index_t nprocs() const override { return config_.nprocs; }
  const CostModel& cost() const override { return config_.cost; }
  const Topology& topology() const override { return topology_; }

 private:
  class RankProcess;
  friend class RankProcess;

  struct Message {
    index_t src;
    int tag;
    Payload payload;
  };

  struct Mailbox {
    // --- consumer-private (only the owning rank's thread touches it) ---
    std::deque<Message> pending;  ///< drained, not-yet-matched messages
    // --- shared fallback path --------------------------------------
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> queue;  ///< ring overflow / rings-disabled path
    /// queue.size(), maintained under mutex but readable without it:
    /// lets the SPSC poll path (try_recv / poll_wait) skip the lock
    /// entirely when the fallback queue is empty — which it almost
    /// always is when the rings are on.
    std::atomic<std::size_t> queue_size{0};
    /// Owner is parked (or about to park) in recv; senders that see this
    /// after their ring push take the mutex and notify.  seq_cst paired
    /// with the ring push/drain — see take_match for the handshake.
    std::atomic<bool> waiting{false};
    /// One SPSC ring per source rank; null when the fast path is off.
    std::unique_ptr<SpscRing<Message>[]> rings;
    /// Producer-set "ring src may be nonempty" bitmask (bit src&63 of
    /// word src>>6; 2 words cover kMaxRingRanks sources).  Senders
    /// fetch_or their bit after a ring push; the consumer exchange(0)'s
    /// each word in drain_rings and visits only flagged rings, making a
    /// drain O(active sources) instead of O(p).  A stale set bit costs
    /// one empty-ring check; a pushed-but-unset bit cannot be observed
    /// (the fetch_or is seq_cst and precedes the sender's park probe).
    std::atomic<std::uint64_t> ring_hint[2]{};
  };

  /// Push `msg` to rank `dst`: ring fast path, locked queue fallback.
  void deliver(index_t dst, Message msg);

  /// Remove and return a pending/queued message for `rank` matching
  /// (src|kAnySource, tag); blocks until one exists.  Throws DeadlockError
  /// on abort, timeout, or when no live peer can still send one.
  Message take_match(index_t rank, index_t src, int tag);

  /// Non-blocking variant: pop a match if one is available right now.
  /// Throws DeadlockError when the run has been aborted (a crashed rank
  /// must not leave pollers spinning on a dead run).
  bool take_match_now(index_t rank, index_t src, int tag, Message* out);

  /// Wait up to `seconds` on the rank's mailbox; wakes early on message
  /// delivery, peer exit, or abort (abort throws, as above).
  void wait_on_mailbox(index_t rank, double seconds);

  /// Briefly acquire and release every mailbox lock, then notify: ensures
  /// ranks mid-predicate-check cannot miss an abort / peer-exit signal.
  void wake_all_mailboxes();

  /// Consumer side: move everything from `mb`'s rings into pending.
  bool drain_rings(Mailbox& mb);
  /// Consumer side, under mb.mutex: splice the fallback queue into pending.
  bool drain_queue_locked(Mailbox& mb);
  /// Scan pending for the first (src|kAnySource, tag) match and pop it.
  bool pop_pending(Mailbox& mb, index_t src, int tag, Message* out);

  Config config_;
  Topology topology_;

  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::exception_ptr> errors_;
  std::atomic<bool> aborted_{false};
  std::atomic<index_t> active_{0};  ///< ranks still inside spmd()
  std::chrono::steady_clock::time_point epoch_{};
  bool running_ = false;
};

}  // namespace sparts::exec
