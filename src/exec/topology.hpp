// Interconnect topologies: the only thing the cost model needs from a
// topology is the hop count between two ranks.  Backends that do not
// charge hop latency (the threaded backend) still expose one so SPMD code
// can ask structural questions uniformly.
#pragma once

#include <bit>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::exec {

enum class TopologyKind {
  fully_connected,  ///< one hop between any pair
  hypercube,        ///< hops = popcount(src ^ dst); p must be a power of two
  ring,             ///< hops = min cyclic distance
};

class Topology {
 public:
  Topology() = default;
  Topology(TopologyKind kind, index_t nprocs) : kind_(kind), p_(nprocs) {
    SPARTS_CHECK(nprocs >= 1);
    if (kind == TopologyKind::hypercube) {
      SPARTS_CHECK((nprocs & (nprocs - 1)) == 0,
                   "hypercube needs a power-of-two processor count");
    }
  }

  TopologyKind kind() const { return kind_; }
  index_t nprocs() const { return p_; }

  index_t hops(index_t src, index_t dst) const {
    SPARTS_DCHECK(src >= 0 && src < p_ && dst >= 0 && dst < p_);
    if (src == dst) return 0;
    switch (kind_) {
      case TopologyKind::fully_connected:
        return 1;
      case TopologyKind::hypercube:
        return std::popcount(static_cast<std::uint64_t>(src ^ dst));
      case TopologyKind::ring: {
        const index_t d = src < dst ? dst - src : src - dst;
        return std::min(d, p_ - d);
      }
    }
    return 1;
  }

 private:
  TopologyKind kind_ = TopologyKind::hypercube;
  index_t p_ = 1;
};

}  // namespace sparts::exec
