// WaitGroup / Latch: the completion primitives of the task layer.
//
// A WaitGroup counts outstanding pieces of work: add() before handing a
// piece to another thread, done() when it completes, wait() to block until
// the count returns to zero.  Unlike std::latch the count may grow while
// waiters are blocked (a task may spawn subtasks), and unlike
// std::counting_semaphore the object is reusable: once the count reaches
// zero a later add()/wait() round works again.
//
// Latch is the single-shot special case with a fixed initial count — it
// exists as a named type so call sites document intent (std::latch itself
// is avoided: libstdc++'s implementation uses futexes directly, which the
// TSan fiber annotations in task_backend.cpp cannot see through).
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::exec {

class WaitGroup {
 public:
  WaitGroup() = default;
  explicit WaitGroup(std::int64_t initial) : count_(initial) {
    SPARTS_CHECK(initial >= 0, "WaitGroup count must be non-negative");
  }

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Register `n` more pieces of outstanding work.
  void add(std::int64_t n = 1) {
    SPARTS_CHECK(n >= 0, "WaitGroup::add of a negative count");
    std::lock_guard<std::mutex> lock(mutex_);
    count_ += n;
  }

  /// One piece of work finished.  The count must not go negative.
  void done() {
    std::lock_guard<std::mutex> lock(mutex_);
    SPARTS_CHECK(count_ > 0, "WaitGroup::done without matching add");
    if (--count_ == 0) cv_.notify_all();
  }

  /// Block until the count reaches zero.  Returns immediately when it
  /// already is.  Must not be called from a scheduler worker that the
  /// counted work needs to make progress (it would self-deadlock); the
  /// task layer calls it from the submitting thread only.
  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  /// Snapshot of the outstanding count (racy by nature; for stats/tests).
  std::int64_t pending() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::int64_t count_ = 0;
};

/// Single-shot countdown: constructed with the number of arrivals.
class Latch {
 public:
  explicit Latch(std::int64_t count) : wg_(count) {}
  void count_down() { wg_.done(); }
  void wait() { wg_.wait(); }

 private:
  WaitGroup wg_;
};

}  // namespace sparts::exec
