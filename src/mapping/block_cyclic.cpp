#include "mapping/block_cyclic.hpp"

namespace sparts::mapping {

BlockCyclic2d BlockCyclic2d::near_square(index_t q, index_t b) {
  SPARTS_CHECK(q >= 1 && (q & (q - 1)) == 0,
               "grid size must be a power of two");
  index_t qr = 1, qc = 1;
  bool grow_row = true;
  while (qr * qc < q) {
    if (grow_row) {
      qr *= 2;
    } else {
      qc *= 2;
    }
    grow_row = !grow_row;
  }
  return BlockCyclic2d{b, qr, qc};
}

}  // namespace sparts::mapping
