#include "mapping/block_cyclic.hpp"

#include <vector>

namespace sparts::mapping {

BlockCyclic2d BlockCyclic2d::near_square(index_t q, index_t b) {
  SPARTS_CHECK(q >= 1 && (q & (q - 1)) == 0,
               "grid size must be a power of two");
  index_t qr = 1, qc = 1;
  bool grow_row = true;
  while (qr * qc < q) {
    if (grow_row) {
      qr *= 2;
    } else {
      qc *= 2;
    }
    grow_row = !grow_row;
  }
  return BlockCyclic2d{b, qr, qc};
}

void validate_block_cyclic(const BlockCyclic1d& map, index_t n) {
  SPARTS_CHECK(map.b >= 1, "[block-cyclic-shape] block size must be >= 1, got "
                               << map.b);
  SPARTS_CHECK(map.q >= 1,
               "[block-cyclic-shape] processor count must be >= 1, got "
                   << map.q);
  SPARTS_CHECK(n >= 0, "[block-cyclic-shape] index count must be >= 0");
  // Ownership sweep: every index maps to a rank in range and to a fresh
  // packed slot on that rank; counts must partition n exactly.
  std::vector<index_t> next_local(static_cast<std::size_t>(map.q), 0);
  index_t assigned = 0;
  for (index_t i = 0; i < n; ++i) {
    const index_t r = map.owner(i);
    SPARTS_CHECK(r >= 0 && r < map.q, "[block-cyclic-ownership] index "
                                          << i << " owned by rank " << r
                                          << " outside [0, " << map.q << ")");
    const index_t local = map.local_index(i, n);
    SPARTS_CHECK(local == next_local[static_cast<std::size_t>(r)],
                 "[block-cyclic-ownership] index "
                     << i << " packs to local slot " << local << " on rank "
                     << r << ", expected "
                     << next_local[static_cast<std::size_t>(r)]
                     << " (packed storage must be dense and ascending)");
    ++next_local[static_cast<std::size_t>(r)];
    ++assigned;
  }
  for (index_t r = 0; r < map.q; ++r) {
    SPARTS_CHECK(next_local[static_cast<std::size_t>(r)] ==
                     map.local_count(r, n),
                 "[block-cyclic-ownership] rank "
                     << r << " owns " << next_local[static_cast<std::size_t>(r)]
                     << " indices but local_count reports "
                     << map.local_count(r, n));
  }
  SPARTS_CHECK(assigned == n,
               "[block-cyclic-ownership] ownership must partition all " << n
                   << " indices");
}

void validate_block_cyclic(const BlockCyclic2d& map) {
  SPARTS_CHECK(map.b >= 1, "[block-cyclic-shape] block size must be >= 1, got "
                               << map.b);
  SPARTS_CHECK(map.qr >= 1 && map.qc >= 1,
               "[block-cyclic-shape] grid must be at least 1x1, got "
                   << map.qr << "x" << map.qc);
  // One full period of block coordinates covers every (row-rank, col-rank)
  // combination exactly once.
  std::vector<index_t> seen(static_cast<std::size_t>(map.nprocs()), 0);
  for (index_t bi = 0; bi < map.qr; ++bi) {
    for (index_t bj = 0; bj < map.qc; ++bj) {
      const index_t owner = map.owner(bi * map.b, bj * map.b);
      SPARTS_CHECK(owner >= 0 && owner < map.nprocs(),
                   "[block-cyclic-ownership] block ("
                       << bi << "," << bj << ") owned by rank " << owner
                       << " outside [0, " << map.nprocs() << ")");
      ++seen[static_cast<std::size_t>(owner)];
    }
  }
  for (index_t r = 0; r < map.nprocs(); ++r) {
    SPARTS_CHECK(seen[static_cast<std::size_t>(r)] == 1,
                 "[block-cyclic-ownership] grid rank "
                     << r << " owns " << seen[static_cast<std::size_t>(r)]
                     << " blocks per period, expected exactly 1");
  }
}

}  // namespace sparts::mapping
