// Block-cyclic distribution maps.
//
// 1-D: row (or column) i belongs to block I = i/b; block I is owned by
// processor I mod q.  This is the distribution the paper proves necessary
// for scalable pipelined triangular solves.
//
// 2-D: entry (i, j) belongs to block (I, J); block (I, J) is owned by grid
// processor (I mod qr, J mod qc).  This is the factorization distribution
// that must be converted before solving (paper §4).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::mapping {

/// 1-D block-cyclic map of `n` indices over `q` processors with blocks of
/// size `b`.
struct BlockCyclic1d {
  index_t b = 1;  ///< block size
  index_t q = 1;  ///< number of processors

  /// Owning processor (0..q-1) of index i.
  index_t owner(index_t i) const { return (i / b) % q; }

  /// Block index of i.
  index_t block_of(index_t i) const { return i / b; }

  /// Owning processor of block I.
  index_t block_owner(index_t block) const { return block % q; }

  /// Number of blocks covering n indices.
  index_t num_blocks(index_t n) const { return (n + b - 1) / b; }

  /// Number of indices in block I given the total count n.
  index_t block_size(index_t block, index_t n) const {
    const index_t lo = block * b;
    SPARTS_DCHECK(lo < n);
    return std::min(b, n - lo);
  }

  /// Number of indices owned by processor r out of n.
  index_t local_count(index_t r, index_t n) const {
    index_t count = 0;
    for (index_t blk = r; blk < num_blocks(n); blk += q) {
      count += block_size(blk, n);
    }
    return count;
  }

  /// Position of global index i within owner's local packed storage
  /// (blocks concatenated in ascending order).
  index_t local_index(index_t i, index_t n) const {
    const index_t blk = block_of(i);
    const index_t r = block_owner(blk);
    index_t offset = 0;
    for (index_t pb = r; pb < blk; pb += q) {
      offset += block_size(pb, n);
    }
    return offset + (i - blk * b);
  }
};

/// 2-D block-cyclic map over a qr x qc processor grid.
struct BlockCyclic2d {
  index_t b = 1;   ///< square block size
  index_t qr = 1;  ///< grid rows
  index_t qc = 1;  ///< grid columns

  index_t nprocs() const { return qr * qc; }

  /// Grid coordinates of the owner of entry (i, j).
  index_t owner_row(index_t i) const { return (i / b) % qr; }
  index_t owner_col(index_t j) const { return (j / b) % qc; }

  /// Linearized owner (row-major over the grid).
  index_t owner(index_t i, index_t j) const {
    return owner_row(i) * qc + owner_col(j);
  }

  /// Choose a near-square grid for q processors (q a power of two):
  /// qr >= qc, qr * qc = q.
  static BlockCyclic2d near_square(index_t q, index_t b);
};

/// Structural validator (SPARTS_CHECKS system) for a 1-D map over n
/// indices: shape ([block-cyclic-shape]) plus a full ownership sweep —
/// every index owned by exactly one rank, packed local indices form a
/// bijection, per-rank counts sum to n ([block-cyclic-ownership]).  O(n).
void validate_block_cyclic(const BlockCyclic1d& map, index_t n);

/// Structural validator for a 2-D grid map: shape and grid-ownership
/// consistency over one full period of block coordinates.
void validate_block_cyclic(const BlockCyclic2d& map);

}  // namespace sparts::mapping
