#include "mapping/load_balance.hpp"

#include <algorithm>
#include <numeric>

#include "common/error.hpp"

namespace sparts::mapping {

LoadBalance analyze_load_balance(const symbolic::SupernodePartition& part,
                                 const SubcubeMapping& map,
                                 std::span<const double> work) {
  const index_t nsup = part.num_supernodes();
  SPARTS_CHECK(static_cast<index_t>(work.size()) == nsup);
  LoadBalance lb;
  lb.work_per_proc.assign(static_cast<std::size_t>(map.p), 0.0);
  for (index_t s = 0; s < nsup; ++s) {
    const exec::Group& g = map.group[static_cast<std::size_t>(s)];
    const double share =
        work[static_cast<std::size_t>(s)] / static_cast<double>(g.count);
    for (index_t r = 0; r < g.count; ++r) {
      lb.work_per_proc[static_cast<std::size_t>(g.world(r))] += share;
    }
  }
  lb.max_work =
      *std::max_element(lb.work_per_proc.begin(), lb.work_per_proc.end());
  lb.avg_work = std::accumulate(lb.work_per_proc.begin(),
                                lb.work_per_proc.end(), 0.0) /
                static_cast<double>(map.p);
  return lb;
}

LevelProfile analyze_levels(const symbolic::SupernodePartition& part,
                            const SubcubeMapping& map,
                            std::span<const double> work) {
  const index_t nsup = part.num_supernodes();
  SPARTS_CHECK(static_cast<index_t>(work.size()) == nsup);
  LevelProfile profile;
  index_t max_level = 0;
  for (index_t s = 0; s < nsup; ++s) {
    if (map.is_parallel(s)) max_level = std::max(max_level, map.level(s));
  }
  profile.work_at_level.assign(static_cast<std::size_t>(max_level) + 1, 0.0);
  for (index_t s = 0; s < nsup; ++s) {
    if (map.is_parallel(s)) {
      profile.work_at_level[static_cast<std::size_t>(map.level(s))] +=
          work[static_cast<std::size_t>(s)];
    } else {
      profile.sequential_work += work[static_cast<std::size_t>(s)];
    }
  }
  return profile;
}

}  // namespace sparts::mapping
