// Load-balance diagnostics for a subtree-to-subcube mapping.
//
// The paper (§3.1) declines to model load imbalance analytically but
// reports empirically that its overhead "tends to saturate at 32 to 64
// processors and does not continue to increase".  These helpers quantify
// exactly that: how the work assigned to each processor (sequential
// subtrees plus its share of the shared supernodes) spreads as p grows.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::mapping {

struct LoadBalance {
  std::vector<double> work_per_proc;  ///< size p
  double max_work = 0.0;
  double avg_work = 0.0;

  /// max/avg: 1.0 = perfect balance; the parallel-time penalty factor the
  /// imbalance alone would cause.
  double imbalance() const {
    return avg_work > 0.0 ? max_work / avg_work : 1.0;
  }
};

/// Distribute `work[s]` over the mapping: a sequential supernode's work
/// goes to its owner; a shared supernode's work is split evenly across its
/// group (the pipelined algorithms balance within a supernode by
/// construction).
LoadBalance analyze_load_balance(const symbolic::SupernodePartition& part,
                                 const SubcubeMapping& map,
                                 std::span<const double> work);

/// Per-level statistics of the supernodal tree under a mapping: how much
/// work sits at each parallel level l (shared by p/2^l processors) vs the
/// sequential leaves.
struct LevelProfile {
  std::vector<double> work_at_level;  ///< index l = paper's level
  double sequential_work = 0.0;       ///< below the parallel levels
};

LevelProfile analyze_levels(const symbolic::SupernodePartition& part,
                            const SubcubeMapping& map,
                            std::span<const double> work);

}  // namespace sparts::mapping
