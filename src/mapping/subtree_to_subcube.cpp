#include "mapping/subtree_to_subcube.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "ordering/etree.hpp"

namespace sparts::mapping {

index_t SubcubeMapping::level(index_t s) const {
  const index_t q = group[static_cast<std::size_t>(s)].count;
  return static_cast<index_t>(
      std::bit_width(static_cast<std::uint64_t>(p / q)) - 1);
}

void SubcubeMapping::check_consistent(
    const symbolic::SupernodePartition& part) const {
  const index_t nsup = part.num_supernodes();
  SPARTS_CHECK(static_cast<index_t>(group.size()) == nsup,
               "[subcube-mapping] mapping must cover all " << nsup
                   << " supernodes");
  for (index_t s = 0; s < nsup; ++s) {
    const exec::Group& g = group[static_cast<std::size_t>(s)];
    SPARTS_CHECK(g.count >= 1 && (g.count & (g.count - 1)) == 0,
                 "[subcube-mapping] group size of supernode "
                     << s << " must be a power of two, got " << g.count);
    SPARTS_CHECK(g.base >= 0 && g.base + g.count <= p,
                 "[subcube-mapping] group [" << g.base << ", "
                     << g.base + g.count << ") of supernode " << s
                     << " outside the " << p << "-processor machine");
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent != -1) {
      const exec::Group& pg = group[static_cast<std::size_t>(parent)];
      SPARTS_CHECK(g.base >= pg.base &&
                       g.base + g.count <= pg.base + pg.count,
                   "[subcube-mapping] child group of supernode "
                       << s << " must be contained in its parent's group");
    }
  }
}

namespace {

void assign_forest(const std::vector<std::vector<index_t>>& children,
                   std::span<const double> subtree_work,
                   const std::vector<index_t>& roots, exec::Group g,
                   std::vector<exec::Group>& out) {
  if (roots.empty()) return;
  if (g.count == 1) {
    // Entire forest is sequential on g.base.
    std::vector<index_t> stack(roots);
    while (!stack.empty()) {
      const index_t s = stack.back();
      stack.pop_back();
      out[static_cast<std::size_t>(s)] = g;
      for (index_t c : children[static_cast<std::size_t>(s)]) {
        stack.push_back(c);
      }
    }
    return;
  }
  if (roots.size() == 1) {
    // A chain keeps the whole subcube; split at the branching below.
    const index_t s = roots.front();
    out[static_cast<std::size_t>(s)] = g;
    assign_forest(children, subtree_work,
                  children[static_cast<std::size_t>(s)], g, out);
    return;
  }
  // Partition the roots into two bins of approximately equal work
  // (greedy LPT) and give each bin half the subcube.
  std::vector<index_t> order(roots);
  std::sort(order.begin(), order.end(), [&](index_t a, index_t b) {
    const double wa = subtree_work[static_cast<std::size_t>(a)];
    const double wb = subtree_work[static_cast<std::size_t>(b)];
    return wa != wb ? wa > wb : a < b;
  });
  std::vector<index_t> bin0, bin1;
  double w0 = 0.0, w1 = 0.0;
  for (index_t s : order) {
    if (w0 <= w1) {
      bin0.push_back(s);
      w0 += subtree_work[static_cast<std::size_t>(s)];
    } else {
      bin1.push_back(s);
      w1 += subtree_work[static_cast<std::size_t>(s)];
    }
  }
  const index_t half = g.count / 2;
  assign_forest(children, subtree_work, bin0, exec::Group{g.base, half},
                out);
  assign_forest(children, subtree_work, bin1,
                exec::Group{g.base + half, half}, out);
}

}  // namespace

SubcubeMapping subtree_to_subcube(const symbolic::SupernodePartition& part,
                                  index_t p, std::span<const double> work) {
  SPARTS_CHECK(p >= 1 && (p & (p - 1)) == 0,
               "processor count must be a power of two");
  const index_t nsup = part.num_supernodes();
  SPARTS_CHECK(static_cast<index_t>(work.size()) == nsup);

  auto children = ordering::tree_children(part.stree);

  // Subtree work via one bottom-up sweep (ascending order is topological).
  std::vector<double> subtree_work(work.begin(), work.end());
  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent != -1) {
      subtree_work[static_cast<std::size_t>(parent)] +=
          subtree_work[static_cast<std::size_t>(s)];
    }
  }

  std::vector<index_t> roots;
  for (index_t s = 0; s < nsup; ++s) {
    if (part.stree.parent[static_cast<std::size_t>(s)] == -1) {
      roots.push_back(s);
    }
  }

  SubcubeMapping m;
  m.p = p;
  m.group.assign(static_cast<std::size_t>(nsup), exec::Group{0, 1});
  assign_forest(children, subtree_work, roots, exec::Group{0, p},
                m.group);
  SPARTS_VALIDATE_EXPENSIVE(m.check_consistent(part));
  return m;
}

SubcubeMapping subtree_to_subcube(const symbolic::SupernodePartition& part,
                                  index_t p) {
  const std::vector<double> w = solve_work_weights(part);
  return subtree_to_subcube(part, p, w);
}

std::vector<exec::Group> subtree_to_subcube_tree(
    const ordering::EliminationTree& tree, index_t p,
    std::span<const double> work) {
  SPARTS_CHECK(p >= 1 && (p & (p - 1)) == 0,
               "processor count must be a power of two");
  const index_t n = tree.n();
  SPARTS_CHECK(static_cast<index_t>(work.size()) == n);
  auto children = ordering::tree_children(tree);
  std::vector<double> subtree_work(work.begin(), work.end());
  // Ascending order is topological only if parents have larger ids; our
  // orderings guarantee it, but fall back to a postorder sweep otherwise.
  for (index_t v : ordering::postorder(tree)) {
    const index_t parent = tree.parent[static_cast<std::size_t>(v)];
    if (parent != -1) {
      subtree_work[static_cast<std::size_t>(parent)] +=
          subtree_work[static_cast<std::size_t>(v)];
    }
  }
  std::vector<index_t> roots;
  for (index_t v = 0; v < n; ++v) {
    if (tree.parent[static_cast<std::size_t>(v)] == -1) roots.push_back(v);
  }
  std::vector<exec::Group> out(static_cast<std::size_t>(n),
                                 exec::Group{0, 1});
  assign_forest(children, subtree_work, roots, exec::Group{0, p}, out);
  return out;
}

std::vector<double> solve_work_weights(
    const symbolic::SupernodePartition& part, index_t m) {
  std::vector<double> w(static_cast<std::size_t>(part.num_supernodes()));
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    w[static_cast<std::size_t>(s)] =
        static_cast<double>(part.solve_flops(s, m));
  }
  return w;
}

std::vector<double> factor_work_weights(
    const symbolic::SupernodePartition& part) {
  std::vector<double> w(static_cast<std::size_t>(part.num_supernodes()));
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const double t = static_cast<double>(part.width(s));
    const double ns = static_cast<double>(part.height(s));
    // Partial dense Cholesky of an ns x t panel + Schur complement.
    w[static_cast<std::size_t>(s)] =
        ns * t * t - 2.0 * t * t * t / 3.0 + (ns - t) * (ns - t) * t;
  }
  return w;
}

}  // namespace sparts::mapping
