// Subtree-to-subcube mapping of the supernodal elimination tree onto p
// processors (George, Liu & Ng; paper §2.1 and Fig. 1).
//
// The root supernode is shared by all p processors.  Descending the tree,
// at each branching the children subtrees are partitioned into two sets of
// approximately equal work and each set is assigned half the processors
// (one subcube).  Once a subtree reaches a single processor, the entire
// subtree is local to it.  Supernode chains (single children) keep the full
// subcube of their parent — with a nested-dissection ordering the tree is
// essentially binary and this reproduces the paper's "level l gets p/2^l
// processors" structure.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "exec/collectives.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::mapping {

/// Processor-group assignment for every supernode.
struct SubcubeMapping {
  index_t p = 1;                      ///< total processors
  std::vector<exec::Group> group;   ///< per supernode

  /// True if supernode s is processed in parallel (group size > 1).
  bool is_parallel(index_t s) const {
    return group[static_cast<std::size_t>(s)].count > 1;
  }

  /// Parallel "level" of s in the paper's sense: log2(p / q(s)).
  index_t level(index_t s) const;

  /// Validates: child groups are sub-groups of parents; every leaf path
  /// reaches a group; group sizes are powers of two.
  void check_consistent(const symbolic::SupernodePartition& part) const;
};

/// Compute the mapping.  `work[s]` is the weight of supernode s (e.g. its
/// solve or factorization flops); subtree work steers the binpacking at
/// branchings.  p must be a power of two.
SubcubeMapping subtree_to_subcube(const symbolic::SupernodePartition& part,
                                  index_t p, std::span<const double> work);

/// Convenience: weight supernodes by their triangular-solve flops (m = 1).
SubcubeMapping subtree_to_subcube(const symbolic::SupernodePartition& part,
                                  index_t p);

/// Per-supernode solve work weights (forward+backward, m right-hand sides).
std::vector<double> solve_work_weights(
    const symbolic::SupernodePartition& part, index_t m = 1);

/// Per-supernode factorization work weights (dense partial factorization
/// of the front).
std::vector<double> factor_work_weights(
    const symbolic::SupernodePartition& part);

/// Subtree-to-subcube over a plain elimination tree (per *column* rather
/// than per supernode) — used by phases that run before supernodes exist,
/// like the parallel symbolic factorization.  `work[v]` weights vertex v;
/// p must be a power of two.
std::vector<exec::Group> subtree_to_subcube_tree(
    const ordering::EliminationTree& tree, index_t p,
    std::span<const double> work);

}  // namespace sparts::mapping
