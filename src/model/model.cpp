#include "model/model.hpp"

#include <cmath>

#include "common/error.hpp"

namespace sparts::model {

double solve_work(GraphClass g, double n) {
  switch (g) {
    case GraphClass::two_dimensional:
      return n * std::log2(std::max(2.0, n));
    case GraphClass::three_dimensional:
      return std::pow(n, 4.0 / 3.0);
  }
  return n;
}

std::array<double, 3> runtime_terms(GraphClass g, double n, double p) {
  const double boundary = g == GraphClass::two_dimensional
                              ? std::sqrt(n)
                              : std::pow(n, 2.0 / 3.0);
  return {solve_work(g, n) / p, boundary, p};
}

double runtime(GraphClass g, double n, double p,
               const std::array<double, 3>& c) {
  const auto terms = runtime_terms(g, n, p);
  return c[0] * terms[0] + c[1] * terms[1] + c[2] * terms[2];
}

double overhead(GraphClass g, double n, double p,
                const std::array<double, 3>& c) {
  const double ts = c[0] * solve_work(g, n);
  return p * runtime(g, n, p, c) - ts;
}

double isoefficiency_work(double p) { return p * p; }

Fit fit_runtime_model(GraphClass g, std::span<const Sample> samples) {
  SPARTS_CHECK(samples.size() >= 3, "need at least three samples to fit");
  // Normal equations for the 3-parameter linear model.
  double ata[3][3] = {};
  double atb[3] = {};
  double mean = 0.0;
  for (const Sample& s : samples) {
    const auto t = runtime_terms(g, s.n, s.p);
    for (int i = 0; i < 3; ++i) {
      for (int j = 0; j < 3; ++j) ata[i][j] += t[static_cast<std::size_t>(i)] * t[static_cast<std::size_t>(j)];
      atb[i] += t[static_cast<std::size_t>(i)] * s.time;
    }
    mean += s.time;
  }
  mean /= static_cast<double>(samples.size());

  // Solve the 3x3 system by Gaussian elimination with partial pivoting.
  double m[3][4];
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) m[i][j] = ata[i][j];
    m[i][3] = atb[i];
  }
  for (int k = 0; k < 3; ++k) {
    int piv = k;
    for (int i = k + 1; i < 3; ++i) {
      if (std::abs(m[i][k]) > std::abs(m[piv][k])) piv = i;
    }
    for (int j = 0; j < 4; ++j) std::swap(m[k][j], m[piv][j]);
    if (std::abs(m[k][k]) < 1e-300) {
      m[k][k] = 1e-300;  // degenerate design; coefficients ~0
    }
    for (int i = k + 1; i < 3; ++i) {
      const double f = m[i][k] / m[k][k];
      for (int j = k; j < 4; ++j) m[i][j] -= f * m[k][j];
    }
  }
  Fit fit;
  for (int i = 2; i >= 0; --i) {
    double s = m[i][3];
    for (int j = i + 1; j < 3; ++j) s -= m[i][j] * fit.coeff[static_cast<std::size_t>(j)];
    fit.coeff[static_cast<std::size_t>(i)] = s / m[i][i];
  }

  double ss_res = 0.0, ss_tot = 0.0;
  for (const Sample& s : samples) {
    const double pred = runtime(g, s.n, s.p, fit.coeff);
    ss_res += (s.time - pred) * (s.time - pred);
    ss_tot += (s.time - mean) * (s.time - mean);
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

std::vector<Fig5Row> figure5_rows() {
  // Transcribed from the paper's Figure 5; the strings are the asymptotic
  // expressions the analysis derives.
  return {
      {"Dense", "1-D",
       "O(p^2) + O(N p)", "O(p^3)",
       "O(p^2) + O(N p)", "O(p^2)", "O(p^3)"},
      {"Dense", "2-D",
       "O(N p^{1/2})", "O(p^{3/2})",
       "O(N p^{1/2})", "unscalable", "O(p^{3/2})"},
      {"Sparse (2-D graphs)", "1-D subtree-subcube",
       "O(N p)", "O(p^3)",
       "O(p^2) + O(N^{1/2} p)", "O(p^2)", "O(p^3)"},
      {"Sparse (2-D graphs)", "2-D subtree-subcube",
       "O(N p^{1/2})", "O(p^{3/2})",
       "O(N p^{1/2})", "unscalable", "O(p^{3/2})"},
      {"Sparse (3-D graphs)", "1-D subtree-subcube",
       "O(N^{4/3} p)", "O(p^3)",
       "O(p^2) + O(N^{2/3} p)", "O(p^2)", "O(p^3)"},
      {"Sparse (3-D graphs)", "2-D subtree-subcube",
       "O(N^{4/3} p^{1/2})", "O(p^{3/2})",
       "O(N^{4/3} p^{1/2})", "unscalable", "O(p^{3/2})"},
  };
}

}  // namespace sparts::model
