// Analytical performance models from the paper's §3 and Appendix A.
//
// Runtime models (Eqs. 1 and 2, single RHS; multiply by m for m RHS):
//   2-D neighborhood graphs: T_P = c_w N log N / p + c_n sqrt(N) + c_p p
//   3-D neighborhood graphs: T_P = c_w N^{4/3} / p + c_n N^{2/3} + c_p p
//
// Overhead function T_o = p T_P - T_S and the isoefficiency functions
// derived from W ~ T_o (Appendix A): O(p^2) for both problem classes, the
// same as a dense triangular solver — the paper's optimality argument.
//
// fit_runtime_model() recovers the constants from simulator measurements
// by linear least squares, letting the benchmarks report model-vs-measured
// agreement (R^2).
#pragma once

#include <array>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sparts::model {

/// Problem class of the coefficient matrix's graph.
enum class GraphClass {
  two_dimensional,    ///< planar / 2-D neighborhood graphs
  three_dimensional,  ///< 3-D neighborhood graphs
};

/// Serial triangular-solve work for a problem of N unknowns (asymptotic,
/// up to a constant): N log N for 2-D, N^{4/3} for 3-D.
double solve_work(GraphClass g, double n);

/// The three model terms (work/p, boundary, pipeline) evaluated at (N, p).
std::array<double, 3> runtime_terms(GraphClass g, double n, double p);

/// Model runtime given coefficients c = {c_w, c_n, c_p}.
double runtime(GraphClass g, double n, double p,
               const std::array<double, 3>& c);

/// Overhead function T_o(N, p) = p * T_P - T_S under the model.
double overhead(GraphClass g, double n, double p,
                const std::array<double, 3>& c);

/// Isoefficiency: the problem size W needed at p processors to hold the
/// efficiency achieved at (n_ref, p_ref).  The paper proves W ~ p^2 for
/// both graph classes; this evaluates the concrete model.
double isoefficiency_work(double p);

/// One measured sample for model fitting.
struct Sample {
  double n = 0;     ///< unknowns
  double p = 1;     ///< processors
  double time = 0;  ///< measured parallel time (seconds)
};

struct Fit {
  std::array<double, 3> coeff{};  ///< {c_w, c_n, c_p}
  double r_squared = 0.0;
};

/// Least-squares fit of the three-term model to measurements.
Fit fit_runtime_model(GraphClass g, std::span<const Sample> samples);

// ---------------------------------------------------------------------------
// Figure 5: the paper's table of communication overheads and isoefficiency
// functions for factorization and triangular solution under 1-D and 2-D
// partitionings.
// ---------------------------------------------------------------------------

struct Fig5Row {
  std::string matrix_type;    ///< "Dense", "Sparse (2-D graphs)", ...
  std::string partitioning;   ///< "1-D", "2-D (subtree-subcube)", ...
  std::string fact_overhead;  ///< communication overhead of factorization
  std::string fact_iso;       ///< isoefficiency of factorization
  std::string solve_overhead; ///< communication overhead of fw/bw solve
  std::string solve_iso;      ///< isoefficiency of the solver
  std::string overall_iso;    ///< isoefficiency of the combination
};

/// The nine rows of the paper's Figure 5, generated programmatically.
std::vector<Fig5Row> figure5_rows();

}  // namespace sparts::model
