#include "numeric/factor_io.hpp"

#include <cmath>
#include <cstring>
#include <fstream>
#include <vector>

#include "common/error.hpp"

namespace sparts::numeric {

namespace {

constexpr char kMagic[8] = {'S', 'P', 'T', 'S', 'F', 'C', 'T', '1'};

template <typename T>
void put(std::ostream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void put_vec(std::ostream& out, const std::vector<T>& v) {
  put(out, static_cast<index_t>(v.size()));
  out.write(reinterpret_cast<const char*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/// Truncation errors carry the byte offset the read started at, so a
/// corrupt file can be diagnosed with a hex dump.
[[noreturn]] void throw_truncated(std::streamoff at, const char* what) {
  throw IoError("truncated factor file: failed reading " + std::string(what) +
                " at byte offset " + std::to_string(at));
}

template <typename T>
T get(std::istream& in, const char* what) {
  const std::streamoff at = in.tellg();
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw_truncated(at, what);
  return v;
}

template <typename T>
std::vector<T> get_vec(std::istream& in, const char* what) {
  const index_t count = get<index_t>(in, what);
  if (count < 0 || count >= (index_t{1} << 40)) {
    throw IoError("implausible array length " + std::to_string(count) +
                  " for " + std::string(what) + " in factor file");
  }
  const std::streamoff at = in.tellg();
  std::vector<T> v(static_cast<std::size_t>(count));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in) throw_truncated(at, what);
  return v;
}

}  // namespace

void write_factor(const SupernodalFactor& factor, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_factor(factor, out);
  if (!out) throw IoError("write failure on " + path);
}

void write_factor(const SupernodalFactor& factor, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const auto& p = factor.partition();
  put_vec(out, p.first_col);
  put_vec(out, p.rowptr);
  put_vec(out, p.rows);
  put_vec(out, p.stree.parent);
  // Values, supernode by supernode.
  put(out, factor.num_supernodes());
  for (index_t s = 0; s < factor.num_supernodes(); ++s) {
    auto block = factor.block(s);
    put(out, static_cast<index_t>(block.size()));
    out.write(reinterpret_cast<const char*>(block.data()),
              static_cast<std::streamsize>(block.size() * sizeof(real_t)));
  }
  if (!out) throw IoError("write failure in write_factor");
}

SupernodalFactor read_factor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open " + path);
  return read_factor(in);
}

SupernodalFactor read_factor(std::istream& in) {
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw IoError("not a SPARTS factor file (bad magic)");
  }
  symbolic::SupernodePartition part;
  part.first_col = get_vec<index_t>(in, "first_col");
  part.rowptr = get_vec<nnz_t>(in, "rowptr");
  part.rows = get_vec<index_t>(in, "rows");
  part.stree.parent = get_vec<index_t>(in, "etree parents");
  if (part.first_col.empty()) {
    throw IoError("empty partition in factor file");
  }
  // Validate first_col before trusting it as the sup_of_col recipe: a
  // corrupt back() would otherwise size an n-element vector from garbage.
  const index_t n = part.first_col.back();
  const index_t nsup = static_cast<index_t>(part.first_col.size()) - 1;
  if (part.first_col.front() != 0 || n < 0 || n >= (index_t{1} << 40)) {
    throw IoError("corrupt supernode boundaries in factor file (n = " +
                  std::to_string(n) + ")");
  }
  for (index_t s = 0; s < nsup; ++s) {
    if (part.first_col[static_cast<std::size_t>(s)] >
        part.first_col[static_cast<std::size_t>(s) + 1]) {
      throw IoError("non-monotone supernode boundaries in factor file at " +
                    std::to_string(s));
    }
  }
  part.sup_of_col.assign(static_cast<std::size_t>(n), 0);
  for (index_t s = 0; s < nsup; ++s) {
    for (index_t j = part.first_col[static_cast<std::size_t>(s)];
         j < part.first_col[static_cast<std::size_t>(s) + 1]; ++j) {
      part.sup_of_col[static_cast<std::size_t>(j)] = s;
    }
  }
  part.check_consistent();  // throws on any structural corruption

  SupernodalFactor factor(std::move(part));
  const index_t stored = get<index_t>(in, "supernode count");
  SPARTS_CHECK(stored == factor.num_supernodes(),
               "supernode count mismatch in factor file");
  for (index_t s = 0; s < factor.num_supernodes(); ++s) {
    const index_t len = get<index_t>(in, "block length");
    auto block = factor.block(s);
    SPARTS_CHECK(len == static_cast<index_t>(block.size()),
                 "block size mismatch at supernode " << s);
    const std::streamoff at = in.tellg();
    in.read(reinterpret_cast<char*>(block.data()),
            static_cast<std::streamsize>(block.size() * sizeof(real_t)));
    if (!in) throw_truncated(at, "factor values");
    for (std::size_t z = 0; z < block.size(); ++z) {
      if (!std::isfinite(block[z])) {
        throw IoError("non-finite factor value at supernode " +
                      std::to_string(s) + ", entry " + std::to_string(z));
      }
    }
  }
  return factor;
}

}  // namespace sparts::numeric
