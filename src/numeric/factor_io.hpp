// Binary serialization of the supernodal factor: factor once, solve many
// times across runs (the paper's amortization argument, taken to disk).
//
// Format (little-endian, versioned): magic "SPTSFCT1", then the supernode
// partition (first_col, rowptr, rows, stree parents) followed by the raw
// trapezoid values.
#pragma once

#include <iosfwd>
#include <string>

#include "numeric/supernodal_factor.hpp"

namespace sparts::numeric {

/// Write the factor to `path`.  Throws IoError on failure.
void write_factor(const SupernodalFactor& factor, const std::string& path);
void write_factor(const SupernodalFactor& factor, std::ostream& out);

/// Read a factor previously written by write_factor.  Validates the
/// header and every structural invariant.  Throws IoError on mismatch.
SupernodalFactor read_factor(const std::string& path);
SupernodalFactor read_factor(std::istream& in);

}  // namespace sparts::numeric
