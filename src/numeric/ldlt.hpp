// L D L^T factorization without pivoting.
//
// For symmetric matrices that are strongly diagonally dominant (or quasi-
// definite) but not positive definite, Cholesky fails on negative pivots
// while L D L^T with unit-lower-triangular L and (possibly negative)
// diagonal D succeeds without pivoting.  The nonzero structure is the same
// as the Cholesky factor's, so all symbolic machinery is shared.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/formats.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::numeric {

/// Sparse unit-lower-triangular L and diagonal D over a fixed symbolic
/// structure.  The diagonal slot of each column stores D(j); the implied
/// L(j, j) is 1.
struct LdltFactor {
  const symbolic::SymbolicFactor* symbolic = nullptr;
  std::vector<real_t> values;  ///< aligned with symbolic->rowind

  index_t n() const { return symbolic->n; }

  /// D(j).
  real_t d(index_t j) const {
    return values[static_cast<std::size_t>(
        symbolic->colptr[static_cast<std::size_t>(j)])];
  }

  /// L(i, j) for i > j; zero outside the structure; 1 for i == j.
  real_t l_at(index_t i, index_t j) const;
};

/// Left-looking simplicial L D L^T.  Throws NumericalError on an exactly
/// zero pivot (the factorization does not pivot).
LdltFactor simplicial_ldlt(const sparse::SymmetricCsc& a,
                           const symbolic::SymbolicFactor& sym);

/// Solve A X = B in place via L y = b; z = D^{-1} y; L^T x = z.
/// `b` is n x m column-major with ld = n.
void ldlt_solve(const LdltFactor& f, real_t* b, index_t m);

}  // namespace sparts::numeric
