#include "numeric/multifrontal.hpp"

#include <algorithm>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "dense/kernels.hpp"
#include "ordering/etree.hpp"

namespace sparts::numeric {

nnz_t factor_supernode_panel(const sparse::SymmetricCsc& a,
                             const symbolic::SupernodePartition& p, index_t s,
                             std::span<const index_t> children,
                             std::vector<UpdateMatrix>& updates,
                             SupernodalFactor& factor,
                             std::vector<real_t>& front,
                             std::vector<index_t>& pos_of_row) {
  const index_t t = p.width(s);
  const index_t ns = p.height(s);
  auto rows = p.row_indices(s);
  const index_t j0 = p.first_col[static_cast<std::size_t>(s)];

  // Frontal matrix: ns x ns, column-major, lower triangle used.
  front.assign(static_cast<std::size_t>(ns) * ns, 0.0);

  for (index_t i = 0; i < ns; ++i) {
    pos_of_row[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] =
        i;
  }

  // Assemble original entries of the pivot columns.
  for (index_t k = 0; k < t; ++k) {
    const index_t j = j0 + k;
    auto arow = a.col_rows(j);
    auto aval = a.col_values(j);
    for (std::size_t q = 0; q < arow.size(); ++q) {
      const index_t i = pos_of_row[static_cast<std::size_t>(arow[q])];
      SPARTS_DCHECK(i >= 0);
      front[static_cast<std::size_t>(k * ns + i)] += aval[q];
    }
  }

  // Extend-add the children's update matrices.
  for (index_t c : children) {
    UpdateMatrix& u = updates[static_cast<std::size_t>(c)];
    const index_t m = u.size();
    for (index_t cj = 0; cj < m; ++cj) {
      const index_t fj =
          pos_of_row[static_cast<std::size_t>(u.rows[static_cast<std::size_t>(cj)])];
      SPARTS_DCHECK(fj >= 0);
      for (index_t ci = cj; ci < m; ++ci) {
        const index_t fi = pos_of_row[static_cast<std::size_t>(
            u.rows[static_cast<std::size_t>(ci)])];
        // Positions are ascending with rows, so fi >= fj.
        front[static_cast<std::size_t>(fj * ns + fi)] +=
            u.values[static_cast<std::size_t>(cj * m + ci)];
      }
    }
    u = UpdateMatrix{};  // free
  }

  // Dense partial factorization of the pivot block.
  const nnz_t flops = dense::panel_cholesky(ns, t, front.data(), ns);

  // Copy the factored pivot columns into the supernodal factor.  (The
  // Schur update only touches the trailing block, columns >= t, so the
  // pivot columns are final here.)
  auto block = factor.block(s);
  for (index_t k = 0; k < t; ++k) {
    const real_t* src = front.data() + static_cast<std::size_t>(k) * ns;
    real_t* dst = block.data() + static_cast<std::size_t>(k) * ns;
    // Zero above the diagonal of the pivot triangle, copy the rest.
    for (index_t i = 0; i < k; ++i) dst[i] = 0.0;
    for (index_t i = k; i < ns; ++i) dst[i] = src[i];
  }

  for (index_t i = 0; i < ns; ++i) {
    pos_of_row[static_cast<std::size_t>(rows[static_cast<std::size_t>(i)])] =
        -1;
  }
  return flops;
}

nnz_t supernode_schur_update(const symbolic::SupernodePartition& p, index_t s,
                             std::vector<real_t>& front, UpdateMatrix* out) {
  const index_t t = p.width(s);
  const index_t ns = p.height(s);
  const index_t b = ns - t;
  if (b <= 0) return 0;

  // Schur complement of the trailing block: F22 -= L21 * L21^T.
  dense::panel_syrk(b, b, t, front.data() + t, ns, front.data() + t, ns,
                    front.data() + static_cast<std::size_t>(t) * ns + t, ns,
                    /*lower_only=*/true);

  // Emit the update matrix for the parent.
  auto rows = p.row_indices(s);
  UpdateMatrix u;
  u.rows.assign(rows.begin() + t, rows.end());
  u.values.assign(static_cast<std::size_t>(b) * b, 0.0);
  for (index_t cj = 0; cj < b; ++cj) {
    const real_t* src =
        front.data() + static_cast<std::size_t>(t + cj) * ns + t;
    real_t* dst = u.values.data() + static_cast<std::size_t>(cj) * b;
    for (index_t ci = cj; ci < b; ++ci) dst[ci] = src[ci];
  }
  *out = std::move(u);
  return dense::syrk_flops(b, b, t, /*lower_only=*/true);
}

SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       const symbolic::SupernodePartition& p,
                                       FactorizationStats* stats) {
  const index_t nsup = p.num_supernodes();
  SPARTS_CHECK(p.n() == a.n(), "partition does not match matrix");
  SPARTS_VALIDATE_EXPENSIVE(p.check_consistent());
  SupernodalFactor factor(p);
  FactorizationStats local_stats;

  auto order = ordering::postorder(p.stree);
  auto children = ordering::tree_children(p.stree);

  std::vector<UpdateMatrix> updates(static_cast<std::size_t>(nsup));
  nnz_t stack_entries = 0;

  // Scratch: position of a global row inside the current front.
  std::vector<index_t> pos_of_row(static_cast<std::size_t>(p.n()), -1);
  std::vector<real_t> front;

  for (index_t s : order) {
    const auto& ch = children[static_cast<std::size_t>(s)];
    for (index_t c : ch) {
      stack_entries -=
          static_cast<nnz_t>(updates[static_cast<std::size_t>(c)].values.size());
    }
    local_stats.flops += factor_supernode_panel(a, p, s, ch, updates, factor,
                                                front, pos_of_row);
    local_stats.peak_front_entries = std::max(
        local_stats.peak_front_entries, static_cast<nnz_t>(front.size()));

    UpdateMatrix u;
    local_stats.flops += supernode_schur_update(p, s, front, &u);
    if (u.size() > 0) {
      stack_entries += static_cast<nnz_t>(u.values.size());
      local_stats.peak_stack_entries =
          std::max(local_stats.peak_stack_entries, stack_entries);
      updates[static_cast<std::size_t>(s)] = std::move(u);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return factor;
}

SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       FactorizationStats* stats) {
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);
  return multifrontal_cholesky(a, part, stats);
}

}  // namespace sparts::numeric
