// Sequential supernodal multifrontal Cholesky factorization (Liu, "The
// multifrontal method for sparse matrix solution").
//
// The factorization walks the supernodal elimination tree in postorder.
// Each supernode assembles a dense frontal matrix from the original matrix
// entries of its pivot columns plus the update matrices of its children
// (extend-add), performs a dense partial Cholesky of the pivot block, and
// passes the Schur complement up as its own update matrix.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "numeric/supernodal_factor.hpp"
#include "sparse/formats.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::numeric {

/// Statistics of a factorization run.
struct FactorizationStats {
  nnz_t flops = 0;              ///< floating point operations performed
  nnz_t peak_front_entries = 0; ///< largest single frontal matrix
  nnz_t peak_stack_entries = 0; ///< high-water mark of the update stack
};

/// A supernode's update (Schur complement) matrix: dense symmetric lower
/// block over its below-pivot row indices.  Produced by
/// supernode_schur_update, consumed (extend-add) by the parent's
/// factor_supernode_panel.
struct UpdateMatrix {
  std::vector<index_t> rows;   ///< global row ids (ascending)
  std::vector<real_t> values;  ///< column-major size rows^2 (lower used)

  index_t size() const { return static_cast<index_t>(rows.size()); }
};

/// The "panel factor" half of one supernode's elimination: assemble the
/// ns x ns front (original entries of the pivot columns, then extend-add
/// of `updates[c]` for each child in the order given — every child slot is
/// consumed and freed), run the dense partial Cholesky of the pivot block,
/// and write the factored pivot columns into `factor.block(s)`.  `front`
/// is (re)allocated to hold the frontal matrix; `pos_of_row` is scratch of
/// size >= n with every entry -1 on entry and on return.  Returns the
/// Cholesky flop count.
///
/// The sequential loop and the task-DAG lowering
/// (parfact::taskdag_factor) are both built from this step plus
/// supernode_schur_update — sharing the exact arithmetic is what makes
/// their factors bit-identical: a front's content depends only on A and on
/// the children's update matrices combined in children order, never on
/// when other supernodes run.
nnz_t factor_supernode_panel(const sparse::SymmetricCsc& a,
                             const symbolic::SupernodePartition& p, index_t s,
                             std::span<const index_t> children,
                             std::vector<UpdateMatrix>& updates,
                             SupernodalFactor& factor,
                             std::vector<real_t>& front,
                             std::vector<index_t>& pos_of_row);

/// The "update" half: Schur complement of the trailing block
/// (F22 -= L21 L21^T) and emission of the update matrix for the parent.
/// `out` stays empty when the supernode has no below rows.  Returns the
/// syrk flop count.
nnz_t supernode_schur_update(const symbolic::SupernodePartition& p, index_t s,
                             std::vector<real_t>& front, UpdateMatrix* out);

/// Factor A (SPD, lower storage) over the given supernode partition.
/// The partition must describe the symbolic factor of A (possibly
/// amalgamated).  Throws NumericalError for non-SPD input.
SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       const symbolic::SupernodePartition& p,
                                       FactorizationStats* stats = nullptr);

/// Convenience: symbolic analysis + fundamental supernodes + factorization.
SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       FactorizationStats* stats = nullptr);

}  // namespace sparts::numeric
