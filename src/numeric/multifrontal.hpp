// Sequential supernodal multifrontal Cholesky factorization (Liu, "The
// multifrontal method for sparse matrix solution").
//
// The factorization walks the supernodal elimination tree in postorder.
// Each supernode assembles a dense frontal matrix from the original matrix
// entries of its pivot columns plus the update matrices of its children
// (extend-add), performs a dense partial Cholesky of the pivot block, and
// passes the Schur complement up as its own update matrix.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "numeric/supernodal_factor.hpp"
#include "sparse/formats.hpp"
#include "symbolic/supernodes.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::numeric {

/// Statistics of a factorization run.
struct FactorizationStats {
  nnz_t flops = 0;              ///< floating point operations performed
  nnz_t peak_front_entries = 0; ///< largest single frontal matrix
  nnz_t peak_stack_entries = 0; ///< high-water mark of the update stack
};

/// Factor A (SPD, lower storage) over the given supernode partition.
/// The partition must describe the symbolic factor of A (possibly
/// amalgamated).  Throws NumericalError for non-SPD input.
SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       const symbolic::SupernodePartition& p,
                                       FactorizationStats* stats = nullptr);

/// Convenience: symbolic analysis + fundamental supernodes + factorization.
SupernodalFactor multifrontal_cholesky(const sparse::SymmetricCsc& a,
                                       FactorizationStats* stats = nullptr);

}  // namespace sparts::numeric
