#include "numeric/simplicial.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dense/pivot.hpp"

namespace sparts::numeric {

real_t CscFactor::at(index_t i, index_t j) const {
  SPARTS_CHECK(i >= j);
  auto rows = symbolic->col_rows(j);
  auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  const nnz_t p = symbolic->colptr[static_cast<std::size_t>(j)] +
                  (it - rows.begin());
  return values[static_cast<std::size_t>(p)];
}

CscFactor simplicial_cholesky(const sparse::SymmetricCsc& a,
                              const symbolic::SymbolicFactor& sym) {
  const index_t n = a.n();
  SPARTS_CHECK(sym.n == n, "symbolic structure size mismatch");
  CscFactor f;
  f.symbolic = &sym;
  f.values.assign(static_cast<std::size_t>(sym.nnz()), 0.0);

  // Dense work column + position map.
  std::vector<real_t> work(static_cast<std::size_t>(n), 0.0);
  // link[k]: head of the list of columns whose next unprocessed row is k.
  std::vector<index_t> link(static_cast<std::size_t>(n), -1);
  std::vector<index_t> next_in_col(static_cast<std::size_t>(n), 0);
  std::vector<index_t> chain(static_cast<std::size_t>(n), -1);

  for (index_t j = 0; j < n; ++j) {
    // Scatter A(:, j) (below diagonal inclusive) into work.
    for (std::size_t p = 0; p < a.col_rows(j).size(); ++p) {
      work[static_cast<std::size_t>(a.col_rows(j)[p])] = a.col_values(j)[p];
    }

    // Apply updates from every column k with L(j, k) != 0.
    index_t k = link[static_cast<std::size_t>(j)];
    link[static_cast<std::size_t>(j)] = -1;
    while (k != -1) {
      const index_t knext = chain[static_cast<std::size_t>(k)];
      auto krows = sym.col_rows(k);
      const nnz_t kbase = sym.colptr[static_cast<std::size_t>(k)];
      const index_t pos = next_in_col[static_cast<std::size_t>(k)];
      const real_t ljk =
          f.values[static_cast<std::size_t>(kbase + pos)];
      // work(i) -= L(i,k) * L(j,k) for all i >= j in column k.
      for (index_t q = pos; q < static_cast<index_t>(krows.size()); ++q) {
        work[static_cast<std::size_t>(krows[static_cast<std::size_t>(q)])] -=
            f.values[static_cast<std::size_t>(kbase + q)] * ljk;
      }
      // Advance column k to its next row and relink.
      if (pos + 1 < static_cast<index_t>(krows.size())) {
        next_in_col[static_cast<std::size_t>(k)] = pos + 1;
        const index_t row = krows[static_cast<std::size_t>(pos + 1)];
        chain[static_cast<std::size_t>(k)] =
            link[static_cast<std::size_t>(row)];
        link[static_cast<std::size_t>(row)] = k;
      }
      k = knext;
    }

    // Compute column j of L from work.
    real_t diag = work[static_cast<std::size_t>(j)];
    if (!(diag > 0.0)) {
      diag = dense::resolve_bad_pivot(diag, "simplicial_cholesky", j);
    }
    const real_t dj = std::sqrt(diag);
    auto jrows = sym.col_rows(j);
    const nnz_t jbase = sym.colptr[static_cast<std::size_t>(j)];
    f.values[static_cast<std::size_t>(jbase)] = dj;
    work[static_cast<std::size_t>(j)] = 0.0;
    for (index_t q = 1; q < static_cast<index_t>(jrows.size()); ++q) {
      const index_t i = jrows[static_cast<std::size_t>(q)];
      f.values[static_cast<std::size_t>(jbase + q)] =
          work[static_cast<std::size_t>(i)] / dj;
      work[static_cast<std::size_t>(i)] = 0.0;
    }
    // Link column j to the first row below its diagonal.
    if (jrows.size() > 1) {
      next_in_col[static_cast<std::size_t>(j)] = 1;
      const index_t row = jrows[1];
      chain[static_cast<std::size_t>(j)] = link[static_cast<std::size_t>(row)];
      link[static_cast<std::size_t>(row)] = j;
    }
  }
  return f;
}

void csc_forward_solve(const CscFactor& l, real_t* b, index_t m) {
  const symbolic::SymbolicFactor& sym = *l.symbolic;
  const index_t n = sym.n;
  for (index_t c = 0; c < m; ++c) {
    real_t* x = b + c * n;
    for (index_t j = 0; j < n; ++j) {
      auto rows = sym.col_rows(j);
      const nnz_t base = sym.colptr[static_cast<std::size_t>(j)];
      const real_t xj =
          x[j] / l.values[static_cast<std::size_t>(base)];
      x[j] = xj;
      for (std::size_t q = 1; q < rows.size(); ++q) {
        x[rows[q]] -= l.values[static_cast<std::size_t>(base + q)] * xj;
      }
    }
  }
}

void csc_backward_solve(const CscFactor& l, real_t* b, index_t m) {
  const symbolic::SymbolicFactor& sym = *l.symbolic;
  const index_t n = sym.n;
  for (index_t c = 0; c < m; ++c) {
    real_t* x = b + c * n;
    for (index_t j = n - 1; j >= 0; --j) {
      auto rows = sym.col_rows(j);
      const nnz_t base = sym.colptr[static_cast<std::size_t>(j)];
      real_t s = x[j];
      for (std::size_t q = 1; q < rows.size(); ++q) {
        s -= l.values[static_cast<std::size_t>(base + q)] * x[rows[q]];
      }
      x[j] = s / l.values[static_cast<std::size_t>(base)];
    }
  }
}

}  // namespace sparts::numeric
