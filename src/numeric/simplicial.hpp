// Simplicial (column-by-column) sparse Cholesky — the reference
// implementation used to validate the multifrontal factorization and the
// triangular solvers.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "sparse/formats.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::numeric {

/// Sparse lower-triangular factor in CSC form over a fixed symbolic
/// structure.
struct CscFactor {
  const symbolic::SymbolicFactor* symbolic = nullptr;
  std::vector<real_t> values;  ///< aligned with symbolic->rowind

  index_t n() const { return symbolic->n; }

  /// L(i, j); zero outside the structure.
  real_t at(index_t i, index_t j) const;
};

/// Left-looking simplicial Cholesky over the given symbolic structure.
/// Throws NumericalError for non-SPD input.
CscFactor simplicial_cholesky(const sparse::SymmetricCsc& a,
                              const symbolic::SymbolicFactor& sym);

/// Solve L y = b in place (b is n x m column-major, ld = n).
void csc_forward_solve(const CscFactor& l, real_t* b, index_t m);

/// Solve L^T x = y in place.
void csc_backward_solve(const CscFactor& l, real_t* b, index_t m);

}  // namespace sparts::numeric
