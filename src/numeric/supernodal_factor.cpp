#include "numeric/supernodal_factor.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace sparts::numeric {

SupernodalFactor::SupernodalFactor(symbolic::SupernodePartition partition)
    : part_(std::move(partition)) {
  const index_t nsup = part_.num_supernodes();
  offset_.assign(static_cast<std::size_t>(nsup) + 1, 0);
  for (index_t s = 0; s < nsup; ++s) {
    offset_[static_cast<std::size_t>(s) + 1] =
        offset_[static_cast<std::size_t>(s)] + part_.block_entries(s);
  }
  values_.assign(static_cast<std::size_t>(offset_.back()), 0.0);
}

std::span<real_t> SupernodalFactor::block(index_t s) {
  SPARTS_DCHECK(s >= 0 && s < num_supernodes());
  return {values_.data() + offset_[static_cast<std::size_t>(s)],
          static_cast<std::size_t>(part_.block_entries(s))};
}

std::span<const real_t> SupernodalFactor::block(index_t s) const {
  SPARTS_DCHECK(s >= 0 && s < num_supernodes());
  return {values_.data() + offset_[static_cast<std::size_t>(s)],
          static_cast<std::size_t>(part_.block_entries(s))};
}

real_t SupernodalFactor::at(index_t i, index_t j) const {
  SPARTS_CHECK(i >= j, "at() expects lower-triangle coordinates");
  const index_t s = part_.sup_of_col[static_cast<std::size_t>(j)];
  const index_t k = j - part_.first_col[static_cast<std::size_t>(s)];
  auto rows = part_.row_indices(s);
  auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  const index_t pos = static_cast<index_t>(it - rows.begin());
  return block(s)[static_cast<std::size_t>(k * part_.height(s) + pos)];
}

nnz_t SupernodalFactor::factor_nnz() const {
  nnz_t count = 0;
  for (index_t s = 0; s < num_supernodes(); ++s) {
    const nnz_t ns = part_.height(s);
    const nnz_t t = part_.width(s);
    // Column k of the trapezoid has ns - k entries on/below the diagonal.
    count += t * ns - t * (t - 1) / 2;
  }
  return count;
}

nnz_t SupernodalFactor::solve_flops(index_t m) const {
  nnz_t flops = 0;
  for (index_t s = 0; s < num_supernodes(); ++s) {
    flops += 2 * part_.solve_flops(s, m);  // forward + backward
  }
  return flops;
}

}  // namespace sparts::numeric
