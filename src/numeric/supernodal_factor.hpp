// Numeric storage of the Cholesky factor in supernodal (dense trapezoid)
// form — the data structure every solver in this library operates on.
//
// Supernode s owns a dense column-major block of height(s) x width(s):
// entry (i, k) holds L(rows(s)[i], first_col(s) + k).  Entries with
// rows(s)[i] < first_col(s)+k lie above the diagonal inside the pivot
// triangle and are structurally zero.
#pragma once

#include <span>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::numeric {

class SupernodalFactor {
 public:
  SupernodalFactor() = default;

  /// Allocate zeroed storage for the given partition.
  explicit SupernodalFactor(symbolic::SupernodePartition partition);

  const symbolic::SupernodePartition& partition() const { return part_; }
  index_t n() const { return part_.n(); }
  index_t num_supernodes() const { return part_.num_supernodes(); }

  /// Column-major block of supernode s (height(s) x width(s), ld = height).
  std::span<real_t> block(index_t s);
  std::span<const real_t> block(index_t s) const;

  /// Leading dimension of supernode s's block.
  index_t ld(index_t s) const { return part_.height(s); }

  /// L(i, j) for i >= j; zero if outside the structure.
  real_t at(index_t i, index_t j) const;

  /// Total stored entries (including structural zeros of the trapezoids).
  nnz_t stored_entries() const {
    return static_cast<nnz_t>(values_.size());
  }

  /// Nonzeros of L counted the sparse way: entries on or below the
  /// diagonal inside the trapezoids.
  nnz_t factor_nnz() const;

  /// Exact flops of one forward+backward solve with m right-hand sides.
  nnz_t solve_flops(index_t m) const;

 private:
  symbolic::SupernodePartition part_;
  std::vector<nnz_t> offset_;
  /// Arena-backed (common/arena.hpp): the factor is by far the largest
  /// allocation in a solve, so it benefits most from huge pages.
  common::ArenaVector<real_t> values_;
};

}  // namespace sparts::numeric
