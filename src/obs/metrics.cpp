#include "obs/metrics.hpp"

#include <bit>
#include <map>
#include <mutex>
#include <ostream>

namespace sparts::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void enable_metrics() {
  g_metrics_enabled.store(true, std::memory_order_release);
}
void disable_metrics() {
  g_metrics_enabled.store(false, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

int Histogram::bucket_of(std::int64_t value) {
  if (value <= 0) return 0;
  // Bucket i covers (2^(i-2), 2^(i-1)] for i >= 2; bucket 1 is exactly 1.
  const int width = std::bit_width(static_cast<std::uint64_t>(value));
  const bool pow2 = (value & (value - 1)) == 0;
  const int bucket = pow2 ? width : width + 1;
  return bucket < kBuckets ? bucket : kBuckets - 1;
}

std::int64_t Histogram::bucket_bound(int bucket) {
  if (bucket <= 0) return 0;
  return std::int64_t{1} << (bucket - 1);
}

void Histogram::observe(std::int64_t value) {
  buckets_[static_cast<std::size_t>(bucket_of(value))].fetch_add(
      1, std::memory_order_relaxed);
  const std::int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (n == 0) {
    // First observation seeds min/max; races with concurrent first
    // observations resolve through the CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
    return;
  }
  std::int64_t cur = min_.load(std::memory_order_relaxed);
  while (value < cur &&
         !min_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

std::int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

std::int64_t Histogram::bucket_count(int bucket) const {
  if (bucket < 0 || bucket >= kBuckets) return 0;
  return buckets_[static_cast<std::size_t>(bucket)].load(
      std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

struct Registry::Impl {
  mutable std::mutex mutex;
  // node-based maps: references to mapped instruments stay valid forever.
  std::map<std::string, Counter> counters;
  std::map<std::string, Gauge> gauges;
  std::map<std::string, Histogram> histograms;
};

Registry::Registry() : impl_(std::make_unique<Impl>()) {}

Registry::~Registry() = default;

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->counters[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->gauges[name];
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->histograms[name];
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  for (auto& [name, c] : impl_->counters) c.reset();
  for (auto& [name, g] : impl_->gauges) g.reset();
  for (auto& [name, h] : impl_->histograms) h.reset();
}

void Registry::write_json(std::ostream& out, int indent) const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  const std::string pad(static_cast<std::size_t>(indent), ' ');

  out << pad << "{\n";
  out << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out << (first ? "\n" : ",\n") << pad << "    \"";
    write_escaped(out, name);
    out << "\": " << c.value();
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : impl_->gauges) {
    out << (first ? "\n" : ",\n") << pad << "    \"";
    write_escaped(out, name);
    out << "\": " << g.value();
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "},\n";

  out << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out << (first ? "\n" : ",\n") << pad << "    \"";
    write_escaped(out, name);
    out << "\": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
        << ", \"min\": " << h.min() << ", \"max\": " << h.max()
        << ", \"buckets\": {";
    bool bfirst = true;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::int64_t n = h.bucket_count(b);
      if (n == 0) continue;
      if (!bfirst) out << ", ";
      out << "\"le_" << Histogram::bucket_bound(b) << "\": " << n;
      bfirst = false;
    }
    out << "}}";
    first = false;
  }
  out << (first ? "" : "\n" + pad + "  ") << "}\n";
  out << pad << "}";
}

}  // namespace sparts::obs
