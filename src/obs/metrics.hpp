// Process-wide metrics registry: counters, gauges, and log-scale
// histograms, exportable as JSON.
//
// Intended use: hot paths (backend send/recv, the dense kernel dispatch)
// obtain their instruments once — `static Counter& c = metrics().counter(
// "kernel.panel_gemm.calls");` — and update them with single relaxed
// atomic operations, guarded by metrics_enabled() so a disabled registry
// costs one atomic load and a branch per site.  Aggregation points (the
// phase profiler, the solver driver) update gauges at phase boundaries.
//
// Instruments live for the process lifetime; references returned by the
// registry never dangle.  All updates are thread-safe.
//
// Histograms use base-2 buckets with inclusive upper bounds 0, 1, 2, 4,
// 8, ...: an observation lands in the smallest bucket whose bound is >=
// the value.  That makes them natural for message-size distributions (the
// paper's communication terms are per-word) and per-call flop counts:
// each bucket is "messages of roughly this magnitude".
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

namespace sparts::obs {

/// True when some caller enabled metrics collection.
bool metrics_enabled();
void enable_metrics();
void disable_metrics();

class Counter {
 public:
  void add(std::int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// 2^62 overflows anything this library measures.
  static constexpr int kBuckets = 63;

  void observe(std::int64_t value);

  std::int64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::int64_t min() const;  ///< 0 when empty
  std::int64_t max() const;  ///< 0 when empty
  std::int64_t bucket_count(int bucket) const;
  /// Upper bound (inclusive) of a bucket: 0, 1, 2, 4, 8, ...
  static std::int64_t bucket_bound(int bucket);
  /// Smallest bucket whose bound is >= value (the bucket observe() picks).
  static int bucket_of(std::int64_t value);

  void reset();

 private:
  std::array<std::atomic<std::int64_t>, kBuckets> buckets_{};
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Name -> instrument registry.  Lookups take a mutex (call sites should
/// cache the returned reference); updates on the instruments are
/// lock-free.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Reset every registered instrument to zero (instruments themselves
  /// stay registered so cached references remain valid).
  void reset();

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}} with
  /// histogram objects carrying count/sum/min/max and non-empty buckets.
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  Registry();
  ~Registry();
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Shorthand: obs::metrics().counter("...").
inline Registry& metrics() { return Registry::instance(); }

}  // namespace sparts::obs
