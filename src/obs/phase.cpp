#include "obs/phase.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::obs {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

void write_escaped(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

}  // namespace

struct PhaseProfiler::OpenPhase {
  std::string name;
  double timeline_start = 0.0;
  SteadyClock::time_point wall_start;
  /// Interned copy of `name` for trace events: the tracer stores name
  /// pointers, so the string must outlive the run.  Phase names come from
  /// a small fixed vocabulary, so interning is bounded.
  const char* interned = nullptr;
};

// Interning table: trace events hold name pointers until export, which
// may happen after the profiler is cleared, so interned names live for
// the process lifetime.  Phase names come from a small fixed vocabulary.
namespace {
const char* intern_phase_name(const std::string& name) {
  static std::vector<std::unique_ptr<std::string>> table;
  for (const auto& s : table) {
    if (*s == name) return s->c_str();
  }
  table.push_back(std::make_unique<std::string>(name));
  return table.back()->c_str();
}
}  // namespace

PhaseProfiler& PhaseProfiler::instance() {
  static PhaseProfiler profiler;
  return profiler;
}

void PhaseProfiler::begin(const std::string& name) {
  OpenPhase open;
  open.name = name;
  open.timeline_start = Tracer::instance().timeline();
  open.wall_start = SteadyClock::now();
  open.interned = intern_phase_name(name);
  Tracer::instance().record(kHostTrack, EventKind::span_begin,
                            Category::phase, open.interned,
                            open.timeline_start);
  stack_.push_back(std::move(open));
}

void PhaseProfiler::end() {
  SPARTS_CHECK(!stack_.empty(), "PhaseProfiler::end without begin");
  OpenPhase open = std::move(stack_.back());
  stack_.pop_back();

  PhaseRecord rec;
  rec.name = open.name;
  rec.start = open.timeline_start;
  rec.wall_seconds = seconds_since(open.wall_start);
  rec.depth = static_cast<int>(stack_.size());
  rec.parallel = false;

  // A host phase owns its timeline interval: advance the cursor by the
  // wall duration (minus whatever nested phases/runs already advanced).
  Tracer& tracer = Tracer::instance();
  const double advanced = tracer.timeline() - open.timeline_start;
  if (rec.wall_seconds > advanced) {
    tracer.advance_timeline(rec.wall_seconds - advanced);
  }
  rec.duration = tracer.timeline() - open.timeline_start;
  tracer.record(kHostTrack, EventKind::span_end, Category::phase,
                open.interned, open.timeline_start + rec.duration);

  if (metrics_enabled()) {
    metrics().gauge("phase." + rec.name + ".seconds").set(rec.duration);
    metrics().gauge("phase." + rec.name + ".wall_seconds")
        .set(rec.wall_seconds);
  }
  records_.push_back(std::move(rec));
}

void PhaseProfiler::end_parallel(const ParallelPhaseStats& stats) {
  SPARTS_CHECK(!stack_.empty(), "PhaseProfiler::end_parallel without begin");
  OpenPhase open = std::move(stack_.back());
  stack_.pop_back();

  PhaseRecord rec;
  rec.name = open.name;
  rec.start = open.timeline_start;
  rec.wall_seconds = seconds_since(open.wall_start);
  rec.depth = static_cast<int>(stack_.size());
  rec.parallel = true;
  rec.stats = stats;

  // The backend advanced the timeline by its parallel time inside
  // Tracer::end_run(); the phase interval is whatever the cursor covered
  // (>= parallel_time when several runs executed inside the bracket).
  Tracer& tracer = Tracer::instance();
  rec.duration =
      std::max(stats.parallel_time, tracer.timeline() - open.timeline_start);
  tracer.record(kHostTrack, EventKind::span_end, Category::phase,
                open.interned, open.timeline_start + rec.duration);

  if (metrics_enabled()) {
    double compute = 0.0, send = 0.0, idle = 0.0;
    for (const double v : stats.compute_time) compute += v;
    for (const double v : stats.send_time) send += v;
    for (const double v : stats.idle_time) idle += v;
    const std::string prefix = "phase." + rec.name;
    metrics().gauge(prefix + ".seconds").set(rec.duration);
    metrics().gauge(prefix + ".wall_seconds").set(rec.wall_seconds);
    metrics().gauge(prefix + ".compute_seconds").set(compute);
    metrics().gauge(prefix + ".send_seconds").set(send);
    metrics().gauge(prefix + ".idle_seconds").set(idle);
    metrics().gauge(prefix + ".messages")
        .set(static_cast<double>(stats.messages));
    metrics().gauge(prefix + ".words").set(static_cast<double>(stats.words));
    metrics().gauge(prefix + ".flops").set(static_cast<double>(stats.flops));
  }
  records_.push_back(std::move(rec));
}

void PhaseProfiler::clear() {
  records_.clear();
  stack_.clear();
}

void PhaseProfiler::write_json(std::ostream& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  out << pad << "[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const PhaseRecord& r = records_[i];
    out << (i == 0 ? "\n" : ",\n") << pad << "  {\"name\": \"";
    write_escaped(out, r.name);
    out << "\", \"start\": " << r.start << ", \"duration\": " << r.duration
        << ", \"wall_seconds\": " << r.wall_seconds
        << ", \"depth\": " << r.depth
        << ", \"parallel\": " << (r.parallel ? "true" : "false");
    if (r.parallel) {
      const ParallelPhaseStats& s = r.stats;
      out << ", \"procs\": " << s.procs
          << ", \"backend_seconds\": " << s.parallel_time
          << ", \"flops\": " << s.flops << ", \"messages\": " << s.messages
          << ", \"words\": " << s.words << ", \"ranks\": [";
      for (int q = 0; q < s.procs; ++q) {
        const auto z = static_cast<std::size_t>(q);
        const double c = z < s.compute_time.size() ? s.compute_time[z] : 0.0;
        const double sd = z < s.send_time.size() ? s.send_time[z] : 0.0;
        const double id = z < s.idle_time.size() ? s.idle_time[z] : 0.0;
        out << (q == 0 ? "" : ", ") << "{\"rank\": " << q
            << ", \"compute\": " << c << ", \"send\": " << sd
            << ", \"idle\": " << id << "}";
      }
      out << "]";
    }
    out << "}";
  }
  out << (records_.empty() ? "" : "\n" + pad) << "]";
}

void write_metrics_report(std::ostream& out) {
  out << "{\n\"metrics\":\n";
  Registry::instance().write_json(out);
  out << ",\n\"phases\":\n";
  PhaseProfiler::instance().write_json(out);
  out << "\n}\n";
}

bool write_metrics_report_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  write_metrics_report(out);
  return static_cast<bool>(out);
}

PhaseScope::PhaseScope(const std::string& name) {
  PhaseProfiler::instance().begin(name);
}

void PhaseScope::set_parallel(const ParallelPhaseStats& stats) {
  parallel_ = true;
  stats_ = stats;
}

PhaseScope::~PhaseScope() {
  if (parallel_) {
    PhaseProfiler::instance().end_parallel(stats_);
  } else {
    PhaseProfiler::instance().end();
  }
}

}  // namespace sparts::obs
