// Phase profiler: brackets the stages of a sparse direct solve
// (ordering -> symbolic -> mapping -> factorization -> redistribution ->
// forward solve -> back substitution) and records, per phase,
//
//   * its interval on the tracer's unified timeline (so phases appear as
//     spans on the host track of the exported Chrome trace),
//   * the host wall-clock duration,
//   * for parallel phases, the backend time plus the per-rank
//     compute/send/idle split and message totals from the RunStats.
//
// Clock semantics: a host phase's duration is its wall time and it
// advances the timeline by that amount.  A parallel phase's duration is
// the *backend* time (virtual seconds on the simulator, wall seconds on
// the threaded backend) which the backend itself already pushed onto the
// timeline via Tracer::end_run(); the profiler then only stamps the
// bracket.  This keeps simulated Gantt charts in cost-model seconds.
//
// The profiler is independent of the exec layer (it takes a plain
// ParallelPhaseStats POD, filled by the caller from RunStats) so that
// obs/ sits below every other library in the dependency order.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace sparts::obs {

/// Aggregated backend statistics of one parallel phase.  Mirrors
/// exec::RunStats without depending on it.
struct ParallelPhaseStats {
  int procs = 0;
  double parallel_time = 0.0;  ///< max rank clock (backend seconds)
  std::int64_t flops = 0;
  std::int64_t messages = 0;
  std::int64_t words = 0;
  /// Per-rank splits (size procs), in backend seconds.
  std::vector<double> compute_time;
  std::vector<double> send_time;
  std::vector<double> idle_time;
};

struct PhaseRecord {
  std::string name;
  double start = 0.0;     ///< timeline seconds at begin
  double duration = 0.0;  ///< timeline seconds (backend time when parallel)
  double wall_seconds = 0.0;
  int depth = 0;  ///< nesting depth at begin (0 = top-level)
  bool parallel = false;
  ParallelPhaseStats stats;  ///< meaningful when `parallel`
};

class PhaseProfiler {
 public:
  static PhaseProfiler& instance();

  /// Begin a phase.  Phases nest; end() closes the innermost open phase.
  void begin(const std::string& name);

  /// End the innermost open phase as a host phase: duration = wall time,
  /// timeline advanced by it.
  void end();

  /// End the innermost open phase as a parallel phase: duration =
  /// stats.parallel_time, which the backend already added to the
  /// timeline.  Also folds the aggregates into the metrics registry
  /// (gauges "phase.<name>.seconds" etc.).
  void end_parallel(const ParallelPhaseStats& stats);

  const std::vector<PhaseRecord>& records() const { return records_; }
  void clear();

  /// JSON array of phase objects (per-phase times, splits, totals).
  void write_json(std::ostream& out, int indent = 0) const;

 private:
  struct OpenPhase;
  std::vector<PhaseRecord> records_;
  std::vector<OpenPhase> stack_;
};

/// The combined observability report: {"metrics": <registry JSON>,
/// "phases": <profiler JSON>}.  What `sparts_solve --metrics` writes.
void write_metrics_report(std::ostream& out);

/// write_metrics_report to a file; returns false if it cannot be opened.
bool write_metrics_report_file(const std::string& path);

/// RAII phase bracket.  Ends as a host phase unless set_parallel() was
/// called with the backend stats first.
class PhaseScope {
 public:
  explicit PhaseScope(const std::string& name);
  ~PhaseScope();
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

  void set_parallel(const ParallelPhaseStats& stats);

 private:
  bool parallel_ = false;
  ParallelPhaseStats stats_;
};

}  // namespace sparts::obs
