// RAII trace spans and instants bound to an exec::Process: the
// instrumentation vocabulary for SPMD code (collectives, partrisolve,
// parfact, redist).  Header-only on top of obs/trace.hpp; include this —
// not trace.hpp — from algorithm code.
//
// Zero-cost-when-disabled: every macro/constructor checks
// Tracer::enabled() (one relaxed load) before reading any clock.  Event
// names must be string literals (the tracer stores the pointer).
//
//   void spmd(exec::Process& proc) {
//     SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fw.supernode", s, q);
//     ...
//     SPARTS_TRACE_INSTANT(proc, obs::Category::comm, "token.drop", k, 0);
//   }
#pragma once

#include "exec/process.hpp"
#include "obs/trace.hpp"

namespace sparts::obs {

/// Span tied to a Process: begin on construction, end on destruction,
/// timestamped with the backend clock (Process::now()).  When tracing is
/// disabled at construction the object is inert (no clock reads); if
/// tracing turns off mid-span the end event is simply dropped and the
/// exporter closes the span.
class ProcSpan {
 public:
  ProcSpan(exec::Process& proc, Category cat, const char* name,
           std::int64_t a = 0, std::int64_t b = 0) {
    if (!Tracer::enabled()) return;
    proc_ = &proc;
    cat_ = cat;
    name_ = name;
    Tracer::instance().record_local(static_cast<std::int32_t>(proc.rank()),
                                    EventKind::span_begin, cat, name,
                                    proc.now(), a, b);
  }
  ~ProcSpan() {
    if (proc_ == nullptr) return;
    Tracer::instance().record_local(static_cast<std::int32_t>(proc_->rank()),
                                    EventKind::span_end, cat_, name_,
                                    proc_->now());
  }
  ProcSpan(const ProcSpan&) = delete;
  ProcSpan& operator=(const ProcSpan&) = delete;

 private:
  exec::Process* proc_ = nullptr;
  Category cat_ = Category::other;
  const char* name_ = nullptr;
};

inline void proc_instant(exec::Process& proc, Category cat, const char* name,
                         std::int64_t a = 0, std::int64_t b = 0) {
  if (!Tracer::enabled()) return;
  Tracer::instance().record_local(static_cast<std::int32_t>(proc.rank()),
                                  EventKind::instant, cat, name, proc.now(),
                                  a, b);
}

}  // namespace sparts::obs

#define SPARTS_OBS_CONCAT2(a, b) a##b
#define SPARTS_OBS_CONCAT(a, b) SPARTS_OBS_CONCAT2(a, b)

/// Scoped span on `proc`'s track; extra args are the two integer payloads.
#define SPARTS_TRACE_SPAN(proc, cat, name, ...)               \
  ::sparts::obs::ProcSpan SPARTS_OBS_CONCAT(sparts_obs_span_, \
                                            __LINE__)(        \
      (proc), (cat), (name)__VA_OPT__(, ) __VA_ARGS__)

/// Instant event on `proc`'s track.
#define SPARTS_TRACE_INSTANT(proc, cat, name, ...) \
  ::sparts::obs::proc_instant((proc), (cat), (name)__VA_OPT__(, ) __VA_ARGS__)
