#include "obs/trace.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <string_view>

#include "common/error.hpp"

namespace sparts::obs {

std::atomic<bool> Tracer::enabled_{false};

const char* to_string(Category cat) {
  switch (cat) {
    case Category::comm:
      return "comm";
    case Category::collective:
      return "collective";
    case Category::compute:
      return "compute";
    case Category::phase:
      return "phase";
    case Category::kernel:
      return "kernel";
    case Category::check:
      return "check";
    case Category::fault:
      return "fault";
    case Category::task:
      return "task";
    case Category::other:
      return "other";
  }
  return "unknown";
}

namespace {

/// Maximum rank the tracer keeps a track for (slot 0 is the host track).
/// The paper's machine tops out at 256 processors; events from larger
/// ranks fold into the host track rather than growing an unbounded table.
constexpr std::size_t kMaxTracks = 1025;

std::size_t default_capacity_from_env() {
  if (const char* env = std::getenv("SPARTS_TRACE_BUF")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  return std::size_t{1} << 16;
}

std::size_t slot_of(std::int32_t rank) {
  if (rank < 0 || static_cast<std::size_t>(rank) + 1 >= kMaxTracks) return 0;
  return static_cast<std::size_t>(rank) + 1;
}

/// JSON string escaping for event names (names are literals, but keep the
/// exporter safe against any future name).
void write_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      default:
        out << c;
    }
  }
}

/// Argument labels per category: {a, b} mean different things per event
/// family; label them so Perfetto's args pane reads naturally.
std::pair<const char*, const char*> arg_labels(Category cat) {
  switch (cat) {
    case Category::comm:
      return {"bytes", "peer"};
    case Category::collective:
      return {"words", "group"};
    case Category::compute:
      return {"id", "aux"};
    case Category::kernel:
      return {"flops", "n"};
    case Category::check:
      return {"src", "tag"};
    case Category::fault:
      return {"peer", "tag"};
    case Category::task:
      return {"task", "item"};
    case Category::phase:
    case Category::other:
      return {"a", "b"};
  }
  return {"a", "b"};
}

}  // namespace

/// Single-writer ring buffer: the owning rank's thread appends, nobody
/// else writes.  `head` is the next write position once the ring wrapped.
struct Tracer::RankBuffer {
  explicit RankBuffer(std::size_t cap) : capacity(std::max<std::size_t>(cap, 1)) {
    events.reserve(capacity);
  }

  std::vector<TraceEvent> events;
  std::size_t capacity = 0;
  std::size_t head = 0;
  std::atomic<std::uint64_t> dropped{0};

  void push(const TraceEvent& ev) {
    if (events.size() < capacity) {
      events.push_back(ev);
      return;
    }
    // Ring full: overwrite the oldest event.
    events[head] = ev;
    head = (head + 1) % capacity;
    dropped.fetch_add(1, std::memory_order_relaxed);
  }

  /// Events in recording order (oldest first).
  std::vector<TraceEvent> ordered() const {
    std::vector<TraceEvent> out;
    out.reserve(events.size());
    for (std::size_t i = 0; i < events.size(); ++i) {
      out.push_back(events[(head + i) % events.size()]);
    }
    return out;
  }
};

Tracer::Tracer() : buffers_(kMaxTracks), slots_(kMaxTracks) {
  for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
}

Tracer::~Tracer() = default;

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(std::size_t events_per_rank) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ =
      events_per_rank > 0 ? events_per_rank : default_capacity_from_env();
  enabled_.store(true, std::memory_order_release);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < kMaxTracks; ++i) {
    slots_[i].store(nullptr, std::memory_order_release);
    buffers_[i].reset();
  }
  timeline_.store(0.0, std::memory_order_release);
  run_base_.store(0.0, std::memory_order_release);
}

double Tracer::timeline() const {
  return timeline_.load(std::memory_order_acquire);
}

void Tracer::advance_timeline(double seconds) {
  if (seconds <= 0.0) return;
  double cur = timeline_.load(std::memory_order_relaxed);
  while (!timeline_.compare_exchange_weak(cur, cur + seconds,
                                          std::memory_order_acq_rel)) {
  }
}

void Tracer::begin_run() {
  run_base_.store(timeline(), std::memory_order_release);
}

void Tracer::end_run(double duration) { advance_timeline(duration); }

double Tracer::to_timeline(double local_ts) const {
  return run_base_.load(std::memory_order_acquire) + local_ts;
}

Tracer::RankBuffer* Tracer::buffer_for(std::int32_t rank) {
  const std::size_t slot = slot_of(rank);
  RankBuffer* buf = slots_[slot].load(std::memory_order_acquire);
  if (buf != nullptr) return buf;
  std::lock_guard<std::mutex> lock(mutex_);
  buf = slots_[slot].load(std::memory_order_relaxed);
  if (buf == nullptr) {
    buffers_[slot] = std::make_unique<RankBuffer>(capacity_);
    buf = buffers_[slot].get();
    slots_[slot].store(buf, std::memory_order_release);
  }
  return buf;
}

void Tracer::record(std::int32_t rank, EventKind kind, Category cat,
                    const char* name, double timeline_ts, std::int64_t a,
                    std::int64_t b) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.ts = timeline_ts;
  ev.a = a;
  ev.b = b;
  ev.name = name;
  ev.kind = kind;
  ev.cat = cat;
  ev.rank = rank;
  buffer_for(rank)->push(ev);
}

void Tracer::record_local(std::int32_t rank, EventKind kind, Category cat,
                          const char* name, double local_ts, std::int64_t a,
                          std::int64_t b) {
  if (!enabled()) return;
  record(rank, kind, cat, name, to_timeline(local_ts), a, b);
}

void Tracer::instant_now(std::int32_t rank, Category cat, const char* name,
                         std::int64_t a, std::int64_t b) {
  if (!enabled()) return;
  record(rank, EventKind::instant, cat, name, timeline(), a, b);
}

std::size_t Tracer::event_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kMaxTracks; ++i) {
    const RankBuffer* buf = slots_[i].load(std::memory_order_acquire);
    if (buf != nullptr) total += buf->events.size();
  }
  return total;
}

std::size_t Tracer::dropped_count() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < kMaxTracks; ++i) {
    const RankBuffer* buf = slots_[i].load(std::memory_order_acquire);
    if (buf != nullptr) {
      total += static_cast<std::size_t>(
          buf->dropped.load(std::memory_order_relaxed));
    }
  }
  return total;
}

void Tracer::write_chrome_trace(std::ostream& out) const {
  out << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"tool\": "
         "\"sparts\", \"dropped_events\": "
      << dropped_count() << "},\n\"traceEvents\": [\n";

  bool first = true;
  auto emit = [&](std::int32_t tid, const char* ph, const TraceEvent& ev) {
    if (!first) out << ",\n";
    first = false;
    const auto [la, lb] = arg_labels(ev.cat);
    out << "{\"name\": \"";
    write_escaped(out, ev.name != nullptr ? ev.name : "?");
    out << "\", \"cat\": \"" << to_string(ev.cat) << "\", \"ph\": \"" << ph
        << "\", \"ts\": " << ev.ts * 1e6 << ", \"pid\": 0, \"tid\": " << tid
        << ", \"args\": {\"" << la << "\": " << ev.a << ", \"" << lb
        << "\": " << ev.b << "}";
    if (ph[0] == 'i') out << ", \"s\": \"t\"";
    out << "}";
  };
  auto emit_meta = [&](std::int32_t tid, const std::string& label,
                       std::int32_t sort) {
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": "
        << tid << ", \"args\": {\"name\": \"";
    write_escaped(out, label);
    out << "\"}},\n"
        << "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 0, "
           "\"tid\": "
        << tid << ", \"args\": {\"sort_index\": " << sort << "}}";
  };

  for (std::size_t slot = 0; slot < kMaxTracks; ++slot) {
    const RankBuffer* buf = slots_[slot].load(std::memory_order_acquire);
    if (buf == nullptr || buf->events.empty()) continue;
    // tid 0 is the host/phase track; rank r maps to tid r + 1.
    const std::int32_t tid = static_cast<std::int32_t>(slot);
    emit_meta(tid,
              slot == 0 ? "host/phases" : "rank " + std::to_string(slot - 1),
              tid);

    const std::vector<TraceEvent> events = buf->ordered();
    // Balanced emission: drop span_ends whose begin was overwritten by
    // the ring, close unclosed begins at the track's last timestamp.
    std::vector<const TraceEvent*> open;
    double last_ts = 0.0;
    for (const TraceEvent& ev : events) {
      last_ts = std::max(last_ts, ev.ts);
      switch (ev.kind) {
        case EventKind::span_begin:
          open.push_back(&ev);
          emit(tid, "B", ev);
          break;
        case EventKind::span_end:
          if (open.empty()) break;  // begin lost to the ring
          open.pop_back();
          emit(tid, "E", ev);
          break;
        case EventKind::instant:
          emit(tid, "i", ev);
          break;
        case EventKind::counter:
          emit(tid, "C", ev);
          break;
      }
    }
    while (!open.empty()) {
      TraceEvent closing = *open.back();
      open.pop_back();
      closing.ts = last_ts;
      emit(tid, "E", closing);
    }
  }

  out << "\n]\n}\n";
}

bool Tracer::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

}  // namespace sparts::obs
