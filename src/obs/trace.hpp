// Low-overhead per-rank event tracing for both execution backends.
//
// The tracer records spans (begin/end pairs) and instant events into
// per-rank ring buffers.  Timestamps come from the backend's own clock —
// virtual cost-model seconds on simpar::Machine, wall-clock seconds on
// exec::ThreadBackend — mapped onto one monotone *timeline* so that the
// sequential phases of a solve (ordering, symbolic, factorization,
// redistribution, forward, backward) lay out end to end even though each
// phase runs on a fresh backend whose local clock restarts at zero:
//
//   timeline ts = phase base + Process::now()
//
// Backends bracket every run() with begin_run()/end_run(duration), which
// freezes the base and then advances the timeline cursor by the run's
// parallel time; host-side phases advance the cursor with wall durations
// (see obs/phase.hpp).  The result is one coherent Gantt chart per solve,
// exportable as Chrome/Perfetto trace_event JSON (write_chrome_trace).
//
// Cost discipline: when tracing is disabled (the default) every
// instrumentation site reduces to one relaxed atomic load and a branch —
// no clock reads, no allocation, no locks.  Hot paths must check
// Tracer::enabled() before touching a clock.  Event names must be string
// literals (the event record stores the pointer, not a copy); dynamic
// identifiers (supernode, pivot block, peer rank) travel in the two
// integer payload slots instead.
//
// Threading: each rank's events are recorded from the thread executing
// that rank (both backends guarantee a single executing thread per rank),
// so ring-buffer writes are single-writer and lock-free.  Buffer *slots*
// are created on first use under a mutex.  Export is meant to run after
// the traced runs complete.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace sparts::obs {

/// Track id for host-side events (phases, findings without a rank).
inline constexpr std::int32_t kHostTrack = -1;

enum class EventKind : std::uint8_t {
  span_begin,
  span_end,
  instant,
  counter,
};

/// Coarse grouping used by the exporter to label tracks and argument
/// fields; also lets tools filter without string-matching names.
enum class Category : std::uint8_t {
  comm,        ///< point-to-point send/recv inside a backend
  collective,  ///< broadcast / reduce / allgather / ... (exec/collectives)
  compute,     ///< algorithm-level work: supernodes, pivot blocks, panels
  phase,       ///< solver pipeline phases (obs/phase.hpp)
  kernel,      ///< dense kernel dispatch
  check,       ///< checked-backend findings surfaced as instants
  fault,       ///< fault injection + reliability envelope recovery events
  task,        ///< task-DAG lifetimes: ready / steal / run segments
  other,
};

const char* to_string(Category cat);

/// One recorded event.  `name` must point at a string literal.
struct TraceEvent {
  double ts = 0.0;       ///< timeline seconds
  std::int64_t a = 0;    ///< payload (bytes, flops, supernode id, ...)
  std::int64_t b = 0;    ///< payload (peer rank, tag, block id, ...)
  const char* name = nullptr;
  EventKind kind = EventKind::instant;
  Category cat = Category::other;
  std::int32_t rank = kHostTrack;
};

class Tracer {
 public:
  static Tracer& instance();

  /// True when some thread enabled tracing.  One relaxed load; the only
  /// cost instrumentation pays when tracing is off.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Start recording.  `events_per_rank` bounds each rank's ring buffer
  /// (oldest events are overwritten when full); 0 means the default
  /// (SPARTS_TRACE_BUF environment variable, else 1 << 16).
  void enable(std::size_t events_per_rank = 0);

  /// Stop recording.  Buffered events stay available for export.
  void disable();

  /// Drop all recorded events and reset the timeline cursor to zero.
  void clear();

  // -- timeline ------------------------------------------------------------

  /// Current end of the timeline (seconds).
  double timeline() const;

  /// Move the timeline cursor forward (host phases; negative deltas are
  /// clamped to zero).
  void advance_timeline(double seconds);

  /// A backend is starting run(): freeze the current cursor as the base
  /// that to_timeline() adds to backend-local clocks.
  void begin_run();

  /// The run finished after `duration` backend seconds: advance the
  /// cursor past it.
  void end_run(double duration);

  /// Map a backend-local clock reading onto the timeline.
  double to_timeline(double local_ts) const;

  // -- recording -----------------------------------------------------------

  /// Record an event with a backend-local timestamp (converted via
  /// to_timeline).  No-op when disabled.
  void record_local(std::int32_t rank, EventKind kind, Category cat,
                    const char* name, double local_ts, std::int64_t a = 0,
                    std::int64_t b = 0);

  /// Record an event already expressed in timeline seconds.
  void record(std::int32_t rank, EventKind kind, Category cat,
              const char* name, double timeline_ts, std::int64_t a = 0,
              std::int64_t b = 0);

  /// Record an instant at the current end of the timeline (host-side
  /// events with no better clock).
  void instant_now(std::int32_t rank, Category cat, const char* name,
                   std::int64_t a = 0, std::int64_t b = 0);

  // -- export --------------------------------------------------------------

  /// Total events currently buffered (all ranks).
  std::size_t event_count() const;

  /// Events dropped because a ring buffer wrapped (all ranks).
  std::size_t dropped_count() const;

  /// Write everything as Chrome trace_event JSON (load in Perfetto or
  /// chrome://tracing).  Spans are emitted as balanced B/E pairs; spans
  /// whose begin was overwritten by the ring are dropped, spans whose end
  /// is missing are closed at the track's last timestamp.
  void write_chrome_trace(std::ostream& out) const;

  /// write_chrome_trace to a file; returns false (and records nothing) if
  /// the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct RankBuffer;

  Tracer();
  ~Tracer();
  RankBuffer* buffer_for(std::int32_t rank);

  static std::atomic<bool> enabled_;

  mutable std::mutex mutex_;  ///< guards slot creation + config
  std::size_t capacity_ = 0;
  /// Slot [0] is the host track; slot [r + 1] is rank r.  Slots are
  /// allocated on first record and owned here; the atomic pointers let
  /// rank threads find their buffer without taking mutex_.
  std::vector<std::unique_ptr<RankBuffer>> buffers_;
  std::vector<std::atomic<RankBuffer*>> slots_;
  std::atomic<double> timeline_{0.0};
  std::atomic<double> run_base_{0.0};
};

}  // namespace sparts::obs
