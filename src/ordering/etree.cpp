#include "ordering/etree.hpp"

#include <algorithm>

#include "common/checks.hpp"
#include "common/error.hpp"

namespace sparts::ordering {

EliminationTree elimination_tree(const sparse::SymmetricCsc& a) {
  const index_t n = a.n();
  EliminationTree t;
  t.parent.assign(static_cast<std::size_t>(n), -1);
  // ancestor[] implements path compression over partially built trees.
  std::vector<index_t> ancestor(static_cast<std::size_t>(n), -1);
  // Liu's algorithm must visit rows k in ascending order, and for each k
  // every i < k with A(k, i) != 0.  Our storage is lower CSC, so first
  // build the row-wise adjacency of the strict lower triangle.
  std::vector<nnz_t> rowptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t i = 0; i < n; ++i) {
    auto rows = a.col_rows(i);
    for (std::size_t p = 1; p < rows.size(); ++p) {
      ++rowptr[static_cast<std::size_t>(rows[p]) + 1];
    }
  }
  for (index_t k = 0; k < n; ++k) {
    rowptr[static_cast<std::size_t>(k) + 1] += rowptr[static_cast<std::size_t>(k)];
  }
  std::vector<index_t> colind(static_cast<std::size_t>(rowptr.back()));
  {
    std::vector<nnz_t> next(rowptr.begin(), rowptr.end() - 1);
    for (index_t i = 0; i < n; ++i) {
      auto rows = a.col_rows(i);
      for (std::size_t p = 1; p < rows.size(); ++p) {
        colind[static_cast<std::size_t>(
            next[static_cast<std::size_t>(rows[p])]++)] = i;
      }
    }
  }

  for (index_t k = 0; k < n; ++k) {
    for (nnz_t p = rowptr[static_cast<std::size_t>(k)];
         p < rowptr[static_cast<std::size_t>(k) + 1]; ++p) {
      // Walk from i up the forest built so far, compressing paths to k,
      // and attach the root under k.
      index_t r = colind[static_cast<std::size_t>(p)];  // i < k
      while (r != -1 && r != k) {
        const index_t next_r = ancestor[static_cast<std::size_t>(r)];
        ancestor[static_cast<std::size_t>(r)] = k;
        if (next_r == -1) {
          t.parent[static_cast<std::size_t>(r)] = k;
          break;
        }
        r = next_r;
      }
    }
  }
  return t;
}

std::vector<std::vector<index_t>> tree_children(const EliminationTree& t) {
  std::vector<std::vector<index_t>> children(
      static_cast<std::size_t>(t.n()));
  for (index_t v = 0; v < t.n(); ++v) {
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      SPARTS_CHECK(p >= 0 && p < t.n(), "bad parent pointer");
      children[static_cast<std::size_t>(p)].push_back(v);
    }
  }
  return children;
}

std::vector<index_t> postorder(const EliminationTree& t) {
  const index_t n = t.n();
  auto children = tree_children(t);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<index_t, std::size_t>> stack;  // (vertex, child idx)
  for (index_t r = 0; r < n; ++r) {
    if (t.parent[static_cast<std::size_t>(r)] != -1) continue;
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      auto& [v, ci] = stack.back();
      if (ci < children[static_cast<std::size_t>(v)].size()) {
        const index_t c = children[static_cast<std::size_t>(v)][ci++];
        stack.emplace_back(c, 0);
      } else {
        order.push_back(v);
        stack.pop_back();
      }
    }
  }
  SPARTS_CHECK(static_cast<index_t>(order.size()) == n,
               "tree has a cycle or dangling parent");
  return order;
}

EliminationTree relabel_tree(const EliminationTree& t,
                             std::span<const index_t> order) {
  const index_t n = t.n();
  SPARTS_CHECK(static_cast<index_t>(order.size()) == n);
  SPARTS_VALIDATE_EXPENSIVE(validate_postorder(t, order));
  std::vector<index_t> new_of_old(static_cast<std::size_t>(n));
  for (index_t k = 0; k < n; ++k) {
    new_of_old[static_cast<std::size_t>(order[static_cast<std::size_t>(k)])] =
        k;
  }
  EliminationTree r;
  r.parent.assign(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    const index_t old = order[static_cast<std::size_t>(k)];
    const index_t op = t.parent[static_cast<std::size_t>(old)];
    r.parent[static_cast<std::size_t>(k)] =
        op == -1 ? -1 : new_of_old[static_cast<std::size_t>(op)];
  }
  return r;
}

std::vector<index_t> subtree_sizes(const EliminationTree& t) {
  const index_t n = t.n();
  std::vector<index_t> size(static_cast<std::size_t>(n), 1);
  // Process in postorder so children are final before the parent.
  for (index_t v : postorder(t)) {
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    if (p != -1) {
      size[static_cast<std::size_t>(p)] += size[static_cast<std::size_t>(v)];
    }
  }
  return size;
}

std::vector<index_t> tree_levels(const EliminationTree& t) {
  const index_t n = t.n();
  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  auto order = postorder(t);
  // Roots first: walk in reverse postorder (parents before children).
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const index_t v = *it;
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    level[static_cast<std::size_t>(v)] =
        p == -1 ? 0 : level[static_cast<std::size_t>(p)] + 1;
  }
  return level;
}

index_t tree_height(const EliminationTree& t) {
  if (t.n() == 0) return 0;
  auto levels = tree_levels(t);
  return 1 + *std::max_element(levels.begin(), levels.end());
}

bool is_postorder(const EliminationTree& t, std::span<const index_t> order) {
  const index_t n = t.n();
  if (static_cast<index_t>(order.size()) != n) return false;
  std::vector<index_t> pos(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    const index_t v = order[static_cast<std::size_t>(k)];
    if (v < 0 || v >= n || pos[static_cast<std::size_t>(v)] != -1) {
      return false;
    }
    pos[static_cast<std::size_t>(v)] = k;
  }
  // Every vertex must come after all of its children; subtree contiguity
  // follows for trees when combined with the child-before-parent property
  // checked transitively.  We check the stronger property directly: the
  // subtree of v occupies positions [pos(v)-size(v)+1, pos(v)].
  auto size = subtree_sizes(t);
  for (index_t v = 0; v < n; ++v) {
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    if (p != -1 && pos[static_cast<std::size_t>(v)] >
                       pos[static_cast<std::size_t>(p)]) {
      return false;
    }
  }
  std::vector<index_t> lo(static_cast<std::size_t>(n));
  for (index_t v = 0; v < n; ++v) {
    lo[static_cast<std::size_t>(v)] =
        pos[static_cast<std::size_t>(v)] - size[static_cast<std::size_t>(v)] + 1;
  }
  for (index_t v = 0; v < n; ++v) {
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    if (p == -1) continue;
    if (lo[static_cast<std::size_t>(v)] < lo[static_cast<std::size_t>(p)]) {
      return false;
    }
  }
  return true;
}

void validate_etree(const EliminationTree& t) {
  const index_t n = t.n();
  for (index_t v = 0; v < n; ++v) {
    const index_t p = t.parent[static_cast<std::size_t>(v)];
    SPARTS_CHECK(p == -1 || (p >= 0 && p < n),
                 "[etree-bounds] parent of vertex " << v << " is " << p
                     << ", outside -1 and [0, " << n << ")");
  }
  // Acyclicity: follow parent pointers from every vertex; stamp the walk
  // so each vertex is visited once over the whole pass (O(n) total).
  std::vector<index_t> visited_in(static_cast<std::size_t>(n), -1);
  for (index_t v = 0; v < n; ++v) {
    index_t u = v;
    while (u != -1 && visited_in[static_cast<std::size_t>(u)] == -1) {
      visited_in[static_cast<std::size_t>(u)] = v;
      u = t.parent[static_cast<std::size_t>(u)];
    }
    SPARTS_CHECK(u == -1 || visited_in[static_cast<std::size_t>(u)] != v,
                 "[etree-acyclicity] vertex " << u
                     << " is on a parent-pointer cycle; an elimination "
                        "tree must be acyclic");
  }
}

void validate_postorder(const EliminationTree& t,
                        std::span<const index_t> order) {
  validate_etree(t);
  SPARTS_CHECK(is_postorder(t, order),
               "[postorder-consistency] order of length "
                   << order.size() << " is not a postorder of the " << t.n()
                   << "-vertex elimination tree (children must precede "
                      "parents, subtrees must be contiguous)");
}

}  // namespace sparts::ordering
