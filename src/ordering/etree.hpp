// Elimination tree machinery (Liu, "The role of elimination trees in sparse
// factorization").
//
// The elimination tree drives everything downstream: supernode detection,
// the multifrontal traversal, subtree-to-subcube mapping, and both
// triangular solvers.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"

namespace sparts::ordering {

/// Elimination tree: parent[v] is v's parent, or -1 for roots.
struct EliminationTree {
  std::vector<index_t> parent;

  index_t n() const { return static_cast<index_t>(parent.size()); }
};

/// Compute the elimination tree of the (lower-triangular) pattern of A
/// using Liu's algorithm with path compression.  O(nnz * alpha).
EliminationTree elimination_tree(const sparse::SymmetricCsc& a);

/// Children lists of an elimination tree (children of v sorted ascending).
std::vector<std::vector<index_t>> tree_children(const EliminationTree& t);

/// A postorder permutation of the tree (children before parents;
/// result[k] = vertex visited k-th).  Deterministic: children visited in
/// ascending order.
std::vector<index_t> postorder(const EliminationTree& t);

/// Relabel the tree by a postorder: new tree where vertex `k` is
/// `order[k]` of the old tree.  With a true postorder the result has
/// parent[k] > k for all non-roots.
EliminationTree relabel_tree(const EliminationTree& t,
                             std::span<const index_t> order);

/// Number of vertices in the subtree rooted at each vertex (inclusive).
std::vector<index_t> subtree_sizes(const EliminationTree& t);

/// Depth of each vertex below its root (roots have level 0).
std::vector<index_t> tree_levels(const EliminationTree& t);

/// Height of the tree: 1 + max level.  Zero for an empty tree.
index_t tree_height(const EliminationTree& t);

/// True if `order` is a valid postorder of `t` (every vertex appears after
/// all vertices of its subtree).
bool is_postorder(const EliminationTree& t, std::span<const index_t> order);

/// Structural validator (SPARTS_CHECKS system): parent pointers in range
/// or -1 and acyclic.  Throws sparts::Error tagged [etree-bounds] /
/// [etree-acyclicity] on violation.  O(n).
void validate_etree(const EliminationTree& t);

/// Structural validator: `order` must be a postorder of `t`.  Throws
/// sparts::Error tagged [postorder-consistency] on violation.
void validate_postorder(const EliminationTree& t,
                        std::span<const index_t> order);

}  // namespace sparts::ordering
