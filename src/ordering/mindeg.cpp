#include "ordering/mindeg.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace sparts::ordering {

namespace {

// Quotient-graph minimum degree.
//
// State per vertex v (while uneliminated):
//   adj[v]   — uneliminated neighbors (variables)
//   elts[v]  — adjacent elements (eliminated supervariables)
// State per element e: vars[e] — its uneliminated boundary variables.
//
// Eliminating v forms a new element whose boundary is
//   adj[v] ∪ (∪_{e ∈ elts[v]} vars[e]) \ {v},
// and absorbs the elements of elts[v].
class QuotientGraph {
 public:
  explicit QuotientGraph(const sparse::Graph& g)
      : n_(g.n()),
        adj_(static_cast<std::size_t>(n_)),
        elts_(static_cast<std::size_t>(n_)),
        vars_(static_cast<std::size_t>(n_)),
        eliminated_(static_cast<std::size_t>(n_), false),
        degree_(static_cast<std::size_t>(n_), 0) {
    for (index_t v = 0; v < n_; ++v) {
      auto nbrs = g.neighbors(v);
      adj_[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
      degree_[static_cast<std::size_t>(v)] =
          static_cast<index_t>(nbrs.size());
      heap_.insert({degree_[static_cast<std::size_t>(v)], v});
    }
  }

  /// Vertex of minimum current degree (ties by id).
  index_t pop_min() {
    SPARTS_CHECK(!heap_.empty());
    const index_t v = heap_.begin()->second;
    heap_.erase(heap_.begin());
    return v;
  }

  bool empty() const { return heap_.empty(); }

  /// Eliminate v; updates degrees of affected variables.
  void eliminate(index_t v) {
    eliminated_[static_cast<std::size_t>(v)] = true;

    // Boundary of the new element (stored under v's id).
    std::vector<index_t> boundary;
    for (index_t u : adj_[static_cast<std::size_t>(v)]) {
      if (!eliminated_[static_cast<std::size_t>(u)]) boundary.push_back(u);
    }
    for (index_t e : elts_[static_cast<std::size_t>(v)]) {
      for (index_t u : vars_[static_cast<std::size_t>(e)]) {
        if (u != v && !eliminated_[static_cast<std::size_t>(u)]) {
          boundary.push_back(u);
        }
      }
      vars_[static_cast<std::size_t>(e)].clear();  // absorbed
    }
    std::sort(boundary.begin(), boundary.end());
    boundary.erase(std::unique(boundary.begin(), boundary.end()),
                   boundary.end());
    vars_[static_cast<std::size_t>(v)] = boundary;

    // Update every boundary variable: remove v and absorbed elements from
    // its lists, add the new element, recompute exterior degree.
    for (index_t u : boundary) {
      auto& ua = adj_[static_cast<std::size_t>(u)];
      ua.erase(std::remove(ua.begin(), ua.end(), v), ua.end());
      auto& ue = elts_[static_cast<std::size_t>(u)];
      ue.erase(std::remove_if(ue.begin(), ue.end(),
                              [this](index_t e) {
                                return vars_[static_cast<std::size_t>(e)]
                                    .empty();
                              }),
               ue.end());
      ue.push_back(v);

      // Exterior degree: |adj(u) \ eliminated| + |∪ vars(elements)| - dups.
      std::vector<index_t> reach;
      for (index_t w : ua) {
        if (!eliminated_[static_cast<std::size_t>(w)]) reach.push_back(w);
      }
      for (index_t e : ue) {
        for (index_t w : vars_[static_cast<std::size_t>(e)]) {
          if (w != u) reach.push_back(w);
        }
      }
      std::sort(reach.begin(), reach.end());
      reach.erase(std::unique(reach.begin(), reach.end()), reach.end());
      const index_t newdeg = static_cast<index_t>(reach.size());

      heap_.erase({degree_[static_cast<std::size_t>(u)], u});
      degree_[static_cast<std::size_t>(u)] = newdeg;
      heap_.insert({newdeg, u});
    }
  }

 private:
  index_t n_;
  std::vector<std::vector<index_t>> adj_;
  std::vector<std::vector<index_t>> elts_;
  std::vector<std::vector<index_t>> vars_;
  std::vector<bool> eliminated_;
  std::vector<index_t> degree_;
  std::set<std::pair<index_t, index_t>> heap_;  // (degree, vertex)
};

}  // namespace

sparse::Permutation minimum_degree(const sparse::Graph& g) {
  QuotientGraph qg(g);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(g.n()));
  while (!qg.empty()) {
    const index_t v = qg.pop_min();
    order.push_back(v);
    qg.eliminate(v);
  }
  return sparse::Permutation(std::move(order));
}

sparse::Permutation minimum_degree(const sparse::SymmetricCsc& a) {
  return minimum_degree(sparse::Graph::from_symmetric(a));
}

}  // namespace sparts::ordering
