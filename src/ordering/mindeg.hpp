// Minimum-degree fill-reducing ordering via the quotient-graph (element
// absorption) model, in the style of the MMD/AMD family.  Serves two roles:
//   * baseline ordering in fill comparisons, and
//   * leaf-subgraph ordering inside nested dissection.
#pragma once

#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"

namespace sparts::ordering {

/// Minimum exterior-degree ordering using a quotient graph.  Deterministic
/// (ties broken by vertex id).
sparse::Permutation minimum_degree(const sparse::Graph& g);

/// Convenience overload over the matrix pattern.
sparse::Permutation minimum_degree(const sparse::SymmetricCsc& a);

}  // namespace sparts::ordering
