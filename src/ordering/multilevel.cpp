#include "ordering/multilevel.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "ordering/rcm.hpp"

namespace sparts::ordering {

namespace {

/// Weighted graph used internally by the multilevel hierarchy: vertex
/// weights count the fine vertices a coarse vertex represents; edge
/// weights count the fine edges a coarse edge aggregates.
struct WGraph {
  index_t n = 0;
  std::vector<nnz_t> xadj;
  std::vector<index_t> adjncy;
  std::vector<index_t> ewgt;
  std::vector<index_t> vwgt;

  std::span<const index_t> neighbors(index_t v) const {
    return {adjncy.data() + xadj[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(xadj[static_cast<std::size_t>(v) + 1] -
                                     xadj[static_cast<std::size_t>(v)])};
  }
  std::span<const index_t> weights(index_t v) const {
    return {ewgt.data() + xadj[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(xadj[static_cast<std::size_t>(v) + 1] -
                                     xadj[static_cast<std::size_t>(v)])};
  }
};

WGraph lift(const sparse::Graph& g) {
  WGraph w;
  w.n = g.n();
  w.xadj.assign(static_cast<std::size_t>(w.n) + 1, 0);
  for (index_t v = 0; v < w.n; ++v) {
    w.xadj[static_cast<std::size_t>(v) + 1] =
        w.xadj[static_cast<std::size_t>(v)] + g.degree(v);
  }
  w.adjncy.reserve(static_cast<std::size_t>(w.xadj.back()));
  for (index_t v = 0; v < w.n; ++v) {
    auto nb = g.neighbors(v);
    w.adjncy.insert(w.adjncy.end(), nb.begin(), nb.end());
  }
  w.ewgt.assign(w.adjncy.size(), 1);
  w.vwgt.assign(static_cast<std::size_t>(w.n), 1);
  return w;
}

/// One coarsening level: heavy-edge matching + contraction.
/// cmap[v] = coarse vertex of v.
WGraph coarsen(const WGraph& g, std::vector<index_t>& cmap) {
  const index_t n = g.n;
  cmap.assign(static_cast<std::size_t>(n), -1);

  // Visit vertices in ascending degree (low-degree first matches better).
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::sort(order.begin(), order.end(), [&g](index_t a, index_t b) {
    const nnz_t da = g.xadj[static_cast<std::size_t>(a) + 1] -
                     g.xadj[static_cast<std::size_t>(a)];
    const nnz_t db = g.xadj[static_cast<std::size_t>(b) + 1] -
                     g.xadj[static_cast<std::size_t>(b)];
    return da != db ? da < db : a < b;
  });

  index_t nc = 0;
  for (index_t v : order) {
    if (cmap[static_cast<std::size_t>(v)] != -1) continue;
    // Heaviest unmatched neighbor.
    index_t best = -1;
    index_t best_w = -1;
    auto nb = g.neighbors(v);
    auto wt = g.weights(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      const index_t u = nb[i];
      if (u == v || cmap[static_cast<std::size_t>(u)] != -1) continue;
      if (wt[i] > best_w) {
        best_w = wt[i];
        best = u;
      }
    }
    cmap[static_cast<std::size_t>(v)] = nc;
    if (best != -1) cmap[static_cast<std::size_t>(best)] = nc;
    ++nc;
  }

  // Contract.
  WGraph c;
  c.n = nc;
  c.vwgt.assign(static_cast<std::size_t>(nc), 0);
  for (index_t v = 0; v < n; ++v) {
    c.vwgt[static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)])] +=
        g.vwgt[static_cast<std::size_t>(v)];
  }
  c.xadj.assign(static_cast<std::size_t>(nc) + 1, 0);
  std::vector<index_t> mark(static_cast<std::size_t>(nc), -1);
  std::vector<index_t> slot(static_cast<std::size_t>(nc), 0);
  // Two passes: count distinct coarse neighbors, then fill with weights.
  for (int pass = 0; pass < 2; ++pass) {
    std::fill(mark.begin(), mark.end(), -1);
    // Group fine vertices by coarse id.
    std::vector<std::vector<index_t>> members(static_cast<std::size_t>(nc));
    for (index_t v = 0; v < n; ++v) {
      members[static_cast<std::size_t>(cmap[static_cast<std::size_t>(v)])]
          .push_back(v);
    }
    if (pass == 1) {
      for (index_t cv = 0; cv < nc; ++cv) {
        c.xadj[static_cast<std::size_t>(cv) + 1] +=
            c.xadj[static_cast<std::size_t>(cv)];
      }
      c.adjncy.assign(static_cast<std::size_t>(c.xadj.back()), 0);
      c.ewgt.assign(static_cast<std::size_t>(c.xadj.back()), 0);
      for (index_t cv = 0; cv < nc; ++cv) {
        slot[static_cast<std::size_t>(cv)] =
            static_cast<index_t>(c.xadj[static_cast<std::size_t>(cv)]);
      }
      std::fill(mark.begin(), mark.end(), -1);
    }
    std::vector<index_t> pos(static_cast<std::size_t>(nc), -1);
    for (index_t cv = 0; cv < nc; ++cv) {
      for (index_t v : members[static_cast<std::size_t>(cv)]) {
        auto nb = g.neighbors(v);
        auto wt = g.weights(v);
        for (std::size_t i = 0; i < nb.size(); ++i) {
          const index_t cu = cmap[static_cast<std::size_t>(nb[i])];
          if (cu == cv) continue;  // contracted or self edge
          if (mark[static_cast<std::size_t>(cu)] != cv) {
            mark[static_cast<std::size_t>(cu)] = cv;
            if (pass == 0) {
              ++c.xadj[static_cast<std::size_t>(cv) + 1];
            } else {
              pos[static_cast<std::size_t>(cu)] =
                  slot[static_cast<std::size_t>(cv)]++;
              c.adjncy[static_cast<std::size_t>(
                  pos[static_cast<std::size_t>(cu)])] = cu;
              c.ewgt[static_cast<std::size_t>(
                  pos[static_cast<std::size_t>(cu)])] = wt[i];
            }
          } else if (pass == 1) {
            c.ewgt[static_cast<std::size_t>(
                pos[static_cast<std::size_t>(cu)])] += wt[i];
          }
        }
      }
    }
  }
  return c;
}

// Labels: 0 = side A, 1 = side B, 2 = separator.
using Labels = std::vector<int>;

index_t side_weight(const WGraph& g, const Labels& labels, int side) {
  index_t w = 0;
  for (index_t v = 0; v < g.n; ++v) {
    if (labels[static_cast<std::size_t>(v)] == side) {
      w += g.vwgt[static_cast<std::size_t>(v)];
    }
  }
  return w;
}

/// Approximate pseudo-peripheral vertex by two BFS sweeps.
index_t far_vertex(const WGraph& g, index_t start) {
  index_t last = start;
  for (int sweep = 0; sweep < 2; ++sweep) {
    std::vector<int> seen(static_cast<std::size_t>(g.n), 0);
    std::vector<index_t> queue{last};
    seen[static_cast<std::size_t>(last)] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      last = queue[head];
      for (index_t u : g.neighbors(queue[head])) {
        if (!seen[static_cast<std::size_t>(u)]) {
          seen[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
  }
  return last;
}

/// BFS bisection + boundary separator on a weighted graph.
Labels base_separator(const WGraph& g) {
  Labels labels(static_cast<std::size_t>(g.n), 1);
  const index_t total = side_weight(g, labels, 1);

  // BFS from a pseudo-peripheral vertex until half the weight is reached.
  const index_t start = far_vertex(g, 0);
  std::vector<int> seen(static_cast<std::size_t>(g.n), 0);
  std::vector<index_t> queue{start};
  seen[static_cast<std::size_t>(start)] = 1;
  index_t acc = 0;
  std::size_t head = 0;
  while (head < queue.size() && acc * 2 < total) {
    const index_t v = queue[head++];
    labels[static_cast<std::size_t>(v)] = 0;
    acc += g.vwgt[static_cast<std::size_t>(v)];
    for (index_t u : g.neighbors(v)) {
      if (!seen[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    }
  }
  // Boundary of A facing B becomes the separator.
  for (index_t v = 0; v < g.n; ++v) {
    if (labels[static_cast<std::size_t>(v)] != 0) continue;
    for (index_t u : g.neighbors(v)) {
      if (labels[static_cast<std::size_t>(u)] == 1) {
        labels[static_cast<std::size_t>(v)] = 2;
        break;
      }
    }
  }
  return labels;
}

/// Greedy separator refinement: move a separator vertex into a side when
/// the swap shrinks the separator weight and keeps the sides balanced.
void refine(const WGraph& g, Labels& labels, int sweeps) {
  for (int sweep = 0; sweep < sweeps; ++sweep) {
    bool changed = false;
    index_t wa = side_weight(g, labels, 0);
    index_t wb = side_weight(g, labels, 1);
    for (index_t v = 0; v < g.n; ++v) {
      if (labels[static_cast<std::size_t>(v)] != 2) continue;
      // Weight of neighbors that would be dragged into the separator if v
      // joined side A (= its B-side neighbors) and vice versa.
      index_t drag_a = 0, drag_b = 0;
      for (index_t u : g.neighbors(v)) {
        if (labels[static_cast<std::size_t>(u)] == 1) {
          drag_a += g.vwgt[static_cast<std::size_t>(u)];
        } else if (labels[static_cast<std::size_t>(u)] == 0) {
          drag_b += g.vwgt[static_cast<std::size_t>(u)];
        }
      }
      const index_t vw = g.vwgt[static_cast<std::size_t>(v)];
      // Prefer the move with positive gain that improves balance.
      const bool a_ok = drag_a < vw || (drag_a == vw && wa < wb);
      const bool b_ok = drag_b < vw || (drag_b == vw && wb < wa);
      int target = -1;
      if (a_ok && (!b_ok || drag_a < drag_b ||
                   (drag_a == drag_b && wa <= wb))) {
        target = 0;
      } else if (b_ok) {
        target = 1;
      }
      if (target == -1) continue;
      labels[static_cast<std::size_t>(v)] = target;
      (target == 0 ? wa : wb) += vw;
      const int other = 1 - target;
      for (index_t u : g.neighbors(v)) {
        if (labels[static_cast<std::size_t>(u)] == other) {
          labels[static_cast<std::size_t>(u)] = 2;
          (other == 0 ? wa : wb) -= g.vwgt[static_cast<std::size_t>(u)];
        }
      }
      changed = true;
    }
    if (!changed) break;
  }
}

}  // namespace

Separator multilevel_vertex_separator(const sparse::Graph& g,
                                      const MultilevelOptions& opts) {
  SPARTS_CHECK(g.n() >= 2);
  if (g.n() <= opts.coarsest_size) {
    return find_vertex_separator(g);
  }

  // Coarsen.
  std::vector<WGraph> levels;
  std::vector<std::vector<index_t>> cmaps;
  levels.push_back(lift(g));
  while (levels.back().n > opts.coarsest_size) {
    std::vector<index_t> cmap;
    WGraph coarse = coarsen(levels.back(), cmap);
    if (static_cast<double>(coarse.n) >
        opts.min_shrink * static_cast<double>(levels.back().n)) {
      break;  // matching stalled (e.g. star graphs)
    }
    cmaps.push_back(std::move(cmap));
    levels.push_back(std::move(coarse));
  }

  // Base separator + uncoarsen with refinement.
  Labels labels = base_separator(levels.back());
  refine(levels.back(), labels, opts.refine_sweeps);
  for (std::size_t l = cmaps.size(); l-- > 0;) {
    const WGraph& fine = levels[l];
    Labels fine_labels(static_cast<std::size_t>(fine.n));
    for (index_t v = 0; v < fine.n; ++v) {
      fine_labels[static_cast<std::size_t>(v)] =
          labels[static_cast<std::size_t>(cmaps[l][static_cast<std::size_t>(v)])];
    }
    labels = std::move(fine_labels);
    refine(fine, labels, opts.refine_sweeps);
  }

  Separator s;
  for (index_t v = 0; v < g.n(); ++v) {
    switch (labels[static_cast<std::size_t>(v)]) {
      case 0: s.left.push_back(v); break;
      case 1: s.right.push_back(v); break;
      default: s.sep.push_back(v); break;
    }
  }
  // Degenerate result: fall back to the single-level heuristic.
  if (s.left.empty() || s.right.empty() || s.sep.empty()) {
    return find_vertex_separator(g);
  }
  return s;
}

}  // namespace sparts::ordering
