// Multilevel vertex-separator bisection — the Karypis-Kumar scheme the
// paper cites ([7]) as its companion ordering work, in sequential form:
//
//   1. COARSEN: contract a heavy-edge matching repeatedly until the graph
//      is small (vertex/edge weights accumulate);
//   2. BASE: find a vertex separator of the coarsest graph with the BFS
//      bisection heuristic;
//   3. UNCOARSEN: project the (side, separator) labels back one level at a
//      time, re-extracting and greedily refining the separator at each.
//
// Used by nested_dissection() for large subgraphs; small ones fall through
// to the single-level BFS separator.
#pragma once

#include "ordering/nested_dissection.hpp"
#include "sparse/formats.hpp"

namespace sparts::ordering {

struct MultilevelOptions {
  /// Stop coarsening at this many vertices.
  index_t coarsest_size = 240;
  /// Stop coarsening when a level shrinks by less than this factor.
  double min_shrink = 0.85;
  /// Greedy separator-refinement sweeps per level.
  int refine_sweeps = 4;
};

/// Multilevel vertex separator of g (which must have >= 2 vertices).
/// Falls back to the single-level heuristic for tiny graphs.
Separator multilevel_vertex_separator(const sparse::Graph& g,
                                      const MultilevelOptions& opts = {});

}  // namespace sparts::ordering
