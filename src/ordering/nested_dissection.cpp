#include "ordering/nested_dissection.hpp"

#include <algorithm>
#include <functional>
#include <numeric>

#include "common/error.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/multilevel.hpp"
#include "ordering/rcm.hpp"

namespace sparts::ordering {

namespace {

// ---------------------------------------------------------------------------
// Geometric ND on boxes.  A box is [x0, x0+nx) x [y0, y0+ny) x [z0, z0+nz);
// 2-D grids use nz = 1.  Recursion emits vertex ids into `order` with the
// separator of each box numbered after its two halves.
// ---------------------------------------------------------------------------

struct Box {
  index_t x0, y0, z0;
  index_t nx, ny, nz;
};

void geometric_nd(const Box& box, index_t kx, index_t ky,
                  std::vector<index_t>& order) {
  auto id = [kx, ky](index_t x, index_t y, index_t z) {
    return (z * ky + y) * kx + x;
  };
  const index_t total = box.nx * box.ny * box.nz;
  if (total <= 0) return;
  // Base case: small boxes are emitted in natural order (their internal
  // order does not affect fill asymptotics; they become leaf subtrees).
  if (total <= 2 || (box.nx <= 2 && box.ny <= 2 && box.nz <= 2)) {
    for (index_t z = box.z0; z < box.z0 + box.nz; ++z) {
      for (index_t y = box.y0; y < box.y0 + box.ny; ++y) {
        for (index_t x = box.x0; x < box.x0 + box.nx; ++x) {
          order.push_back(id(x, y, z));
        }
      }
    }
    return;
  }
  // Split the longest dimension with a one-cell-thick separator plane.
  if (box.nx >= box.ny && box.nx >= box.nz) {
    const index_t cut = box.nx / 2;  // separator plane x = x0 + cut
    geometric_nd({box.x0, box.y0, box.z0, cut, box.ny, box.nz}, kx, ky, order);
    geometric_nd({box.x0 + cut + 1, box.y0, box.z0, box.nx - cut - 1, box.ny,
                  box.nz},
                 kx, ky, order);
    for (index_t z = box.z0; z < box.z0 + box.nz; ++z) {
      for (index_t y = box.y0; y < box.y0 + box.ny; ++y) {
        order.push_back(id(box.x0 + cut, y, z));
      }
    }
  } else if (box.ny >= box.nz) {
    const index_t cut = box.ny / 2;
    geometric_nd({box.x0, box.y0, box.z0, box.nx, cut, box.nz}, kx, ky, order);
    geometric_nd({box.x0, box.y0 + cut + 1, box.z0, box.nx, box.ny - cut - 1,
                  box.nz},
                 kx, ky, order);
    for (index_t z = box.z0; z < box.z0 + box.nz; ++z) {
      for (index_t x = box.x0; x < box.x0 + box.nx; ++x) {
        order.push_back(id(x, box.y0 + cut, z));
      }
    }
  } else {
    const index_t cut = box.nz / 2;
    geometric_nd({box.x0, box.y0, box.z0, box.nx, box.ny, cut}, kx, ky, order);
    geometric_nd({box.x0, box.y0, box.z0 + cut + 1, box.nx, box.ny,
                  box.nz - cut - 1},
                 kx, ky, order);
    for (index_t y = box.y0; y < box.y0 + box.ny; ++y) {
      for (index_t x = box.x0; x < box.x0 + box.nx; ++x) {
        order.push_back(id(x, y, box.z0 + cut));
      }
    }
  }
}

}  // namespace

sparse::Permutation nested_dissection_grid2d(index_t kx, index_t ky) {
  SPARTS_CHECK(kx > 0 && ky > 0);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(kx * ky));
  geometric_nd({0, 0, 0, kx, ky, 1}, kx, ky, order);
  SPARTS_CHECK(static_cast<index_t>(order.size()) == kx * ky);
  return sparse::Permutation(std::move(order));
}

sparse::Permutation nested_dissection_grid3d(index_t kx, index_t ky,
                                             index_t kz) {
  SPARTS_CHECK(kx > 0 && ky > 0 && kz > 0);
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(kx * ky * kz));
  geometric_nd({0, 0, 0, kx, ky, kz}, kx, ky, order);
  SPARTS_CHECK(static_cast<index_t>(order.size()) == kx * ky * kz);
  return sparse::Permutation(std::move(order));
}

Separator find_vertex_separator(const sparse::Graph& g,
                                const NdOptions& opts) {
  const index_t n = g.n();
  SPARTS_CHECK(n > 0);

  // 1. BFS from a pseudo-peripheral vertex of the largest component;
  //    accumulate levels until ~half the vertices are covered.
  const index_t start = pseudo_peripheral_vertex(g, 0);
  std::vector<index_t> level(static_cast<std::size_t>(n), -1);
  std::vector<index_t> frontier{start};
  level[static_cast<std::size_t>(start)] = 0;
  std::vector<index_t> bfs_order{start};
  index_t depth = 0;
  while (!frontier.empty()) {
    std::vector<index_t> next;
    for (index_t v : frontier) {
      for (index_t u : g.neighbors(v)) {
        if (level[static_cast<std::size_t>(u)] == -1) {
          level[static_cast<std::size_t>(u)] = depth + 1;
          next.push_back(u);
          bfs_order.push_back(u);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  // Vertices in other components go to whichever side is smaller later.
  const index_t reached = static_cast<index_t>(bfs_order.size());

  // 2. Partition: first half of the BFS order (by vertex count) = side A.
  const index_t half = std::max<index_t>(
      1, static_cast<index_t>(static_cast<double>(reached) *
                              (0.5 - 0.0)));  // exact half; slack used below
  std::vector<int> side(static_cast<std::size_t>(n), 1);  // 1 = B
  for (index_t k = 0; k < half; ++k) {
    side[static_cast<std::size_t>(bfs_order[static_cast<std::size_t>(k)])] = 0;
  }
  for (index_t v = 0; v < n; ++v) {
    if (level[static_cast<std::size_t>(v)] == -1) {
      side[static_cast<std::size_t>(v)] = 1;  // unreached component -> B
    }
  }

  // 3. Vertex separator: vertices of A adjacent to B.  Then greedily shrink:
  //    a separator vertex with no neighbor in B can return to A.
  std::vector<bool> in_sep(static_cast<std::size_t>(n), false);
  for (index_t v = 0; v < n; ++v) {
    if (side[static_cast<std::size_t>(v)] != 0) continue;
    for (index_t u : g.neighbors(v)) {
      if (side[static_cast<std::size_t>(u)] == 1) {
        in_sep[static_cast<std::size_t>(v)] = true;
        break;
      }
    }
  }
  // Refinement sweep: move a separator vertex back to A if all its B-side
  // neighbors are themselves separator vertices (it no longer touches B).
  bool changed = true;
  int sweeps = 0;
  while (changed && sweeps < 4) {
    changed = false;
    ++sweeps;
    for (index_t v = 0; v < n; ++v) {
      if (!in_sep[static_cast<std::size_t>(v)]) continue;
      bool touches_b = false;
      for (index_t u : g.neighbors(v)) {
        if (side[static_cast<std::size_t>(u)] == 1 &&
            !in_sep[static_cast<std::size_t>(u)]) {
          touches_b = true;
          break;
        }
      }
      if (!touches_b) {
        in_sep[static_cast<std::size_t>(v)] = false;
        changed = true;
      }
    }
  }

  Separator s;
  for (index_t v = 0; v < n; ++v) {
    if (in_sep[static_cast<std::size_t>(v)]) {
      s.sep.push_back(v);
    } else if (side[static_cast<std::size_t>(v)] == 0) {
      s.left.push_back(v);
    } else {
      s.right.push_back(v);
    }
  }
  // Degenerate split (one side empty): force a split by vertex count so the
  // recursion always terminates.
  if (s.left.empty() || s.right.empty()) {
    s.left.clear();
    s.right.clear();
    s.sep.clear();
    std::vector<index_t> all(static_cast<std::size_t>(n));
    std::iota(all.begin(), all.end(), index_t{0});
    const std::size_t mid = all.size() / 2;
    s.left.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(mid));
    s.right.assign(all.begin() + static_cast<std::ptrdiff_t>(mid), all.end());
    // Separator = boundary of left touching right.
    std::vector<bool> is_left(static_cast<std::size_t>(n), false);
    for (index_t v : s.left) is_left[static_cast<std::size_t>(v)] = true;
    std::vector<index_t> new_left;
    for (index_t v : s.left) {
      bool boundary = false;
      for (index_t u : g.neighbors(v)) {
        if (!is_left[static_cast<std::size_t>(u)]) {
          boundary = true;
          break;
        }
      }
      if (boundary) {
        s.sep.push_back(v);
      } else {
        new_left.push_back(v);
      }
    }
    s.left = std::move(new_left);
  }
  (void)opts;
  return s;
}

namespace {

void general_nd(const sparse::Graph& g, std::span<const index_t> global_ids,
                const NdOptions& opts, std::vector<index_t>& order) {
  const index_t n = g.n();
  if (n == 0) return;
  if (n <= opts.leaf_size) {
    // Minimum degree on the leaf subgraph.
    const sparse::Permutation p = minimum_degree(g);
    for (index_t k = 0; k < n; ++k) {
      order.push_back(global_ids[static_cast<std::size_t>(p.old_of_new(k))]);
    }
    return;
  }
  Separator s = find_vertex_separator(g, opts);
  if (opts.multilevel && n > opts.multilevel_threshold) {
    // Multilevel shines on irregular graphs; the single-level BFS
    // heuristic is hard to beat on mesh-like ones.  Compute both and keep
    // the smaller balanced separator.
    Separator ml = multilevel_vertex_separator(g);
    auto balanced = [n](const Separator& sep) {
      const std::size_t small = std::min(sep.left.size(), sep.right.size());
      return !sep.sep.empty() &&
             small >= static_cast<std::size_t>(n) / 5;
    };
    if (balanced(ml) && (!balanced(s) || ml.sep.size() < s.sep.size())) {
      s = std::move(ml);
    }
  }
  if (s.sep.empty() || s.left.empty() || s.right.empty()) {
    // Could not split (e.g. clique): fall back to minimum degree.
    const sparse::Permutation p = minimum_degree(g);
    for (index_t k = 0; k < n; ++k) {
      order.push_back(global_ids[static_cast<std::size_t>(p.old_of_new(k))]);
    }
    return;
  }
  std::vector<index_t> scratch;
  {
    const sparse::Graph gl = g.induced(s.left, scratch);
    std::vector<index_t> ids;
    ids.reserve(s.left.size());
    for (index_t v : s.left) {
      ids.push_back(global_ids[static_cast<std::size_t>(v)]);
    }
    general_nd(gl, ids, opts, order);
  }
  {
    const sparse::Graph gr = g.induced(s.right, scratch);
    std::vector<index_t> ids;
    ids.reserve(s.right.size());
    for (index_t v : s.right) {
      ids.push_back(global_ids[static_cast<std::size_t>(v)]);
    }
    general_nd(gr, ids, opts, order);
  }
  for (index_t v : s.sep) {
    order.push_back(global_ids[static_cast<std::size_t>(v)]);
  }
}

}  // namespace

sparse::Permutation nested_dissection(const sparse::Graph& g,
                                      const NdOptions& opts) {
  std::vector<index_t> all(static_cast<std::size_t>(g.n()));
  std::iota(all.begin(), all.end(), index_t{0});
  std::vector<index_t> order;
  order.reserve(all.size());
  general_nd(g, all, opts, order);
  SPARTS_CHECK(order.size() == all.size());
  return sparse::Permutation(std::move(order));
}

sparse::Permutation nested_dissection(const sparse::SymmetricCsc& a,
                                      const NdOptions& opts) {
  return nested_dissection(sparse::Graph::from_symmetric(a), opts);
}

}  // namespace sparts::ordering
