// Nested-dissection fill-reducing orderings.
//
// The paper's analysis assumes a nested-dissection ordering whose separator
// sizes follow the planar / 3-D separator theorems (O(sqrt(N)) and
// O(N^{2/3})) and whose elimination tree is nearly balanced — exactly what
// these routines produce.
//
// Two flavors:
//   * Geometric ND for regular grids: exact recursive coordinate
//     bisection with cross-line separators.  Produces perfectly balanced
//     trees; the workhorse for the scalability experiments.
//   * General-graph ND: BFS-based vertex separators with boundary
//     minimization, minimum-degree on small leaves.  Handles the
//     unstructured workloads (jittered meshes, random SPD).
#pragma once

#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"

namespace sparts::ordering {

/// Options for general-graph nested dissection.
struct NdOptions {
  /// Subgraphs of at most this many vertices are ordered by minimum degree.
  index_t leaf_size = 64;
  /// Balance tolerance: each side of a bisection gets at least
  /// (0.5 - balance_slack) of the vertices before separator extraction.
  double balance_slack = 0.2;
  /// Use the multilevel separator engine (ordering/multilevel.hpp) for
  /// subgraphs larger than `multilevel_threshold`; smaller ones use the
  /// single-level BFS heuristic directly.
  bool multilevel = true;
  index_t multilevel_threshold = 400;
};

/// Geometric nested dissection of a kx x ky grid (vertex v = y*kx + x).
/// Separator-last ordering: vertices of the top-level separator are
/// numbered last.
sparse::Permutation nested_dissection_grid2d(index_t kx, index_t ky);

/// Geometric nested dissection of a kx x ky x kz grid
/// (v = (z*ky + y)*kx + x).
sparse::Permutation nested_dissection_grid3d(index_t kx, index_t ky,
                                             index_t kz);

/// General-graph nested dissection.
sparse::Permutation nested_dissection(const sparse::Graph& g,
                                      const NdOptions& opts = {});

/// Convenience overload over the matrix pattern.
sparse::Permutation nested_dissection(const sparse::SymmetricCsc& a,
                                      const NdOptions& opts = {});

/// A vertex separator of g: vertices whose removal disconnects the rest
/// into `left` and `right` with no edges between them.  Exposed for tests.
struct Separator {
  std::vector<index_t> left;
  std::vector<index_t> right;
  std::vector<index_t> sep;
};

/// Compute a vertex separator by BFS level bisection + boundary extraction
/// + one-sided shrink refinement.  `g` must be non-empty.
Separator find_vertex_separator(const sparse::Graph& g,
                                const NdOptions& opts = {});

}  // namespace sparts::ordering
