#include "ordering/rcm.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"

namespace sparts::ordering {

namespace {

/// BFS from `start`; returns (levels, last vertex of the deepest level with
/// minimal degree).  `levels` is -1 for unreached vertices.
std::pair<std::vector<index_t>, index_t> bfs_levels(const sparse::Graph& g,
                                                    index_t start) {
  std::vector<index_t> level(static_cast<std::size_t>(g.n()), -1);
  std::vector<index_t> frontier{start};
  level[static_cast<std::size_t>(start)] = 0;
  index_t depth = 0;
  std::vector<index_t> last_frontier = frontier;
  while (!frontier.empty()) {
    last_frontier = frontier;
    std::vector<index_t> next;
    for (index_t v : frontier) {
      for (index_t u : g.neighbors(v)) {
        if (level[static_cast<std::size_t>(u)] == -1) {
          level[static_cast<std::size_t>(u)] = depth + 1;
          next.push_back(u);
        }
      }
    }
    frontier = std::move(next);
    ++depth;
  }
  index_t best = last_frontier.front();
  for (index_t v : last_frontier) {
    if (g.degree(v) < g.degree(best)) best = v;
  }
  return {std::move(level), best};
}

}  // namespace

index_t pseudo_peripheral_vertex(const sparse::Graph& g, index_t start) {
  SPARTS_CHECK(start >= 0 && start < g.n());
  index_t v = start;
  index_t last_depth = -1;
  for (int iter = 0; iter < 8; ++iter) {  // converges in a few iterations
    auto [levels, far] = bfs_levels(g, v);
    const index_t depth =
        *std::max_element(levels.begin(), levels.end());
    if (depth <= last_depth) break;
    last_depth = depth;
    v = far;
  }
  return v;
}

sparse::Permutation rcm(const sparse::Graph& g) {
  const index_t n = g.n();
  std::vector<index_t> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<bool> visited(static_cast<std::size_t>(n), false);

  for (index_t seed = 0; seed < n; ++seed) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    const index_t start = pseudo_peripheral_vertex(g, seed);
    // Cuthill-McKee BFS with neighbors sorted by ascending degree.
    std::queue<index_t> q;
    q.push(start);
    visited[static_cast<std::size_t>(start)] = true;
    while (!q.empty()) {
      const index_t v = q.front();
      q.pop();
      order.push_back(v);
      std::vector<index_t> nbrs;
      for (index_t u : g.neighbors(v)) {
        if (!visited[static_cast<std::size_t>(u)]) {
          visited[static_cast<std::size_t>(u)] = true;
          nbrs.push_back(u);
        }
      }
      std::sort(nbrs.begin(), nbrs.end(), [&g](index_t a, index_t b) {
        const index_t da = g.degree(a), db = g.degree(b);
        return da != db ? da < db : a < b;
      });
      for (index_t u : nbrs) q.push(u);
    }
  }
  SPARTS_CHECK(static_cast<index_t>(order.size()) == n);
  std::reverse(order.begin(), order.end());
  return sparse::Permutation(std::move(order));
}

sparse::Permutation rcm(const sparse::SymmetricCsc& a) {
  return rcm(sparse::Graph::from_symmetric(a));
}

}  // namespace sparts::ordering
