// Reverse Cuthill-McKee ordering — the classic bandwidth-reducing baseline.
// Included as a fill-reduction baseline against nested dissection and
// minimum degree (the paper assumes ND; RCM demonstrates why).
#pragma once

#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"

namespace sparts::ordering {

/// Reverse Cuthill-McKee ordering of a symmetric pattern.  Handles
/// disconnected graphs (each component ordered from a pseudo-peripheral
/// vertex).
sparse::Permutation rcm(const sparse::Graph& g);

/// Convenience overload over the matrix pattern.
sparse::Permutation rcm(const sparse::SymmetricCsc& a);

/// A vertex approximately maximizing eccentricity within its component,
/// found by repeated BFS (George-Liu pseudo-peripheral heuristic).
index_t pseudo_peripheral_vertex(const sparse::Graph& g, index_t start);

}  // namespace sparts::ordering
