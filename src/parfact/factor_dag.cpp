#include "parfact/factor_dag.hpp"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "dense/kernels.hpp"
#include "ordering/etree.hpp"

namespace sparts::parfact {

namespace {

/// Per-worker front-position scratch (size n, all -1 between uses).  Tasks
/// are non-preemptive on their worker thread, so thread-local storage is
/// safe, and factor_supernode_panel restores the -1 invariant on return.
std::vector<index_t>& pos_scratch(index_t n) {
  thread_local std::vector<index_t> scratch;
  if (static_cast<index_t>(scratch.size()) < n) {
    scratch.assign(static_cast<std::size_t>(n), -1);
  }
  return scratch;
}

void atomic_max(std::atomic<nnz_t>& target, nnz_t value) {
  nnz_t cur = target.load(std::memory_order_relaxed);
  while (cur < value &&
         !target.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

exec::TaskGraph build_supernode_dag(const symbolic::SupernodePartition& part) {
  exec::TaskGraph g;
  const index_t nsup = part.num_supernodes();
  for (index_t s = 0; s < nsup; ++s) {
    const index_t t = part.width(s);
    const index_t ns = part.height(s);
    const index_t b = ns - t;
    exec::TaskNode node;
    node.label = "sup:" + std::to_string(s);
    node.kind = exec::TaskKind::generic;
    node.cost = static_cast<double>(
        dense::cholesky_panel_flops(ns, t) +
        dense::syrk_flops(b, b, t, /*lower_only=*/true));
    node.item = s;
    g.add_task(std::move(node));
  }
  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent != -1) g.add_edge(s, parent);
  }
  return g;
}

exec::TaskGraph build_factor_dag(const symbolic::SupernodePartition& part) {
  exec::TaskGraph g;
  const index_t nsup = part.num_supernodes();
  std::vector<exec::TaskId> factor_task(static_cast<std::size_t>(nsup));
  std::vector<exec::TaskId> update_task(static_cast<std::size_t>(nsup), -1);
  for (index_t s = 0; s < nsup; ++s) {
    const index_t t = part.width(s);
    const index_t ns = part.height(s);
    const index_t b = ns - t;
    exec::TaskNode fnode;
    fnode.label = "factor:" + std::to_string(s);
    fnode.kind = exec::TaskKind::panel_factor;
    fnode.cost = static_cast<double>(dense::cholesky_panel_flops(ns, t));
    fnode.item = s;
    factor_task[static_cast<std::size_t>(s)] = g.add_task(std::move(fnode));
    if (b > 0) {
      exec::TaskNode unode;
      unode.label = "update:" + std::to_string(s);
      unode.kind = exec::TaskKind::update;
      unode.cost = static_cast<double>(
          dense::syrk_flops(b, b, t, /*lower_only=*/true));
      unode.item = s;
      update_task[static_cast<std::size_t>(s)] = g.add_task(std::move(unode));
      g.add_edge(factor_task[static_cast<std::size_t>(s)],
                 update_task[static_cast<std::size_t>(s)]);
    }
  }
  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent == -1) continue;
    const exec::TaskId u = update_task[static_cast<std::size_t>(s)];
    // A supernode with no below rows contributes nothing to its parent's
    // front, so there is no data dependency to encode.
    if (u != -1) g.add_edge(u, factor_task[static_cast<std::size_t>(parent)]);
  }
  return g;
}

numeric::SupernodalFactor taskdag_factor(
    const sparse::SymmetricCsc& a, const symbolic::SupernodePartition& part,
    const exec::TaskScheduler::Config& workers, TaskFactorReport* report) {
  SPARTS_CHECK(part.n() == a.n(), "partition does not match matrix");
  const index_t nsup = part.num_supernodes();
  const index_t n = part.n();

  numeric::SupernodalFactor factor(part);
  auto children = ordering::tree_children(part.stree);
  std::vector<numeric::UpdateMatrix> updates(static_cast<std::size_t>(nsup));
  std::vector<std::vector<real_t>> fronts(static_cast<std::size_t>(nsup));

  std::atomic<nnz_t> flops{0};
  std::atomic<nnz_t> peak_front{0};
  std::atomic<nnz_t> stack_entries{0};
  std::atomic<nnz_t> peak_stack{0};

  exec::TaskGraph g = build_factor_dag(part);
  for (exec::TaskId id = 0; id < g.num_tasks(); ++id) {
    exec::TaskNode& node = g.node(id);
    const index_t s = node.item;
    if (node.kind == exec::TaskKind::panel_factor) {
      node.body = [&, s] {
        auto& front = fronts[static_cast<std::size_t>(s)];
        const auto& ch = children[static_cast<std::size_t>(s)];
        for (index_t c : ch) {
          stack_entries.fetch_sub(
              static_cast<nnz_t>(
                  updates[static_cast<std::size_t>(c)].values.size()),
              std::memory_order_relaxed);
        }
        flops.fetch_add(
            numeric::factor_supernode_panel(a, part, s, ch, updates, factor,
                                            front, pos_scratch(n)),
            std::memory_order_relaxed);
        atomic_max(peak_front, static_cast<nnz_t>(front.size()));
        // Leaf of the fine DAG (no trailing block): the front is final and
        // nothing downstream reads it.
        if (part.height(s) == part.width(s)) front = {};
      };
    } else {
      node.body = [&, s] {
        auto& front = fronts[static_cast<std::size_t>(s)];
        numeric::UpdateMatrix u;
        flops.fetch_add(numeric::supernode_schur_update(part, s, front, &u),
                        std::memory_order_relaxed);
        front = {};  // the Schur complement now lives in `u`
        const nnz_t added = static_cast<nnz_t>(u.values.size());
        updates[static_cast<std::size_t>(s)] = std::move(u);
        atomic_max(peak_stack, stack_entries.fetch_add(
                                   added, std::memory_order_relaxed) +
                                   added);
      };
    }
  }

  WallTimer timer;
  exec::TaskScheduler scheduler(workers);
  scheduler.run_graph(g);
  const double seconds = timer.seconds();

  if (report != nullptr) {
    report->graph = g.analyze();
    report->scheduler = scheduler.stats();
    report->stats.flops = flops.load(std::memory_order_relaxed);
    report->stats.peak_front_entries =
        peak_front.load(std::memory_order_relaxed);
    report->stats.peak_stack_entries =
        peak_stack.load(std::memory_order_relaxed);
    report->seconds = seconds;
  }
  return factor;
}

}  // namespace sparts::parfact
