// The factorization expressed as an explicit supernode task DAG.
//
// Two granularities of the same dependence structure:
//
//   * build_supernode_dag — one task per supernode, child -> parent edges.
//     Its topo_schedule() is exactly ascending supernode order (edges only
//     go small -> large and the scheduler breaks ties by smallest id), so
//     the SPMD loops in parfact.cpp / partrisolve.cpp walk this schedule:
//     they are a *second lowering* of the same graph, byte-identical to
//     the historical `for (s = 0; s < nsup; ++s)` sweeps.
//
//   * build_factor_dag — the task-parallel lowering's shape: a
//     panel_factor task per supernode (assemble + extend-add + pivot-block
//     Cholesky + factor write-back) and, for supernodes with below rows,
//     an update task (Schur complement + update-matrix emission), with
//     edges factor(s) -> update(s) and update(c) -> factor(parent(c)).
//
// taskdag_factor executes the fine-grained graph on a work-stealing
// TaskScheduler.  Its factor is bit-identical to
// numeric::multifrontal_cholesky because both run the same
// factor_supernode_panel / supernode_schur_update steps and a front's
// content depends only on A plus the children's update matrices combined
// in children order — never on when unrelated supernodes execute.
#pragma once

#include "exec/task_scheduler.hpp"
#include "exec/taskgraph.hpp"
#include "numeric/multifrontal.hpp"
#include "sparse/formats.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::parfact {

/// Coarse elimination DAG: task id == supernode id, edges child -> parent.
exec::TaskGraph build_supernode_dag(const symbolic::SupernodePartition& part);

/// Fine-grained factorization DAG (structure only, no bodies): task ids
/// are interleaved per supernode; node.item holds the supernode id and
/// node.kind distinguishes panel_factor from update tasks.  Costs are
/// dense flop estimates, so analyze() yields a meaningful critical path.
exec::TaskGraph build_factor_dag(const symbolic::SupernodePartition& part);

/// What taskdag_factor measured.
struct TaskFactorReport {
  exec::GraphStats graph;            ///< shape of the executed DAG
  exec::SchedulerStats scheduler;    ///< steals / parks of this run
  numeric::FactorizationStats stats; ///< flops and peak-memory counters
  double seconds = 0.0;              ///< wall time of the graph execution
};

/// Shared-memory task-DAG factorization of A over `part`: builds the
/// fine-grained DAG, attaches bodies, and drains it on a work-stealing
/// pool.  The returned factor is bit-identical to
/// numeric::multifrontal_cholesky(a, part).
numeric::SupernodalFactor taskdag_factor(
    const sparse::SymmetricCsc& a, const symbolic::SupernodePartition& part,
    const exec::TaskScheduler::Config& workers = {},
    TaskFactorReport* report = nullptr);

}  // namespace sparts::parfact
