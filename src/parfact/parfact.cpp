#include "parfact/parfact.hpp"

#include "parfact/factor_dag.hpp"

#include "obs/span.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "common/finite.hpp"
#include "dense/kernels.hpp"
#include "mapping/block_cyclic.hpp"
#include "sparse/validate.hpp"
#include "ordering/etree.hpp"
#include "partrisolve/layout.hpp"
#include "exec/collectives.hpp"
#include "exec/reliable.hpp"

namespace sparts::parfact {

namespace {

using partrisolve::Layout;

/// Tag streams.  Every in-flight message must have a unique
/// (src, dst, tag): extend-add packets are one-shot per (child, edge),
/// but the panel-loop collectives repeat over panels — and the column
/// all-gather additionally over ring steps — so those indices are folded
/// into the tag.  Ranks derive identical tags from shared arithmetic.
struct TagScheme {
  index_t panel_span;  ///< tags reserved per panel (diag, rowbcast, ring)
  index_t stride;      ///< tags reserved per supernode

  TagScheme(const symbolic::SupernodePartition& part, index_t b2d,
            index_t p) {
    index_t max_panels = 1;
    for (index_t s = 0; s < part.num_supernodes(); ++s) {
      max_panels = std::max(max_panels, (part.width(s) + b2d - 1) / b2d);
    }
    panel_span = 2 + p;  // diag + rowbcast + up to p-1 all-gather steps
    stride = 1 + max_panels * panel_span;
  }

  int extend_add(index_t c) const { return static_cast<int>(stride * c); }
  int diag(index_t s, index_t panel) const {
    return static_cast<int>(stride * s + 1 + panel * panel_span);
  }
  int rowbcast(index_t s, index_t panel) const {
    return diag(s, panel) + 1;
  }
  /// Base tag; allgather() consumes base .. base + group size - 2.
  int colgather(index_t s, index_t panel) const {
    return diag(s, panel) + 2;
  }
};

/// The 2-D geometry of one supernode's front on its processor group.
struct FrontGeometry {
  exec::Group group;
  mapping::BlockCyclic2d grid;  ///< qr x qc, block b2d
  Layout row_layout;            ///< positions over grid rows
  Layout col_layout;            ///< positions over grid columns
  index_t ns = 0;
  index_t t = 0;

  index_t qr() const { return grid.qr; }
  index_t qc() const { return grid.qc; }
  index_t grid_row(index_t world) const { return group.local(world) / qc(); }
  index_t grid_col(index_t world) const { return group.local(world) % qc(); }
  index_t world_of(index_t gr, index_t gc) const {
    return group.world(gr * qc() + gc);
  }
  index_t owner_world(index_t i, index_t j) const {
    return world_of(row_layout.owner_of(i), col_layout.owner_of(j));
  }
  /// Number of positions < x owned by grid row gr.
  index_t rows_below(index_t gr, index_t x) const {
    index_t count = 0;
    for (index_t blk = gr; blk * row_layout.b < x; blk += qr()) {
      count += std::min(row_layout.block_end(blk), x) -
               row_layout.block_begin(blk);
    }
    return count;
  }
};

FrontGeometry make_geometry(const exec::Group& g, index_t ns, index_t t,
                            index_t b2d) {
  FrontGeometry geo;
  geo.group = g;
  geo.grid = mapping::BlockCyclic2d::near_square(g.count, b2d);
  geo.row_layout = Layout{geo.grid.qr, b2d, ns, t};
  geo.col_layout = Layout{geo.grid.qc, b2d, ns, t};
  geo.ns = ns;
  geo.t = t;
  return geo;
}

/// One rank's part of a front: local dense matrix of its grid-row rows by
/// its grid-column columns (only the lower triangle of the global front is
/// maintained).
struct LocalFront {
  index_t lr = 0;
  index_t lc = 0;
  std::vector<real_t> data;  ///< column-major, ld = lr

  real_t& at(index_t li, index_t lj) {
    return data[static_cast<std::size_t>(lj * lr + li)];
  }
};

}  // namespace

Report parallel_multifrontal(exec::Comm& machine,
                             const sparse::SymmetricCsc& a,
                             const symbolic::SupernodePartition& part,
                             const mapping::SubcubeMapping& map,
                             numeric::SupernodalFactor& out,
                             const Options& options) {
  SPARTS_CHECK(machine.nprocs() == map.p);
  SPARTS_CHECK(part.n() == a.n());
  SPARTS_VALIDATE_CHEAP(map.check_consistent(part));
  SPARTS_VALIDATE_EXPENSIVE(part.check_consistent());
  SPARTS_VALIDATE_EXPENSIVE(sparse::validate_symmetric_csc(a));
  out = numeric::SupernodalFactor(part);

  const index_t nsup = part.num_supernodes();
  const index_t b2d = options.block_2d;
  const TagScheme tags(part, b2d, map.p);
  auto children = ordering::tree_children(part.stree);

  // The SPMD sweep is a lowering of the supernode elimination DAG: every
  // rank walks the graph's deterministic topological schedule and executes
  // the tasks whose group it belongs to.  For this child -> parent DAG the
  // schedule is exactly ascending supernode order, so the walk reproduces
  // the historical loop byte for byte; the task backend executes the same
  // graph with dynamic (message-driven) dependencies instead.
  const exec::TaskGraph sdag = build_supernode_dag(part);
  const std::vector<exec::TaskId> schedule = sdag.topo_schedule();

  // Position of each child's below-rows inside the parent front.
  std::vector<std::vector<index_t>> parent_pos(
      static_cast<std::size_t>(nsup));
  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent == -1) continue;
    const auto rows = part.row_indices(s);
    const auto prows = part.row_indices(parent);
    const index_t t = part.width(s);
    auto& pp = parent_pos[static_cast<std::size_t>(s)];
    pp.resize(rows.size() - static_cast<std::size_t>(t));
    for (std::size_t k = 0; k < pp.size(); ++k) {
      const auto it = std::lower_bound(prows.begin(), prows.end(),
                                       rows[static_cast<std::size_t>(t) + k]);
      SPARTS_CHECK(it != prows.end() &&
                   *it == rows[static_cast<std::size_t>(t) + k]);
      pp[k] = static_cast<index_t>(it - prows.begin());
    }
  }

  // Per-rank retained fronts, erased once the parent consumed them.
  std::vector<std::unordered_map<index_t, LocalFront>> rank_fronts(
      static_cast<std::size_t>(map.p));

  auto spmd = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    auto& fronts = rank_fronts[static_cast<std::size_t>(w)];

    for (const index_t s : schedule) {
      const exec::Group g = map.group[static_cast<std::size_t>(s)];
      if (!g.contains(w)) continue;
      exec::note_progress(proc, "fact supernode " + std::to_string(s));
      SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fact.supernode",
                        static_cast<std::int64_t>(s),
                        static_cast<std::int64_t>(g.count));
      const index_t ns = part.height(s);
      const index_t t = part.width(s);
      const FrontGeometry geo = make_geometry(g, ns, t, b2d);
      const index_t gr = geo.grid_row(w);
      const index_t gc = geo.grid_col(w);

      LocalFront front;
      front.lr = geo.row_layout.local_count(gr);
      front.lc = geo.col_layout.local_count(gc);
      front.data.assign(static_cast<std::size_t>(front.lr * front.lc), 0.0);

      // --- Assemble original matrix entries of the pivot columns. ---
      const auto rows = part.row_indices(s);
      const index_t j0 = part.first_col[static_cast<std::size_t>(s)];
      for (index_t k = 0; k < t; ++k) {
        if (geo.col_layout.owner_of(k) != gc) continue;
        const index_t lj = geo.col_layout.local_of(k);
        auto arows = a.col_rows(j0 + k);
        auto avals = a.col_values(j0 + k);
        for (std::size_t z = 0; z < arows.size(); ++z) {
          const auto it =
              std::lower_bound(rows.begin(), rows.end(), arows[z]);
          SPARTS_DCHECK(it != rows.end() && *it == arows[z]);
          const index_t pos = static_cast<index_t>(it - rows.begin());
          if (geo.row_layout.owner_of(pos) != gr) continue;
          front.at(geo.row_layout.local_of(pos), lj) += avals[z];
        }
      }

      // --- Extend-add the children's Schur complements. ---
      for (index_t c : children[static_cast<std::size_t>(s)]) {
        const exec::Group cg = map.group[static_cast<std::size_t>(c)];
        const index_t cns = part.height(c);
        const index_t ct = part.width(c);
        const FrontGeometry cgeo = make_geometry(cg, cns, ct, b2d);
        const auto& pp = parent_pos[static_cast<std::size_t>(c)];

        // Canonical enumeration of the trailing entries owned by one child
        // rank: columns ascending, rows ascending within the column.
        auto enumerate = [&](index_t cgr, index_t cgc, auto&& visit) {
          for (index_t j = ct; j < cns; ++j) {
            if (cgeo.col_layout.owner_of(j) != cgc) continue;
            const index_t pj = pp[static_cast<std::size_t>(j - ct)];
            for (index_t i = j; i < cns; ++i) {
              if (cgeo.row_layout.owner_of(i) != cgr) continue;
              const index_t pi = pp[static_cast<std::size_t>(i - ct)];
              visit(i, j, pi, pj);
            }
          }
        };

        // Send side: I hold part of the child's front.
        if (cg.contains(w)) {
          auto fit = fronts.find(c);
          SPARTS_CHECK(fit != fronts.end(), "missing child front");
          LocalFront& cf = fit->second;
          const index_t cgr = cgeo.grid_row(w);
          const index_t cgc = cgeo.grid_col(w);
          std::map<index_t, std::vector<real_t>> buckets;
          enumerate(cgr, cgc, [&](index_t i, index_t j, index_t pi,
                                  index_t pj) {
            const real_t v = cf.at(cgeo.row_layout.local_of(i),
                                   cgeo.col_layout.local_of(j));
            const index_t dst = geo.owner_world(pi, pj);
            if (dst == w) {
              front.at(geo.row_layout.local_of(pi),
                       geo.col_layout.local_of(pj)) += v;
            } else {
              buckets[dst].push_back(v);
            }
          });
          for (auto& [dst, values] : buckets) {
            proc.send_values<real_t>(dst, tags.extend_add(c), values);
          }
          nnz_t moved = 0;
          for (auto& [dst, values] : buckets) {
            moved += static_cast<nnz_t>(values.size());
          }
          proc.compute_at(static_cast<double>(moved), proc.cost().t_mem);
          fronts.erase(fit);
        }

        // Receive side: collect entries destined for me from every child
        // rank (the enumeration tells me exactly what each one sends).
        for (index_t crank = 0; crank < cg.count; ++crank) {
          const index_t src = cg.world(crank);
          if (src == w) continue;
          const index_t cgr2 = crank / cgeo.qc();
          const index_t cgc2 = crank % cgeo.qc();
          std::vector<std::pair<index_t, index_t>> mine;
          enumerate(cgr2, cgc2,
                    [&](index_t, index_t, index_t pi, index_t pj) {
                      if (geo.owner_world(pi, pj) == w) {
                        mine.emplace_back(pi, pj);
                      }
                    });
          if (mine.empty()) continue;
          auto values = proc.recv_values<real_t>(src, tags.extend_add(c));
          SPARTS_CHECK(values.size() == mine.size(),
                       "extend-add payload size mismatch");
          check_finite_cheap(values, "parfact extend-add payload", c);
          for (std::size_t z = 0; z < mine.size(); ++z) {
            front.at(geo.row_layout.local_of(mine[z].first),
                     geo.col_layout.local_of(mine[z].second)) += values[z];
          }
          proc.compute_at(static_cast<double>(values.size()),
                          proc.cost().t_mem);
        }
      }

      // --- Partial dense factorization of the pivot block. ---
      if (g.count == 1) {
        // Local fast path: classic partial Cholesky + Schur update.
        proc.compute(static_cast<double>(dense::panel_cholesky(
                         ns, t, front.data.data(), ns)),
                     exec::FlopKind::blas3);
        const index_t below = ns - t;
        if (below > 0) {
          dense::panel_syrk(below, below, t, front.data.data() + t, ns,
                            front.data.data() + t, ns,
                            front.data.data() +
                                static_cast<std::size_t>(t) * ns + t,
                            ns, /*lower_only=*/true);
          proc.compute(static_cast<double>(dense::syrk_flops(
                           below, below, t, /*lower_only=*/true)),
                       exec::FlopKind::blas3);
        }
      } else {
        const exec::Group col_group{g.base + gc, geo.qr(), geo.qc()};
        const exec::Group row_group{g.base + gr * geo.qc(), geo.qc(), 1};

        for (index_t p0 = 0; p0 < t; p0 += b2d) {
          const index_t bp = std::min(b2d, t - p0);
          const index_t p1 = p0 + bp;
          const index_t panel_gc = geo.col_layout.owner_of(p0);
          const index_t panel_gr = geo.row_layout.owner_of(p0);

          // Step 1: diagonal block Cholesky + column broadcast.
          std::vector<real_t> diag(static_cast<std::size_t>(bp * bp));
          if (gc == panel_gc && gr == panel_gr) {
            const index_t li = geo.row_layout.local_of(p0);
            const index_t lj = geo.col_layout.local_of(p0);
            proc.compute(
                static_cast<double>(dense::panel_cholesky(
                    bp, bp, &front.at(li, lj), front.lr)),
                exec::FlopKind::blas3);
            for (index_t cjj = 0; cjj < bp; ++cjj) {
              for (index_t cii = 0; cii < bp; ++cii) {
                diag[static_cast<std::size_t>(cjj * bp + cii)] =
                    front.at(li + cii, lj + cjj);
              }
            }
          }
          if (gc == panel_gc && geo.qr() > 1) {
            exec::broadcast_from(proc, col_group, panel_gr, diag,
                                   tags.diag(s, p0 / b2d));
          }

          // Step 2: row-panel solves on the panel's grid column, then
          // broadcast of each row piece along its grid row.
          const index_t below_count = geo.rows_below(gr, p1);
          const index_t m_rows = front.lr - below_count;
          std::vector<real_t> rowpiece(
              static_cast<std::size_t>(m_rows * bp));
          if (gc == panel_gc) {
            if (m_rows > 0) {
              const index_t lj = geo.col_layout.local_of(p0);
              proc.compute(static_cast<double>(dense::panel_trsm_right_lt(
                               m_rows, bp, diag.data(), bp,
                               &front.at(below_count, lj), front.lr)),
                           exec::FlopKind::blas3);
              for (index_t cjj = 0; cjj < bp; ++cjj) {
                for (index_t cii = 0; cii < m_rows; ++cii) {
                  rowpiece[static_cast<std::size_t>(cjj * m_rows + cii)] =
                      front.at(below_count + cii, lj + cjj);
                }
              }
            }
          }
          if (geo.qc() > 1) {
            exec::broadcast_from(proc, row_group, panel_gc, rowpiece,
                                   tags.rowbcast(s, p0 / b2d));
          }

          // Step 3: all-gather, along the grid column, of the sub-pieces
          // whose positions this grid column owns column-wise.
          // Positions of my grid row's trailing rows, ascending:
          std::vector<index_t> my_row_positions;
          my_row_positions.reserve(static_cast<std::size_t>(m_rows));
          for (index_t blk = gr; blk < geo.row_layout.num_blocks();
               blk += geo.qr()) {
            for (index_t i = std::max(geo.row_layout.block_begin(blk), p1);
                 i < geo.row_layout.block_end(blk); ++i) {
              my_row_positions.push_back(i);
            }
          }
          std::vector<real_t> contrib;
          std::vector<index_t> contrib_positions;
          for (std::size_t z = 0; z < my_row_positions.size(); ++z) {
            const index_t i = my_row_positions[z];
            if (geo.col_layout.owner_of(i) != gc) continue;
            contrib_positions.push_back(i);
            for (index_t cjj = 0; cjj < bp; ++cjj) {
              contrib.push_back(rowpiece[static_cast<std::size_t>(
                  cjj * m_rows + static_cast<index_t>(z))]);
            }
          }
          std::vector<std::vector<real_t>> gathered;
          if (geo.qr() > 1) {
            gathered = exec::allgather(proc, col_group, std::move(contrib),
                                         tags.colgather(s, p0 / b2d));
          } else {
            gathered.push_back(std::move(contrib));
          }
          // colpiece: L(j, panel) for each of my local trailing columns.
          std::vector<real_t> colpiece(
              static_cast<std::size_t>(front.lc * bp), 0.0);
          for (index_t src_gr = 0; src_gr < geo.qr(); ++src_gr) {
            const auto& data = gathered[static_cast<std::size_t>(src_gr)];
            std::size_t cursor = 0;
            for (index_t blk = src_gr; blk < geo.row_layout.num_blocks();
                 blk += geo.qr()) {
              for (index_t i = std::max(geo.row_layout.block_begin(blk), p1);
                   i < geo.row_layout.block_end(blk); ++i) {
                if (geo.col_layout.owner_of(i) != gc) continue;
                const index_t lj = geo.col_layout.local_of(i);
                for (index_t cjj = 0; cjj < bp; ++cjj) {
                  SPARTS_CHECK(cursor < data.size(),
                               "colpiece stream underflow");
                  colpiece[static_cast<std::size_t>(cjj * front.lc + lj)] =
                      data[cursor++];
                }
              }
            }
            SPARTS_CHECK(cursor == data.size(), "colpiece stream overflow");
          }

          // Step 4: local trailing update
          //   F(i, j) -= L(i, panel) * L(j, panel)^T,  i >= j >= p1.
          for (index_t jb = gc; jb < geo.col_layout.num_blocks();
               jb += geo.qc()) {
            const index_t jend = geo.col_layout.block_end(jb);
            const index_t jstart =
                std::max(geo.col_layout.block_begin(jb), p1);
            if (jstart >= jend) continue;
            const index_t lenj = jend - jstart;
            const index_t lj = geo.col_layout.local_of(jstart);
            for (index_t ib = gr; ib < geo.row_layout.num_blocks();
                 ib += geo.qr()) {
              if (geo.row_layout.block_end(ib) <= jstart) continue;
              const index_t istart =
                  std::max(geo.row_layout.block_begin(ib), p1);
              // Only blocks on/below the diagonal block row hold lower-
              // triangle entries.
              if (istart < jstart) continue;
              const bool diagonal_block = istart == jstart;
              const index_t leni = geo.row_layout.block_end(ib) - istart;
              const index_t li_local = geo.row_layout.local_of(istart);
              // A-piece rows istart.. are at rowpiece offset
              // (local row - below_count).
              const real_t* apiece =
                  rowpiece.data() + (li_local - below_count);
              dense::panel_syrk(leni, lenj, bp, apiece, m_rows,
                                colpiece.data() + lj, front.lc,
                                &front.at(li_local, lj), front.lr,
                                /*lower_only=*/diagonal_block);
              proc.compute(static_cast<double>(dense::syrk_flops(
                               leni, lenj, bp, diagonal_block)),
                           exec::FlopKind::blas3);
            }
          }
        }
      }

      // --- Write my part of the factored pivot columns. ---
      auto block = out.block(s);
      for (index_t k = 0; k < t; ++k) {
        if (geo.col_layout.owner_of(k) != gc) continue;
        const index_t lj = geo.col_layout.local_of(k);
        for (index_t blk = gr; blk < geo.row_layout.num_blocks();
             blk += geo.qr()) {
          for (index_t i = std::max(geo.row_layout.block_begin(blk), k);
               i < geo.row_layout.block_end(blk); ++i) {
            block[static_cast<std::size_t>(k * ns + i)] =
                front.at(geo.row_layout.local_of(i), lj);
          }
        }
      }

      // Retain the front if a parent will consume its Schur complement.
      if (part.stree.parent[static_cast<std::size_t>(s)] != -1 && ns > t) {
        fronts.emplace(s, std::move(front));
      }
    }
  };

  Report report;
  report.stats = machine.run(spmd);
  report.graph = sdag.analyze();
  return report;
}

}  // namespace sparts::parfact
