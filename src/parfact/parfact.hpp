// Distributed supernodal multifrontal Cholesky factorization with
// two-dimensional block-cyclic partitioning of the frontal matrices and
// subtree-to-subcube mapping (the factorization algorithm of Gupta,
// Karypis & Kumar [4] that this paper's triangular solvers complement).
//
// Why it is here: the paper's evaluation (Fig. 7) reports factorization
// time next to solve time to support two claims — that the parallelized
// solvers take only a small fraction of factorization time, and that the
// factor emerges from factorization in a 2-D distribution that must be
// converted (redist/) before solving.  This module reproduces both.
//
// Shape of the computation:
//   * Sequential subtrees (q = 1) run the classic multifrontal recursion
//     locally on their processor.
//   * A front shared by q processors lives on a near-square qr x qc
//     process grid, block-cyclic with block size b2d.  Each pivot panel is
//     factored with the fan-out algorithm: diagonal-block Cholesky,
//     broadcast down the grid column, row-panel triangular solves,
//     broadcast of row pieces along grid rows, all-gather of the
//     transposed pieces along grid columns, then local rank-b2d updates.
//   * extend-add routes each child Schur-complement entry from its owner
//     in the child's grid to its owner in the parent's grid point-to-point
//     (positions are implied by a canonical enumeration both sides
//     compute, so only values travel).
#pragma once

#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/supernodal_factor.hpp"
#include "exec/process.hpp"
#include "exec/taskgraph.hpp"
#include "sparse/formats.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::parfact {

struct Options {
  index_t block_2d = 16;  ///< block size of the 2-D front distribution
};

struct Report {
  exec::RunStats stats;
  /// Shape of the supernode elimination DAG the SPMD loop walked
  /// (see factor_dag.hpp; the same graph the task backend executes).
  exec::GraphStats graph;
  double time() const { return stats.parallel_time(); }
};

/// Factor A over `part` on the simulated machine; writes the numeric
/// factor into `out` (which is allocated by this call).  The result equals
/// the sequential multifrontal factor up to floating-point reordering.
Report parallel_multifrontal(exec::Comm& machine,
                             const sparse::SymmetricCsc& a,
                             const symbolic::SupernodePartition& part,
                             const mapping::SubcubeMapping& map,
                             numeric::SupernodalFactor& out,
                             const Options& options = {});

}  // namespace sparts::parfact
