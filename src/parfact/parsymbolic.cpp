#include "parfact/parsymbolic.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "ordering/etree.hpp"

namespace sparts::parfact {

ParSymbolicResult parallel_symbolic(exec::Comm& machine,
                                    const sparse::SymmetricCsc& a) {
  const index_t n = a.n();
  const index_t p = machine.nprocs();

  // The elimination tree is cheap (O(nnz alpha)) and replicated; the
  // structure computation below is the phase that carries the O(nnz(L))
  // work and data volume.
  ordering::EliminationTree etree = ordering::elimination_tree(a);
  auto children = ordering::tree_children(etree);

  // Column work weight: its below-diagonal entries in A (a proxy for the
  // merge work before fill is known).
  std::vector<double> work(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    work[static_cast<std::size_t>(j)] =
        static_cast<double>(a.col_rows(j).size());
  }
  const std::vector<exec::Group> groups =
      mapping::subtree_to_subcube_tree(etree, p, work);
  auto owner_of = [&groups](index_t j) {
    return groups[static_cast<std::size_t>(j)].base;
  };

  // Per-rank storage of computed column structures.
  std::vector<std::unordered_map<index_t, std::vector<index_t>>> structs(
      static_cast<std::size_t>(p));

  auto spmd = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    auto& mine = structs[static_cast<std::size_t>(w)];
    std::vector<index_t> mark(static_cast<std::size_t>(n), -1);

    for (index_t j = 0; j < n; ++j) {
      if (owner_of(j) != w) continue;

      std::vector<index_t> out;
      mark[static_cast<std::size_t>(j)] = j;
      out.push_back(j);
      double touched = 0.0;
      for (index_t i : a.col_rows(j)) {
        touched += 1.0;
        if (i > j && mark[static_cast<std::size_t>(i)] != j) {
          mark[static_cast<std::size_t>(i)] = j;
          out.push_back(i);
        }
      }
      for (index_t c : children[static_cast<std::size_t>(j)]) {
        // Local child structures stay resident (the host assembles the
        // final factor from them); remote ones arrive as messages.
        std::vector<index_t> received;
        if (owner_of(c) != w) {
          received = proc.recv_values<index_t>(owner_of(c),
                                               static_cast<int>(c));
        }
        const std::vector<index_t>& child_struct =
            owner_of(c) == w ? mine.at(c) : received;
        for (index_t i : child_struct) {
          touched += 1.0;
          if (i > j && mark[static_cast<std::size_t>(i)] != j) {
            mark[static_cast<std::size_t>(i)] = j;
            out.push_back(i);
          }
        }
      }
      std::sort(out.begin(), out.end());
      proc.compute_at(touched + static_cast<double>(out.size()),
                      proc.cost().t_mem);

      // Ship the structure to the parent's owner if remote; keep a copy
      // locally (it is this column's final structure either way).
      const index_t parent = etree.parent[static_cast<std::size_t>(j)];
      if (parent != -1 && owner_of(parent) != w) {
        proc.send_values<index_t>(owner_of(parent), static_cast<int>(j),
                                  out);
      }
      mine[j] = std::move(out);
    }
  };

  ParSymbolicResult result;
  result.stats = machine.run(spmd);

  // Assemble the factor host-side from the per-rank structures.
  symbolic::SymbolicFactor f;
  f.n = n;
  f.etree = std::move(etree);
  f.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    const auto& s = structs[static_cast<std::size_t>(owner_of(j))].at(j);
    f.colptr[static_cast<std::size_t>(j) + 1] =
        f.colptr[static_cast<std::size_t>(j)] +
        static_cast<nnz_t>(s.size());
  }
  f.rowind.reserve(static_cast<std::size_t>(f.colptr.back()));
  for (index_t j = 0; j < n; ++j) {
    const auto& s = structs[static_cast<std::size_t>(owner_of(j))].at(j);
    f.rowind.insert(f.rowind.end(), s.begin(), s.end());
  }
  result.symbolic = std::move(f);
  return result;
}

}  // namespace sparts::parfact
