// Distributed symbolic factorization.
//
// The paper's introduction insists that *every* phase of the direct solve
// must be parallelized for the whole solver to scale ("without an overall
// parallel solver, the size of the sparse systems that can be solved may
// be severely restricted").  This module parallelizes the symbolic phase
// on the simulated machine, in the style of the authors' own solver:
//
//   * columns are mapped subtree-to-subcube over the *elimination tree*
//     (supernodes do not exist yet);
//   * each processor computes the structures of its own subtree's columns
//     locally — struct(j) = A_below(j) ∪ (∪_children struct(c) \ {c});
//   * at a subtree's root, its boundary structure is sent to the owner of
//     the parent column (the first rank of the parent's group), so the
//     top log p levels merge structures with point-to-point messages.
//
// The result is verified entry-for-entry against the sequential
// symbolic_cholesky (tests), and the cost is measured by
// bench_parallel_phases next to factorization and solve.
#pragma once

#include "common/types.hpp"
#include "exec/process.hpp"
#include "sparse/formats.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::parfact {

struct ParSymbolicResult {
  symbolic::SymbolicFactor symbolic;  ///< identical to the sequential one
  exec::RunStats stats;

  double time() const { return stats.parallel_time(); }
};

/// Run the distributed symbolic factorization of A's pattern on the
/// simulated machine (p = machine.nprocs(), a power of two).
ParSymbolicResult parallel_symbolic(exec::Comm& machine,
                                    const sparse::SymmetricCsc& a);

}  // namespace sparts::parfact
