#include "partrisolve/dense_trisolve.hpp"

#include <vector>

#include "common/error.hpp"
#include "dense/kernels.hpp"
#include "partrisolve/layout.hpp"

namespace sparts::partrisolve {

exec::RunStats dense_parallel_forward(exec::Comm& machine,
                                        const dense::Matrix& l,
                                        std::span<real_t> b, index_t m,
                                        index_t block_size) {
  const index_t n = l.rows();
  SPARTS_CHECK(l.cols() == n);
  SPARTS_CHECK(static_cast<index_t>(b.size()) == n * m);
  const index_t p = machine.nprocs();
  constexpr int kTokenTag = 1;

  // The whole matrix is one "supernode" with ns = t = n shared by all p.
  const Layout lay{p, block_size, n, n};
  const index_t tb = lay.num_pivot_blocks();

  auto spmd = [&](exec::Process& proc) {
    const index_t r = proc.rank();
    const index_t q = p;
    const index_t next = (r + 1) % q;
    const index_t prev = (r + q - 1) % q;
    const index_t nloc = lay.local_count(r);
    const index_t ld = n;

    // Local packed copy of my rows of b.
    std::vector<real_t> v(static_cast<std::size_t>(nloc * m));
    for (index_t i = 0; i < n; ++i) {
      if (lay.owner_of(i) != r) continue;
      const index_t lo = lay.local_of(i);
      for (index_t c = 0; c < m; ++c) {
        v[static_cast<std::size_t>(c * nloc + lo)] = b[c * n + i];
      }
    }

    for (index_t k = 0; k < tb; ++k) {
      const index_t owner = lay.owner_of_block(k);
      const index_t c0 = lay.col_begin(k);
      const index_t bk = lay.col_end(k) - c0;
      std::vector<real_t> token;
      if (r == owner) {
        const index_t lo = lay.local_of(c0);
        proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                            bk, m, l.col(c0) + c0, ld, v.data() + lo, nloc)),
                        proc.cost().panel_flop(m));
        token.resize(static_cast<std::size_t>(bk * m));
        for (index_t c = 0; c < m; ++c) {
          for (index_t i = 0; i < bk; ++i) {
            token[static_cast<std::size_t>(c * bk + i)] =
                v[static_cast<std::size_t>(c * nloc + lo + i)];
          }
        }
        proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
        if (q > 1) proc.send_values<real_t>(next, kTokenTag, token);
      } else {
        token = proc.recv_values<real_t>(prev, kTokenTag);
        if ((r + 1) % q != owner) {
          proc.send_values<real_t>(next, kTokenTag, token);
        }
      }
      // Apply the token to my block rows below K.
      for (index_t i = k + 1 + (((r - k - 1) % q + q) % q);
           i < lay.num_blocks(); i += q) {
        const index_t i0 = lay.block_begin(i);
        const index_t len = lay.block_end(i) - i0;
        dense::panel_gemm(len, m, bk, -1.0, l.col(c0) + i0, ld, token.data(),
                          bk, v.data() + lay.local_of(i0), nloc);
        proc.compute_at(static_cast<double>(dense::gemm_flops(len, m, bk)),
                        proc.cost().panel_flop(m));
      }
    }

    // Publish results.
    for (index_t i = 0; i < n; ++i) {
      if (lay.owner_of(i) != r) continue;
      const index_t lo = lay.local_of(i);
      for (index_t c = 0; c < m; ++c) {
        b[c * n + i] = v[static_cast<std::size_t>(c * nloc + lo)];
      }
    }
  };

  return machine.run(spmd);
}

}  // namespace sparts::partrisolve
