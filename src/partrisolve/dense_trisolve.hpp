// Parallel *dense* triangular solver with 1-D row-wise block-cyclic
// partitioning and column-priority pipelining — the baseline of the
// paper's §3.3 scalability comparison (a sparse solver on 2-D/3-D problems
// is asymptotically exactly as scalable as this dense solver).
#pragma once

#include <span>

#include "common/types.hpp"
#include "dense/matrix.hpp"
#include "exec/process.hpp"

namespace sparts::partrisolve {

/// Solve L x = b on the whole simulated machine.  `l` is n x n lower
/// triangular (shared read-only), `b` is n x m column-major and receives
/// the solution in place.  Block-cyclic with the given block size.
exec::RunStats dense_parallel_forward(exec::Comm& machine,
                                        const dense::Matrix& l,
                                        std::span<real_t> b, index_t m,
                                        index_t block_size);

}  // namespace sparts::partrisolve
