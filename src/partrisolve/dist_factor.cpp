#include "partrisolve/dist_factor.hpp"

#include "common/error.hpp"
#include "partrisolve/layout.hpp"

namespace sparts::partrisolve {

DistributedFactor::DistributedFactor(const symbolic::SupernodePartition& part,
                                     const mapping::SubcubeMapping& map,
                                     index_t block_size)
    : block_size_(block_size),
      storage_(static_cast<std::size_t>(map.p)),
      local_rows_(static_cast<std::size_t>(map.p)) {
  SPARTS_CHECK(block_size >= 1);
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const exec::Group& g = map.group[static_cast<std::size_t>(s)];
    const Layout lay{g.count, block_size, part.height(s), part.width(s)};
    for (index_t r = 0; r < g.count; ++r) {
      const index_t w = g.world(r);
      const index_t nloc = lay.local_count(r);
      local_rows_[static_cast<std::size_t>(w)][s] = nloc;
      storage_[static_cast<std::size_t>(w)][s].assign(
          static_cast<std::size_t>(nloc * part.width(s)), 0.0);
    }
  }
}

DistributedFactor DistributedFactor::pack_from(
    const numeric::SupernodalFactor& factor, const mapping::SubcubeMapping& map,
    index_t block_size) {
  const auto& part = factor.partition();
  DistributedFactor df(part, map, block_size);
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const exec::Group& g = map.group[static_cast<std::size_t>(s)];
    const Layout lay{g.count, block_size, part.height(s), part.width(s)};
    const auto block = factor.block(s);
    const index_t t = part.width(s);
    for (index_t r = 0; r < g.count; ++r) {
      const index_t w = g.world(r);
      auto& local = df.local_block(w, s);
      const index_t nloc = lay.local_count(r);
      for (index_t i = 0; i < lay.ns; ++i) {
        if (lay.owner_of(i) != r) continue;
        const index_t lo = lay.local_of(i);
        for (index_t k = 0; k < t; ++k) {
          local[static_cast<std::size_t>(k * nloc + lo)] =
              block[static_cast<std::size_t>(k * lay.ns + i)];
        }
      }
    }
  }
  return df;
}

PanelVector& DistributedFactor::local_block(index_t rank, index_t s) {
  auto& m = storage_[static_cast<std::size_t>(rank)];
  auto it = m.find(s);
  SPARTS_CHECK(it != m.end(),
               "rank " << rank << " holds no block of supernode " << s);
  return it->second;
}

const PanelVector& DistributedFactor::local_block(index_t rank,
                                                          index_t s) const {
  const auto& m = storage_[static_cast<std::size_t>(rank)];
  auto it = m.find(s);
  SPARTS_CHECK(it != m.end(),
               "rank " << rank << " holds no block of supernode " << s);
  return it->second;
}

bool DistributedFactor::has_block(index_t rank, index_t s) const {
  return storage_[static_cast<std::size_t>(rank)].count(s) > 0;
}

index_t DistributedFactor::local_rows(index_t rank, index_t s) const {
  const auto& m = local_rows_[static_cast<std::size_t>(rank)];
  auto it = m.find(s);
  SPARTS_CHECK(it != m.end());
  return it->second;
}

}  // namespace sparts::partrisolve
