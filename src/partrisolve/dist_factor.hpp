// Rank-local storage of the factor under the solvers' 1-D row-wise
// block-cyclic distribution.
//
// The convenience path lets DistributedTrisolver read the shared
// SupernodalFactor directly (every access is provably to rows the rank
// owns).  This class is the strict path: each rank holds private packed
// copies of exactly its block rows of every supernode it participates in —
// the data structure the 2-D -> 1-D redistribution (redist/) produces, so
// the factor values the solver consumes really did travel through the
// simulated network.
#pragma once

#include <unordered_map>
#include <vector>

#include "common/arena.hpp"
#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/supernodal_factor.hpp"

namespace sparts::partrisolve {

/// Packed panel values live in the arena: a rank's thread first-touches
/// (and therefore NUMA-places) exactly the blocks it will consume.
using PanelVector = common::ArenaVector<real_t>;

class DistributedFactor {
 public:
  DistributedFactor() = default;

  /// Allocate empty (zero) rank-local storage for every (rank, supernode)
  /// participation implied by the mapping.
  DistributedFactor(const symbolic::SupernodePartition& part,
                    const mapping::SubcubeMapping& map, index_t block_size);

  /// Convenience: fill from a host-resident factor by direct packing (the
  /// "factor was already distributed like this" baseline).
  static DistributedFactor pack_from(const numeric::SupernodalFactor& factor,
                                     const mapping::SubcubeMapping& map,
                                     index_t block_size);

  index_t block_size() const { return block_size_; }

  /// Mutable local block of (world rank, supernode): packed owned rows x
  /// width(s), column-major, ld = local row count.
  PanelVector& local_block(index_t rank, index_t s);
  const PanelVector& local_block(index_t rank, index_t s) const;

  bool has_block(index_t rank, index_t s) const;

  /// Number of rows rank holds for supernode s (its packed ld).
  index_t local_rows(index_t rank, index_t s) const;

 private:
  index_t block_size_ = 8;
  /// per world rank: supernode -> packed values.
  std::vector<std::unordered_map<index_t, PanelVector>> storage_;
  std::vector<std::unordered_map<index_t, index_t>> local_rows_;
};

}  // namespace sparts::partrisolve
