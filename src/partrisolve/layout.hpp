// Per-supernode distributed layout arithmetic.
//
// The trapezoid of a supernode (height ns, width t) is distributed among
// the q processors of its group by 1-D row-wise block-cyclic mapping with
// block size b over its *positions* 0..ns-1 (position i is the i-th row of
// the trapezoid; positions < t are the pivot rows).  Each rank stores its
// owned positions packed in ascending order; because only the globally last
// block can be ragged, the packed offset of a position is O(1).
#pragma once

#include "common/error.hpp"
#include "common/types.hpp"

namespace sparts::partrisolve {

struct Layout {
  index_t q = 1;   ///< group size
  index_t b = 1;   ///< block size
  index_t ns = 0;  ///< trapezoid height (number of positions)
  index_t t = 0;   ///< trapezoid width (pivot rows)

  index_t num_blocks() const { return (ns + b - 1) / b; }
  /// Blocks covering the pivot triangle.
  index_t num_pivot_blocks() const { return (t + b - 1) / b; }

  index_t block_of(index_t pos) const { return pos / b; }
  index_t owner_of_block(index_t blk) const { return blk % q; }
  index_t owner_of(index_t pos) const { return owner_of_block(pos / b); }

  /// Rows of block `blk`: [block_begin, block_end).
  index_t block_begin(index_t blk) const { return blk * b; }
  index_t block_end(index_t blk) const { return std::min((blk + 1) * b, ns); }

  /// Column range of pivot block K: [col_begin, col_end) (clipped at t).
  index_t col_begin(index_t k) const { return k * b; }
  index_t col_end(index_t k) const { return std::min((k + 1) * b, t); }

  /// Packed local offset of position `pos` on its owner.
  index_t local_of(index_t pos) const {
    const index_t blk = pos / b;
    const index_t local_block = blk / q;
    return local_block * b + (pos - blk * b);
  }

  /// Number of positions owned by rank r.
  index_t local_count(index_t r) const {
    index_t count = 0;
    for (index_t blk = r; blk < num_blocks(); blk += q) {
      count += block_end(blk) - block_begin(blk);
    }
    return count;
  }
};

}  // namespace sparts::partrisolve
