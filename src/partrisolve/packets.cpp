#include "partrisolve/packets.hpp"

#include <cstring>

#include "common/error.hpp"

namespace sparts::partrisolve {

exec::Payload pack_rhs(const RhsPacket& p, index_t m) {
  SPARTS_CHECK(p.values.size() ==
               p.positions.size() * static_cast<std::size_t>(m));
  const index_t count = static_cast<index_t>(p.positions.size());
  exec::Payload out(sizeof(index_t) * (1 + p.positions.size()) +
                    sizeof(real_t) * p.values.size());
  std::size_t off = 0;
  auto put = [&](const void* src, std::size_t len) {
    std::memcpy(out.data() + off, src, len);
    off += len;
  };
  put(&count, sizeof(index_t));
  put(p.positions.data(), p.positions.size() * sizeof(index_t));
  put(p.values.data(), p.values.size() * sizeof(real_t));
  return out;
}

RhsPacket unpack_rhs(std::span<const std::byte> bytes, index_t m) {
  RhsPacket p;
  std::size_t off = 0;
  auto get = [&](void* dst, std::size_t len) {
    SPARTS_CHECK(off + len <= bytes.size(), "truncated RHS packet");
    std::memcpy(dst, bytes.data() + off, len);
    off += len;
  };
  index_t count = 0;
  get(&count, sizeof(index_t));
  p.positions.resize(static_cast<std::size_t>(count));
  p.values.resize(static_cast<std::size_t>(count * m));
  get(p.positions.data(), p.positions.size() * sizeof(index_t));
  get(p.values.data(), p.values.size() * sizeof(real_t));
  SPARTS_CHECK(off == bytes.size(), "trailing bytes in RHS packet");
  return p;
}

}  // namespace sparts::partrisolve
