// Wire format for right-hand-side fragments exchanged between supernodes:
// a list of positions (in the receiver's trapezoid) plus m values per
// position.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "exec/process.hpp"

namespace sparts::partrisolve {

struct RhsPacket {
  std::vector<index_t> positions;  ///< positions in the receiver's rows
  std::vector<real_t> values;      ///< positions.size() * m, position-major

  bool empty() const { return positions.empty(); }
};

/// Serialize: [count][positions...][values...].  Returns an owned Payload
/// so callers can hand the buffer to Process::send_owned and large panels
/// ride the zero-copy lane.
exec::Payload pack_rhs(const RhsPacket& p, index_t m);

/// Inverse of pack_rhs.
RhsPacket unpack_rhs(std::span<const std::byte> bytes, index_t m);

}  // namespace sparts::partrisolve
