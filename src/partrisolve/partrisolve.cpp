#include "partrisolve/partrisolve.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "common/finite.hpp"
#include "common/prefetch.hpp"
#include "dense/kernels.hpp"
#include "obs/span.hpp"
#include "mapping/block_cyclic.hpp"
#include "ordering/etree.hpp"
#include "partrisolve/layout.hpp"
#include "partrisolve/packets.hpp"
#include "partrisolve/solve_dag.hpp"
#include "exec/collectives.hpp"
#include "exec/reliable.hpp"

namespace sparts::partrisolve {

namespace {

// Message tags.  Contribution and copy packets are one-shot per
// (edge, supernode), so they key on the supernode id.  Tokens of the
// pipelined kernels key on the *global pivot-block id* (the supernode's
// block_base plus the block index): several tokens of one supernode can
// be in flight on the same ring edge at once, and no two in-flight
// messages may share a (src, dst, tag) triple.  The residues mod 4 keep
// the four streams disjoint.
int tag_fw_contrib(index_t s) { return static_cast<int>(4 * s + 0); }
int tag_bw_copy(index_t s) { return static_cast<int>(4 * s + 2); }

/// Per-rank working storage: supernode id -> packed local RHS fragment.
using BufferMap = std::unordered_map<index_t, std::vector<real_t>>;

}  // namespace

DistributedTrisolver::DistributedTrisolver(
    const numeric::SupernodalFactor& factor, const mapping::SubcubeMapping& map,
    Options options)
    : DistributedTrisolver(factor, nullptr, map, options) {}

DistributedTrisolver::DistributedTrisolver(
    const numeric::SupernodalFactor& factor,
    const DistributedFactor* local_values, const mapping::SubcubeMapping& map,
    Options options)
    : factor_(factor), local_values_(local_values), map_(map),
      options_(options) {
  if (local_values_ != nullptr) {
    SPARTS_CHECK(local_values_->block_size() == options_.block_size,
                 "DistributedFactor block size must match solver options");
  }
  SPARTS_CHECK(options_.block_size >= 1);
  const auto& part = factor_.partition();
  SPARTS_VALIDATE_CHEAP(map_.check_consistent(part));
  // Expensive: the 1-D block-cyclic ownership of every shared supernode's
  // trapezoid must partition its positions (the solver's routing tables
  // are derived from exactly this arithmetic).
  if (checks_at_least(CheckLevel::expensive)) {
    for (index_t s = 0; s < part.num_supernodes(); ++s) {
      const exec::Group& g = map_.group[static_cast<std::size_t>(s)];
      if (g.count == 1) continue;
      mapping::validate_block_cyclic(
          mapping::BlockCyclic1d{options_.block_size, g.count},
          part.height(s));
    }
  }
  children_ = ordering::tree_children(part.stree);

  const index_t nsup = part.num_supernodes();
  routing_.resize(static_cast<std::size_t>(nsup));
  const index_t b = options_.block_size;
  block_base_.resize(static_cast<std::size_t>(nsup));
  index_t next_block = 0;
  for (index_t s = 0; s < nsup; ++s) {
    block_base_[static_cast<std::size_t>(s)] = next_block;
    next_block += (part.width(s) + b - 1) / b;
  }
  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent == -1) continue;
    const auto rows = part.row_indices(s);
    const auto prows = part.row_indices(parent);
    const index_t t = part.width(s);
    const index_t below = part.height(s) - t;
    const Layout child_layout{map_.group[static_cast<std::size_t>(s)].count, b,
                              part.height(s), t};
    const Layout parent_layout{
        map_.group[static_cast<std::size_t>(parent)].count, b,
        part.height(parent), part.width(parent)};

    ChildRouting& cr = routing_[static_cast<std::size_t>(s)];
    cr.parent_pos.resize(static_cast<std::size_t>(below));
    for (index_t k = 0; k < below; ++k) {
      const index_t row = rows[static_cast<std::size_t>(t + k)];
      const auto it = std::lower_bound(prows.begin(), prows.end(), row);
      SPARTS_CHECK(it != prows.end() && *it == row,
                   "child row " << row << " missing from parent structure");
      cr.parent_pos[static_cast<std::size_t>(k)] =
          static_cast<index_t>(it - prows.begin());
    }
    const index_t cbase = map_.group[static_cast<std::size_t>(s)].base;
    const index_t pbase = map_.group[static_cast<std::size_t>(parent)].base;
    for (index_t k = 0; k < below; ++k) {
      const index_t src = cbase + child_layout.owner_of(t + k);
      const index_t dst =
          pbase +
          parent_layout.owner_of(cr.parent_pos[static_cast<std::size_t>(k)]);
      if (src != dst) cr.pairs.emplace_back(src, dst);
    }
    std::sort(cr.pairs.begin(), cr.pairs.end());
    cr.pairs.erase(std::unique(cr.pairs.begin(), cr.pairs.end()),
                   cr.pairs.end());
  }
}

namespace {

/// Everything a phase's SPMD body needs, bundled to keep lambdas small.
struct PhaseContext {
  const numeric::SupernodalFactor& factor;
  const mapping::SubcubeMapping& map;
  const Options& options;
  const std::vector<std::vector<index_t>>& children;
  const std::vector<index_t>& block_base;  ///< global id of first pivot block
  index_t m;
};

/// Token tag for pivot block k of supernode s (see the tag notes above).
int tag_fw_token(const PhaseContext& ctx, index_t s, index_t k) {
  return static_cast<int>(
      4 * (ctx.block_base[static_cast<std::size_t>(s)] + k) + 1);
}
int tag_bw_token(const PhaseContext& ctx, index_t s, index_t k) {
  return static_cast<int>(
      4 * (ctx.block_base[static_cast<std::size_t>(s)] + k) + 3);
}

Layout layout_of(const PhaseContext& ctx, index_t s) {
  const auto& part = ctx.factor.partition();
  return Layout{ctx.map.group[static_cast<std::size_t>(s)].count,
                ctx.options.block_size, part.height(s), part.width(s)};
}

/// View of one supernode's factor trapezoid as seen by one rank: either
/// the shared host-resident block (rows indexed by global position) or the
/// rank's packed local copy from a DistributedFactor (rows indexed by
/// packed local offset).  Every access in the kernels below is to a row
/// the rank owns, so both forms serve the same requests.
struct LView {
  const real_t* base = nullptr;
  index_t ld = 0;
  bool packed = false;
  const Layout* lay = nullptr;

  index_t row(index_t pos) const { return packed ? lay->local_of(pos) : pos; }
  const real_t* col(index_t c) const { return base + c * ld; }
};

/// First block > K owned by rank r (blocks are owned cyclically).
index_t first_owned_block_after(index_t k, index_t r, index_t q) {
  const index_t start = k + 1;
  const index_t shift = ((r - start) % q + q) % q;
  return start + shift;
}

// ---------------------------------------------------------------------------
// Forward elimination kernels on one shared supernode.
// ---------------------------------------------------------------------------

/// Apply token x_K to every block row of rank r strictly below block K.
void fw_apply_token_to_my_blocks(exec::Process& proc, const PhaseContext& ctx,
                                 const Layout& lay, index_t r,
                                 const LView& lv, index_t k,
                                 std::span<const real_t> token, real_t* v,
                                 index_t ldv) {
  const index_t c0 = lay.col_begin(k);
  const index_t bk = lay.col_end(k) - c0;
  for (index_t i = first_owned_block_after(k, r, lay.q); i < lay.num_blocks();
       i += lay.q) {
    const index_t i0 = lay.block_begin(i);
    const index_t len = lay.block_end(i) - i0;
    // Warm the next owned block's L panel while this GEMM runs: the walk
    // is strided by q, so the hardware prefetcher does not see it coming.
    const index_t inext = i + lay.q;
    if (inext < lay.num_blocks()) {
      common::prefetch_panel(
          lv.col(c0) + lv.row(lay.block_begin(inext)),
          static_cast<std::size_t>(lay.block_end(inext) -
                                   lay.block_begin(inext)) *
              sizeof(real_t));
    }
    dense::panel_gemm(len, ctx.m, bk, -1.0, lv.col(c0) + lv.row(i0), lv.ld,
                      token.data(), bk, v + lay.local_of(i0), ldv);
    proc.compute_at(static_cast<double>(dense::gemm_flops(len, ctx.m, bk)),
                    proc.cost().panel_flop(ctx.m));
  }
}

/// Column-priority pipelined forward elimination (paper Fig. 3c).
void fw_pipelined_column_priority(exec::Process& proc, const PhaseContext& ctx,
                                  index_t s, const Layout& lay, index_t r,
                                  const LView& lv, real_t* v,
                                  index_t ldv) {
  const index_t q = lay.q;
  const exec::Group g = ctx.map.group[static_cast<std::size_t>(s)];
  const index_t next = g.base + (r + 1) % q;
  const index_t prev = g.base + (r + q - 1) % q;
  const index_t tb = lay.num_pivot_blocks();
  const index_t m = ctx.m;

  for (index_t k = 0; k < tb; ++k) {
    SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fw.block",
                      static_cast<std::int64_t>(k),
                      static_cast<std::int64_t>(s));
    const index_t owner = lay.owner_of_block(k);
    const index_t c0 = lay.col_begin(k);
    const index_t c1 = lay.col_end(k);
    const index_t bk = c1 - c0;
    std::vector<real_t> token;
    if (r == owner) {
      // The diagonal block's rows of V are fully updated; solve.
      const index_t lo = lay.local_of(c0);
      proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                          bk, m, lv.col(c0) + lv.row(c0), lv.ld, v + lo, ldv)),
                      proc.cost().panel_flop(m));
      token.resize(static_cast<std::size_t>(bk * m));
      for (index_t c = 0; c < m; ++c) {
        for (index_t i = 0; i < bk; ++i) {
          token[static_cast<std::size_t>(c * bk + i)] = v[c * ldv + lo + i];
        }
      }
      proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
      if (q > 1) {
        proc.send_values<real_t>(next, tag_fw_token(ctx, s, k), token);
      }
      // Mixed tail: below-part rows sharing block K (only the last pivot
      // block when b does not divide t).
      const index_t tail0 = c1;
      const index_t tail1 = lay.block_end(k);
      if (tail1 > tail0) {
        const index_t len = tail1 - tail0;
        dense::panel_gemm(len, m, bk, -1.0, lv.col(c0) + lv.row(tail0), lv.ld,
                          token.data(), bk, v + lay.local_of(tail0), ldv);
        proc.compute_at(static_cast<double>(dense::gemm_flops(len, m, bk)),
                        proc.cost().panel_flop(m));
      }
    } else {
      token = proc.recv_values<real_t>(prev, tag_fw_token(ctx, s, k));
      check_finite_cheap(token, "fw token", s);
      if ((r + 1) % q != owner) {
        proc.send_values<real_t>(next, tag_fw_token(ctx, s, k), token);
      }
    }
    fw_apply_token_to_my_blocks(proc, ctx, lay, r, lv, k, token, v,
                                ldv);
  }
}

/// Row-priority pipelined forward elimination (paper Fig. 3b): each rank
/// walks its own block rows in ascending order, buffering tokens.
void fw_pipelined_row_priority(exec::Process& proc, const PhaseContext& ctx,
                               index_t s, const Layout& lay, index_t r,
                               const LView& lv, real_t* v,
                               index_t ldv) {
  const index_t q = lay.q;
  const exec::Group g = ctx.map.group[static_cast<std::size_t>(s)];
  const index_t next = g.base + (r + 1) % q;
  const index_t prev = g.base + (r + q - 1) % q;
  const index_t tb = lay.num_pivot_blocks();
  const index_t m = ctx.m;

  std::vector<std::vector<real_t>> tokens(static_cast<std::size_t>(tb));
  index_t next_foreign = 0;
  auto advance_foreign = [&] {
    while (next_foreign < tb && lay.owner_of_block(next_foreign) == r) {
      ++next_foreign;
    }
  };
  advance_foreign();
  auto obtain = [&](index_t k) -> const std::vector<real_t>& {
    // Foreign tokens arrive in ascending order over the ring; my own were
    // produced when I processed their diagonal block.
    while (tokens[static_cast<std::size_t>(k)].empty()) {
      SPARTS_CHECK(next_foreign <= k, "token ordering violated");
      auto tok =
          proc.recv_values<real_t>(prev, tag_fw_token(ctx, s, next_foreign));
      check_finite_cheap(tok, "fw token", s);
      if ((r + 1) % q != lay.owner_of_block(next_foreign)) {
        proc.send_values<real_t>(next, tag_fw_token(ctx, s, next_foreign),
                                 tok);
      }
      tokens[static_cast<std::size_t>(next_foreign)] = std::move(tok);
      ++next_foreign;
      advance_foreign();
    }
    return tokens[static_cast<std::size_t>(k)];
  };
  auto apply = [&](index_t k, index_t i0, index_t len,
                   const std::vector<real_t>& tok) {
    const index_t c0 = lay.col_begin(k);
    const index_t bk = lay.col_end(k) - c0;
    dense::panel_gemm(len, m, bk, -1.0, lv.col(c0) + lv.row(i0), lv.ld, tok.data(),
                      bk, v + lay.local_of(i0), ldv);
    proc.compute_at(static_cast<double>(dense::gemm_flops(len, m, bk)),
                    proc.cost().panel_flop(m));
  };

  for (index_t i = r; i < lay.num_blocks(); i += q) {
    SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fw.row_block",
                      static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(s));
    const index_t i0 = lay.block_begin(i);
    const index_t i1 = lay.block_end(i);
    if (i < tb) {
      // Update this row block with all earlier columns, then solve its
      // diagonal block (I always own column block i of my own row block).
      for (index_t k = 0; k < i; ++k) apply(k, i0, i1 - i0, obtain(k));
      const index_t c1 = lay.col_end(i);
      const index_t bk = c1 - i0;
      const index_t lo = lay.local_of(i0);
      proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                          bk, m, lv.col(i0) + lv.row(i0), lv.ld, v + lo, ldv)),
                      proc.cost().panel_flop(m));
      std::vector<real_t> token(static_cast<std::size_t>(bk * m));
      for (index_t c = 0; c < m; ++c) {
        for (index_t ii = 0; ii < bk; ++ii) {
          token[static_cast<std::size_t>(c * bk + ii)] = v[c * ldv + lo + ii];
        }
      }
      proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
      if (q > 1) proc.send_values<real_t>(next, tag_fw_token(ctx, s, i), token);
      if (i1 > c1) {
        // Mixed tail rows of this block need my fresh token as well.
        apply(i, c1, i1 - c1, token);
      }
      tokens[static_cast<std::size_t>(i)] = std::move(token);
    } else {
      for (index_t k = 0; k < tb; ++k) apply(k, i0, i1 - i0, obtain(k));
    }
  }
  // Drain tokens this rank never needed locally (it must still forward
  // them so downstream ranks receive the full stream).
  while (next_foreign < tb) {
    auto tok =
        proc.recv_values<real_t>(prev, tag_fw_token(ctx, s, next_foreign));
    if ((r + 1) % q != lay.owner_of_block(next_foreign)) {
      proc.send_values<real_t>(next, tag_fw_token(ctx, s, next_foreign), tok);
    }
    tokens[static_cast<std::size_t>(next_foreign)] = std::move(tok);
    ++next_foreign;
    advance_foreign();
  }
}

/// Fan-out (non-pipelined) forward elimination: the owner of each pivot
/// block broadcasts the solved sub-vector to the whole group.  Costs
/// ~log q startups per block instead of overlapping them — the baseline
/// the paper's ring pipeline improves on.
void fw_fan_out(exec::Process& proc, const PhaseContext& ctx, index_t s,
                const Layout& lay, index_t r, const LView& lv,
                real_t* v, index_t ldv) {
  const exec::Group g = ctx.map.group[static_cast<std::size_t>(s)];
  const index_t tb = lay.num_pivot_blocks();
  const index_t m = ctx.m;

  for (index_t k = 0; k < tb; ++k) {
    SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fw.block",
                      static_cast<std::int64_t>(k),
                      static_cast<std::int64_t>(s));
    const index_t owner = lay.owner_of_block(k);
    const index_t c0 = lay.col_begin(k);
    const index_t c1 = lay.col_end(k);
    const index_t bk = c1 - c0;
    std::vector<real_t> token;
    if (r == owner) {
      const index_t lo = lay.local_of(c0);
      proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                          bk, m, lv.col(c0) + lv.row(c0), lv.ld, v + lo, ldv)),
                      proc.cost().panel_flop(m));
      token.resize(static_cast<std::size_t>(bk * m));
      for (index_t c = 0; c < m; ++c) {
        for (index_t i = 0; i < bk; ++i) {
          token[static_cast<std::size_t>(c * bk + i)] = v[c * ldv + lo + i];
        }
      }
      proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
      const index_t tail0 = c1;
      const index_t tail1 = lay.block_end(k);
      if (tail1 > tail0) {
        const index_t len = tail1 - tail0;
        dense::panel_gemm(len, m, bk, -1.0, lv.col(c0) + lv.row(tail0), lv.ld,
                          token.data(), bk, v + lay.local_of(tail0), ldv);
        proc.compute_at(static_cast<double>(dense::gemm_flops(len, m, bk)),
                        proc.cost().panel_flop(m));
      }
    }
    exec::broadcast_from(proc, g, owner, token, tag_fw_token(ctx, s, k));
    fw_apply_token_to_my_blocks(proc, ctx, lay, r, lv, k, token, v,
                                ldv);
  }
}

// ---------------------------------------------------------------------------
// Backward substitution kernel on one shared supernode (paper Fig. 4).
// ---------------------------------------------------------------------------

void bw_pipelined(exec::Process& proc, const PhaseContext& ctx, index_t s,
                  const Layout& lay, index_t r, const LView& lv,
                  real_t* w, index_t ldw) {
  const index_t q = lay.q;
  const exec::Group g = ctx.map.group[static_cast<std::size_t>(s)];
  // The partial-sum token for column K travels the ring in the -1
  // direction, starting at owner(K)-1 and ending at owner(K).  This order
  // matters: the chain's early links only need x-values of long-finished
  // columns, and the freshest dependency (x_{K+1}, solved by the
  // immediately preceding chain) is added at the second-to-last link — so
  // successive columns' chains overlap in a wavefront exactly as in the
  // paper's Fig. 4.  (Running the chain the other way serializes every
  // chain behind the completion of the previous column: tb*q hops instead
  // of ~q + tb.)
  const index_t next = g.base + (r + q - 1) % q;
  const index_t prev = g.base + (r + 1) % q;
  const index_t tb = lay.num_pivot_blocks();
  const index_t m = ctx.m;

  for (index_t k = tb - 1; k >= 0; --k) {
    SPARTS_TRACE_SPAN(proc, obs::Category::compute, "bw.block",
                      static_cast<std::int64_t>(k),
                      static_cast<std::int64_t>(s));
    const index_t owner = lay.owner_of_block(k);
    const index_t c0 = lay.col_begin(k);
    const index_t c1 = lay.col_end(k);
    const index_t bk = c1 - c0;

    // Local partial sum: L(I, K)^T * w_I over my block rows below K.
    std::vector<real_t> acc(static_cast<std::size_t>(bk * m), 0.0);
    for (index_t i = first_owned_block_after(k, r, q); i < lay.num_blocks();
         i += q) {
      const index_t i0 = lay.block_begin(i);
      const index_t len = lay.block_end(i) - i0;
      // Warm the next owned block's L panel (q-strided walk, see the
      // forward sweep).
      const index_t inext = i + q;
      if (inext < lay.num_blocks()) {
        common::prefetch_panel(
            lv.col(c0) + lv.row(lay.block_begin(inext)),
            static_cast<std::size_t>(lay.block_end(inext) -
                                     lay.block_begin(inext)) *
                sizeof(real_t));
      }
      dense::panel_gemm_at(bk, m, len, 1.0, lv.col(c0) + lv.row(i0), lv.ld,
                           w + lay.local_of(i0), ldw, acc.data(), bk);
      proc.compute_at(static_cast<double>(dense::gemm_flops(bk, m, len)),
                      proc.cost().panel_flop(m));
    }
    if (r == owner && lay.block_end(k) > c1) {
      // Mixed tail rows of block K (below-part rows in the pivot block).
      const index_t len = lay.block_end(k) - c1;
      dense::panel_gemm_at(bk, m, len, 1.0, lv.col(c0) + lv.row(c1), lv.ld,
                           w + lay.local_of(c1), ldw, acc.data(), bk);
      proc.compute_at(static_cast<double>(dense::gemm_flops(bk, m, len)),
                      proc.cost().panel_flop(m));
    }

    const index_t chain_pos = ((k - 1 - r) % q + q) % q;
    if (r != owner) {
      if (chain_pos != 0) {
        auto in = proc.recv_values<real_t>(prev, tag_bw_token(ctx, s, k));
        check_finite_cheap(in, "bw token", s);
        SPARTS_CHECK(in.size() == acc.size());
        for (std::size_t z = 0; z < acc.size(); ++z) acc[z] += in[z];
        proc.compute_at(static_cast<double>(acc.size()),
                        proc.cost().t_mem);
      }
      proc.send_values<real_t>(next, tag_bw_token(ctx, s, k), acc);
    } else {
      if (q > 1) {
        auto in = proc.recv_values<real_t>(prev, tag_bw_token(ctx, s, k));
        check_finite_cheap(in, "bw token", s);
        SPARTS_CHECK(in.size() == acc.size());
        for (std::size_t z = 0; z < acc.size(); ++z) acc[z] += in[z];
        proc.compute_at(static_cast<double>(acc.size()),
                        proc.cost().t_mem);
      }
      // w_K <- L(K,K)^{-T} (w_K - acc).
      const index_t lo = lay.local_of(c0);
      for (index_t c = 0; c < m; ++c) {
        for (index_t i = 0; i < bk; ++i) {
          w[c * ldw + lo + i] -= acc[static_cast<std::size_t>(c * bk + i)];
        }
      }
      proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
      proc.compute_at(
          static_cast<double>(dense::panel_trsm_lower_transposed(
              bk, m, lv.col(c0) + lv.row(c0), lv.ld, w + lo, ldw)),
          proc.cost().panel_flop(m));
    }
  }
}

/// Fan-in (non-pipelined) backward substitution: each column's partial
/// sums are combined with a log-q reduction to the diagonal owner instead
/// of flowing along the ring.
void bw_fan_in(exec::Process& proc, const PhaseContext& ctx, index_t s,
               const Layout& lay, index_t r, const LView& lv,
               real_t* w, index_t ldw) {
  const index_t q = lay.q;
  const exec::Group g = ctx.map.group[static_cast<std::size_t>(s)];
  const index_t tb = lay.num_pivot_blocks();
  const index_t m = ctx.m;

  for (index_t k = tb - 1; k >= 0; --k) {
    SPARTS_TRACE_SPAN(proc, obs::Category::compute, "bw.block",
                      static_cast<std::int64_t>(k),
                      static_cast<std::int64_t>(s));
    const index_t owner = lay.owner_of_block(k);
    const index_t c0 = lay.col_begin(k);
    const index_t c1 = lay.col_end(k);
    const index_t bk = c1 - c0;

    std::vector<real_t> acc(static_cast<std::size_t>(bk * m), 0.0);
    for (index_t i = first_owned_block_after(k, r, q); i < lay.num_blocks();
         i += q) {
      const index_t i0 = lay.block_begin(i);
      const index_t len = lay.block_end(i) - i0;
      // Warm the next owned block's L panel (q-strided walk, see the
      // forward sweep).
      const index_t inext = i + q;
      if (inext < lay.num_blocks()) {
        common::prefetch_panel(
            lv.col(c0) + lv.row(lay.block_begin(inext)),
            static_cast<std::size_t>(lay.block_end(inext) -
                                     lay.block_begin(inext)) *
                sizeof(real_t));
      }
      dense::panel_gemm_at(bk, m, len, 1.0, lv.col(c0) + lv.row(i0), lv.ld,
                           w + lay.local_of(i0), ldw, acc.data(), bk);
      proc.compute_at(static_cast<double>(dense::gemm_flops(bk, m, len)),
                      proc.cost().panel_flop(m));
    }
    if (r == owner && lay.block_end(k) > c1) {
      const index_t len = lay.block_end(k) - c1;
      dense::panel_gemm_at(bk, m, len, 1.0, lv.col(c0) + lv.row(c1), lv.ld,
                           w + lay.local_of(c1), ldw, acc.data(), bk);
      proc.compute_at(static_cast<double>(dense::gemm_flops(bk, m, len)),
                      proc.cost().panel_flop(m));
    }
    exec::reduce_sum_to(proc, g, owner, acc, tag_bw_token(ctx, s, k));
    if (r == owner) {
      const index_t lo = lay.local_of(c0);
      for (index_t c = 0; c < m; ++c) {
        for (index_t i = 0; i < bk; ++i) {
          w[c * ldw + lo + i] -= acc[static_cast<std::size_t>(c * bk + i)];
        }
      }
      proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
      proc.compute_at(
          static_cast<double>(dense::panel_trsm_lower_transposed(
              bk, m, lv.col(c0) + lv.row(c0), lv.ld, w + lo, ldw)),
          proc.cost().panel_flop(m));
    }
  }
}

// ---------------------------------------------------------------------------
// Shared helpers for both phases.
// ---------------------------------------------------------------------------

/// Allocate (if needed) the packed local fragment for supernode s on this
/// rank and initialize its pivot positions from `source` (B for forward,
/// Y for backward); below positions start at zero.
std::vector<real_t>& ensure_buffer(const PhaseContext& ctx, BufferMap& bufs,
                                   index_t s, index_t r,
                                   std::span<const real_t> source,
                                   index_t n) {
  auto it = bufs.find(s);
  if (it != bufs.end()) return it->second;
  const Layout lay = layout_of(ctx, s);
  const auto& part = ctx.factor.partition();
  const index_t nloc = lay.local_count(r);
  auto& v = bufs[s];
  v.assign(static_cast<std::size_t>(nloc * ctx.m), 0.0);
  const auto rows = part.row_indices(s);
  for (index_t i = 0; i < lay.t; ++i) {
    if (lay.owner_of(i) != r) continue;
    const index_t lo = lay.local_of(i);
    const index_t row = rows[static_cast<std::size_t>(i)];
    for (index_t c = 0; c < ctx.m; ++c) {
      v[static_cast<std::size_t>(c * nloc + lo)] = source[c * n + row];
    }
  }
  return v;
}

/// Build the factor view for (rank, supernode): packed local copy when a
/// DistributedFactor is attached, shared host block otherwise.
LView make_view(const numeric::SupernodalFactor& factor,
                const DistributedFactor* local_values, index_t w, index_t s,
                const Layout& lay) {
  LView lv;
  lv.lay = &lay;
  if (local_values != nullptr) {
    const auto& block = local_values->local_block(w, s);
    lv.base = block.data();
    lv.ld = local_values->local_rows(w, s);
    lv.packed = true;
  } else {
    lv.base = factor.block(s).data();
    lv.ld = lay.ns;
    lv.packed = false;
  }
  return lv;
}

}  // namespace

int DistributedTrisolver::tag_limit() const {
  const auto& part = factor_.partition();
  const index_t nsup = part.num_supernodes();
  if (nsup == 0) return 0;
  // Every solver tag is 4 * <global block id> + {0..3} (contribution and
  // copy tags use the supernode id, which is <= its first block id), so
  // 4 * total blocks bounds them all.
  const index_t b = options_.block_size;
  const index_t total = block_base_.back() + (part.width(nsup - 1) + b - 1) / b;
  return static_cast<int>(4 * total);
}

PhaseReport DistributedTrisolver::forward(exec::Comm& machine,
                                          std::span<const real_t> b_in,
                                          std::span<real_t> y_out,
                                          index_t m) const {
  const auto& part = factor_.partition();
  const index_t n = part.n();
  SPARTS_CHECK(machine.nprocs() == map_.p,
               "machine size does not match the mapping");
  SPARTS_CHECK(static_cast<index_t>(b_in.size()) == n * m);
  SPARTS_CHECK(static_cast<index_t>(y_out.size()) == n * m);

  PhaseContext ctx{factor_, map_, options_, children_, block_base_, m};

  // The SPMD sweep is a lowering of the forward-elimination DAG (edge
  // c -> s when c's rectangle update feeds rows of s): each rank walks the
  // graph's deterministic topological schedule — exactly ascending
  // supernode order for this child -> ancestor graph — and executes the
  // supernodes its group owns.
  const exec::TaskGraph fdag = build_forward_dag(part);
  const std::vector<exec::TaskId> schedule = fdag.topo_schedule();

  std::vector<BufferMap> rank_bufs(static_cast<std::size_t>(map_.p));

  auto spmd = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    BufferMap& bufs = rank_bufs[static_cast<std::size_t>(w)];
    for (const index_t s : schedule) {
      const exec::Group g = map_.group[static_cast<std::size_t>(s)];
      if (!g.contains(w)) continue;
      exec::note_progress(proc, "fw supernode " + std::to_string(s));
      SPARTS_TRACE_SPAN(proc, obs::Category::compute, "fw.supernode",
                        static_cast<std::int64_t>(s),
                        static_cast<std::int64_t>(g.count));
      // Fusion hook: runs before any factor block of s is read, so a
      // fused redistribution can deliver the supernode's 1-D fragments
      // just in time for the solve below (tags disjoint by tag_limit()).
      if (forward_prologue_) forward_prologue_(proc, s);
      const index_t r = w - g.base;
      const Layout lay = layout_of(ctx, s);
      const index_t nloc = lay.local_count(r);
      auto& v = ensure_buffer(ctx, bufs, s, r, b_in, n);

      // Receive remote child contributions.
      for (index_t c : children_[static_cast<std::size_t>(s)]) {
        const ChildRouting& cr = routing_[static_cast<std::size_t>(c)];
        for (const auto& [src, dst] : cr.pairs) {
          if (dst != w) continue;
          auto msg = proc.recv(src, tag_fw_contrib(c));
          RhsPacket pkt = unpack_rhs(msg.payload, m);
          check_finite_cheap(pkt.values, "fw child contribution", c);
          // The child's tail already holds -L21*y, so contributions add.
          for (std::size_t z = 0; z < pkt.positions.size(); ++z) {
            const index_t lo = lay.local_of(pkt.positions[z]);
            for (index_t col = 0; col < m; ++col) {
              v[static_cast<std::size_t>(col * nloc + lo)] +=
                  pkt.values[z * static_cast<std::size_t>(m) +
                             static_cast<std::size_t>(col)];
            }
          }
          proc.compute_at(static_cast<double>(pkt.positions.size()) *
                              static_cast<double>(m),
                          proc.cost().t_mem);
        }
      }

      const LView lv = make_view(factor_, local_values_, w, s, lay);
      if (g.count == 1) {
        // Entire trapezoid local: dense triangular solve + rectangle update.
        proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                            lay.t, m, lv.base, lv.ld, v.data(), nloc)),
                        proc.cost().panel_flop(m));
        const index_t below = lay.ns - lay.t;
        if (below > 0) {
          dense::panel_gemm(below, m, lay.t, -1.0, lv.base + lv.row(lay.t),
                            lv.ld, v.data(), nloc, v.data() + lay.t, nloc);
          proc.compute_at(
              static_cast<double>(dense::gemm_flops(below, m, lay.t)),
              proc.cost().panel_flop(m));
        }
      } else if (options_.pipelining == Pipelining::column_priority) {
        fw_pipelined_column_priority(proc, ctx, s, lay, r, lv, v.data(),
                                     nloc);
      } else if (options_.pipelining == Pipelining::row_priority) {
        fw_pipelined_row_priority(proc, ctx, s, lay, r, lv, v.data(), nloc);
      } else {
        fw_fan_out(proc, ctx, s, lay, r, lv, v.data(), nloc);
      }

      // Publish Y at my pivot positions.
      const auto rows = part.row_indices(s);
      for (index_t i = 0; i < lay.t; ++i) {
        if (lay.owner_of(i) != r) continue;
        const index_t lo = lay.local_of(i);
        const index_t row = rows[static_cast<std::size_t>(i)];
        for (index_t c = 0; c < m; ++c) {
          y_out[c * n + row] = v[static_cast<std::size_t>(c * nloc + lo)];
        }
      }

      // Route the tail to the parent.
      const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
      if (parent != -1) {
        const ChildRouting& cr = routing_[static_cast<std::size_t>(s)];
        const Layout play = layout_of(ctx, parent);
        const exec::Group pg =
            map_.group[static_cast<std::size_t>(parent)];
        const index_t below = lay.ns - lay.t;
        std::map<index_t, RhsPacket> buckets;
        for (index_t k = 0; k < below; ++k) {
          const index_t pos = lay.t + k;
          if (lay.owner_of(pos) != r) continue;
          const index_t ppos = cr.parent_pos[static_cast<std::size_t>(k)];
          const index_t dst = pg.base + play.owner_of(ppos);
          const index_t lo = lay.local_of(pos);
          if (dst == w) {
            // Local hand-off: the tail holds -L21*y, so it adds directly
            // into the parent fragment.
            auto& pv = ensure_buffer(ctx, bufs, parent, w - pg.base, b_in, n);
            const index_t pnloc = play.local_count(w - pg.base);
            const index_t plo = play.local_of(ppos);
            for (index_t c = 0; c < m; ++c) {
              pv[static_cast<std::size_t>(c * pnloc + plo)] +=
                  v[static_cast<std::size_t>(c * nloc + lo)];
            }
            proc.compute_at(static_cast<double>(m), proc.cost().t_mem);
          } else {
            RhsPacket& pkt = buckets[dst];
            pkt.positions.push_back(ppos);
            for (index_t c = 0; c < m; ++c) {
              pkt.values.push_back(
                  v[static_cast<std::size_t>(c * nloc + lo)]);
            }
          }
        }
        for (auto& [dst, pkt] : buckets) {
          proc.send_owned(dst, tag_fw_contrib(s), pack_rhs(pkt, m));
        }
      }
      bufs.erase(s);
    }
  };

  PhaseReport report;
  report.stats = machine.run(spmd);
  report.graph = fdag.analyze();
  return report;
}

PhaseReport DistributedTrisolver::backward(exec::Comm& machine,
                                           std::span<const real_t> y_in,
                                           std::span<real_t> x_out,
                                           index_t m) const {
  const auto& part = factor_.partition();
  const index_t n = part.n();
  SPARTS_CHECK(machine.nprocs() == map_.p,
               "machine size does not match the mapping");
  SPARTS_CHECK(static_cast<index_t>(y_in.size()) == n * m);
  SPARTS_CHECK(static_cast<index_t>(x_out.size()) == n * m);

  PhaseContext ctx{factor_, map_, options_, children_, block_base_, m};

  // Backward lowering: the backward DAG is the forward DAG with every edge
  // reversed, so the reverse of the forward schedule — descending
  // supernode order — is a valid topological order of it, and the one that
  // reproduces the historical top-down sweep byte for byte.  (The backward
  // graph's own smallest-id-first schedule would hoist below-free
  // supernodes early.)
  const exec::TaskGraph bdag = build_backward_dag(part);
  std::vector<exec::TaskId> schedule = build_forward_dag(part).topo_schedule();
  std::reverse(schedule.begin(), schedule.end());

  std::vector<BufferMap> rank_bufs(static_cast<std::size_t>(map_.p));

  auto spmd = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    BufferMap& bufs = rank_bufs[static_cast<std::size_t>(w)];
    for (const index_t s : schedule) {
      const exec::Group g = map_.group[static_cast<std::size_t>(s)];
      if (!g.contains(w)) continue;
      exec::note_progress(proc, "bw supernode " + std::to_string(s));
      SPARTS_TRACE_SPAN(proc, obs::Category::compute, "bw.supernode",
                        static_cast<std::int64_t>(s),
                        static_cast<std::int64_t>(g.count));
      const index_t r = w - g.base;
      const Layout lay = layout_of(ctx, s);
      const index_t nloc = lay.local_count(r);
      auto& wv = ensure_buffer(ctx, bufs, s, r, y_in, n);

      // Receive the below-part values from the parent.
      const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
      if (parent != -1) {
        const ChildRouting& cr = routing_[static_cast<std::size_t>(s)];
        // Backward messages travel parent -> child: the pair roles swap.
        for (const auto& [child_rank, parent_rank] : cr.pairs) {
          if (child_rank != w) continue;
          auto msg = proc.recv(parent_rank, tag_bw_copy(s));
          RhsPacket pkt = unpack_rhs(msg.payload, m);
          check_finite_cheap(pkt.values, "bw parent values", s);
          for (std::size_t z = 0; z < pkt.positions.size(); ++z) {
            const index_t lo = lay.local_of(pkt.positions[z]);
            for (index_t col = 0; col < m; ++col) {
              wv[static_cast<std::size_t>(col * nloc + lo)] =
                  pkt.values[z * static_cast<std::size_t>(m) +
                             static_cast<std::size_t>(col)];
            }
          }
          proc.compute_at(static_cast<double>(pkt.positions.size()) *
                              static_cast<double>(m),
                          proc.cost().t_mem);
        }
      }

      const LView lv = make_view(factor_, local_values_, w, s, lay);
      if (g.count == 1) {
        const index_t below = lay.ns - lay.t;
        if (below > 0) {
          dense::panel_gemm_at(lay.t, m, below, -1.0,
                               lv.base + lv.row(lay.t), lv.ld,
                               wv.data() + lay.t, nloc, wv.data(), nloc);
          proc.compute_at(
              static_cast<double>(dense::gemm_flops(lay.t, m, below)),
              proc.cost().panel_flop(m));
        }
        proc.compute_at(
            static_cast<double>(dense::panel_trsm_lower_transposed(
                lay.t, m, lv.base, lv.ld, wv.data(), nloc)),
            proc.cost().panel_flop(m));
      } else if (options_.pipelining == Pipelining::fan_out) {
        bw_fan_in(proc, ctx, s, lay, r, lv, wv.data(), nloc);
      } else {
        bw_pipelined(proc, ctx, s, lay, r, lv, wv.data(), nloc);
      }

      // Publish X at my pivot positions.
      const auto rows = part.row_indices(s);
      for (index_t i = 0; i < lay.t; ++i) {
        if (lay.owner_of(i) != r) continue;
        const index_t lo = lay.local_of(i);
        const index_t row = rows[static_cast<std::size_t>(i)];
        for (index_t c = 0; c < m; ++c) {
          x_out[c * n + row] = wv[static_cast<std::size_t>(c * nloc + lo)];
        }
      }

      // Send each child the values its below-part positions need.
      for (index_t c : children_[static_cast<std::size_t>(s)]) {
        const ChildRouting& cr = routing_[static_cast<std::size_t>(c)];
        const Layout clay = layout_of(ctx, c);
        const exec::Group cg = map_.group[static_cast<std::size_t>(c)];
        std::map<index_t, RhsPacket> buckets;
        const index_t cbelow = clay.ns - clay.t;
        for (index_t k = 0; k < cbelow; ++k) {
          const index_t ppos = cr.parent_pos[static_cast<std::size_t>(k)];
          if (lay.owner_of(ppos) != r) continue;
          const index_t cpos = clay.t + k;
          const index_t dst = cg.base + clay.owner_of(cpos);
          const index_t lo = lay.local_of(ppos);
          if (dst == w) {
            auto& cv = ensure_buffer(ctx, bufs, c, w - cg.base, y_in, n);
            const index_t cnloc = clay.local_count(w - cg.base);
            const index_t clo = clay.local_of(cpos);
            for (index_t col = 0; col < m; ++col) {
              cv[static_cast<std::size_t>(col * cnloc + clo)] =
                  wv[static_cast<std::size_t>(col * nloc + lo)];
            }
            proc.compute_at(static_cast<double>(m), proc.cost().t_mem);
          } else {
            RhsPacket& pkt = buckets[dst];
            pkt.positions.push_back(cpos);
            for (index_t col = 0; col < m; ++col) {
              pkt.values.push_back(
                  wv[static_cast<std::size_t>(col * nloc + lo)]);
            }
          }
        }
        for (auto& [dst, pkt] : buckets) {
          proc.send_owned(dst, tag_bw_copy(c), pack_rhs(pkt, m));
        }
      }
      bufs.erase(s);
    }
  };

  PhaseReport report;
  report.stats = machine.run(spmd);
  report.graph = bdag.analyze();
  return report;
}

std::pair<PhaseReport, PhaseReport> DistributedTrisolver::solve(
    exec::Comm& machine, std::span<const real_t> b_in,
    std::span<real_t> x_out, index_t m) const {
  const index_t n = factor_.partition().n();
  std::vector<real_t> y(static_cast<std::size_t>(n * m), 0.0);
  PhaseReport fw = forward(machine, b_in, y, m);
  PhaseReport bw = backward(machine, y, x_out, m);
  return {fw, bw};
}

}  // namespace sparts::partrisolve
