// The paper's contribution: parallel pipelined forward elimination and
// backward substitution for supernodal sparse triangular systems on a
// distributed-memory machine (paper §2).
//
// Structure of the computation:
//   * The supernodal elimination tree is mapped subtree-to-subcube: each
//     supernode is owned by a group (subcube) of processors; sequential
//     subtrees run entirely on one processor.
//   * A supernode shared by q processors is distributed 1-D row-wise
//     block-cyclic with block size b and processed with the pipelined
//     algorithm of Figs. 3-4: solved sub-vectors of size b x m circulate
//     around the group's ring while each processor updates its own block
//     rows (column-priority) or block rows in row order (row-priority).
//   * Between a supernode and its parent, right-hand-side fragments are
//     routed point-to-point from each fragment's owner to the owner of the
//     corresponding position in the parent's distribution.
//
// Forward elimination walks the tree bottom-up producing Y (L Y = B);
// backward substitution walks top-down producing X (L^T X = Y).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/supernodal_factor.hpp"
#include "partrisolve/dist_factor.hpp"
#include "exec/process.hpp"
#include "exec/taskgraph.hpp"

namespace sparts::partrisolve {

/// Pipelining variant for the shared-supernode kernels.
enum class Pipelining {
  column_priority,  ///< finish a column's updates before the next (Fig 3c)
  row_priority,     ///< finish a row before moving to the next (Fig 3b)
  fan_out,          ///< no pipeline: broadcast each solved block to the
                    ///< whole group (the naive alternative the paper's
                    ///< ring pipeline improves on; ablation baseline)
};

struct Options {
  index_t block_size = 8;  ///< b of the block-cyclic mapping
  Pipelining pipelining = Pipelining::column_priority;
};

/// Result of one distributed solve phase.
struct PhaseReport {
  exec::RunStats stats;
  /// Shape of the supernode DAG the phase walked (forward: child ->
  /// ancestor contribution edges; backward: the same edges reversed).
  /// See solve_dag.hpp — the task backend executes the same graphs.
  exec::GraphStats graph;
  double time() const { return stats.parallel_time(); }
};

/// Distributed triangular solver bound to a factor and a processor mapping.
///
/// The factor's numeric blocks are shared read-only across the virtual
/// processors (the factor is already distributed conformally after
/// factorization + redistribution; see redist/).  Right-hand-side data
/// flows through explicit simulated messages.
class DistributedTrisolver {
 public:
  DistributedTrisolver(const numeric::SupernodalFactor& factor,
                       const mapping::SubcubeMapping& map, Options options);

  /// Strict-distribution variant: L values are read from each rank's
  /// private packed storage (`local_values`, e.g. produced by the 2-D ->
  /// 1-D redistribution) instead of the shared factor.  `factor` still
  /// provides the symbolic structure.  `local_values` must outlive the
  /// solver and match options.block_size.
  DistributedTrisolver(const numeric::SupernodalFactor& factor,
                       const DistributedFactor* local_values,
                       const mapping::SubcubeMapping& map, Options options);

  /// Solve L Y = B on `machine` (machine.nprocs() must equal map.p).
  /// `b_in` is n x m column-major; `y_out` receives Y.
  PhaseReport forward(exec::Comm& machine, std::span<const real_t> b_in,
                      std::span<real_t> y_out, index_t m) const;

  /// Solve L^T X = Y; `y_in` from forward(), `x_out` receives X.
  PhaseReport backward(exec::Comm& machine, std::span<const real_t> y_in,
                       std::span<real_t> x_out, index_t m) const;

  /// Convenience: forward then backward on the same machine.
  /// Returns {forward, backward} reports.
  std::pair<PhaseReport, PhaseReport> solve(exec::Comm& machine,
                                            std::span<const real_t> b_in,
                                            std::span<real_t> x_out,
                                            index_t m) const;

  const Options& options() const { return options_; }

  /// First tag value strictly above every tag forward()/backward() can
  /// emit (contribution, copy, and token tags are all derived from global
  /// block ids below the total pivot-block count).  Traffic injected into
  /// a solve phase from outside the solver — e.g. the fused 2-D -> 1-D
  /// redistribution — must use tags >= this so it cannot collide with the
  /// solver's own messages.
  int tag_limit() const;

  /// Install a per-supernode prologue that forward() invokes at each
  /// rank's first (and only) touch of supernode s — after the rank is
  /// known to belong to s's group, before any factor block of s is read.
  /// This is the hook for pipeline fusion: the solver-level driver uses
  /// it to run redist::redistribute_supernode inside the forward sweep,
  /// so the 2-D -> 1-D conversion overlaps the solve instead of running
  /// as a separate barrier phase.  The prologue's messages must use tags
  /// >= tag_limit().
  void set_forward_prologue(
      std::function<void(exec::Process&, index_t)> prologue) {
    forward_prologue_ = std::move(prologue);
  }

 private:
  struct ChildRouting {
    /// For below-position k of child c (0-based), the position of that row
    /// inside the parent's trapezoid.
    std::vector<index_t> parent_pos;
    /// Unique (child_world_rank, parent_world_rank) communication pairs,
    /// ascending.  Pairs with equal src and dst (local hand-off) excluded.
    std::vector<std::pair<index_t, index_t>> pairs;
  };

  const numeric::SupernodalFactor& factor_;
  const DistributedFactor* local_values_ = nullptr;
  const mapping::SubcubeMapping& map_;
  Options options_;
  std::vector<std::vector<index_t>> children_;  ///< per supernode
  std::vector<ChildRouting> routing_;           ///< per supernode (to parent)
  /// Prefix sums of pivot-block counts: block_base_[s] is the global id
  /// of supernode s's first pivot block.  Token tags are derived from
  /// global block ids so every in-flight token has a unique tag.
  std::vector<index_t> block_base_;
  /// Optional fusion hook; see set_forward_prologue().
  std::function<void(exec::Process&, index_t)> forward_prologue_;
};

}  // namespace sparts::partrisolve
