#include "partrisolve/solve_dag.hpp"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "common/checks.hpp"
#include "common/timer.hpp"
#include "dense/kernels.hpp"

namespace sparts::partrisolve {

namespace {

/// One source supernode's contiguous run of below rows owned by one target
/// supernode: below-row indices [lo, hi) of `source` land in the pivot
/// range of the target.
struct ContribSegment {
  index_t source;
  index_t lo;
  index_t hi;
};

/// incoming[s] = the segments targeting s, ascending by source (the order
/// the forward bodies must apply them in for bit-identical sums).
std::vector<std::vector<ContribSegment>> contribution_segments(
    const symbolic::SupernodePartition& part) {
  const index_t nsup = part.num_supernodes();
  const index_t n = part.n();
  std::vector<index_t> owner(static_cast<std::size_t>(n), -1);
  for (index_t s = 0; s < nsup; ++s) {
    const index_t j0 = part.first_col[static_cast<std::size_t>(s)];
    for (index_t k = 0; k < part.width(s); ++k) {
      owner[static_cast<std::size_t>(j0 + k)] = s;
    }
  }
  std::vector<std::vector<ContribSegment>> incoming(
      static_cast<std::size_t>(nsup));
  for (index_t c = 0; c < nsup; ++c) {
    const auto rows = part.row_indices(c);
    const index_t t = part.width(c);
    const index_t below = part.height(c) - t;
    // Rows ascend, so owners are non-decreasing: one segment per target.
    index_t k = 0;
    while (k < below) {
      const index_t target =
          owner[static_cast<std::size_t>(rows[static_cast<std::size_t>(t + k)])];
      SPARTS_DCHECK(target > c);
      index_t end = k + 1;
      while (end < below &&
             owner[static_cast<std::size_t>(
                 rows[static_cast<std::size_t>(t + end)])] == target) {
        ++end;
      }
      incoming[static_cast<std::size_t>(target)].push_back(
          ContribSegment{c, k, end});
      k = end;
    }
  }
  return incoming;
}

exec::TaskGraph build_solve_dag(const symbolic::SupernodePartition& part,
                                exec::TaskKind kind) {
  exec::TaskGraph g;
  const index_t nsup = part.num_supernodes();
  const bool forward = kind == exec::TaskKind::fwd_solve;
  for (index_t s = 0; s < nsup; ++s) {
    const index_t t = part.width(s);
    const index_t below = part.height(s) - t;
    exec::TaskNode node;
    node.label = (forward ? "fw:" : "bw:") + std::to_string(s);
    node.kind = kind;
    // Per-right-hand-side flop estimate: triangle solve + rectangle gemm.
    node.cost = static_cast<double>(dense::trsm_panel_flops(t, 1) +
                                    dense::gemm_flops(below, 1, t));
    node.item = s;
    g.add_task(std::move(node));
  }
  const auto incoming = contribution_segments(part);
  for (index_t s = 0; s < nsup; ++s) {
    for (const ContribSegment& seg : incoming[static_cast<std::size_t>(s)]) {
      if (forward) {
        g.add_edge(seg.source, s);
      } else {
        g.add_edge(s, seg.source);
      }
    }
  }
  return g;
}

}  // namespace

exec::TaskGraph build_forward_dag(const symbolic::SupernodePartition& part) {
  return build_solve_dag(part, exec::TaskKind::fwd_solve);
}

exec::TaskGraph build_backward_dag(const symbolic::SupernodePartition& part) {
  return build_solve_dag(part, exec::TaskKind::bwd_solve);
}

void taskdag_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                   const exec::TaskScheduler::Config& workers,
                   TaskSolveReport* report) {
  const auto& part = l.partition();
  const index_t nsup = part.num_supernodes();
  const index_t n = part.n();
  const auto incoming = contribution_segments(part);

  // contrib[c] = c's rectangle product (below x m column-major), buffered
  // instead of scattered; readers[c] counts the targets yet to apply it.
  std::vector<std::vector<real_t>> contrib(static_cast<std::size_t>(nsup));
  std::vector<std::atomic<index_t>> readers(static_cast<std::size_t>(nsup));
  for (index_t s = 0; s < nsup; ++s) {
    for (const ContribSegment& seg : incoming[static_cast<std::size_t>(s)]) {
      readers[static_cast<std::size_t>(seg.source)].fetch_add(
          1, std::memory_order_relaxed);
    }
  }
  std::atomic<nnz_t> flops{0};

  exec::TaskGraph fw = build_forward_dag(part);
  for (exec::TaskId id = 0; id < fw.num_tasks(); ++id) {
    const index_t s = fw.node(id).item;
    fw.node(id).body = [&, s] {
      // Apply buffered subtractions destined to my rows, ascending source
      // order — the sequential scatter sequence for every entry.
      for (const ContribSegment& seg :
           incoming[static_cast<std::size_t>(s)]) {
        const auto srows = part.row_indices(seg.source);
        const index_t st = part.width(seg.source);
        const index_t sbelow = part.height(seg.source) - st;
        const auto& tv = contrib[static_cast<std::size_t>(seg.source)];
        for (index_t c = 0; c < m; ++c) {
          real_t* bc = b + c * n;
          const real_t* tc =
              tv.data() + static_cast<std::size_t>(c) * sbelow;
          for (index_t i = seg.lo; i < seg.hi; ++i) {
            bc[srows[static_cast<std::size_t>(st + i)]] -= tc[i];
          }
        }
        if (readers[static_cast<std::size_t>(seg.source)].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
          contrib[static_cast<std::size_t>(seg.source)] = {};
        }
      }

      const index_t t = part.width(s);
      const index_t ns = part.height(s);
      const index_t j0 = part.first_col[static_cast<std::size_t>(s)];
      auto block = l.block(s);
      nnz_t f =
          dense::panel_trsm_lower(t, m, block.data(), ns, b + j0, n);
      const index_t below = ns - t;
      if (below > 0) {
        auto& tv = contrib[static_cast<std::size_t>(s)];
        tv.assign(static_cast<std::size_t>(below) * m, 0.0);
        dense::panel_gemm(below, m, t, 1.0, block.data() + t, ns, b + j0, n,
                          tv.data(), below);
        f += dense::gemm_flops(below, m, t);
      }
      flops.fetch_add(f, std::memory_order_relaxed);
    };
  }

  exec::TaskGraph bw = build_backward_dag(part);
  for (exec::TaskId id = 0; id < bw.num_tasks(); ++id) {
    const index_t s = bw.node(id).item;
    bw.node(id).body = [&, s] {
      const index_t t = part.width(s);
      const index_t ns = part.height(s);
      const index_t j0 = part.first_col[static_cast<std::size_t>(s)];
      auto block = l.block(s);
      const index_t below = ns - t;
      nnz_t f = 0;
      if (below > 0) {
        // Gather ancestor rows of X (finalized by my predecessors), then
        // X1 -= L21^T * X2.
        const auto rows = part.row_indices(s);
        std::vector<real_t> temp(static_cast<std::size_t>(below) * m, 0.0);
        for (index_t c = 0; c < m; ++c) {
          const real_t* bc = b + c * n;
          real_t* tc = temp.data() + static_cast<std::size_t>(c) * below;
          for (index_t i = 0; i < below; ++i) {
            tc[i] = bc[rows[static_cast<std::size_t>(t + i)]];
          }
        }
        dense::panel_gemm_at(t, m, below, -1.0, block.data() + t, ns,
                             temp.data(), below, b + j0, n);
        f += dense::gemm_flops(t, m, below);
      }
      f += dense::panel_trsm_lower_transposed(t, m, block.data(), ns, b + j0,
                                              n);
      flops.fetch_add(f, std::memory_order_relaxed);
    };
  }

  WallTimer timer;
  exec::TaskScheduler scheduler(workers);
  scheduler.run_graph(fw);
  scheduler.run_graph(bw);
  const double seconds = timer.seconds();

  if (report != nullptr) {
    report->forward = fw.analyze();
    report->backward = bw.analyze();
    report->scheduler = scheduler.stats();
    report->stats.flops = flops.load(std::memory_order_relaxed);
    report->seconds = seconds;
  }
}

}  // namespace sparts::partrisolve
