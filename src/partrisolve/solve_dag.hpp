// The triangular solves expressed as explicit supernode task DAGs.
//
// Forward elimination: supernode c's rectangle update subtracts into
// right-hand-side rows owned by ancestor supernodes, so the DAG has an
// edge c -> s for every ancestor s that owns one of c's below rows.
// Backward substitution reads those same rows after their owners finalized
// them, so its DAG is the forward DAG with every edge reversed.
//
// taskdag_solve executes both phases on a work-stealing TaskScheduler and
// is bit-identical to trisolve::full_solve:
//   * forward — a supernode's task buffers its rectangle product
//     (temp = L21 * X1) instead of scattering it; each *target* supernode
//     applies the buffered subtractions destined to its rows in ascending
//     source order before its own triangular solve.  For any single
//     right-hand-side entry this replays the sequential subtraction
//     sequence exactly (sources ascending, one touch per source), and the
//     sequence of values every trsm reads is therefore unchanged;
//   * backward — a task reads only rows its ancestors have finalized and
//     writes only its own rows, so the per-supernode arithmetic is the
//     sequential arithmetic verbatim under any topological order.
#pragma once

#include "exec/task_scheduler.hpp"
#include "exec/taskgraph.hpp"
#include "numeric/supernodal_factor.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts::partrisolve {

/// Forward-elimination DAG: task id == supernode id (kind fwd_solve),
/// edge c -> s when c's rectangle update touches rows of s.
exec::TaskGraph build_forward_dag(const symbolic::SupernodePartition& part);

/// Backward-substitution DAG: the forward DAG reversed (kind bwd_solve).
exec::TaskGraph build_backward_dag(const symbolic::SupernodePartition& part);

/// What taskdag_solve measured.
struct TaskSolveReport {
  exec::GraphStats forward;        ///< shape of the forward DAG
  exec::GraphStats backward;       ///< shape of the backward DAG
  exec::SchedulerStats scheduler;  ///< steals / parks over both phases
  trisolve::SolveStats stats;      ///< flop count over both phases
  double seconds = 0.0;            ///< wall time of both graph executions
};

/// Shared-memory task-DAG solve of L L^T X = B in place (`b` is n x m
/// column-major, ld = n), bit-identical to trisolve::full_solve.
void taskdag_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                   const exec::TaskScheduler::Config& workers = {},
                   TaskSolveReport* report = nullptr);

}  // namespace sparts::partrisolve
