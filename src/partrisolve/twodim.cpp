#include "partrisolve/twodim.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "dense/kernels.hpp"
#include "mapping/block_cyclic.hpp"
#include "ordering/etree.hpp"
#include "partrisolve/layout.hpp"
#include "partrisolve/packets.hpp"
#include "exec/collectives.hpp"

namespace sparts::partrisolve {

namespace {

int tag_fw_contrib(index_t s) { return static_cast<int>(16 * s + 0); }
int tag_fw_reduce(index_t s) { return static_cast<int>(16 * s + 1); }
int tag_fw_bcast(index_t s) { return static_cast<int>(16 * s + 2); }
int tag_fw_store(index_t s) { return static_cast<int>(16 * s + 3); }
int tag_bw_copy(index_t s) { return static_cast<int>(16 * s + 4); }
int tag_bw_wrow(index_t s) { return static_cast<int>(16 * s + 5); }
int tag_bw_reduce(index_t s) { return static_cast<int>(16 * s + 6); }
int tag_bw_bcast(index_t s) { return static_cast<int>(16 * s + 7); }
int tag_bw_store(index_t s) { return static_cast<int>(16 * s + 8); }

/// Per-supernode 2-D geometry.  The RHS fragment lives on grid column 0,
/// rows distributed by grid row; the trapezoid entry (i, k) lives on grid
/// processor (row_owner(i), col_owner(k)).
struct Geo {
  exec::Group group;
  mapping::BlockCyclic2d grid;
  Layout rows;  ///< q = qr over positions
  Layout cols;  ///< q = qc over positions (pivot columns only matter)

  index_t qr() const { return grid.qr; }
  index_t qc() const { return grid.qc; }
  index_t gr_of(index_t w) const { return group.local(w) / qc(); }
  index_t gc_of(index_t w) const { return group.local(w) % qc(); }
  index_t world(index_t gr, index_t gc) const {
    return group.world(gr * qc() + gc);
  }
  /// World rank of the fragment owner of position i.
  index_t frag_owner(index_t i) const { return world(rows.owner_of(i), 0); }
};

Geo make_geo(const exec::Group& g, index_t ns, index_t t, index_t b2) {
  Geo geo;
  geo.group = g;
  geo.grid = mapping::BlockCyclic2d::near_square(g.count, b2);
  geo.rows = Layout{geo.grid.qr, b2, ns, t};
  geo.cols = Layout{geo.grid.qc, b2, ns, t};
  return geo;
}

using BufferMap = std::unordered_map<index_t, std::vector<real_t>>;

struct Ctx {
  const numeric::SupernodalFactor& factor;
  const mapping::SubcubeMapping& map;
  index_t b2;
  index_t m;
  std::vector<std::vector<index_t>> children;
  /// Per supernode: position of each below row inside the parent.
  std::vector<std::vector<index_t>> parent_pos;
};

Ctx make_ctx(const numeric::SupernodalFactor& factor,
             const mapping::SubcubeMapping& map, index_t b2, index_t m) {
  Ctx ctx{factor, map, b2, m, ordering::tree_children(
                                  factor.partition().stree),
          {}};
  const auto& part = factor.partition();
  ctx.parent_pos.resize(static_cast<std::size_t>(part.num_supernodes()));
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
    if (parent == -1) continue;
    const auto rows = part.row_indices(s);
    const auto prows = part.row_indices(parent);
    const index_t t = part.width(s);
    auto& pp = ctx.parent_pos[static_cast<std::size_t>(s)];
    pp.resize(rows.size() - static_cast<std::size_t>(t));
    for (std::size_t k = 0; k < pp.size(); ++k) {
      const auto it = std::lower_bound(prows.begin(), prows.end(),
                                       rows[static_cast<std::size_t>(t) + k]);
      SPARTS_CHECK(it != prows.end());
      pp[k] = static_cast<index_t>(it - prows.begin());
    }
  }
  return ctx;
}

/// Fragment helper: the packed rows rank w (a grid-column-0 rank) owns.
std::vector<real_t>& ensure_fragment(const Ctx& ctx, BufferMap& bufs,
                                     index_t s, const Geo& geo, index_t gr,
                                     std::span<const real_t> source,
                                     index_t n) {
  auto it = bufs.find(s);
  if (it != bufs.end()) return it->second;
  const auto& part = ctx.factor.partition();
  const index_t nloc = geo.rows.local_count(gr);
  auto& v = bufs[s];
  v.assign(static_cast<std::size_t>(nloc * ctx.m), 0.0);
  const auto rows = part.row_indices(s);
  for (index_t i = 0; i < geo.rows.t; ++i) {
    if (geo.rows.owner_of(i) != gr) continue;
    const index_t lo = geo.rows.local_of(i);
    for (index_t c = 0; c < ctx.m; ++c) {
      v[static_cast<std::size_t>(c * nloc + lo)] =
          source[c * n + rows[static_cast<std::size_t>(i)]];
    }
  }
  return v;
}

}  // namespace

std::pair<PhaseReport, PhaseReport> solve_two_dim(
    exec::Comm& machine, const numeric::SupernodalFactor& factor,
    const mapping::SubcubeMapping& map, std::span<const real_t> b_in,
    std::span<real_t> x_out, index_t m, const TwoDimOptions& options) {
  const auto& part = factor.partition();
  const index_t n = part.n();
  SPARTS_CHECK(machine.nprocs() == map.p);
  SPARTS_CHECK(static_cast<index_t>(b_in.size()) == n * m);
  SPARTS_CHECK(static_cast<index_t>(x_out.size()) == n * m);
  const Ctx ctx = make_ctx(factor, map, options.block_2d, m);
  const index_t nsup = part.num_supernodes();
  std::vector<real_t> y(static_cast<std::size_t>(n * m), 0.0);

  // -------------------------------------------------------------------
  // Forward elimination.
  // -------------------------------------------------------------------
  std::vector<BufferMap> rank_bufs(static_cast<std::size_t>(map.p));
  auto fw = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    BufferMap& bufs = rank_bufs[static_cast<std::size_t>(w)];
    for (index_t s = 0; s < nsup; ++s) {
      const exec::Group g = map.group[static_cast<std::size_t>(s)];
      if (!g.contains(w)) continue;
      const index_t t = part.width(s);
      const index_t ns = part.height(s);
      const Geo geo = make_geo(g, ns, t, ctx.b2);
      const index_t gr = geo.gr_of(w);
      const index_t gc = geo.gc_of(w);
      const auto lblock = factor.block(s);
      const index_t tb = geo.rows.num_pivot_blocks();

      // Fragment assembly on grid column 0 (receive child contributions).
      if (gc == 0) {
        auto& v = ensure_fragment(ctx, bufs, s, geo, gr, b_in, n);
        const index_t nloc = geo.rows.local_count(gr);
        for (index_t c : ctx.children[static_cast<std::size_t>(s)]) {
          const exec::Group cg = map.group[static_cast<std::size_t>(c)];
          const Geo cgeo = make_geo(cg, part.height(c), part.width(c),
                                    ctx.b2);
          const auto& pp = ctx.parent_pos[static_cast<std::size_t>(c)];
          // Expected senders: child fragment owners with >= 1 row for me.
          std::map<index_t, int> senders;
          for (std::size_t k = 0; k < pp.size(); ++k) {
            const index_t src = cgeo.frag_owner(part.width(c) +
                                                static_cast<index_t>(k));
            if (geo.frag_owner(pp[k]) == w) senders[src] = 1;
          }
          for (auto& [src, unused] : senders) {
            (void)unused;
            if (src == w) continue;  // handled locally at send time
            auto msg = proc.recv(src, tag_fw_contrib(c));
            RhsPacket pkt = unpack_rhs(msg.payload, m);
            for (std::size_t z = 0; z < pkt.positions.size(); ++z) {
              const index_t lo = geo.rows.local_of(pkt.positions[z]);
              for (index_t col = 0; col < m; ++col) {
                v[static_cast<std::size_t>(col * nloc + lo)] +=
                    pkt.values[z * static_cast<std::size_t>(m) +
                               static_cast<std::size_t>(col)];
              }
            }
            proc.compute_at(static_cast<double>(pkt.positions.size() * m),
                            proc.cost().t_mem);
          }
        }
      }

      // Solved pivot blocks this rank has seen (by column ownership).
      std::vector<std::vector<real_t>> xk(static_cast<std::size_t>(tb));

      const exec::Group row_group{g.base + gr * geo.qc(), geo.qc(), 1};
      const exec::Group col_group{g.base + gc, geo.qr(), geo.qc()};

      for (index_t k = 0; k < tb; ++k) {
        const index_t c0 = geo.rows.col_begin(k);
        const index_t c1 = geo.rows.col_end(k);
        const index_t bk = c1 - c0;
        const index_t owner_r = geo.rows.owner_of(c0);
        const index_t owner_c = geo.cols.owner_of(c0);

        if (gr == owner_r) {
          // Partial sums of my column blocks J < k against row block k.
          std::vector<real_t> acc(static_cast<std::size_t>(bk * m), 0.0);
          for (index_t j = gc; j < k; j += geo.qc()) {
            if (xk[static_cast<std::size_t>(j)].empty()) continue;
            const index_t j0 = geo.rows.col_begin(j);
            const index_t bj = geo.rows.col_end(j) - j0;
            dense::panel_gemm(bk, m, bj, 1.0, lblock.data() + j0 * ns + c0,
                              ns, xk[static_cast<std::size_t>(j)].data(), bj,
                              acc.data(), bk);
            proc.compute_at(
                static_cast<double>(dense::gemm_flops(bk, m, bj)),
                proc.cost().panel_flop(m));
          }
          // Grid column 0 contributes -V_K so the reduction yields
          // (sum L x) - V directly.
          if (gc == 0) {
            auto& v = bufs.at(s);
            const index_t nloc = geo.rows.local_count(gr);
            const index_t lo = geo.rows.local_of(c0);
            for (index_t c = 0; c < m; ++c) {
              for (index_t i = 0; i < bk; ++i) {
                acc[static_cast<std::size_t>(c * bk + i)] -=
                    v[static_cast<std::size_t>(c * nloc + lo + i)];
              }
            }
            proc.compute_at(static_cast<double>(bk * m), proc.cost().t_mem);
          }
          exec::reduce_sum_to(proc, row_group, owner_c, acc,
                                tag_fw_reduce(s));
          if (gc == owner_c) {
            // x_K = L(KK)^{-1} (V_K - sum) = L(KK)^{-1} (-acc).
            for (auto& val : acc) val = -val;
            proc.compute_at(static_cast<double>(dense::panel_trsm_lower(
                                bk, m, lblock.data() + c0 * ns + c0, ns,
                                acc.data(), bk)),
                            proc.cost().panel_flop(m));
            xk[static_cast<std::size_t>(k)] = acc;
            // Store solved values back on the fragment owner.
            if (owner_c != 0) {
              proc.send_values<real_t>(geo.world(gr, 0), tag_fw_store(s),
                                       acc);
            } else {
              auto& v = bufs.at(s);
              const index_t nloc = geo.rows.local_count(gr);
              const index_t lo = geo.rows.local_of(c0);
              for (index_t c = 0; c < m; ++c) {
                for (index_t i = 0; i < bk; ++i) {
                  v[static_cast<std::size_t>(c * nloc + lo + i)] =
                      acc[static_cast<std::size_t>(c * bk + i)];
                }
              }
            }
          }
          if (gc == 0 && owner_c != 0) {
            auto solved = proc.recv_values<real_t>(geo.world(gr, owner_c),
                                                   tag_fw_store(s));
            auto& v = bufs.at(s);
            const index_t nloc = geo.rows.local_count(gr);
            const index_t lo = geo.rows.local_of(c0);
            for (index_t c = 0; c < m; ++c) {
              for (index_t i = 0; i < bk; ++i) {
                v[static_cast<std::size_t>(c * nloc + lo + i)] =
                    solved[static_cast<std::size_t>(c * bk + i)];
              }
            }
          }
        }
        // Broadcast x_K down grid column owner_c so every future row-block
        // owner in that column can apply it.
        if (gc == owner_c) {
          std::vector<real_t> token;
          if (gr == owner_r) token = xk[static_cast<std::size_t>(k)];
          exec::broadcast_from(proc, col_group, owner_r, token,
                                 tag_fw_bcast(s));
          xk[static_cast<std::size_t>(k)] = std::move(token);
        }
      }

      // Below-part rows (the mixed tail of the last pivot block first,
      // then the full below blocks): partial sums per segment, reduced to
      // the fragment owner, subtracted, then routed to the parent.
      const index_t parent = part.stree.parent[static_cast<std::size_t>(s)];
      std::vector<std::pair<index_t, index_t>> below_segments;
      if (tb > 0 && geo.rows.block_end(tb - 1) > t) {
        below_segments.emplace_back(t, geo.rows.block_end(tb - 1));
      }
      for (index_t ib = tb; ib < geo.rows.num_blocks(); ++ib) {
        below_segments.emplace_back(geo.rows.block_begin(ib),
                                    geo.rows.block_end(ib));
      }
      for (const auto& [i0, i1] : below_segments) {
        const index_t len = i1 - i0;
        if (geo.rows.owner_of(i0) != gr) continue;
        std::vector<real_t> acc(static_cast<std::size_t>(len * m), 0.0);
        for (index_t j = gc; j < tb; j += geo.qc()) {
          if (xk[static_cast<std::size_t>(j)].empty()) continue;
          const index_t j0 = geo.rows.col_begin(j);
          const index_t bj = geo.rows.col_end(j) - j0;
          dense::panel_gemm(len, m, bj, 1.0, lblock.data() + j0 * ns + i0,
                            ns, xk[static_cast<std::size_t>(j)].data(), bj,
                            acc.data(), len);
          proc.compute_at(static_cast<double>(dense::gemm_flops(len, m, bj)),
                          proc.cost().panel_flop(m));
        }
        exec::reduce_sum_to(proc, row_group, 0, acc, tag_fw_reduce(s));
        if (gc == 0) {
          auto& v = bufs.at(s);
          const index_t nloc = geo.rows.local_count(gr);
          const index_t lo = geo.rows.local_of(i0);
          for (index_t c = 0; c < m; ++c) {
            for (index_t i = 0; i < len; ++i) {
              v[static_cast<std::size_t>(c * nloc + lo + i)] -=
                  acc[static_cast<std::size_t>(c * len + i)];
            }
          }
          proc.compute_at(static_cast<double>(len * m), proc.cost().t_mem);
        }
      }

      if (gc == 0) {
        // Publish Y and route the tail to the parent fragment owners.
        auto& v = bufs.at(s);
        const index_t nloc = geo.rows.local_count(gr);
        const auto rows = part.row_indices(s);
        for (index_t i = 0; i < t; ++i) {
          if (geo.rows.owner_of(i) != gr) continue;
          const index_t lo = geo.rows.local_of(i);
          for (index_t c = 0; c < m; ++c) {
            y[static_cast<std::size_t>(
                c * n + rows[static_cast<std::size_t>(i)])] =
                v[static_cast<std::size_t>(c * nloc + lo)];
          }
        }
        if (parent != -1) {
          const Geo pgeo = make_geo(
              map.group[static_cast<std::size_t>(parent)],
              part.height(parent), part.width(parent), ctx.b2);
          const auto& pp = ctx.parent_pos[static_cast<std::size_t>(s)];
          std::map<index_t, RhsPacket> buckets;
          for (std::size_t z = 0; z < pp.size(); ++z) {
            const index_t pos = t + static_cast<index_t>(z);
            if (geo.rows.owner_of(pos) != gr) continue;
            const index_t dst = pgeo.frag_owner(pp[z]);
            const index_t lo = geo.rows.local_of(pos);
            if (dst == w) {
              auto& pv = ensure_fragment(ctx, bufs, parent, pgeo,
                                         pgeo.gr_of(w), b_in, n);
              const index_t pnloc = pgeo.rows.local_count(pgeo.gr_of(w));
              const index_t plo = pgeo.rows.local_of(pp[z]);
              for (index_t c = 0; c < m; ++c) {
                // The fragment holds V; the contribution is -L x, and the
                // below part of v currently stores V - sum(Lx) minus B?  It
                // stores accumulated (0 - sum) + incoming B?  The below
                // entries started at zero and accumulated -sum(Lx); they
                // add into the parent fragment directly.
                pv[static_cast<std::size_t>(c * pnloc + plo)] +=
                    v[static_cast<std::size_t>(c * nloc + lo)];
              }
              proc.compute_at(static_cast<double>(m), proc.cost().t_mem);
            } else {
              RhsPacket& pkt = buckets[dst];
              pkt.positions.push_back(pp[z]);
              for (index_t c = 0; c < m; ++c) {
                pkt.values.push_back(
                    v[static_cast<std::size_t>(c * nloc + lo)]);
              }
            }
          }
          for (auto& [dst, pkt] : buckets) {
            proc.send_owned(dst, tag_fw_contrib(s), pack_rhs(pkt, m));
          }
        }
        bufs.erase(s);
      }
    }
  };

  PhaseReport fw_report;
  fw_report.stats = machine.run(fw);

  // -------------------------------------------------------------------
  // Backward substitution.
  // -------------------------------------------------------------------
  std::vector<BufferMap> bw_bufs(static_cast<std::size_t>(map.p));
  auto bw = [&](exec::Process& proc) {
    const index_t w = proc.rank();
    BufferMap& bufs = bw_bufs[static_cast<std::size_t>(w)];
    for (index_t s = nsup - 1; s >= 0; --s) {
      const exec::Group g = map.group[static_cast<std::size_t>(s)];
      if (!g.contains(w)) continue;
      const index_t t = part.width(s);
      const index_t ns = part.height(s);
      const Geo geo = make_geo(g, ns, t, ctx.b2);
      const index_t gr = geo.gr_of(w);
      const index_t gc = geo.gc_of(w);
      const auto lblock = factor.block(s);
      const index_t tb = geo.rows.num_pivot_blocks();
      const index_t nb = geo.rows.num_blocks();
      const exec::Group row_group{g.base + gr * geo.qc(), geo.qc(), 1};
      const exec::Group col_group{g.base + gc, geo.qr(), geo.qc()};

      // Fragment on grid column 0: pivot rows from Y, below rows from the
      // parent.
      if (gc == 0) {
        auto& wv = ensure_fragment(ctx, bufs, s, geo, gr, y, n);
        const index_t nloc = geo.rows.local_count(gr);
        const index_t parent =
            part.stree.parent[static_cast<std::size_t>(s)];
        if (parent != -1) {
          const Geo pgeo = make_geo(
              map.group[static_cast<std::size_t>(parent)],
              part.height(parent), part.width(parent), ctx.b2);
          const auto& pp = ctx.parent_pos[static_cast<std::size_t>(s)];
          std::map<index_t, int> senders;
          for (std::size_t z = 0; z < pp.size(); ++z) {
            if (geo.frag_owner(t + static_cast<index_t>(z)) != w) continue;
            senders[pgeo.frag_owner(pp[z])] = 1;
          }
          for (auto& [src, unused] : senders) {
            (void)unused;
            if (src == w) continue;
            auto msg = proc.recv(src, tag_bw_copy(s));
            RhsPacket pkt = unpack_rhs(msg.payload, m);
            for (std::size_t z = 0; z < pkt.positions.size(); ++z) {
              const index_t lo = geo.rows.local_of(pkt.positions[z]);
              for (index_t col = 0; col < m; ++col) {
                wv[static_cast<std::size_t>(col * nloc + lo)] =
                    pkt.values[z * static_cast<std::size_t>(m) +
                               static_cast<std::size_t>(col)];
              }
            }
            proc.compute_at(static_cast<double>(pkt.positions.size() * m),
                            proc.cost().t_mem);
          }
        }
      }

      // Broadcast every below segment's w-values along its grid row so the
      // column owners can form L^T contributions.  Pivot blocks are
      // broadcast later, as they are solved.  The mixed tail of the last
      // pivot block (below rows sharing it when b does not divide t) is a
      // separate piece.
      std::vector<std::vector<real_t>> wrow(static_cast<std::size_t>(nb));
      std::vector<real_t> wtail;
      const index_t tail0 = t;
      const index_t tail1 = tb > 0 ? geo.rows.block_end(tb - 1) : t;
      auto broadcast_segment = [&](index_t i0, index_t len,
                                   std::vector<real_t>& dest) {
        if (geo.rows.owner_of(i0) != gr) return;
        std::vector<real_t> vals;
        if (gc == 0) {
          auto& wv = bufs.at(s);
          const index_t nloc = geo.rows.local_count(gr);
          const index_t lo = geo.rows.local_of(i0);
          vals.resize(static_cast<std::size_t>(len * m));
          for (index_t c = 0; c < m; ++c) {
            for (index_t i = 0; i < len; ++i) {
              vals[static_cast<std::size_t>(c * len + i)] =
                  wv[static_cast<std::size_t>(c * nloc + lo + i)];
            }
          }
        }
        exec::broadcast_from(proc, row_group, 0, vals, tag_bw_wrow(s));
        dest = std::move(vals);
      };
      if (tail1 > tail0) broadcast_segment(tail0, tail1 - tail0, wtail);
      for (index_t ib = tb; ib < nb; ++ib) {
        broadcast_segment(geo.rows.block_begin(ib),
                          geo.rows.block_end(ib) - geo.rows.block_begin(ib),
                          wrow[static_cast<std::size_t>(ib)]);
      }

      for (index_t k = tb - 1; k >= 0; --k) {
        const index_t c0 = geo.rows.col_begin(k);
        const index_t bk = geo.rows.col_end(k) - c0;
        const index_t owner_r = geo.rows.owner_of(c0);
        const index_t owner_c = geo.cols.owner_of(c0);

        if (gc == owner_c) {
          // Partial sums over my row blocks below k: L(I,k)^T w_I.
          // Pivot-block pieces carry only their solved pivot rows; the
          // mixed tail of the last pivot block is its own piece.
          std::vector<real_t> acc(static_cast<std::size_t>(bk * m), 0.0);
          for (index_t ib = gr; ib < nb; ib += geo.qr()) {
            if (ib <= k) continue;
            if (wrow[static_cast<std::size_t>(ib)].empty()) continue;
            const index_t i0 = geo.rows.block_begin(ib);
            const index_t len = ib < tb
                                    ? geo.rows.col_end(ib) - i0
                                    : geo.rows.block_end(ib) - i0;
            dense::panel_gemm_at(bk, m, len, 1.0,
                                 lblock.data() + c0 * ns + i0, ns,
                                 wrow[static_cast<std::size_t>(ib)].data(),
                                 len, acc.data(), bk);
            proc.compute_at(
                static_cast<double>(dense::gemm_flops(bk, m, len)),
                proc.cost().panel_flop(m));
          }
          if (!wtail.empty() && geo.rows.owner_of(tail0) == gr) {
            const index_t len = tail1 - tail0;
            dense::panel_gemm_at(bk, m, len, 1.0,
                                 lblock.data() + c0 * ns + tail0, ns,
                                 wtail.data(), len, acc.data(), bk);
            proc.compute_at(
                static_cast<double>(dense::gemm_flops(bk, m, len)),
                proc.cost().panel_flop(m));
          }
          exec::reduce_sum_to(proc, col_group, owner_r, acc,
                                tag_bw_reduce(s));
          if (gr == owner_r) {
            // Fetch W_K from the fragment owner, finish, store back.
            std::vector<real_t> wk;
            if (owner_c == 0) {
              auto& wv = bufs.at(s);
              const index_t nloc = geo.rows.local_count(gr);
              const index_t lo = geo.rows.local_of(c0);
              wk.resize(static_cast<std::size_t>(bk * m));
              for (index_t c = 0; c < m; ++c) {
                for (index_t i = 0; i < bk; ++i) {
                  wk[static_cast<std::size_t>(c * bk + i)] =
                      wv[static_cast<std::size_t>(c * nloc + lo + i)];
                }
              }
            } else {
              wk = proc.recv_values<real_t>(geo.world(gr, 0),
                                            tag_bw_store(s));
            }
            for (std::size_t z = 0; z < wk.size(); ++z) wk[z] -= acc[z];
            proc.compute_at(
                static_cast<double>(dense::panel_trsm_lower_transposed(
                    bk, m, lblock.data() + c0 * ns + c0, ns, wk.data(), bk)),
                proc.cost().panel_flop(m));
            wrow[static_cast<std::size_t>(k)] = wk;  // root of the row bcast
            if (owner_c == 0) {
              auto& wv = bufs.at(s);
              const index_t nloc = geo.rows.local_count(gr);
              const index_t lo = geo.rows.local_of(c0);
              for (index_t c = 0; c < m; ++c) {
                for (index_t i = 0; i < bk; ++i) {
                  wv[static_cast<std::size_t>(c * nloc + lo + i)] =
                      wk[static_cast<std::size_t>(c * bk + i)];
                }
              }
            } else {
              proc.send_values<real_t>(geo.world(gr, 0), tag_bw_store(s),
                                       wk);
            }
          }
        }
        // Fragment owner side of the W_K exchange (when off column 0).
        if (gc == 0 && owner_c != 0 && gr == owner_r) {
          auto& wv = bufs.at(s);
          const index_t nloc = geo.rows.local_count(gr);
          const index_t lo = geo.rows.local_of(c0);
          std::vector<real_t> wk(static_cast<std::size_t>(bk * m));
          for (index_t c = 0; c < m; ++c) {
            for (index_t i = 0; i < bk; ++i) {
              wk[static_cast<std::size_t>(c * bk + i)] =
                  wv[static_cast<std::size_t>(c * nloc + lo + i)];
            }
          }
          proc.send_values<real_t>(geo.world(gr, owner_c), tag_bw_store(s),
                                   wk);
          auto solved = proc.recv_values<real_t>(geo.world(gr, owner_c),
                                                 tag_bw_store(s));
          for (index_t c = 0; c < m; ++c) {
            for (index_t i = 0; i < bk; ++i) {
              wv[static_cast<std::size_t>(c * nloc + lo + i)] =
                  solved[static_cast<std::size_t>(c * bk + i)];
            }
          }
        }
        // Broadcast the solved pivot block along its grid row so smaller
        // columns on this row can use it; the solver rank (the root) has
        // it stashed in wrow[k].
        if (gr == owner_r) {
          std::vector<real_t> token = std::move(wrow[static_cast<std::size_t>(k)]);
          exec::broadcast_from(proc, row_group, owner_c, token,
                                 tag_bw_bcast(s));
          wrow[static_cast<std::size_t>(k)] = std::move(token);
        }
      }

      // Publish X and send child copies from the fragment owners.
      if (gc == 0) {
        auto& wv = bufs.at(s);
        const index_t nloc = geo.rows.local_count(gr);
        const auto rows = part.row_indices(s);
        for (index_t i = 0; i < t; ++i) {
          if (geo.rows.owner_of(i) != gr) continue;
          const index_t lo = geo.rows.local_of(i);
          for (index_t c = 0; c < m; ++c) {
            x_out[static_cast<std::size_t>(
                c * n + rows[static_cast<std::size_t>(i)])] =
                wv[static_cast<std::size_t>(c * nloc + lo)];
          }
        }
        for (index_t c : ctx.children[static_cast<std::size_t>(s)]) {
          const exec::Group cg = map.group[static_cast<std::size_t>(c)];
          const Geo cgeo = make_geo(cg, part.height(c), part.width(c),
                                    ctx.b2);
          const auto& pp = ctx.parent_pos[static_cast<std::size_t>(c)];
          std::map<index_t, RhsPacket> buckets;
          for (std::size_t z = 0; z < pp.size(); ++z) {
            if (geo.frag_owner(pp[z]) != w) continue;
            const index_t cpos = part.width(c) + static_cast<index_t>(z);
            const index_t dst = cgeo.frag_owner(cpos);
            const index_t lo = geo.rows.local_of(pp[z]);
            if (dst == w) {
              auto& cv = ensure_fragment(ctx, bufs, c, cgeo, cgeo.gr_of(w),
                                         y, n);
              const index_t cnloc = cgeo.rows.local_count(cgeo.gr_of(w));
              const index_t clo = cgeo.rows.local_of(cpos);
              for (index_t col = 0; col < m; ++col) {
                cv[static_cast<std::size_t>(col * cnloc + clo)] =
                    wv[static_cast<std::size_t>(col * nloc + lo)];
              }
            } else {
              RhsPacket& pkt = buckets[dst];
              pkt.positions.push_back(cpos);
              for (index_t col = 0; col < m; ++col) {
                pkt.values.push_back(
                    wv[static_cast<std::size_t>(col * nloc + lo)]);
              }
            }
          }
          for (auto& [dst, pkt] : buckets) {
            proc.send_owned(dst, tag_bw_copy(c), pack_rhs(pkt, m));
          }
        }
        bufs.erase(s);
      }
    }
  };

  PhaseReport bw_report;
  bw_report.stats = machine.run(bw);
  return {fw_report, bw_report};
}

}  // namespace sparts::partrisolve
