// Triangular solution with the factor left in its 2-D (factorization)
// distribution — the configuration the paper's Figure 5 marks
// "unscalable", implemented in full so the claim can be measured rather
// than asserted.
//
// Each shared supernode keeps the 2-D block-cyclic layout parfact
// produced: entry (i, k) of the trapezoid lives on grid processor
// (row_owner(i), col_owner(k)).  Forward elimination is fan-in/fan-out
// per pivot block: partial sums reduce along a grid row, the diagonal
// owner solves, and the solved block broadcasts along its grid column.
// Every pivot block therefore pays O(log q) startups that cannot pipeline
// — the structural reason the 1-D pipelined algorithm (partrisolve.hpp)
// wins, and the reason the 2-D -> 1-D redistribution exists.
#pragma once

#include <span>

#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/supernodal_factor.hpp"
#include "partrisolve/partrisolve.hpp"
#include "exec/process.hpp"

namespace sparts::partrisolve {

struct TwoDimOptions {
  index_t block_2d = 16;  ///< block size of the 2-D distribution
};

/// Forward + backward solve with 2-D-partitioned supernodes.
/// `b_in` / `x_out` are n x m column-major.  Returns {forward, backward}
/// phase reports.  Results equal the sequential solve (tested); only the
/// costs differ from the 1-D solver.
std::pair<PhaseReport, PhaseReport> solve_two_dim(
    exec::Comm& machine, const numeric::SupernodalFactor& factor,
    const mapping::SubcubeMapping& map, std::span<const real_t> b_in,
    std::span<real_t> x_out, index_t m, const TwoDimOptions& options = {});

}  // namespace sparts::partrisolve
