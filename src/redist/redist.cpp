#include "redist/redist.hpp"

#include "obs/span.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "mapping/block_cyclic.hpp"
#include "partrisolve/layout.hpp"
#include "exec/collectives.hpp"

namespace sparts::redist {

namespace {

/// Column indices of the trapezoid owned by grid column gc.
std::vector<index_t> owned_cols(index_t t, index_t bf, index_t qc,
                                index_t gc) {
  std::vector<index_t> cols;
  for (index_t k = 0; k < t; ++k) {
    if ((k / bf) % qc == gc) cols.push_back(k);
  }
  return cols;
}

/// Position indices (trapezoid rows) owned by grid row gr.
std::vector<index_t> owned_rows_2d(index_t ns, index_t bf, index_t qr,
                                   index_t gr) {
  std::vector<index_t> rows;
  for (index_t i = 0; i < ns; ++i) {
    if ((i / bf) % qr == gr) rows.push_back(i);
  }
  return rows;
}

/// The 2-D source and 1-D target distributions of every shared supernode
/// must partition its trapezoid; validating the maps up front turns a
/// misrouted-layout bug into a named diagnostic instead of a silently
/// wrong factor.
void validate_maps(const symbolic::SupernodePartition& part,
                   const mapping::SubcubeMapping& map,
                   const Options& options) {
  SPARTS_CHECK(options.block_2d >= 1 && options.block_1d >= 1,
               "redistribution block sizes must be >= 1");
  SPARTS_VALIDATE_CHEAP(map.check_consistent(part));
  if (checks_at_least(CheckLevel::expensive)) {
    for (index_t s = 0; s < part.num_supernodes(); ++s) {
      const exec::Group& g = map.group[static_cast<std::size_t>(s)];
      if (g.count == 1) continue;
      mapping::validate_block_cyclic(
          mapping::BlockCyclic2d::near_square(g.count, options.block_2d));
      mapping::validate_block_cyclic(
          mapping::BlockCyclic1d{options.block_1d, g.count}, part.height(s));
    }
  }
}

}  // namespace

void prepack_sequential(const numeric::SupernodalFactor& factor,
                        const mapping::SubcubeMapping& map,
                        const Options& options,
                        partrisolve::DistributedFactor* out) {
  const auto& part = factor.partition();
  SPARTS_CHECK(out != nullptr, "prepack_sequential needs output storage");
  validate_maps(part, map, options);
  *out = partrisolve::DistributedFactor(part, map, options.block_1d);
  // Sequential supernodes do not move between the distributions (a
  // single owner holds the whole trapezoid either way): pack directly.
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const exec::Group& g = map.group[static_cast<std::size_t>(s)];
    if (g.count != 1) continue;
    auto& local = out->local_block(g.base, s);
    const auto block = factor.block(s);
    std::copy(block.begin(), block.end(), local.begin());
  }
}

void redistribute_supernode(exec::Process& proc,
                            const numeric::SupernodalFactor& factor,
                            const mapping::SubcubeMapping& map,
                            const Options& options, index_t s,
                            partrisolve::DistributedFactor* out,
                            int tag_base) {
  const auto& part = factor.partition();
  const index_t w = proc.rank();
  const exec::Group g = map.group[static_cast<std::size_t>(s)];
  if (g.count < 2 || !g.contains(w)) return;
  SPARTS_TRACE_SPAN(proc, obs::Category::compute, "redist.supernode",
                    static_cast<std::int64_t>(s),
                    static_cast<std::int64_t>(g.count));
  const index_t q = g.count;
  const index_t r = g.local(w);
  const index_t ns = part.height(s);
  const index_t t = part.width(s);
  const auto block = factor.block(s);

  const mapping::BlockCyclic2d grid =
      mapping::BlockCyclic2d::near_square(q, options.block_2d);
  const partrisolve::Layout lay1d{q, options.block_1d, ns, t};
  const index_t gr = r / grid.qc;
  const index_t gc = r % grid.qc;

  // My 2-D piece: rows owned by my grid row, columns by my grid column.
  const std::vector<index_t> my_rows =
      owned_rows_2d(ns, options.block_2d, grid.qr, gr);
  const std::vector<index_t> my_cols =
      owned_cols(t, options.block_2d, grid.qc, gc);

  // Outgoing: for each of my rows, all my columns' values go to the
  // row's 1-D owner.  Canonical order: rows ascending, columns
  // ascending — the receiver reproduces it exactly.
  std::vector<std::vector<real_t>> outgoing(static_cast<std::size_t>(q));
  for (index_t i : my_rows) {
    const index_t dst = lay1d.owner_of(i);
    auto& payload = outgoing[static_cast<std::size_t>(dst)];
    for (index_t k : my_cols) {
      // Entries above the pivot diagonal are structural zeros of the
      // trapezoid; they still move (the storage is dense).
      payload.push_back(block[static_cast<std::size_t>(k * ns + i)]);
    }
  }
  nnz_t pack_words = 0;
  for (const auto& o : outgoing) pack_words += static_cast<nnz_t>(o.size());
  proc.compute_at(static_cast<double>(pack_words), proc.cost().t_mem);

  auto incoming = exec::all_to_all_personalized(
      proc, g, std::move(outgoing), tag_base + static_cast<int>(8 * s));

  // Receive side: rebuild my 1-D rows and verify against the factor.
  for (index_t src = 0; src < q; ++src) {
    const index_t src_gr = src / grid.qc;
    const index_t src_gc = src % grid.qc;
    const std::vector<index_t> src_cols =
        owned_cols(t, options.block_2d, grid.qc, src_gc);
    std::size_t cursor = 0;
    const auto& in = incoming[static_cast<std::size_t>(src)];
    for (index_t i = 0; i < ns; ++i) {
      if ((i / options.block_2d) % grid.qr != src_gr) continue;
      if (lay1d.owner_of(i) != r) continue;
      for (index_t k : src_cols) {
        SPARTS_CHECK(cursor < in.size(), "short redistribution payload");
        const real_t expected = block[static_cast<std::size_t>(k * ns + i)];
        SPARTS_CHECK(in[cursor] == expected,
                     "misrouted entry at supernode "
                         << s << " position (" << i << ", " << k << ")");
        if (out != nullptr) {
          auto& local = out->local_block(w, s);
          const index_t nloc = out->local_rows(w, s);
          local[static_cast<std::size_t>(k * nloc + lay1d.local_of(i))] =
              in[cursor];
        }
        ++cursor;
      }
    }
    SPARTS_CHECK(cursor == in.size(), "long redistribution payload");
    proc.compute_at(static_cast<double>(cursor), proc.cost().t_mem);
  }
}

Report redistribute_factor(exec::Comm& machine,
                           const numeric::SupernodalFactor& factor,
                           const mapping::SubcubeMapping& map,
                           const Options& options,
                           partrisolve::DistributedFactor* out) {
  const auto& part = factor.partition();
  SPARTS_CHECK(machine.nprocs() == map.p);
  const index_t nsup = part.num_supernodes();
  if (out != nullptr) {
    prepack_sequential(factor, map, options, out);
  } else {
    validate_maps(part, map, options);
  }

  auto spmd = [&](exec::Process& proc) {
    for (index_t s = 0; s < nsup; ++s) {
      redistribute_supernode(proc, factor, map, options, s, out,
                             /*tag_base=*/0);
    }
  };

  Report report;
  report.stats = machine.run(spmd);
  return report;
}

}  // namespace sparts::redist
