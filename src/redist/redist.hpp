// Conversion of the factor's data distribution between factorization and
// triangular solution (paper §4, Fig. 6).
//
// Parallel factorization wants every shared supernode partitioned in two
// dimensions (block-cyclic over a near-square processor grid); the
// triangular solvers are only scalable with a one-dimensional row-wise
// partitioning.  The conversion of one n x t supernode shared by q
// processors is equivalent to transposing each (n/sqrt(q)) x t horizontal
// slab among the sqrt(q) processors that share it — an all-to-all
// personalized communication among q processors moving ~nt/q words per
// processor.  The paper shows (and we measure) that this one-time cost is
// a fraction of a single triangular solve.
#pragma once

#include "common/types.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/supernodal_factor.hpp"
#include "partrisolve/dist_factor.hpp"
#include "exec/process.hpp"

namespace sparts::redist {

struct Options {
  index_t block_2d = 16;  ///< block size of the factorization distribution
  index_t block_1d = 8;   ///< block size of the solver distribution
};

struct Report {
  exec::RunStats stats;
  double time() const { return stats.parallel_time(); }
};

/// Simulate the 2-D -> 1-D conversion of every shared supernode of the
/// factor.  Data movement is performed with the factor's real values and
/// the routing is verified entry-by-entry on the receiving side (throws on
/// any misrouted value).
///
/// If `out` is non-null it receives the rank-local 1-D factor storage,
/// built from the *received* values for shared supernodes (sequential
/// supernodes, which do not move, are packed locally) — pass it to
/// DistributedTrisolver's strict constructor so the solver consumes
/// exactly the data that traveled through the network.  The out storage
/// uses block size options.block_1d.
Report redistribute_factor(exec::Comm& machine,
                           const numeric::SupernodalFactor& factor,
                           const mapping::SubcubeMapping& map,
                           const Options& options = {},
                           partrisolve::DistributedFactor* out = nullptr);

/// Host-side half of the *fused* redistribution: validate the maps,
/// size `out` for the 1-D distribution, and pack the sequential
/// supernodes (which do not move — a single owner holds the whole
/// trapezoid under either distribution).  The shared supernodes are then
/// converted in place by redistribute_supernode calls issued from inside
/// a running solve phase.
void prepack_sequential(const numeric::SupernodalFactor& factor,
                        const mapping::SubcubeMapping& map,
                        const Options& options,
                        partrisolve::DistributedFactor* out);

/// Convert one shared supernode 2-D -> 1-D from within a running SPMD
/// region.  No-op for ranks outside supernode s's group and for
/// sequential supernodes (see prepack_sequential).  All message tags are
/// offset by `tag_base` so the exchange can share a machine phase with
/// other traffic (pass the solver's tag_limit() when fusing into the
/// forward sweep; redistribute_factor itself uses tag_base 0).  Each rank
/// writes only its own fragment of `out`, so concurrent calls from
/// different ranks of the group are safe.
void redistribute_supernode(exec::Process& proc,
                            const numeric::SupernodalFactor& factor,
                            const mapping::SubcubeMapping& map,
                            const Options& options, index_t s,
                            partrisolve::DistributedFactor* out,
                            int tag_base);

}  // namespace sparts::redist
