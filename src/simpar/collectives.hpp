// Forwarding header: the collectives moved to the backend-agnostic exec
// layer (exec/collectives.hpp) so they run on any backend.  Kept so
// simulator-era includes and spellings (simpar::broadcast etc.) work.
#pragma once

#include "exec/collectives.hpp"
#include "simpar/machine.hpp"

namespace sparts::simpar {
using exec::Group;
using exec::all_to_all_personalized;
using exec::allgather;
using exec::allreduce_sum;
using exec::barrier;
using exec::broadcast;
using exec::broadcast_from;
using exec::gather;
using exec::reduce_sum;
using exec::reduce_sum_to;
}  // namespace sparts::simpar
