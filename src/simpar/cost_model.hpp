// Forwarding header: the cost model moved to the backend-agnostic exec
// layer (exec/cost_model.hpp).  Kept so simulator-era includes and
// spellings (simpar::CostModel) continue to work.
#pragma once

#include "exec/cost_model.hpp"

namespace sparts::simpar {
using exec::CostModel;
using exec::FlopKind;
}  // namespace sparts::simpar
