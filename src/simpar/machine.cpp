#include "simpar/machine.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace sparts::simpar {

// ---------------------------------------------------------------------------
// SimProcess: the simulator's exec::Process implementation
// ---------------------------------------------------------------------------

class Machine::SimProcess final : public exec::Process {
 public:
  SimProcess(Machine* machine, index_t rank)
      : machine_(machine), rank_(rank) {}

  index_t rank() const override { return rank_; }
  index_t nprocs() const override { return machine_->nprocs(); }
  double now() const override { return machine_->do_now(rank_); }
  void compute(double flops, FlopKind kind) override {
    machine_->do_compute(rank_, flops, kind);
  }
  void compute_at(double flops, double seconds_per_flop) override {
    machine_->do_compute_at(rank_, flops, seconds_per_flop);
  }
  void elapse(double seconds) override { machine_->do_elapse(rank_, seconds); }
  void send(index_t dst, int tag,
            std::span<const std::byte> payload) override {
    machine_->do_send(rank_, dst, tag, payload);
  }
  ReceivedMessage recv(index_t src, int tag) override {
    return machine_->do_recv(rank_, src, tag);
  }
  bool try_recv(index_t src, int tag, ReceivedMessage* out) override {
    return machine_->do_try_recv(rank_, src, tag, out);
  }
  void poll_wait(double seconds) override {
    machine_->do_poll_wait(rank_, seconds);
  }
  const CostModel& cost() const override { return machine_->cost(); }
  const Topology& topology() const override { return machine_->topology(); }

 private:
  Machine* machine_;
  index_t rank_;
};

// ---------------------------------------------------------------------------
// Machine
// ---------------------------------------------------------------------------

Machine::Machine(const Config& config)
    : config_(config), topology_(config.topology, config.nprocs) {
  SPARTS_CHECK(config.nprocs >= 1, "need at least one processor");
}

double Machine::do_now(index_t rank) const {
  // Only the scheduled thread reads its own clock; no lock needed beyond
  // the handoff discipline, but take it anyway for sanitizer cleanliness.
  auto* self = const_cast<Machine*>(this);
  std::unique_lock<std::mutex> lock(self->mutex_);
  return procs_[static_cast<std::size_t>(rank)]->clock;
}

void Machine::do_compute(index_t rank, double flops, FlopKind kind) {
  do_compute_at(rank, flops, config_.cost.per_flop(kind));
}

void Machine::do_compute_at(index_t rank, double flops, double per_flop) {
  SPARTS_CHECK(flops >= 0.0);
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  const double dt = flops * per_flop;
  pc.clock += dt;
  pc.stats.compute_time += dt;
  pc.stats.flops += static_cast<nnz_t>(flops);
}

void Machine::do_elapse(index_t rank, double seconds) {
  SPARTS_CHECK(seconds >= 0.0);
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  pc.clock += seconds;
  pc.stats.compute_time += seconds;
}

void Machine::do_send(index_t rank, index_t dst, int tag,
                      std::span<const std::byte> payload) {
  SPARTS_CHECK(dst >= 0 && dst < config_.nprocs,
               "send destination " << dst << " out of range");
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  const nnz_t words =
      static_cast<nnz_t>((payload.size() + sizeof(real_t) - 1) /
                         sizeof(real_t));
  const double occupancy = config_.cost.send_occupancy(words);
  const double arrival =
      pc.clock + occupancy +
      config_.cost.network_latency(topology_.hops(rank, dst));
  const double send_start = pc.clock;
  pc.clock += occupancy;
  pc.stats.send_time += occupancy;
  ++pc.stats.messages_sent;
  pc.stats.words_sent += words;
  // The simulator always captures the payload (it models a distributed
  // machine, not shared memory), so its copy lane is the whole lane.
  pc.stats.bytes_copied += static_cast<nnz_t>(payload.size());

  // The machine mutex is held here, so use pc.clock directly — calling
  // do_now() would self-deadlock.
  if (obs::Tracer::enabled()) {
    auto& tracer = obs::Tracer::instance();
    const auto r32 = static_cast<std::int32_t>(rank);
    tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                        "send", send_start,
                        static_cast<std::int64_t>(payload.size()),
                        static_cast<std::int64_t>(dst));
    tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                        "send", pc.clock);
  }
  if (obs::metrics_enabled()) {
    obs::metrics().histogram("comm.message_bytes")
        .observe(static_cast<std::int64_t>(payload.size()));
  }

  Message msg;
  msg.src = rank;
  msg.tag = tag;
  msg.arrival = arrival;
  msg.seq = send_seq_++;
  msg.payload.assign(payload.begin(), payload.end());
  procs_[static_cast<std::size_t>(dst)]->mailbox.push_back(std::move(msg));
}

std::ptrdiff_t Machine::find_match(const ProcControl& pc, index_t src,
                                   int tag, double arrived_by) const {
  std::ptrdiff_t best = -1;
  for (std::size_t i = 0; i < pc.mailbox.size(); ++i) {
    const Message& m = pc.mailbox[i];
    if (m.tag != tag) continue;
    if (src != kAnySource && m.src != src) continue;
    if (arrived_by >= 0.0 && m.arrival > arrived_by) continue;
    if (best == -1) {
      best = static_cast<std::ptrdiff_t>(i);
      continue;
    }
    const Message& b = pc.mailbox[static_cast<std::size_t>(best)];
    if (m.arrival < b.arrival ||
        (m.arrival == b.arrival &&
         (m.src < b.src || (m.src == b.src && m.seq < b.seq)))) {
      best = static_cast<std::ptrdiff_t>(i);
    }
  }
  return best;
}

ReceivedMessage Machine::do_recv(index_t rank, index_t src, int tag) {
  SPARTS_CHECK(src == kAnySource || (src >= 0 && src < config_.nprocs),
               "recv source " << src << " out of range");
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];

  // Always yield: the scheduler alone decides when it is causally safe to
  // consume a message (see header comment).
  pc.status = Status::blocked;
  pc.want_src = src;
  pc.want_tag = tag;
  pc.scheduled = false;
  schedule_next(lock);
  pc.cv.wait(lock, [&pc] { return pc.scheduled; });

  const std::ptrdiff_t idx = find_match(pc, src, tag);
  if (idx < 0) {
    SPARTS_CHECK(deadlock_, "scheduled a blocked rank without a match");
    throw DeadlockError(
        "simulated machine deadlock: rank " + std::to_string(rank) +
        " waits for src=" + std::to_string(src) +
        " tag=" + std::to_string(tag) + " but no sender can make progress");
  }
  Message msg = std::move(pc.mailbox[static_cast<std::size_t>(idx)]);
  pc.mailbox.erase(pc.mailbox.begin() + idx);
  const double old_clock = pc.clock;
  pc.clock = std::max(pc.clock, msg.arrival);
  pc.stats.idle_time += pc.clock - old_clock;
  ++pc.stats.messages_received;
  pc.stats.words_received += static_cast<nnz_t>(
      (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
  pc.status = Status::ready;

  // Recorded only now (while the rank was blocked nothing else wrote to
  // its track, so per-rank order is preserved); mutex held, so no do_now().
  if (obs::Tracer::enabled()) {
    auto& tracer = obs::Tracer::instance();
    const auto r32 = static_cast<std::int32_t>(rank);
    tracer.record_local(r32, obs::EventKind::span_begin, obs::Category::comm,
                        "recv", old_clock,
                        static_cast<std::int64_t>(msg.payload.size()),
                        static_cast<std::int64_t>(msg.src));
    tracer.record_local(r32, obs::EventKind::span_end, obs::Category::comm,
                        "recv", pc.clock);
  }
  return ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
}

bool Machine::do_try_recv(index_t rank, index_t src, int tag,
                          ReceivedMessage* out) {
  SPARTS_CHECK(src == kAnySource || (src >= 0 && src < config_.nprocs),
               "recv source " << src << " out of range");
  SPARTS_CHECK(out != nullptr);
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];

  // Yield while staying `ready`: every peer whose effective time is
  // earlier than our clock runs to quiescence before we look, so an empty
  // answer is conservative-DES-correct, not a scheduling accident.
  pc.scheduled = false;
  schedule_next(lock);
  pc.cv.wait(lock, [&pc] { return pc.scheduled; });

  // Only messages that have *arrived* by our current clock are visible —
  // a poll must not time-travel to a future arrival the way a blocking
  // recv may.
  const std::ptrdiff_t idx = find_match(pc, src, tag, pc.clock);
  if (idx < 0) return false;
  Message msg = std::move(pc.mailbox[static_cast<std::size_t>(idx)]);
  pc.mailbox.erase(pc.mailbox.begin() + idx);
  ++pc.stats.messages_received;
  pc.stats.words_received += static_cast<nnz_t>(
      (msg.payload.size() + sizeof(real_t) - 1) / sizeof(real_t));
  *out = ReceivedMessage{msg.src, msg.tag, std::move(msg.payload)};
  return true;
}

void Machine::do_poll_wait(index_t rank, double seconds) {
  SPARTS_CHECK(seconds >= 0.0);
  std::unique_lock<std::mutex> lock(mutex_);
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  pc.clock += seconds;
  pc.stats.idle_time += seconds;
  // Hand the token back so peers with earlier clocks can run; without
  // this a polling loop would starve every other rank under the strict
  // handoff scheduler.
  pc.scheduled = false;
  schedule_next(lock);
  pc.cv.wait(lock, [&pc] { return pc.scheduled; });
}

bool Machine::schedule_next(std::unique_lock<std::mutex>&) {
  // Pick the runnable rank with the smallest effective time (ties by rank).
  index_t best = -1;
  double best_time = 0.0;
  bool any_unfinished = false;
  for (index_t r = 0; r < config_.nprocs; ++r) {
    ProcControl& pc = *procs_[static_cast<std::size_t>(r)];
    if (pc.status == Status::done) continue;
    any_unfinished = true;
    double eff;
    if (pc.status == Status::ready) {
      eff = pc.clock;
    } else {
      const std::ptrdiff_t idx = find_match(pc, pc.want_src, pc.want_tag);
      if (idx < 0) continue;
      eff = std::max(pc.clock,
                     pc.mailbox[static_cast<std::size_t>(idx)].arrival);
    }
    if (best == -1 || eff < best_time) {
      best = r;
      best_time = eff;
    }
  }

  if (best != -1) {
    ProcControl& pc = *procs_[static_cast<std::size_t>(best)];
    pc.scheduled = true;
    pc.cv.notify_one();
    return true;
  }
  if (!any_unfinished) {
    scheduler_cv_.notify_all();  // run() may finish
    return false;
  }
  // Deadlock: wake one blocked rank so it can unwind with DeadlockError;
  // its worker epilogue will call schedule_next again for the next one.
  deadlock_ = true;
  for (index_t r = 0; r < config_.nprocs; ++r) {
    ProcControl& pc = *procs_[static_cast<std::size_t>(r)];
    if (pc.status == Status::blocked) {
      pc.scheduled = true;
      pc.cv.notify_one();
      return true;
    }
  }
  scheduler_cv_.notify_all();
  return false;
}

void Machine::yield_and_wait(index_t rank,
                             std::unique_lock<std::mutex>& lock) {
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  pc.cv.wait(lock, [&pc] { return pc.scheduled; });
}

void Machine::worker(index_t rank, const std::function<void(Proc&)>& spmd) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    yield_and_wait(rank, lock);
  }
  auto& pc = *procs_[static_cast<std::size_t>(rank)];
  try {
    SimProcess proc(this, rank);
    spmd(proc);
  } catch (...) {
    pc.error = std::current_exception();
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    pc.status = Status::done;
    pc.scheduled = false;
    schedule_next(lock);
  }
}

RunStats Machine::run(const std::function<void(Proc&)>& spmd) {
  SPARTS_CHECK(!running_, "Machine::run is not reentrant");
  running_ = true;
  deadlock_ = false;
  send_seq_ = 0;
  procs_.clear();
  procs_.reserve(static_cast<std::size_t>(config_.nprocs));
  for (index_t r = 0; r < config_.nprocs; ++r) {
    procs_.push_back(std::make_unique<ProcControl>());
  }

  if (obs::Tracer::enabled()) obs::Tracer::instance().begin_run();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(config_.nprocs));
  for (index_t r = 0; r < config_.nprocs; ++r) {
    threads.emplace_back([this, r, &spmd] { worker(r, spmd); });
  }

  {
    std::unique_lock<std::mutex> lock(mutex_);
    schedule_next(lock);  // hand the token to rank 0
    scheduler_cv_.wait(lock, [this] {
      return std::all_of(procs_.begin(), procs_.end(), [](const auto& pc) {
        return pc->status == Status::done;
      });
    });
  }
  for (auto& t : threads) t.join();
  running_ = false;

  // Propagate the highest-priority user error (root causes beat timeouts
  // beat secondary deadlock unwinds), ties broken by rank order.
  std::exception_ptr best_error;
  int best_priority = 3;
  for (auto& pc : procs_) {
    if (!pc->error) continue;
    const int priority = exec::error_priority(pc->error);
    if (priority < best_priority) {
      best_priority = priority;
      best_error = pc->error;
    }
  }
  if (best_error) std::rethrow_exception(best_error);

  RunStats stats;
  stats.procs.reserve(procs_.size());
  for (auto& pc : procs_) {
    pc->stats.clock = pc->clock;
    stats.procs.push_back(pc->stats);
  }
  if (obs::Tracer::enabled()) {
    obs::Tracer::instance().end_run(stats.parallel_time());
  }
  return stats;
}

}  // namespace sparts::simpar
