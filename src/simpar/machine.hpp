// The simulated distributed-memory machine — the deterministic backend of
// the exec layer (see exec/process.hpp for the backend-agnostic contract).
//
// Machine::run executes an SPMD function on p virtual processors.  Each
// processor is a host thread, but a strict-handoff scheduler runs exactly
// one at a time and always resumes the runnable processor with the smallest
// "effective time" (its local clock, or for a processor blocked in recv the
// arrival time of its earliest matching message).  This is a conservative
// sequential discrete-event simulation: it is deterministic, causally
// correct (no message can be created in another processor's past), and the
// final per-processor clocks are exactly the parallel execution times of
// the algorithm under the cost model.
//
// The API mirrors a minimal message-passing interface:
//   proc.compute(flops, kind)          charge computation time
//   proc.send(dst, tag, data)          blocking-send semantics with
//                                      t_s + l*t_h + m*t_w cost
//   proc.recv(src, tag)                blocking receive (src = kAnySource
//                                      matches any sender)
// plus typed span helpers.  Collectives are layered on top in
// exec/collectives.hpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "exec/process.hpp"

namespace sparts::simpar {

// The message-passing vocabulary moved to the backend-agnostic exec layer;
// these aliases keep simulator-era spellings working.
using exec::kAnySource;
using exec::CostModel;
using exec::FlopKind;
using exec::ProcStats;
using exec::ReceivedMessage;
using exec::RunStats;
using exec::Topology;
using exec::TopologyKind;

/// Historical name for the rank handle; SPMD code written against the
/// simulator runs unchanged on any exec backend.
using Proc = exec::Process;

class Machine final : public exec::Comm {
 public:
  struct Config {
    index_t nprocs = 1;
    CostModel cost{};
    TopologyKind topology = TopologyKind::hypercube;
  };

  explicit Machine(const Config& config);

  /// Run `spmd` on every rank to completion; returns per-rank statistics.
  /// Rethrows the first exception thrown by user code (by rank order).
  /// Throws DeadlockError if every unfinished rank blocks in recv forever.
  RunStats run(const std::function<void(Proc&)>& spmd) override;

  index_t nprocs() const override { return config_.nprocs; }
  const CostModel& cost() const override { return config_.cost; }
  const Topology& topology() const override { return topology_; }

 private:
  class SimProcess;

  struct Message {
    index_t src;
    int tag;
    double arrival;
    nnz_t seq;  ///< global send order, tie-breaker
    exec::Payload payload;
  };

  enum class Status { ready, blocked, done };

  struct ProcControl {
    Status status = Status::ready;
    bool scheduled = false;  ///< this thread may run now
    double clock = 0.0;
    // recv() wait state:
    index_t want_src = 0;
    int want_tag = 0;
    std::condition_variable cv;
    std::vector<Message> mailbox;
    ProcStats stats;
    std::exception_ptr error;
  };

  // Process entry points (called from worker threads).
  void do_compute(index_t rank, double flops, FlopKind kind);
  void do_compute_at(index_t rank, double flops, double per_flop);
  void do_elapse(index_t rank, double seconds);
  void do_send(index_t rank, index_t dst, int tag,
               std::span<const std::byte> payload);
  ReceivedMessage do_recv(index_t rank, index_t src, int tag);
  bool do_try_recv(index_t rank, index_t src, int tag, ReceivedMessage* out);
  void do_poll_wait(index_t rank, double seconds);
  double do_now(index_t rank) const;

  /// Index into the mailbox of the best (earliest-arrival) matching
  /// message, or -1.  With `arrived_by >= 0`, only messages whose arrival
  /// time is <= arrived_by qualify (polling semantics: a message "exists"
  /// for try_recv only once the rank's clock has caught up with it).
  std::ptrdiff_t find_match(const ProcControl& pc, index_t src, int tag,
                            double arrived_by = -1.0) const;

  /// Worker thread trampoline.
  void worker(index_t rank, const std::function<void(Proc&)>& spmd);

  /// Scheduler: picks and wakes the next runnable rank.  Returns false when
  /// every rank is done.  Must hold `mutex_`.
  bool schedule_next(std::unique_lock<std::mutex>& lock);

  /// Block the calling worker until the scheduler hands control back.
  void yield_and_wait(index_t rank, std::unique_lock<std::mutex>& lock);

  Config config_;
  Topology topology_;

  std::mutex mutex_;
  std::condition_variable scheduler_cv_;
  // unique_ptr because ProcControl owns a condition_variable (immovable).
  std::vector<std::unique_ptr<ProcControl>> procs_;
  nnz_t send_seq_ = 0;
  bool deadlock_ = false;
  bool running_ = false;
};

}  // namespace sparts::simpar
