// The simulated distributed-memory machine.
//
// Machine::run executes an SPMD function on p virtual processors.  Each
// processor is a host thread, but a strict-handoff scheduler runs exactly
// one at a time and always resumes the runnable processor with the smallest
// "effective time" (its local clock, or for a processor blocked in recv the
// arrival time of its earliest matching message).  This is a conservative
// sequential discrete-event simulation: it is deterministic, causally
// correct (no message can be created in another processor's past), and the
// final per-processor clocks are exactly the parallel execution times of
// the algorithm under the cost model.
//
// The API mirrors a minimal message-passing interface:
//   proc.compute(flops, kind)          charge computation time
//   proc.send(dst, tag, data)          blocking-send semantics with
//                                      t_s + l*t_h + m*t_w cost
//   proc.recv(src, tag)                blocking receive (src = kAnySource
//                                      matches any sender)
// plus typed span helpers.  Collectives are layered on top in
// collectives.hpp.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "simpar/cost_model.hpp"
#include "simpar/topology.hpp"

namespace sparts::simpar {

/// Wildcard source rank for recv.
inline constexpr index_t kAnySource = -1;

/// Per-processor statistics, available after the run.
struct ProcStats {
  double clock = 0.0;         ///< local time at termination
  double compute_time = 0.0;  ///< time spent in compute()
  double send_time = 0.0;     ///< sender occupancy of send()
  double idle_time = 0.0;     ///< time spent waiting in recv()
  nnz_t flops = 0;
  nnz_t messages_sent = 0;
  nnz_t words_sent = 0;
};

/// Aggregated statistics of a run.
struct RunStats {
  std::vector<ProcStats> procs;

  /// Parallel runtime: the maximum local clock.
  double parallel_time() const;
  /// Total flops across all processors.
  nnz_t total_flops() const;
  /// Total messages across all processors.
  nnz_t total_messages() const;
  /// Total words across all processors.
  nnz_t total_words() const;
  /// sum(compute_time) / (p * parallel_time)
  double efficiency() const;
};

/// A received message.
struct ReceivedMessage {
  index_t source = -1;
  int tag = 0;
  std::vector<std::byte> payload;
};

class Machine;

/// Handle through which SPMD code interacts with its virtual processor.
/// Only valid inside Machine::run.
class Proc {
 public:
  index_t rank() const { return rank_; }
  index_t nprocs() const;

  /// Local simulated time.
  double now() const;

  /// Advance the local clock by `flops * t_c(kind)`.
  void compute(double flops, FlopKind kind = FlopKind::blas1);

  /// Advance the local clock by `flops` at an explicit per-flop cost (used
  /// for the BLAS-2/3 interpolation on multi-RHS panels).
  void compute_at(double flops, double seconds_per_flop);

  /// Advance the local clock by raw seconds (e.g. fixed overheads).
  void elapse(double seconds);

  /// Send `payload` to `dst` with `tag`.  The local clock advances by the
  /// sender occupancy; the message arrives at
  /// send_start + t_s + hops*t_h + words*t_w.
  void send(index_t dst, int tag, std::span<const std::byte> payload);

  /// Typed helper: send a span of trivially copyable values.
  template <typename T>
  void send_values(index_t dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    send(dst, tag,
         {reinterpret_cast<const std::byte*>(values.data()),
          values.size() * sizeof(T)});
  }

  /// Typed helper: send a single value.
  template <typename T>
  void send_value(index_t dst, int tag, const T& value) {
    send_values<T>(dst, tag, {&value, 1});
  }

  /// Blocking receive.  `src` may be kAnySource.  The local clock becomes
  /// max(clock, arrival time of the matched message).
  ReceivedMessage recv(index_t src, int tag);

  /// Typed helper: receive a vector of trivially copyable values.
  template <typename T>
  std::vector<T> recv_values(index_t src, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    ReceivedMessage msg = recv(src, tag);
    SPARTS_CHECK(msg.payload.size() % sizeof(T) == 0,
                 "payload size not a multiple of the element size");
    std::vector<T> out(msg.payload.size() / sizeof(T));
    std::memcpy(out.data(), msg.payload.data(), msg.payload.size());
    return out;
  }

  /// Typed helper: receive exactly one value.
  template <typename T>
  T recv_value(index_t src, int tag) {
    auto v = recv_values<T>(src, tag);
    SPARTS_CHECK(v.size() == 1, "expected a single value");
    return v[0];
  }

  const CostModel& cost() const;
  const Topology& topology() const;

 private:
  friend class Machine;
  Proc(Machine* machine, index_t rank) : machine_(machine), rank_(rank) {}
  Machine* machine_;
  index_t rank_;
};

class Machine {
 public:
  struct Config {
    index_t nprocs = 1;
    CostModel cost{};
    TopologyKind topology = TopologyKind::hypercube;
  };

  explicit Machine(const Config& config);

  /// Run `spmd` on every rank to completion; returns per-rank statistics.
  /// Rethrows the first exception thrown by user code (by rank order).
  /// Throws DeadlockError if every unfinished rank blocks in recv forever.
  RunStats run(const std::function<void(Proc&)>& spmd);

  index_t nprocs() const { return config_.nprocs; }
  const CostModel& cost() const { return config_.cost; }
  const Topology& topology() const { return topology_; }

 private:
  friend class Proc;

  struct Message {
    index_t src;
    int tag;
    double arrival;
    nnz_t seq;  ///< global send order, tie-breaker
    std::vector<std::byte> payload;
  };

  enum class Status { ready, blocked, done };

  struct ProcControl {
    Status status = Status::ready;
    bool scheduled = false;  ///< this thread may run now
    double clock = 0.0;
    // recv() wait state:
    index_t want_src = 0;
    int want_tag = 0;
    std::condition_variable cv;
    std::vector<Message> mailbox;
    ProcStats stats;
    std::exception_ptr error;
  };

  // Proc entry points (called from worker threads).
  void do_compute(index_t rank, double flops, FlopKind kind);
  void do_compute_at(index_t rank, double flops, double per_flop);
  void do_elapse(index_t rank, double seconds);
  void do_send(index_t rank, index_t dst, int tag,
               std::span<const std::byte> payload);
  ReceivedMessage do_recv(index_t rank, index_t src, int tag);
  double do_now(index_t rank) const;

  /// Index into the mailbox of the best (earliest-arrival) matching
  /// message, or -1.
  std::ptrdiff_t find_match(const ProcControl& pc, index_t src,
                            int tag) const;

  /// Worker thread trampoline.
  void worker(index_t rank, const std::function<void(Proc&)>& spmd);

  /// Scheduler: picks and wakes the next runnable rank.  Returns false when
  /// every rank is done.  Must hold `mutex_`.
  bool schedule_next(std::unique_lock<std::mutex>& lock);

  /// Block the calling worker until the scheduler hands control back.
  void yield_and_wait(index_t rank, std::unique_lock<std::mutex>& lock);

  Config config_;
  Topology topology_;

  std::mutex mutex_;
  std::condition_variable scheduler_cv_;
  // unique_ptr because ProcControl owns a condition_variable (immovable).
  std::vector<std::unique_ptr<ProcControl>> procs_;
  nnz_t send_seq_ = 0;
  bool deadlock_ = false;
  bool running_ = false;
};

}  // namespace sparts::simpar
