// Forwarding header: topologies moved to the backend-agnostic exec layer
// (exec/topology.hpp).  Kept so simulator-era includes and spellings
// (simpar::Topology) continue to work.
#pragma once

#include "exec/topology.hpp"

namespace sparts::simpar {
using exec::Topology;
using exec::TopologyKind;
}  // namespace sparts::simpar
