#include "solver/condest.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace sparts::solver {

namespace {

/// Exact ||A||_1 = max column absolute sum of the symmetric matrix.
real_t one_norm(const sparse::SymmetricCsc& a) {
  const index_t n = a.n();
  std::vector<real_t> colsum(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const real_t v = std::abs(vals[k]);
      colsum[static_cast<std::size_t>(j)] += v;
      if (rows[k] != j) colsum[static_cast<std::size_t>(rows[k])] += v;
    }
  }
  return *std::max_element(colsum.begin(), colsum.end());
}

real_t vec_one_norm(const std::vector<real_t>& v) {
  real_t s = 0.0;
  for (real_t x : v) s += std::abs(x);
  return s;
}

}  // namespace

ConditionEstimate estimate_condition(const SparseSolver& solver,
                                     int max_iterations) {
  // Hager's estimator on B = A^{-1}: maximize ||B x||_1 over ||x||_1 = 1.
  // For symmetric A, B^T = B, so both products are factor solves.
  const index_t n = solver.permuted_matrix().n();
  SPARTS_CHECK(n > 0);
  ConditionEstimate est;
  est.norm_a = one_norm(solver.permuted_matrix());

  std::vector<real_t> x(static_cast<std::size_t>(n),
                        1.0 / static_cast<real_t>(n));
  real_t best = 0.0;
  for (int iter = 0; iter < max_iterations; ++iter) {
    // y = A^{-1} x.
    std::vector<real_t> y = solver.solve(x, 1);
    ++est.solves_used;
    const real_t norm_y = vec_one_norm(y);
    best = std::max(best, norm_y);

    // xi = sign(y); z = A^{-1} xi  (A symmetric: A^{-T} = A^{-1}).
    std::vector<real_t> xi(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      xi[static_cast<std::size_t>(i)] =
          y[static_cast<std::size_t>(i)] >= 0.0 ? 1.0 : -1.0;
    }
    std::vector<real_t> z = solver.solve(xi, 1);
    ++est.solves_used;

    // Converged when max |z_i| <= z^T x.
    index_t jmax = 0;
    real_t zmax = 0.0;
    real_t ztx = 0.0;
    for (index_t i = 0; i < n; ++i) {
      const real_t az = std::abs(z[static_cast<std::size_t>(i)]);
      if (az > zmax) {
        zmax = az;
        jmax = i;
      }
      ztx += z[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
    }
    if (zmax <= ztx * (1.0 + 1e-12)) break;
    std::fill(x.begin(), x.end(), 0.0);
    x[static_cast<std::size_t>(jmax)] = 1.0;
  }
  est.norm_ainv = best;
  return est;
}

}  // namespace sparts::solver
