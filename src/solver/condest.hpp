// One-norm condition-number estimation (Hager's algorithm, as used by
// LAPACK's xxxCON): estimates ||A^{-1}||_1 from a handful of solves with
// the existing factorization, giving cond_1(A) ~ ||A||_1 * ||A^{-1}||_1
// without ever forming A^{-1}.  A production solver reports this next to
// the residual so users know how much accuracy to expect.
#pragma once

#include "common/types.hpp"
#include "solver/sparse_solver.hpp"

namespace sparts::solver {

struct ConditionEstimate {
  real_t norm_a = 0.0;      ///< ||A||_1 (exact)
  real_t norm_ainv = 0.0;   ///< ||A^{-1}||_1 (estimated, lower bound)
  int solves_used = 0;      ///< factor solves consumed by the estimator

  real_t condition() const { return norm_a * norm_ainv; }
};

/// Estimate cond_1(A) using the solver's factorization.  `max_iterations`
/// bounds the Hager iteration (each costs two solves); 5 is plenty in
/// practice.
ConditionEstimate estimate_condition(const SparseSolver& solver,
                                     int max_iterations = 5);

}  // namespace sparts::solver
