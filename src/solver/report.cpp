#include "solver/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/table.hpp"
#include "mapping/load_balance.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "ordering/etree.hpp"
#include "simpar/cost_model.hpp"

namespace sparts::solver {

namespace {

/// Rough simulated-solve projection from the T3D cost model: work term +
/// per-level pipeline startups — the model of paper Eq. (1)/(2) with the
/// library's calibrated constants.  Not a simulation; a planning estimate.
double projected_solve_seconds(const symbolic::SupernodePartition& part,
                               const mapping::SubcubeMapping& map,
                               index_t m) {
  const simpar::CostModel cost = simpar::CostModel::t3d();
  const auto weights = mapping::solve_work_weights(part, m);
  const mapping::LoadBalance lb =
      mapping::analyze_load_balance(part, map, weights);
  double t = 2.0 * lb.max_work * cost.panel_flop(m);  // forward + backward

  // Pipeline and transfer startups at the shared levels.
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const auto& g = map.group[static_cast<std::size_t>(s)];
    if (g.count < 2) continue;
    const double tokens =
        std::ceil(static_cast<double>(part.width(s)) / 8.0);
    t += 2.0 * (static_cast<double>(g.count) + tokens) *
         (cost.t_s + 8.0 * static_cast<double>(m) * cost.t_w) /
         static_cast<double>(g.count);
  }
  return t;
}

}  // namespace

void write_analysis_report(const SparseSolver& solver,
                           const ReportOptions& options, std::ostream& out) {
  const auto& part = solver.partition();
  const auto& info = solver.info();
  const index_t n = part.n();

  out << "=== SPARTS analysis report ===\n\n";
  out << "matrix:            N = " << n
      << ", nnz(A, lower) = " << solver.permuted_matrix().nnz_lower() << "\n";
  out << "factor:            nnz(L) = " << info.factor_nnz << " ("
      << format_fixed(static_cast<double>(info.factor_nnz) /
                          static_cast<double>(
                              solver.permuted_matrix().nnz_lower()),
                      1)
      << "x fill), flops = "
      << format_si(static_cast<double>(info.factor_flops)) << "\n";
  out << "solve cost:        "
      << format_si(static_cast<double>(info.solve_flops_per_rhs))
      << " flops per right-hand side\n";

  // Supernode statistics.
  const index_t nsup = part.num_supernodes();
  index_t max_width = 0, max_height = 0;
  double avg_width = 0.0;
  for (index_t s = 0; s < nsup; ++s) {
    max_width = std::max(max_width, part.width(s));
    max_height = std::max(max_height, part.height(s));
    avg_width += static_cast<double>(part.width(s));
  }
  avg_width /= static_cast<double>(nsup);
  out << "supernodes:        " << nsup << " (avg width "
      << format_fixed(avg_width, 1) << ", max width " << max_width
      << ", max height " << max_height << ")\n";
  out << "tree height:       " << ordering::tree_height(part.stree)
      << " supernodes\n";

  // Supernode width histogram.
  {
    const index_t buckets[] = {1, 2, 4, 8, 16, 32, 64};
    std::vector<index_t> hist(std::size(buckets) + 1, 0);
    for (index_t s = 0; s < nsup; ++s) {
      const index_t w = part.width(s);
      std::size_t b = 0;
      while (b < std::size(buckets) && w > buckets[b]) ++b;
      ++hist[b];
    }
    out << "width histogram:   ";
    for (std::size_t b = 0; b < hist.size(); ++b) {
      if (b < std::size(buckets)) {
        out << "<=" << buckets[b];
      } else {
        out << ">" << buckets[std::size(buckets) - 1];
      }
      out << ":" << hist[b] << "  ";
    }
    out << "\n";
  }

  if (!options.run_projections) return;

  out << "\nparallel projections (T3D cost model, nrhs = " << options.nrhs
      << "):\n";
  TextTable table({"p", "load imbalance", "projected solve (s)",
                   "projected speedup"});
  const auto weights = mapping::solve_work_weights(part, options.nrhs);
  double t1 = 0.0;
  for (index_t p = 1; p <= options.max_p; p *= 4) {
    const mapping::SubcubeMapping map =
        mapping::subtree_to_subcube(part, p, weights);
    const mapping::LoadBalance lb =
        mapping::analyze_load_balance(part, map, weights);
    const double t = projected_solve_seconds(part, map, options.nrhs);
    if (p == 1) t1 = t;
    table.new_row();
    table.add(static_cast<long long>(p));
    table.add(lb.imbalance(), 2);
    table.add(t, 4);
    table.add(t1 / t, 2);
  }
  out << table.str();
}

std::string analysis_report(const SparseSolver& solver,
                            const ReportOptions& options) {
  std::ostringstream oss;
  write_analysis_report(solver, options, oss);
  return oss.str();
}

}  // namespace sparts::solver
