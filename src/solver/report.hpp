// Human-readable analysis report of a factorized system: matrix and fill
// statistics, the supernode size distribution, the parallel level profile
// under subtree-to-subcube, and model-predicted parallel solve times for a
// range of machine sizes.  Exposed on the command line as
// `sparts_solve --report`.
#pragma once

#include <iosfwd>
#include <string>

#include "solver/sparse_solver.hpp"

namespace sparts::solver {

struct ReportOptions {
  index_t max_p = 256;       ///< largest machine size to project
  index_t nrhs = 1;          ///< right-hand sides for the projections
  bool run_projections = true;
};

/// Write the analysis report for a factorized solver to `out`.
void write_analysis_report(const SparseSolver& solver,
                           const ReportOptions& options, std::ostream& out);

/// Convenience: report as a string.
std::string analysis_report(const SparseSolver& solver,
                            const ReportOptions& options = {});

}  // namespace sparts::solver
