#include "solver/sparse_solver.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dense/pivot.hpp"
#include "exec/checked_backend.hpp"
#include "exec/fault_backend.hpp"
#include "exec/reliable.hpp"
#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "ordering/mindeg.hpp"
#include "ordering/nested_dissection.hpp"
#include "ordering/rcm.hpp"
#include "parfact/parfact.hpp"
#include "partrisolve/partrisolve.hpp"
#include "redist/redist.hpp"
#include "symbolic/symbolic.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts::solver {

namespace {

// The single registry the CLI help text, the parser, and make_backend all
// read; adding a backend means adding exactly one row here (plus its
// make_backend case, which the compiler enforces via the enum switch).
constexpr BackendInfo kBackends[] = {
    {"sim", ExecutionBackend::simulated,
     "deterministic simulator, T3D cost model"},
    {"threads", ExecutionBackend::threads,
     "one std::thread per rank, wall clock"},
    {"tasks", ExecutionBackend::tasks,
     "rank fibers on a work-stealing task-DAG scheduler, wall clock"},
    {"checked", ExecutionBackend::checked,
     "sim audited for races / tag collisions / orphaned sends / deadlock "
     "cycles; findings fail the run"},
    {"checked-threads", ExecutionBackend::checked_threads,
     "the same audit over the threaded backend"},
    {"faulty", ExecutionBackend::faulty,
     "sim with the --faults scenario injected under the reliability "
     "envelope"},
    {"faulty-threads", ExecutionBackend::faulty_threads,
     "the same fault stack over threads"},
};

sparse::Permutation compute_ordering(const sparse::SymmetricCsc& a,
                                     OrderingMethod method) {
  switch (method) {
    case OrderingMethod::natural:
      return sparse::Permutation(a.n());
    case OrderingMethod::nested_dissection:
      return ordering::nested_dissection(a);
    case OrderingMethod::minimum_degree:
      return ordering::minimum_degree(a);
    case OrderingMethod::rcm:
      return ordering::rcm(a);
  }
  throw InvalidArgument("unknown ordering method");
}

symbolic::SupernodePartition analyze(const sparse::SymmetricCsc& a_perm,
                                     const Options& options,
                                     AnalysisInfo* info) {
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a_perm);
  symbolic::SupernodePartition part = symbolic::fundamental_supernodes(sym);
  if (options.amalgamation_max_width > 0) {
    part = symbolic::amalgamate(sym, part, options.amalgamation_max_width,
                                options.amalgamation_relax_zeros);
  }
  if (info != nullptr) {
    info->factor_nnz = sym.nnz();
    info->factor_flops = sym.factorization_flops();
    info->num_supernodes = part.num_supernodes();
    info->solve_flops_per_rhs = sym.solve_flops(1);
  }
  return part;
}

/// One fresh backend per phase, so each phase's stats start from zero (the
/// simulator additionally requires a fresh Machine per run for determinism
/// of message sequence numbers).
std::unique_ptr<exec::Comm> make_backend(ExecutionBackend backend, index_t p,
                                         const Options& options) {
  switch (backend) {
    case ExecutionBackend::simulated: {
      simpar::Machine::Config cfg;
      cfg.nprocs = p;
      cfg.cost = exec::CostModel::t3d();
      cfg.topology = exec::TopologyKind::hypercube;
      return std::make_unique<simpar::Machine>(cfg);
    }
    case ExecutionBackend::threads: {
      exec::ThreadBackend::Config cfg;
      cfg.nprocs = p;
      cfg.cost = exec::CostModel::t3d();
      return std::make_unique<exec::ThreadBackend>(cfg);
    }
    case ExecutionBackend::tasks: {
      exec::TaskBackend::Config cfg;
      cfg.nprocs = p;
      cfg.cost = exec::CostModel::t3d();
      return std::make_unique<exec::TaskBackend>(cfg);
    }
    case ExecutionBackend::checked:
    case ExecutionBackend::checked_threads: {
      auto inner = make_backend(backend == ExecutionBackend::checked
                                    ? ExecutionBackend::simulated
                                    : ExecutionBackend::threads,
                                p, options);
      exec::CheckedBackend::Options copts;
      copts.throw_on_findings = true;
      return std::make_unique<exec::CheckedBackend>(std::move(inner), copts);
    }
    case ExecutionBackend::faulty:
    case ExecutionBackend::faulty_threads: {
      // Reliable(Faulty(base)): faults are injected below the envelope so
      // the envelope has to recover from them.  No CheckedBackend in this
      // stack — its FIFO bookkeeping would (correctly) flag the injected
      // duplicates as protocol violations.
      const bool sim = backend == ExecutionBackend::faulty;
      auto inner = make_backend(
          sim ? ExecutionBackend::simulated : ExecutionBackend::threads, p,
          options);
      auto faulty = std::make_unique<exec::FaultyBackend>(std::move(inner),
                                                          options.fault_plan);
      exec::ReliableConfig rcfg = sim ? exec::ReliableConfig::for_simulated()
                                      : exec::ReliableConfig::for_threads();
      // NACK-driven retransmission plus the FIN linger make per-delivery
      // acks redundant for correctness; skipping them halves the control
      // traffic (the dominant clean-run envelope cost) at the price of
      // retaining retransmit buffers for the phase, which is bounded.
      // SPARTS_RELIABLE_ACKS=1 re-enables them.
      rcfg.acks = false;
      rcfg.from_env();
      return std::make_unique<exec::ReliableBackend>(std::move(faulty), rcfg);
    }
  }
  throw InvalidArgument("unknown execution backend");
}

/// Fold a checked backend's per-phase report into the result totals.
void accumulate_report(const exec::Comm& machine, ParallelSolveResult* r) {
  if (const auto* checked =
          dynamic_cast<const exec::CheckedBackend*>(&machine)) {
    r->analysis_findings +=
        static_cast<std::int64_t>(checked->report().findings.size());
    r->checked_messages += checked->report().sends;
  }
  if (const auto* tasks = dynamic_cast<const exec::TaskBackend*>(&machine)) {
    const exec::SchedulerStats s = tasks->last_scheduler_stats();
    r->task_scheduler.workers = s.workers;
    r->task_scheduler.jobs_run += s.jobs_run;
    r->task_scheduler.steals += s.steals;
    r->task_scheduler.parks += s.parks;
  }
  if (const auto* reliable =
          dynamic_cast<const exec::ReliableBackend*>(&machine)) {
    r->retransmits += reliable->stats().retransmits;
    r->dup_discarded += reliable->stats().dup_discarded;
    if (const auto* faulty =
            dynamic_cast<const exec::FaultyBackend*>(&reliable->inner())) {
      r->faults_injected += faulty->stats().injected();
    }
  }
}

/// Per-rank progress of an enveloped run, empty for other backends.
std::string progress_of(const exec::Comm& machine) {
  const auto* reliable = dynamic_cast<const exec::ReliableBackend*>(&machine);
  return reliable != nullptr ? reliable->progress_report() : std::string();
}

/// Run one parallel phase; exec-level failures (injected crash, envelope
/// deadline, deadlock) become a structured SolveError naming the phase.
template <typename Fn>
auto run_phase(const char* phase, const exec::Comm& machine,
               ParallelSolveResult* result, Fn&& fn) {
  try {
    return fn();
  } catch (const InjectedFault& e) {
    accumulate_report(machine, result);
    throw SolveError(phase, e.what(), progress_of(machine));
  } catch (const TimeoutError& e) {
    accumulate_report(machine, result);
    // The envelope already appended its progress report to the message.
    throw SolveError(phase, e.what(), "");
  } catch (const DeadlockError& e) {
    accumulate_report(machine, result);
    throw SolveError(phase, e.what(), progress_of(machine));
  }
}

}  // namespace

std::span<const BackendInfo> execution_backends() { return kBackends; }

std::string execution_backend_names() {
  std::string names;
  for (const BackendInfo& info : kBackends) {
    if (!names.empty()) names += " | ";
    names += info.name;
  }
  return names;
}

ExecutionBackend parse_execution_backend(const std::string& name) {
  for (const BackendInfo& info : kBackends) {
    if (name == info.name) return info.backend;
  }
  throw InvalidArgument("unknown backend '" + name +
                        "' (expected one of: " + execution_backend_names() +
                        ")");
}

const BackendInfo& execution_backend_info(ExecutionBackend backend) {
  for (const BackendInfo& info : kBackends) {
    if (info.backend == backend) return info;
  }
  throw InvalidArgument("execution backend missing from registry");
}

SparseSolver SparseSolver::factorize(const sparse::SymmetricCsc& a,
                                     const Options& options) {
  SparseSolver s;
  dense::set_kernel_impl(options.kernels);
  dense::set_pivot_policy({options.pivot_mode, options.pivot_rel_floor});
  {
    obs::PhaseScope phase("ordering");
    s.perm_ = compute_ordering(a, options.ordering);
    s.a_perm_ = sparse::permute_symmetric(a, s.perm_);
  }
  const symbolic::SupernodePartition part = [&] {
    obs::PhaseScope phase("symbolic");
    return analyze(s.a_perm_, options, &s.info_);
  }();
  {
    obs::PhaseScope phase("factorization");
    s.factor_ = numeric::multifrontal_cholesky(s.a_perm_, part);
  }
  return s;
}

std::vector<real_t> SparseSolver::solve(std::span<const real_t> b,
                                        index_t m) const {
  const index_t n = a_perm_.n();
  SPARTS_CHECK(static_cast<index_t>(b.size()) == n * m,
               "right-hand side has the wrong size");
  std::vector<real_t> x(b.size());
  for (index_t c = 0; c < m; ++c) {
    for (index_t k = 0; k < n; ++k) {
      x[static_cast<std::size_t>(c * n + k)] =
          b[static_cast<std::size_t>(c * n + perm_.old_of_new(k))];
    }
  }
  trisolve::full_solve(factor_, x.data(), m);
  std::vector<real_t> out(b.size());
  for (index_t c = 0; c < m; ++c) {
    for (index_t k = 0; k < n; ++k) {
      out[static_cast<std::size_t>(c * n + perm_.old_of_new(k))] =
          x[static_cast<std::size_t>(c * n + k)];
    }
  }
  return out;
}

std::vector<real_t> SparseSolver::solve_refined(std::span<const real_t> b,
                                                index_t m,
                                                int max_iterations,
                                                real_t tolerance,
                                                real_t* residual_out) const {
  const index_t n = a_perm_.n();
  SPARTS_CHECK(static_cast<index_t>(b.size()) == n * m);
  std::vector<real_t> x = solve(b, m);

  // Refinement works in the *original* ordering: A is available there via
  // the permuted matrix and the permutation.
  const sparse::SymmetricCsc& ap = a_perm_;
  std::vector<real_t> r(b.size());
  real_t residual = 0.0;
  for (int iter = 0; iter <= max_iterations; ++iter) {
    // r = b - A x (computed in the permuted ordering for the symv).
    std::fill(r.begin(), r.end(), 0.0);
    for (index_t c = 0; c < m; ++c) {
      std::vector<real_t> xp(static_cast<std::size_t>(n));
      for (index_t k = 0; k < n; ++k) {
        xp[static_cast<std::size_t>(k)] =
            x[static_cast<std::size_t>(c * n + perm_.old_of_new(k))];
      }
      std::vector<real_t> rp(static_cast<std::size_t>(n), 0.0);
      ap.symv(1.0, xp, rp);
      for (index_t k = 0; k < n; ++k) {
        r[static_cast<std::size_t>(c * n + perm_.old_of_new(k))] =
            b[static_cast<std::size_t>(c * n + perm_.old_of_new(k))] -
            rp[static_cast<std::size_t>(k)];
      }
    }
    real_t rn = 0.0, bn = 0.0;
    for (std::size_t z = 0; z < r.size(); ++z) {
      rn += r[z] * r[z];
      bn += b[z] * b[z];
    }
    residual = bn > 0.0 ? std::sqrt(rn / bn) : 0.0;
    if (residual <= tolerance || iter == max_iterations) break;
    const std::vector<real_t> dx = solve(r, m);
    for (std::size_t z = 0; z < x.size(); ++z) x[z] += dx[z];
  }
  if (residual_out != nullptr) *residual_out = residual;
  return x;
}

ParallelSolveResult parallel_solve(const sparse::SymmetricCsc& a,
                                   std::span<const real_t> b, index_t m,
                                   index_t p, const Options& options) {
  const index_t n = a.n();
  SPARTS_CHECK(static_cast<index_t>(b.size()) == n * m);

  dense::set_kernel_impl(options.kernels);
  dense::set_pivot_policy({options.pivot_mode, options.pivot_rel_floor});
  const std::int64_t perturbations_before = dense::pivot_perturbations();
  const sparse::Permutation perm = [&] {
    obs::PhaseScope phase("ordering");
    return compute_ordering(a, options.ordering);
  }();
  const sparse::SymmetricCsc a_perm = sparse::permute_symmetric(a, perm);
  const symbolic::SupernodePartition part = [&] {
    obs::PhaseScope phase("symbolic");
    return analyze(a_perm, options, nullptr);
  }();

  ParallelSolveResult result;

  // Phase 1: parallel factorization with 2-D partitioned fronts.
  const mapping::SubcubeMapping fact_map = [&] {
    obs::PhaseScope phase("mapping");
    return mapping::subtree_to_subcube(part, p,
                                       mapping::factor_work_weights(part));
  }();
  numeric::SupernodalFactor factor;
  {
    obs::PhaseScope phase("factorization");
    auto machine = make_backend(options.backend, p, options);
    const parfact::Report report = run_phase(
        "factorization", *machine, &result, [&] {
          return parfact::parallel_multifrontal(*machine, a_perm, part,
                                                fact_map, factor);
        });
    result.factor_time = report.time();
    result.factor_dag = report.graph;
    phase.set_parallel(exec::to_phase_stats(report.stats));
    accumulate_report(*machine, &result);
  }

  // Phase 2: redistribute the factor 2-D -> 1-D for the solvers.  The
  // rank-local storage produced here is what the solve phase reads.
  // Under fusion the conversion of shared supernodes moves into the
  // forward sweep (phase 3); only the host-side prepack of sequential
  // supernodes — which never travel — happens here.
  const mapping::SubcubeMapping solve_map =
      mapping::subtree_to_subcube(part, p);
  const redist::Options redist_options;
  partrisolve::DistributedFactor local_factor;
  if (options.fuse_redistribution) {
    obs::PhaseScope phase("redistribution");
    redist::prepack_sequential(factor, solve_map, redist_options,
                               &local_factor);
    result.redist_time = 0.0;
  } else {
    obs::PhaseScope phase("redistribution");
    auto machine = make_backend(options.backend, p, options);
    const redist::Report report = run_phase(
        "redistribution", *machine, &result, [&] {
          return redist::redistribute_factor(*machine, factor, solve_map,
                                             redist_options, &local_factor);
        });
    result.redist_time = report.time();
    phase.set_parallel(exec::to_phase_stats(report.stats));
    accumulate_report(*machine, &result);
  }

  // Phase 3: pipelined triangular solves.
  std::vector<real_t> b_perm(b.size());
  for (index_t c = 0; c < m; ++c) {
    for (index_t k = 0; k < n; ++k) {
      b_perm[static_cast<std::size_t>(c * n + k)] =
          b[static_cast<std::size_t>(c * n + perm.old_of_new(k))];
    }
  }
  std::vector<real_t> x_perm(b.size(), 0.0);
  {
    partrisolve::Options solver_options;
    solver_options.block_size = redist_options.block_1d;
    partrisolve::DistributedTrisolver solver(factor, &local_factor,
                                             solve_map, solver_options);
    if (options.fuse_redistribution) {
      // Fused 2-D -> 1-D conversion: each shared supernode's fragments
      // are exchanged at its first touch in the forward sweep, on a tag
      // plane above everything the solver emits.  Each rank fills only
      // its own slice of local_factor, so the concurrent writes from the
      // SPMD ranks never alias.
      const int tag_base = solver.tag_limit();
      solver.set_forward_prologue(
          [&factor, &solve_map, redist_options, &local_factor,
           tag_base](exec::Process& proc, index_t s) {
            redist::redistribute_supernode(proc, factor, solve_map,
                                           redist_options, s, &local_factor,
                                           tag_base);
          });
    }
    auto machine = make_backend(options.backend, p, options);
    std::vector<real_t> y_perm(b.size(), 0.0);
    {
      obs::PhaseScope phase("forward");
      const partrisolve::PhaseReport fw = run_phase(
          "forward", *machine, &result,
          [&] { return solver.forward(*machine, b_perm, y_perm, m); });
      result.forward_time = fw.time();
      result.forward_dag = fw.graph;
      phase.set_parallel(exec::to_phase_stats(fw.stats));
    }
    {
      obs::PhaseScope phase("backward");
      const partrisolve::PhaseReport bw = run_phase(
          "backward", *machine, &result,
          [&] { return solver.backward(*machine, y_perm, x_perm, m); });
      result.backward_time = bw.time();
      result.backward_dag = bw.graph;
      phase.set_parallel(exec::to_phase_stats(bw.stats));
    }
    accumulate_report(*machine, &result);
  }

  // Graceful numerical degradation: if any pivot was perturbed, the factor
  // is exact only for a nearby matrix.  Recover accuracy with host-side
  // residual-driven refinement against the true matrix (parallel_solve
  // holds the complete factor, so corrections use the sequential solver),
  // and report the result as degraded.
  result.perturbed_pivots =
      dense::pivot_perturbations() - perturbations_before;
  if (result.perturbed_pivots > 0) {
    result.status = SolveStatus::degraded;
    real_t b_norm = 0.0;
    for (const real_t v : b_perm) b_norm += v * v;
    b_norm = std::sqrt(b_norm);
    std::vector<real_t> r_perm(b.size());
    auto compute_residual = [&]() -> real_t {
      real_t rn = 0.0;
      for (index_t c = 0; c < m; ++c) {
        std::vector<real_t> ax(static_cast<std::size_t>(n), 0.0);
        a_perm.symv(1.0,
                    std::span<const real_t>(
                        x_perm.data() + static_cast<std::size_t>(c * n),
                        static_cast<std::size_t>(n)),
                    ax);
        for (index_t k = 0; k < n; ++k) {
          const std::size_t z = static_cast<std::size_t>(c * n + k);
          r_perm[z] = b_perm[z] - ax[static_cast<std::size_t>(k)];
          rn += r_perm[z] * r_perm[z];
        }
      }
      return b_norm > 0.0 ? std::sqrt(rn) / b_norm : 0.0;
    };
    result.residual = compute_residual();
    while (result.residual > options.refine_tolerance &&
           result.refine_iterations < options.refine_max_iterations) {
      std::vector<real_t> dx = r_perm;
      trisolve::full_solve(factor, dx.data(), m);
      for (std::size_t z = 0; z < x_perm.size(); ++z) x_perm[z] += dx[z];
      ++result.refine_iterations;
      const real_t next = compute_residual();
      if (obs::metrics_enabled()) {
        obs::metrics().counter("solve.refine_iterations").add(1);
      }
      if (!(next < result.residual)) break;  // stagnated (or NaN): stop
      result.residual = next;
    }
  }

  result.x.assign(b.size(), 0.0);
  for (index_t c = 0; c < m; ++c) {
    for (index_t k = 0; k < n; ++k) {
      result.x[static_cast<std::size_t>(c * n + perm.old_of_new(k))] =
          x_perm[static_cast<std::size_t>(c * n + k)];
    }
  }
  return result;
}

}  // namespace sparts::solver
