// High-level solver facade: the four phases of a sparse direct solve
// (reordering, symbolic factorization, numerical factorization, triangular
// solution) behind one API — sequential, plus a distributed variant that
// reproduces the paper's full pipeline on the simulated machine
// (2-D-partitioned factorization -> redistribution -> 1-D pipelined
// triangular solves).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "dense/kernels.hpp"
#include "dense/pivot.hpp"
#include "exec/fault_backend.hpp"
#include "exec/task_scheduler.hpp"
#include "exec/taskgraph.hpp"
#include "numeric/supernodal_factor.hpp"
#include "simpar/machine.hpp"
#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"
#include "symbolic/supernodes.hpp"

namespace sparts::solver {

enum class OrderingMethod {
  natural,            ///< no reordering
  nested_dissection,  ///< general-graph ND (geometric for generators)
  minimum_degree,
  rcm,
};

/// Which exec backend runs the parallel phases of parallel_solve.
enum class ExecutionBackend {
  simulated,  ///< simpar::Machine: deterministic cost-model clocks
  threads,    ///< exec::ThreadBackend: one std::thread per rank, wall clock
  /// exec::CheckedBackend over the simulator: every phase is audited for
  /// wildcard races, tag collisions, orphaned sends and deadlock cycles;
  /// any finding raises AnalysisError.  Times remain the simulated times.
  checked,
  /// exec::CheckedBackend over the threaded backend: same audit on real
  /// concurrent executions.
  checked_threads,
  /// Reliability envelope over fault injection over the simulator: the
  /// FaultPlan in Options drops/duplicates/delays/reorders messages and
  /// the envelope (sequence numbers, dedup, NACK-driven retransmission)
  /// recovers, or aborts with a structured SolveError.  Deterministic.
  faulty,
  /// The same stack over the threaded backend, with wall-clock timeouts.
  faulty_threads,
  /// exec::TaskBackend: every rank is a fiber multiplexed on a
  /// work-stealing task-scheduler pool (as many workers as cores, not as
  /// many as ranks).  A recv with no matching message suspends the fiber —
  /// the wait becomes a dynamic dependency edge of the supernode task DAG
  /// — and the matching send re-readies it on the sender's worker.
  /// Results are bit-identical to `threads`; times are wall clock.
  /// The checked/faulty decorators are not composed over this backend
  /// (compose them over `threads` instead — same message semantics).
  tasks,
};

/// One row of the execution-backend registry: the single source of truth
/// that the CLI help text, the --backend parser, and make_backend draw
/// from, so the three can never drift apart.
struct BackendInfo {
  const char* name;           ///< CLI spelling (--backend NAME)
  ExecutionBackend backend;
  const char* summary;        ///< one-line description for help text
};

/// Every registered backend, in display order.
std::span<const BackendInfo> execution_backends();

/// The registered CLI spellings joined with " | " (for usage and errors).
std::string execution_backend_names();

/// Parse a CLI spelling; throws InvalidArgument enumerating every
/// registered name on a miss.
ExecutionBackend parse_execution_backend(const std::string& name);

/// The registry row of `backend` (never null).
const BackendInfo& execution_backend_info(ExecutionBackend backend);

struct Options {
  OrderingMethod ordering = OrderingMethod::nested_dissection;
  /// Relaxed supernode amalgamation: 0 disables (fundamental supernodes).
  index_t amalgamation_max_width = 0;
  nnz_t amalgamation_relax_zeros = 0;
  /// Backend for parallel_solve.  With `simulated` the reported phase times
  /// are predicted T3D seconds; with `threads` they are measured wall-clock
  /// seconds on this host.
  ExecutionBackend backend = ExecutionBackend::simulated;
  /// Dense kernel implementation used by every phase (reference loops or
  /// the tiled/vectorized kernels).  Defaults to the SPARTS_KERNELS
  /// environment variable, `tiled` when unset.  Flop counts — and hence
  /// simulated times — are identical for both.
  dense::KernelImpl kernels = dense::kernel_impl_from_env();
  /// Fault scenario injected by the `faulty` / `faulty_threads` backends;
  /// ignored by the others.
  exec::FaultPlan fault_plan;
  /// Pivot handling during factorization: `fail` throws NumericalError on
  /// a non-positive pivot; `perturb` boosts it to a positive floor and
  /// lets iterative refinement absorb the error (result status becomes
  /// `degraded`).  See dense/pivot.hpp and docs/robustness.md.
  dense::PivotMode pivot_mode = dense::PivotMode::fail;
  double pivot_rel_floor = 1e-12;
  /// Bound on the host-side refinement sweeps parallel_solve runs after a
  /// degraded factorization, and the residual it tries to reach.
  int refine_max_iterations = 5;
  real_t refine_tolerance = 1e-10;
  /// Pipeline fusion: run the 2-D -> 1-D factor redistribution inside the
  /// forward-solve sweep (each supernode's fragments arrive just before
  /// its triangular solve) instead of as a separate barrier phase between
  /// factorization and the solves.  The solution is bit-identical either
  /// way; only the phase structure changes.  When enabled,
  /// ParallelSolveResult::redist_time is 0 — the conversion's cost is
  /// accounted inside forward_time.
  bool fuse_redistribution = false;
};

struct AnalysisInfo {
  nnz_t factor_nnz = 0;
  nnz_t factor_flops = 0;
  index_t num_supernodes = 0;
  nnz_t solve_flops_per_rhs = 0;
};

/// Sequential sparse SPD solver.
class SparseSolver {
 public:
  /// Run ordering + symbolic + numerical factorization.
  static SparseSolver factorize(const sparse::SymmetricCsc& a,
                                const Options& options = {});

  /// Solve A X = B; `b` is n x m column-major in the *original* ordering;
  /// returns X in the original ordering.
  std::vector<real_t> solve(std::span<const real_t> b, index_t m) const;

  /// Solve with iterative refinement: after the direct solve, repeat
  /// r = B - A X; X += A^{-1} r up to `max_iterations` times or until the
  /// relative residual drops below `tolerance`.  Returns X and (optionally)
  /// the final residual via `residual_out`.
  std::vector<real_t> solve_refined(std::span<const real_t> b, index_t m,
                                    int max_iterations = 3,
                                    real_t tolerance = 1e-14,
                                    real_t* residual_out = nullptr) const;

  const AnalysisInfo& info() const { return info_; }
  const numeric::SupernodalFactor& factor() const { return factor_; }
  const sparse::Permutation& permutation() const { return perm_; }
  const sparse::SymmetricCsc& permuted_matrix() const { return a_perm_; }
  const symbolic::SupernodePartition& partition() const {
    return factor_.partition();
  }

 private:
  SparseSolver() = default;
  sparse::Permutation perm_;
  sparse::SymmetricCsc a_perm_;
  numeric::SupernodalFactor factor_;
  AnalysisInfo info_;
};

/// A parallel phase failed in a structured way: an injected crash, an
/// exhausted retransmit budget (deadline abort), or a deadlock.  Carries
/// which phase died, the root cause, and — when the run was under the
/// reliability envelope — a per-rank progress report saying where every
/// rank was when the run ended.
class SolveError : public Error {
 public:
  SolveError(std::string phase, std::string cause, std::string progress)
      : Error("parallel solve failed in " + phase + " phase: " + cause +
              (progress.empty() ? "" : "\n" + progress)),
        phase_(std::move(phase)),
        cause_(std::move(cause)),
        progress_(std::move(progress)) {}

  const std::string& failed_phase() const { return phase_; }
  const std::string& cause() const { return cause_; }
  const std::string& progress() const { return progress_; }

 private:
  std::string phase_;
  std::string cause_;
  std::string progress_;
};

/// How much trust to put in ParallelSolveResult::x.
enum class SolveStatus {
  ok,        ///< direct solve, no numerical compromises
  degraded,  ///< pivots were perturbed; x comes from iterative refinement
};

/// Result of a full distributed solve on the simulated machine.
struct ParallelSolveResult {
  std::vector<real_t> x;       ///< solution, original ordering
  double factor_time = 0.0;    ///< simulated seconds
  double redist_time = 0.0;
  double forward_time = 0.0;
  double backward_time = 0.0;
  /// Totals from the checked backend, summed over the three parallel
  /// phases; all zero for the unchecked backends.  With a checked backend
  /// any finding raises AnalysisError, so on normal return
  /// analysis_findings is always 0 and checked_messages says how many
  /// sends were audited.
  std::int64_t analysis_findings = 0;
  std::int64_t checked_messages = 0;
  /// Fault-tolerance accounting, summed over the parallel phases; all
  /// zero unless a faulty backend (or perturbing pivot mode) was used.
  SolveStatus status = SolveStatus::ok;
  std::int64_t faults_injected = 0;   ///< drops/dups/delays/... injected
  std::int64_t retransmits = 0;       ///< envelope recoveries
  std::int64_t dup_discarded = 0;     ///< duplicate deliveries suppressed
  std::int64_t perturbed_pivots = 0;  ///< pivots boosted during factorization
  int refine_iterations = 0;          ///< host refinement sweeps performed
  /// Relative residual ||b - A x|| / ||b|| after refinement; negative when
  /// refinement did not run (clean direct solve, residual not computed).
  real_t residual = -1.0;
  /// Shapes of the supernode task DAGs the parallel phases executed —
  /// filled for every backend, because the SPMD loops are lowerings of the
  /// same graphs the tasks backend runs (see parfact/factor_dag.hpp and
  /// partrisolve/solve_dag.hpp).
  exec::GraphStats factor_dag;
  exec::GraphStats forward_dag;
  exec::GraphStats backward_dag;
  /// Work-stealing counters of the tasks backend (all zero otherwise);
  /// jobs/steals/parks are summed over the parallel phases.
  exec::SchedulerStats task_scheduler;

  double solve_time() const { return forward_time + backward_time; }
};

/// Full pipeline on `p` simulated processors: 2-D-partitioned parallel
/// multifrontal factorization, 2-D -> 1-D redistribution, then the
/// pipelined triangular solvers.  Host-side ordering/symbolic phases are
/// not timed (the paper's tables start at numerical factorization).
ParallelSolveResult parallel_solve(const sparse::SymmetricCsc& a,
                                   std::span<const real_t> b, index_t m,
                                   index_t p, const Options& options = {});

}  // namespace sparts::solver
