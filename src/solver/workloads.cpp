#include "solver/workloads.hpp"

#include <cmath>

#include "common/error.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/generators.hpp"

namespace sparts::solver {

namespace {

index_t scaled2(index_t k, double scale) {
  return std::max<index_t>(
      2, static_cast<index_t>(std::llround(k * std::sqrt(scale))));
}

index_t scaled3(index_t k, double scale) {
  return std::max<index_t>(
      2, static_cast<index_t>(std::llround(k * std::cbrt(scale))));
}

TestProblem make_2d(std::string name, index_t kx, index_t ky, int stencil,
                    index_t dof, index_t paper_n, nnz_t paper_nnz,
                    nnz_t paper_ops) {
  TestProblem p;
  p.name = std::move(name);
  p.description = "grid2d " + std::to_string(kx) + "x" + std::to_string(ky) +
                  (stencil == 9 ? " 9-point" : " 5-point") + ", " +
                  std::to_string(dof) + " DOF/node";
  p.matrix = dof == 1 ? sparse::grid2d(kx, ky, stencil)
                      : sparse::grid2d_dof(kx, ky, stencil, dof);
  p.nd_ordering = sparse::expand_permutation_dof(
      ordering::nested_dissection_grid2d(kx, ky), dof);
  p.paper_n = paper_n;
  p.paper_factor_nnz = paper_nnz;
  p.paper_factor_opcount = paper_ops;
  return p;
}

TestProblem make_3d(std::string name, index_t kx, index_t ky, index_t kz,
                    int stencil, index_t dof, index_t paper_n,
                    nnz_t paper_nnz, nnz_t paper_ops) {
  TestProblem p;
  p.name = std::move(name);
  p.description = "grid3d " + std::to_string(kx) + "x" + std::to_string(ky) +
                  "x" + std::to_string(kz) +
                  (stencil == 27 ? " 27-point" : " 7-point") + ", " +
                  std::to_string(dof) + " DOF/node";
  p.matrix = dof == 1 ? sparse::grid3d(kx, ky, kz, stencil)
                      : sparse::grid3d_dof(kx, ky, kz, stencil, dof);
  p.nd_ordering = sparse::expand_permutation_dof(
      ordering::nested_dissection_grid3d(kx, ky, kz), dof);
  p.paper_n = paper_n;
  p.paper_factor_nnz = paper_nnz;
  p.paper_factor_opcount = paper_ops;
  return p;
}

}  // namespace

TestProblem paper_problem(const std::string& name, double scale) {
  SPARTS_CHECK(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
  if (name == "BCSSTK15") {
    // Module of an offshore platform: 2-D frame with 6 DOF per node,
    // N = 3948 -> 26x26 mesh x 6 DOF (N = 4056).
    const index_t k = scaled2(26, scale);
    return make_2d(name, k, k, 9, 6, 3948, 490'000, 85'500'000);
  }
  if (name == "BCSSTK31") {
    // Automobile component: a shell-dominated 3-D part with 3 DOF per
    // node, N = 35588 -> 55x55x4 mesh x 3 DOF (N = 36300).
    return make_3d(name, scaled3(55, scale), scaled3(55, scale),
                   std::max<index_t>(2, scaled3(4, scale)), 7, 3, 35588,
                   6'400'000, 2'791'000'000);
  }
  if (name == "HSCT21954") {
    // High-speed civil transport airframe: a thin 3-D shell structure
    // with 6 DOF per node, N = 21954 -> 35x35x3 mesh x 6 DOF (N = 22050).
    return make_3d(name, scaled3(35, scale), scaled3(35, scale),
                   std::max<index_t>(2, scaled3(3, scale)), 7, 6, 21954,
                   7'400'000, 2'822'000'000);
  }
  if (name == "CUBE35") {
    // Literally a 35^3 cube, N = 42875 (scalar Laplacian).
    const index_t k = scaled3(35, scale);
    return make_3d(name, k, k, k, 7, 1, 42875, 9'900'000, 2'691'000'000);
  }
  if (name == "COPTER2") {
    // Helicopter rotor blade: long, thin 3-D structure with 3 DOF per
    // node, N = 55476 -> 150x20x6 mesh x 3 DOF (N = 54000).
    return make_3d(name, scaled3(150, scale), scaled3(20, scale),
                   std::max<index_t>(2, scaled3(6, scale)), 7, 3, 55476,
                   12'600'000, 9'000'000'000);
  }
  throw InvalidArgument("unknown paper problem: " + name);
}

std::vector<TestProblem> paper_test_suite(double scale) {
  std::vector<TestProblem> suite;
  for (const char* name :
       {"BCSSTK15", "BCSSTK31", "HSCT21954", "CUBE35", "COPTER2"}) {
    suite.push_back(paper_problem(name, scale));
  }
  return suite;
}

}  // namespace sparts::solver
