// The paper's evaluation workloads: synthetic counterparts of the five
// Boeing-Harwell / application matrices of Figure 7, each paired with the
// exact geometric nested-dissection ordering of its generated mesh.
//
// Substitution rationale (DESIGN.md §3): the paper's matrices are 2-D/3-D
// neighborhood graphs; the analysis only depends on that class.  We match
// N and report the paper's nnz(L)/opcount side by side.
#pragma once

#include <string>
#include <vector>

#include "sparse/formats.hpp"
#include "sparse/permutation.hpp"

namespace sparts::solver {

struct TestProblem {
  std::string name;         ///< paper name, e.g. "BCSSTK15"
  std::string description;  ///< what we generated in its place
  sparse::SymmetricCsc matrix;
  /// Exact geometric nested-dissection ordering of the generated mesh.
  sparse::Permutation nd_ordering;
  /// Paper-reported statistics for side-by-side reporting (0 if unknown).
  index_t paper_n = 0;
  nnz_t paper_factor_nnz = 0;      ///< nonzeros in L
  nnz_t paper_factor_opcount = 0;  ///< factorization flops
};

/// One paper problem by name ("BCSSTK15", "BCSSTK31", "HSCT21954",
/// "CUBE35", "COPTER2").  `scale` in (0, 1] shrinks the mesh linearly
/// (1.0 = the paper's N).
TestProblem paper_problem(const std::string& name, double scale = 1.0);

/// The five problems of the paper's Figure 7.
std::vector<TestProblem> paper_test_suite(double scale = 1.0);

}  // namespace sparts::solver
