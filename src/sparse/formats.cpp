#include "sparse/formats.hpp"

#include <algorithm>
#include <numeric>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "sparse/validate.hpp"

namespace sparts::sparse {

Triplets::Triplets(index_t rows, index_t cols) : rows_(rows), cols_(cols) {
  SPARTS_CHECK(rows >= 0 && cols >= 0);
}

void Triplets::add(index_t i, index_t j, real_t v) {
  SPARTS_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_,
               "triplet (" << i << "," << j << ") out of range");
  is_.push_back(i);
  js_.push_back(j);
  vs_.push_back(v);
}

SymmetricCsc SymmetricCsc::from_triplets(const Triplets& t) {
  SPARTS_CHECK(t.rows() == t.cols(), "symmetric matrix must be square");
  const index_t n = t.rows();
  auto is = t.row_indices();
  auto js = t.col_indices();
  auto vs = t.values();

  // Count entries per column after mapping every entry to the lower
  // triangle; make sure a diagonal slot exists in every column.
  std::vector<nnz_t> count(static_cast<std::size_t>(n), 1);  // diag slot
  for (nnz_t k = 0; k < t.size(); ++k) {
    const index_t i = std::max(is[k], js[k]);
    const index_t j = std::min(is[k], js[k]);
    if (i != j) ++count[static_cast<std::size_t>(j)];
  }
  std::vector<nnz_t> colptr(static_cast<std::size_t>(n) + 1, 0);
  for (index_t j = 0; j < n; ++j) {
    colptr[static_cast<std::size_t>(j) + 1] =
        colptr[static_cast<std::size_t>(j)] + count[static_cast<std::size_t>(j)];
  }
  const nnz_t total = colptr.back();
  std::vector<index_t> rowind(static_cast<std::size_t>(total));
  std::vector<real_t> values(static_cast<std::size_t>(total), 0.0);

  // Place diagonal first in each column, then off-diagonal entries.
  std::vector<nnz_t> next(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    const nnz_t p = colptr[static_cast<std::size_t>(j)];
    rowind[static_cast<std::size_t>(p)] = j;
    next[static_cast<std::size_t>(j)] = p + 1;
  }
  for (nnz_t k = 0; k < t.size(); ++k) {
    const index_t i = std::max(is[k], js[k]);
    const index_t j = std::min(is[k], js[k]);
    if (i == j) continue;
    const nnz_t p = next[static_cast<std::size_t>(j)]++;
    rowind[static_cast<std::size_t>(p)] = i;
    values[static_cast<std::size_t>(p)] = 0.0;
  }

  // Sort each column's off-diagonal entries, then merge duplicates while
  // accumulating values in a second pass.
  for (index_t j = 0; j < n; ++j) {
    auto b = rowind.begin() + static_cast<std::ptrdiff_t>(
                                  colptr[static_cast<std::size_t>(j)] + 1);
    auto e = rowind.begin() + static_cast<std::ptrdiff_t>(
                                  colptr[static_cast<std::size_t>(j) + 1]);
    std::sort(b, e);
  }

  // Deduplicate structure.
  std::vector<nnz_t> colptr2(static_cast<std::size_t>(n) + 1, 0);
  std::vector<index_t> rowind2;
  rowind2.reserve(rowind.size());
  for (index_t j = 0; j < n; ++j) {
    colptr2[static_cast<std::size_t>(j)] =
        static_cast<nnz_t>(rowind2.size());
    index_t last = -1;
    for (nnz_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const index_t r = rowind[static_cast<std::size_t>(p)];
      if (r != last) {
        rowind2.push_back(r);
        last = r;
      }
    }
  }
  colptr2[static_cast<std::size_t>(n)] = static_cast<nnz_t>(rowind2.size());
  std::vector<real_t> values2(rowind2.size(), 0.0);

  // Accumulate values into the deduplicated structure.
  auto locate = [&](index_t i, index_t j) -> nnz_t {
    const auto b = rowind2.begin() +
                   static_cast<std::ptrdiff_t>(colptr2[static_cast<std::size_t>(j)]);
    const auto e = rowind2.begin() +
                   static_cast<std::ptrdiff_t>(colptr2[static_cast<std::size_t>(j) + 1]);
    auto it = std::lower_bound(b, e, i);
    SPARTS_DCHECK(it != e && *it == i);
    return static_cast<nnz_t>(it - rowind2.begin());
  };
  for (nnz_t k = 0; k < t.size(); ++k) {
    const index_t i = std::max(is[k], js[k]);
    const index_t j = std::min(is[k], js[k]);
    values2[static_cast<std::size_t>(locate(i, j))] += vs[k];
  }

  return SymmetricCsc(n, std::move(colptr2), std::move(rowind2),
                      std::move(values2));
}

SymmetricCsc::SymmetricCsc(index_t n, std::vector<nnz_t> colptr,
                           std::vector<index_t> rowind,
                           std::vector<real_t> values)
    : n_(n),
      colptr_(std::move(colptr)),
      rowind_(std::move(rowind)),
      values_(std::move(values)) {
  // Shape checks are unconditional (downstream code indexes through
  // colptr_); the O(nnz) sortedness/bounds validation is level-gated.
  SPARTS_CHECK(static_cast<index_t>(colptr_.size()) == n_ + 1,
               "colptr must have n+1 entries");
  SPARTS_CHECK(colptr_.front() == 0);
  SPARTS_CHECK(rowind_.size() == values_.size());
  SPARTS_CHECK(colptr_.back() == static_cast<nnz_t>(rowind_.size()));
  SPARTS_VALIDATE_CHEAP(validate_csc(n_, colptr_, rowind_,
                                     static_cast<nnz_t>(values_.size())));
}

std::span<const index_t> SymmetricCsc::col_rows(index_t j) const {
  SPARTS_DCHECK(j >= 0 && j < n_);
  const nnz_t b = colptr_[static_cast<std::size_t>(j)];
  const nnz_t e = colptr_[static_cast<std::size_t>(j) + 1];
  return {rowind_.data() + b, static_cast<std::size_t>(e - b)};
}

std::span<const real_t> SymmetricCsc::col_values(index_t j) const {
  SPARTS_DCHECK(j >= 0 && j < n_);
  const nnz_t b = colptr_[static_cast<std::size_t>(j)];
  const nnz_t e = colptr_[static_cast<std::size_t>(j) + 1];
  return {values_.data() + b, static_cast<std::size_t>(e - b)};
}

real_t SymmetricCsc::at(index_t i, index_t j) const {
  SPARTS_CHECK(i >= j, "at() expects lower-triangle coordinates");
  auto rows = col_rows(j);
  auto it = std::lower_bound(rows.begin(), rows.end(), i);
  if (it == rows.end() || *it != i) return 0.0;
  return col_values(j)[static_cast<std::size_t>(it - rows.begin())];
}

void SymmetricCsc::symv(real_t alpha, std::span<const real_t> x,
                        std::span<real_t> y) const {
  SPARTS_CHECK(static_cast<index_t>(x.size()) == n_);
  SPARTS_CHECK(static_cast<index_t>(y.size()) == n_);
  for (index_t j = 0; j < n_; ++j) {
    auto rows = col_rows(j);
    auto vals = col_values(j);
    const real_t xj = x[static_cast<std::size_t>(j)];
    // Diagonal.
    y[static_cast<std::size_t>(j)] += alpha * vals[0] * xj;
    for (std::size_t p = 1; p < rows.size(); ++p) {
      const index_t i = rows[p];
      const real_t v = alpha * vals[p];
      y[static_cast<std::size_t>(i)] += v * xj;
      y[static_cast<std::size_t>(j)] += v * x[static_cast<std::size_t>(i)];
    }
  }
}

void SymmetricCsc::symm(real_t alpha, const real_t* x, real_t* y,
                        index_t m) const {
  for (index_t c = 0; c < m; ++c) {
    std::span<const real_t> xc(x + c * n_, static_cast<std::size_t>(n_));
    std::span<real_t> yc(y + c * n_, static_cast<std::size_t>(n_));
    symv(alpha, xc, yc);
  }
}

SymmetricCsc SymmetricCsc::with_constant_values(real_t v) const {
  SymmetricCsc copy = *this;
  for (auto& x : copy.values_) x = v;
  return copy;
}

Graph::Graph(index_t n, std::vector<nnz_t> xadj, std::vector<index_t> adjncy)
    : n_(n), xadj_(std::move(xadj)), adjncy_(std::move(adjncy)) {
  SPARTS_CHECK(static_cast<index_t>(xadj_.size()) == n_ + 1);
  SPARTS_CHECK(xadj_.front() == 0);
  SPARTS_CHECK(xadj_.back() == static_cast<nnz_t>(adjncy_.size()));
}

Graph Graph::from_symmetric(const SymmetricCsc& a) {
  const index_t n = a.n();
  std::vector<nnz_t> deg(static_cast<std::size_t>(n), 0);
  for (index_t j = 0; j < n; ++j) {
    auto rows = a.col_rows(j);
    for (std::size_t p = 1; p < rows.size(); ++p) {  // skip diagonal
      ++deg[static_cast<std::size_t>(j)];
      ++deg[static_cast<std::size_t>(rows[p])];
    }
  }
  std::vector<nnz_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  for (index_t v = 0; v < n; ++v) {
    xadj[static_cast<std::size_t>(v) + 1] =
        xadj[static_cast<std::size_t>(v)] + deg[static_cast<std::size_t>(v)];
  }
  std::vector<index_t> adjncy(static_cast<std::size_t>(xadj.back()));
  std::vector<nnz_t> next(xadj.begin(), xadj.end() - 1);
  for (index_t j = 0; j < n; ++j) {
    auto rows = a.col_rows(j);
    for (std::size_t p = 1; p < rows.size(); ++p) {
      const index_t i = rows[p];
      adjncy[static_cast<std::size_t>(next[static_cast<std::size_t>(j)]++)] = i;
      adjncy[static_cast<std::size_t>(next[static_cast<std::size_t>(i)]++)] = j;
    }
  }
  // Sort neighbor lists for deterministic iteration.
  for (index_t v = 0; v < n; ++v) {
    std::sort(adjncy.begin() + static_cast<std::ptrdiff_t>(
                                   xadj[static_cast<std::size_t>(v)]),
              adjncy.begin() + static_cast<std::ptrdiff_t>(
                                   xadj[static_cast<std::size_t>(v) + 1]));
  }
  Graph g(n, std::move(xadj), std::move(adjncy));
  SPARTS_VALIDATE_EXPENSIVE(validate_graph(g));
  return g;
}

std::span<const index_t> Graph::neighbors(index_t v) const {
  SPARTS_DCHECK(v >= 0 && v < n_);
  const nnz_t b = xadj_[static_cast<std::size_t>(v)];
  const nnz_t e = xadj_[static_cast<std::size_t>(v) + 1];
  return {adjncy_.data() + b, static_cast<std::size_t>(e - b)};
}

Graph Graph::induced(std::span<const index_t> vertices,
                     std::vector<index_t>& local_of_global) const {
  local_of_global.assign(static_cast<std::size_t>(n_), -1);
  for (std::size_t k = 0; k < vertices.size(); ++k) {
    local_of_global[static_cast<std::size_t>(vertices[k])] =
        static_cast<index_t>(k);
  }
  const index_t m = static_cast<index_t>(vertices.size());
  std::vector<nnz_t> xadj(static_cast<std::size_t>(m) + 1, 0);
  std::vector<index_t> adjncy;
  for (index_t lv = 0; lv < m; ++lv) {
    const index_t gv = vertices[static_cast<std::size_t>(lv)];
    for (index_t gu : neighbors(gv)) {
      const index_t lu = local_of_global[static_cast<std::size_t>(gu)];
      if (lu >= 0) adjncy.push_back(lu);
    }
    xadj[static_cast<std::size_t>(lv) + 1] =
        static_cast<nnz_t>(adjncy.size());
  }
  return Graph(m, std::move(xadj), std::move(adjncy));
}

}  // namespace sparts::sparse
