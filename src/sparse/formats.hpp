// Sparse matrix storage formats.
//
// The solver pipeline works with symmetric positive definite matrices stored
// as their lower triangle in compressed-sparse-column form (SymmetricCsc).
// Triplets (COO) is the flexible assembly/interchange format; Graph is the
// adjacency structure consumed by the ordering algorithms.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace sparts::sparse {

/// Coordinate-format accumulation buffer.  Duplicate entries are summed on
/// conversion.  For symmetric use, store only i >= j entries.
class Triplets {
 public:
  Triplets(index_t rows, index_t cols);

  void add(index_t i, index_t j, real_t v);

  index_t rows() const { return rows_; }
  index_t cols() const { return cols_; }
  nnz_t size() const { return static_cast<nnz_t>(is_.size()); }

  std::span<const index_t> row_indices() const { return is_; }
  std::span<const index_t> col_indices() const { return js_; }
  std::span<const real_t> values() const { return vs_; }

 private:
  index_t rows_;
  index_t cols_;
  std::vector<index_t> is_, js_;
  std::vector<real_t> vs_;
};

/// Lower triangle (including diagonal) of a symmetric matrix in CSC with
/// row indices sorted ascending within each column.  The diagonal entry is
/// required to be present and therefore is always the first entry of its
/// column.
class SymmetricCsc {
 public:
  SymmetricCsc() = default;

  /// Build from triplets; entries with i < j are mirrored to (j, i) and
  /// duplicates are summed.  Missing diagonal entries are inserted as zero.
  static SymmetricCsc from_triplets(const Triplets& t);

  /// Build directly from pre-sorted CSC arrays (validated).
  SymmetricCsc(index_t n, std::vector<nnz_t> colptr,
               std::vector<index_t> rowind, std::vector<real_t> values);

  index_t n() const { return n_; }
  nnz_t nnz_lower() const { return colptr_.empty() ? 0 : colptr_.back(); }
  /// Nonzeros of the full symmetric matrix: 2*nnz_lower - n diagonal.
  nnz_t nnz_full() const { return 2 * nnz_lower() - n_; }

  std::span<const nnz_t> colptr() const { return colptr_; }
  std::span<const index_t> rowind() const { return rowind_; }
  std::span<const real_t> values() const { return values_; }
  std::span<real_t> values() { return values_; }

  /// Row indices of column j (ascending, first is j itself).
  std::span<const index_t> col_rows(index_t j) const;
  /// Values of column j aligned with col_rows(j).
  std::span<const real_t> col_values(index_t j) const;

  /// A(i, j) with i >= j; zero if not stored (binary search).
  real_t at(index_t i, index_t j) const;

  /// y += alpha * A * x using the full symmetric matrix.
  void symv(real_t alpha, std::span<const real_t> x,
            std::span<real_t> y) const;

  /// Multi-vector version: Y += alpha * A * X; X, Y are n x m column-major
  /// with leading dimension n.
  void symm(real_t alpha, const real_t* x, real_t* y, index_t m) const;

  /// Structure-only copy with all values set to v.
  SymmetricCsc with_constant_values(real_t v) const;

 private:
  index_t n_ = 0;
  std::vector<nnz_t> colptr_;
  std::vector<index_t> rowind_;
  std::vector<real_t> values_;
};

/// Undirected adjacency structure (CSR-of-neighbors, no self loops),
/// used by ordering algorithms.  Vertices are 0..n-1.
class Graph {
 public:
  Graph() = default;
  Graph(index_t n, std::vector<nnz_t> xadj, std::vector<index_t> adjncy);

  /// Adjacency of the full symmetric pattern of A (diagonal dropped).
  static Graph from_symmetric(const SymmetricCsc& a);

  index_t n() const { return n_; }
  nnz_t num_edges() const {
    return xadj_.empty() ? 0 : xadj_.back() / 2;
  }

  std::span<const index_t> neighbors(index_t v) const;
  index_t degree(index_t v) const {
    return static_cast<index_t>(neighbors(v).size());
  }

  /// Induced subgraph on `vertices`; returns the subgraph and fills
  /// `local_of_global` (size n, -1 where absent).
  Graph induced(std::span<const index_t> vertices,
                std::vector<index_t>& local_of_global) const;

 private:
  index_t n_ = 0;
  std::vector<nnz_t> xadj_;
  std::vector<index_t> adjncy_;
};

}  // namespace sparts::sparse
