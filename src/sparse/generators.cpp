#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace sparts::sparse {

namespace {

/// Laplacian-style SPD values: each off-diagonal edge contributes -1 and
/// +1 to both endpoint diagonals; `shift` keeps the matrix strictly PD.
SymmetricCsc laplacian_from_edges(index_t n,
                                  const std::vector<std::pair<index_t, index_t>>& edges,
                                  real_t shift) {
  Triplets t(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), shift);
  for (auto [u, v] : edges) {
    SPARTS_DCHECK(u != v);
    t.add(std::max(u, v), std::min(u, v), -1.0);
    diag[static_cast<std::size_t>(u)] += 1.0;
    diag[static_cast<std::size_t>(v)] += 1.0;
  }
  for (index_t i = 0; i < n; ++i) {
    t.add(i, i, diag[static_cast<std::size_t>(i)]);
  }
  return SymmetricCsc::from_triplets(t);
}

/// Expand a scalar mesh into a multi-DOF system: dense dof x dof coupling
/// within each vertex and across each edge.
SymmetricCsc expand_dof(index_t n,
                        const std::vector<std::pair<index_t, index_t>>& edges,
                        index_t dof, real_t shift) {
  SPARTS_CHECK(dof >= 1);
  std::vector<std::pair<index_t, index_t>> out;
  out.reserve(edges.size() * static_cast<std::size_t>(dof * dof) +
              static_cast<std::size_t>(n * dof * (dof - 1) / 2));
  // Intra-vertex coupling.
  for (index_t v = 0; v < n; ++v) {
    for (index_t a = 0; a < dof; ++a) {
      for (index_t b = a + 1; b < dof; ++b) {
        out.emplace_back(v * dof + a, v * dof + b);
      }
    }
  }
  // Inter-vertex coupling: the full dof x dof block per mesh edge.
  for (auto [u, v] : edges) {
    for (index_t a = 0; a < dof; ++a) {
      for (index_t b = 0; b < dof; ++b) {
        out.emplace_back(u * dof + a, v * dof + b);
      }
    }
  }
  return laplacian_from_edges(n * dof, out, shift);
}

std::vector<std::pair<index_t, index_t>> grid2d_edges(index_t kx, index_t ky,
                                                      int stencil) {
  SPARTS_CHECK(kx > 0 && ky > 0);
  SPARTS_CHECK(stencil == 5 || stencil == 9, "stencil must be 5 or 9");
  auto id = [kx](index_t x, index_t y) { return y * kx + x; };
  std::vector<std::pair<index_t, index_t>> edges;
  edges.reserve(static_cast<std::size_t>(kx * ky) * (stencil == 5 ? 2 : 4));
  for (index_t y = 0; y < ky; ++y) {
    for (index_t x = 0; x < kx; ++x) {
      if (x + 1 < kx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ky) edges.emplace_back(id(x, y), id(x, y + 1));
      if (stencil == 9) {
        if (x + 1 < kx && y + 1 < ky)
          edges.emplace_back(id(x, y), id(x + 1, y + 1));
        if (x > 0 && y + 1 < ky) edges.emplace_back(id(x, y), id(x - 1, y + 1));
      }
    }
  }
  return edges;
}

std::vector<std::pair<index_t, index_t>> grid3d_edges(index_t kx, index_t ky,
                                                      index_t kz,
                                                      int stencil) {
  SPARTS_CHECK(kx > 0 && ky > 0 && kz > 0);
  SPARTS_CHECK(stencil == 7 || stencil == 27, "stencil must be 7 or 27");
  auto id = [kx, ky](index_t x, index_t y, index_t z) {
    return (z * ky + y) * kx + x;
  };
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t z = 0; z < kz; ++z) {
    for (index_t y = 0; y < ky; ++y) {
      for (index_t x = 0; x < kx; ++x) {
        if (stencil == 7) {
          if (x + 1 < kx) edges.emplace_back(id(x, y, z), id(x + 1, y, z));
          if (y + 1 < ky) edges.emplace_back(id(x, y, z), id(x, y + 1, z));
          if (z + 1 < kz) edges.emplace_back(id(x, y, z), id(x, y, z + 1));
        } else {
          for (index_t dz = -1; dz <= 1; ++dz) {
            for (index_t dy = -1; dy <= 1; ++dy) {
              for (index_t dx = -1; dx <= 1; ++dx) {
                if (dx == 0 && dy == 0 && dz == 0) continue;
                const index_t nx = x + dx, ny = y + dy, nz = z + dz;
                if (nx < 0 || nx >= kx || ny < 0 || ny >= ky || nz < 0 ||
                    nz >= kz) {
                  continue;
                }
                const index_t a = id(x, y, z), b = id(nx, ny, nz);
                if (a < b) edges.emplace_back(a, b);
              }
            }
          }
        }
      }
    }
  }
  return edges;
}

}  // namespace

SymmetricCsc grid2d(index_t kx, index_t ky, int stencil, real_t shift) {
  return laplacian_from_edges(kx * ky, grid2d_edges(kx, ky, stencil), shift);
}

SymmetricCsc grid2d_dof(index_t kx, index_t ky, int stencil, index_t dof,
                        real_t shift) {
  return expand_dof(kx * ky, grid2d_edges(kx, ky, stencil), dof, shift);
}

SymmetricCsc grid3d_dof(index_t kx, index_t ky, index_t kz, int stencil,
                        index_t dof, real_t shift) {
  return expand_dof(kx * ky * kz, grid3d_edges(kx, ky, kz, stencil), dof,
                    shift);
}

SymmetricCsc grid3d(index_t kx, index_t ky, index_t kz, int stencil,
                    real_t shift) {
  return laplacian_from_edges(kx * ky * kz,
                              grid3d_edges(kx, ky, kz, stencil), shift);
}

SymmetricCsc random_spd(index_t n, index_t avg_off_diag, Rng& rng) {
  SPARTS_CHECK(n > 0 && avg_off_diag >= 0);
  std::set<std::pair<index_t, index_t>> seen;
  std::vector<std::pair<index_t, index_t>> edges;
  const nnz_t target = static_cast<nnz_t>(n) * avg_off_diag / 2;
  while (static_cast<nnz_t>(edges.size()) < target && n > 1) {
    index_t i = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    index_t j = static_cast<index_t>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (i == j) continue;
    auto key = std::minmax(i, j);
    if (seen.insert({key.first, key.second}).second) {
      edges.emplace_back(key.first, key.second);
    }
  }
  // Random positive weights; diagonal dominance guarantees SPD.
  Triplets t(n, n);
  std::vector<real_t> diag(static_cast<std::size_t>(n), 1.0);
  for (auto [u, v] : edges) {
    const real_t w = -rng.uniform(0.1, 1.0);
    t.add(std::max(u, v), std::min(u, v), w);
    diag[static_cast<std::size_t>(u)] += std::abs(w);
    diag[static_cast<std::size_t>(v)] += std::abs(w);
  }
  for (index_t i = 0; i < n; ++i) t.add(i, i, diag[static_cast<std::size_t>(i)]);
  return SymmetricCsc::from_triplets(t);
}

SymmetricCsc random_symmetric_dd(index_t n, index_t avg_off_diag,
                                 double negative_fraction, Rng& rng) {
  SymmetricCsc a = random_spd(n, avg_off_diag, rng);
  auto vals = a.values();
  auto colptr = a.colptr();
  for (index_t j = 0; j < n; ++j) {
    if (rng.next_double() < negative_fraction) {
      vals[static_cast<std::size_t>(colptr[static_cast<std::size_t>(j)])] *=
          -1.0;
    }
  }
  return a;
}

SymmetricCsc jittered_mesh2d(index_t kx, index_t ky, Rng& rng) {
  // Start from a 5-point grid and randomly add a diagonal to ~half the
  // cells, emulating an unstructured triangulation.
  SPARTS_CHECK(kx > 1 && ky > 1);
  const index_t n = kx * ky;
  auto id = [kx](index_t x, index_t y) { return y * kx + x; };
  std::vector<std::pair<index_t, index_t>> edges;
  for (index_t y = 0; y < ky; ++y) {
    for (index_t x = 0; x < kx; ++x) {
      if (x + 1 < kx) edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < ky) edges.emplace_back(id(x, y), id(x, y + 1));
      if (x + 1 < kx && y + 1 < ky) {
        if (rng.next_below(2) == 0) {
          edges.emplace_back(id(x, y), id(x + 1, y + 1));
        } else {
          edges.emplace_back(id(x + 1, y), id(x, y + 1));
        }
      }
    }
  }
  return laplacian_from_edges(n, edges, 1e-2);
}

SymmetricCsc figure1_matrix() {
  // Paper Figure 1: a 19-node matrix whose elimination tree (with natural
  // ordering) is a balanced hierarchy: leaf supernodes {0,1,2}, {3,4,5},
  // {9,10,11}, {12,13,14} feeding separators {6,7,8} / {15,16,17}-style
  // structure, topped by the root supernode.  We reproduce the structure of
  // a 2-level nested dissection of a small 2-D mesh, which is exactly what
  // the figure depicts: 4 leaf subtrees on 8 processors, root supernode
  // shared by all.  Concretely we use a 2-level ND ordering of grid2d(4, 4)
  // extended with a 3-node root — constructed explicitly for determinism.
  Triplets t(19, 19);
  auto edge = [&t](index_t i, index_t j) { t.add(std::max(i, j), std::min(i, j), -1.0); };
  // Four leaf cliques (paths of 3): {0,1,2}, {3,4,5}, {9,10,11}, {12,13,14}.
  for (index_t base : {0, 3, 9, 12}) {
    edge(base, base + 1);
    edge(base + 1, base + 2);
  }
  // Left separator {6,7,8} couples leaf groups {0..2} and {3..5}.
  edge(2, 6); edge(5, 6); edge(6, 7); edge(7, 8); edge(0, 7); edge(3, 8);
  // Right separator {15,16,17} couples {9..11} and {12..14}.
  edge(11, 15); edge(14, 15); edge(15, 16); edge(16, 17); edge(9, 16);
  edge(12, 17);
  // Root node 18 couples both halves.
  edge(8, 18); edge(17, 18); edge(7, 18); edge(16, 18);
  // Diagonal: degree + 1 (assembled afterwards in from_triplets pass).
  std::vector<real_t> diag(19, 1.0);
  SymmetricCsc pat = SymmetricCsc::from_triplets(t);
  // Count degrees from structure and rebuild with SPD values.
  Triplets t2(19, 19);
  for (index_t j = 0; j < 19; ++j) {
    auto rows = pat.col_rows(j);
    for (std::size_t k = 1; k < rows.size(); ++k) {
      t2.add(rows[k], j, -1.0);
      diag[static_cast<std::size_t>(rows[k])] += 1.0;
      diag[static_cast<std::size_t>(j)] += 1.0;
    }
  }
  for (index_t i = 0; i < 19; ++i) t2.add(i, i, diag[static_cast<std::size_t>(i)]);
  return SymmetricCsc::from_triplets(t2);
}

std::vector<real_t> random_rhs(index_t n, index_t m, Rng& rng) {
  std::vector<real_t> b(static_cast<std::size_t>(n * m));
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

}  // namespace sparts::sparse
