// Workload generators.
//
// The paper's analysis covers matrices whose graphs are two- or three-
// dimensional neighborhood graphs (finite-difference / finite-element
// discretizations).  These generators produce exactly that class, plus the
// paper's 19x19 illustration matrix (Fig. 1) and synthetic counterparts of
// its five Boeing-Harwell test matrices (see DESIGN.md §3 for the
// substitution rationale).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sparse/formats.hpp"

namespace sparts::sparse {

/// kx x ky grid, 5-point (stencil=5) or 9-point (stencil=9) coupling.
/// SPD: Laplacian-like with diagonal = degree + shift.
SymmetricCsc grid2d(index_t kx, index_t ky, int stencil = 5,
                    real_t shift = 1e-2);

/// kx x ky x kz grid, 7-point (stencil=7) or 27-point (stencil=27).
SymmetricCsc grid3d(index_t kx, index_t ky, index_t kz, int stencil = 7,
                    real_t shift = 1e-2);

/// Multi-degree-of-freedom meshes: every mesh vertex carries `dof`
/// unknowns, fully coupled within the vertex and across each mesh edge
/// (dense dof x dof blocks).  This is the structure of structural-analysis
/// matrices like the paper's BCSSTK problems (3-6 DOF per node), and it is
/// what gives them their high fill and flop counts relative to scalar
/// meshes of the same N.  Unknown (v, a) has index v*dof + a.
SymmetricCsc grid2d_dof(index_t kx, index_t ky, int stencil, index_t dof,
                        real_t shift = 1e-2);
SymmetricCsc grid3d_dof(index_t kx, index_t ky, index_t kz, int stencil,
                        index_t dof, real_t shift = 1e-2);

/// Random sparse SPD matrix: ~`avg_off_diag` random off-diagonals per
/// column, strictly diagonally dominant.  Used by property tests.
SymmetricCsc random_spd(index_t n, index_t avg_off_diag, Rng& rng);

/// Random symmetric *indefinite* but strictly diagonally dominant matrix:
/// like random_spd, but each diagonal entry's sign is flipped negative
/// with probability `negative_fraction`.  L D L^T factors it without
/// pivoting; Cholesky rejects it.  Used to test the LDL^T path.
SymmetricCsc random_symmetric_dd(index_t n, index_t avg_off_diag,
                                 double negative_fraction, Rng& rng);

/// Random symmetric positive definite matrix built from a random planar-ish
/// mesh: n points on a jittered grid with nearest-neighbor coupling.  A
/// harsher ordering workload than a perfect grid.
SymmetricCsc jittered_mesh2d(index_t kx, index_t ky, Rng& rng);

/// The 19-node symmetric matrix of the paper's Figure 1 (as a pattern with
/// SPD values).  Nodes 0..18, elimination tree as in the figure.
SymmetricCsc figure1_matrix();

/// Deterministic right-hand side block (n x m, column-major) with entries
/// in [-1, 1].
std::vector<real_t> random_rhs(index_t n, index_t m, Rng& rng);

}  // namespace sparts::sparse
