#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace sparts::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

SymmetricCsc read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_matrix_market(in);
}

SymmetricCsc read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw IoError("empty matrix market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || lower(object) != "matrix" ||
      lower(format) != "coordinate") {
    throw IoError("unsupported MatrixMarket header: " + line);
  }
  const bool pattern = lower(field) == "pattern";
  if (!pattern && lower(field) != "real" && lower(field) != "integer") {
    throw IoError("unsupported MatrixMarket field: " + field);
  }
  if (lower(symmetry) != "symmetric") {
    throw IoError("only symmetric matrices are supported, got: " + symmetry);
  }

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0;
  nnz_t entries = 0;
  sizes >> rows >> cols >> entries;
  if (!sizes || rows <= 0 || cols != rows) {
    throw IoError("bad MatrixMarket size line: " + line);
  }

  Triplets t(rows, cols);
  for (nnz_t k = 0; k < entries; ++k) {
    if (!std::getline(in, line)) throw IoError("truncated MatrixMarket body");
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    real_t v = 1.0;
    entry >> i >> j;
    if (!pattern) entry >> v;
    if (!entry) throw IoError("bad MatrixMarket entry: " + line);
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw IoError("MatrixMarket index out of range: " + line);
    }
    t.add(i - 1, j - 1, v);
  }
  SymmetricCsc a = SymmetricCsc::from_triplets(t);

  if (pattern) {
    // Synthesize SPD values: off-diagonals -1, diagonal = degree + 1.
    auto vals = a.values();
    auto colptr = a.colptr();
    auto rowind = a.rowind();
    std::vector<real_t> diag(static_cast<std::size_t>(a.n()), 1.0);
    for (index_t j = 0; j < a.n(); ++j) {
      for (nnz_t p = colptr[static_cast<std::size_t>(j)] + 1;
           p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
        vals[static_cast<std::size_t>(p)] = -1.0;
        diag[static_cast<std::size_t>(j)] += 1.0;
        diag[static_cast<std::size_t>(rowind[static_cast<std::size_t>(p)])] +=
            1.0;
      }
    }
    for (index_t j = 0; j < a.n(); ++j) {
      vals[static_cast<std::size_t>(colptr[static_cast<std::size_t>(j)])] =
          diag[static_cast<std::size_t>(j)];
    }
  }
  return a;
}

void write_matrix_market(const SymmetricCsc& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_matrix_market(a, out);
}

void write_matrix_market(const SymmetricCsc& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% written by SPARTS\n";
  out << a.n() << ' ' << a.n() << ' ' << a.nnz_lower() << '\n';
  out << std::setprecision(17);
  for (index_t j = 0; j < a.n(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      out << rows[k] + 1 << ' ' << j + 1 << ' ' << vals[k] << '\n';
    }
  }
  if (!out) throw IoError("write failure in write_matrix_market");
}

}  // namespace sparts::sparse
