#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace sparts::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

SymmetricCsc read_matrix_market(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open " + path);
  return read_matrix_market(in);
}

SymmetricCsc read_matrix_market(std::istream& in) {
  // Every parse failure names the 1-based line it came from: malformed
  // matrices arrive from outside the process, so "bad entry at line 8812"
  // has to carry the user all the way to the defect.
  std::size_t lineno = 0;
  std::string line;
  auto fail = [&](const std::string& what) -> IoError {
    return IoError("MatrixMarket line " + std::to_string(lineno) + ": " +
                   what);
  };

  if (!std::getline(in, line)) throw IoError("empty MatrixMarket stream");
  ++lineno;
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket" || lower(object) != "matrix" ||
      lower(format) != "coordinate") {
    throw fail("unsupported header: " + line);
  }
  const bool pattern = lower(field) == "pattern";
  if (!pattern && lower(field) != "real" && lower(field) != "integer") {
    throw fail("unsupported field: " + field);
  }
  if (lower(symmetry) != "symmetric") {
    throw fail("only symmetric matrices are supported, got: " + symmetry);
  }

  // Skip comments.
  bool have_sizes = false;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line[0] != '%') {
      have_sizes = true;
      break;
    }
  }
  if (!have_sizes) throw fail("truncated stream: no size line");
  std::istringstream sizes(line);
  index_t rows = 0, cols = 0;
  nnz_t entries = 0;
  sizes >> rows >> cols >> entries;
  if (!sizes || rows <= 0 || cols != rows || entries < 0) {
    throw fail("bad size line: " + line);
  }

  Triplets t(rows, cols);
  for (nnz_t k = 0; k < entries; ++k) {
    if (!std::getline(in, line)) {
      ++lineno;
      throw fail("truncated body: expected " + std::to_string(entries) +
                 " entries, got " + std::to_string(k));
    }
    ++lineno;
    std::istringstream entry(line);
    index_t i = 0, j = 0;
    real_t v = 1.0;
    entry >> i >> j;
    if (!pattern) entry >> v;
    if (!entry) throw fail("bad entry: " + line);
    if (i < 1 || i > rows || j < 1 || j > cols) {
      throw fail("index out of range: " + line);
    }
    if (!std::isfinite(v)) {
      throw fail("non-finite value: " + line);
    }
    t.add(i - 1, j - 1, v);
  }
  SymmetricCsc a = SymmetricCsc::from_triplets(t);

  if (pattern) {
    // Synthesize SPD values: off-diagonals -1, diagonal = degree + 1.
    auto vals = a.values();
    auto colptr = a.colptr();
    auto rowind = a.rowind();
    std::vector<real_t> diag(static_cast<std::size_t>(a.n()), 1.0);
    for (index_t j = 0; j < a.n(); ++j) {
      for (nnz_t p = colptr[static_cast<std::size_t>(j)] + 1;
           p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
        vals[static_cast<std::size_t>(p)] = -1.0;
        diag[static_cast<std::size_t>(j)] += 1.0;
        diag[static_cast<std::size_t>(rowind[static_cast<std::size_t>(p)])] +=
            1.0;
      }
    }
    for (index_t j = 0; j < a.n(); ++j) {
      vals[static_cast<std::size_t>(colptr[static_cast<std::size_t>(j)])] =
          diag[static_cast<std::size_t>(j)];
    }
  }
  return a;
}

void write_matrix_market(const SymmetricCsc& a, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open " + path + " for writing");
  write_matrix_market(a, out);
}

void write_matrix_market(const SymmetricCsc& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% written by SPARTS\n";
  out << a.n() << ' ' << a.n() << ' ' << a.nnz_lower() << '\n';
  out << std::setprecision(17);
  for (index_t j = 0; j < a.n(); ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      out << rows[k] + 1 << ' ' << j + 1 << ' ' << vals[k] << '\n';
    }
  }
  if (!out) throw IoError("write failure in write_matrix_market");
}

}  // namespace sparts::sparse
