// Matrix Market (.mtx) reader/writer for symmetric coordinate matrices.
//
// Supports the `%%MatrixMarket matrix coordinate real symmetric` and
// `... pattern symmetric` headers.  Pattern matrices get synthetic
// diagonally-dominant values so they are SPD and usable end-to-end.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/formats.hpp"

namespace sparts::sparse {

/// Read a symmetric Matrix Market file.  Throws IoError on malformed input.
SymmetricCsc read_matrix_market(const std::string& path);

/// Stream variant (for tests).
SymmetricCsc read_matrix_market(std::istream& in);

/// Write the lower triangle as `coordinate real symmetric`.
void write_matrix_market(const SymmetricCsc& a, const std::string& path);

/// Stream variant (for tests).
void write_matrix_market(const SymmetricCsc& a, std::ostream& out);

}  // namespace sparts::sparse
