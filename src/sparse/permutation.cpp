#include "sparse/permutation.hpp"

#include <numeric>

#include "common/error.hpp"

namespace sparts::sparse {

Permutation::Permutation(index_t n)
    : perm_(static_cast<std::size_t>(n)), iperm_(static_cast<std::size_t>(n)) {
  std::iota(perm_.begin(), perm_.end(), index_t{0});
  std::iota(iperm_.begin(), iperm_.end(), index_t{0});
}

Permutation::Permutation(std::vector<index_t> perm) : perm_(std::move(perm)) {
  const index_t n = static_cast<index_t>(perm_.size());
  iperm_.assign(static_cast<std::size_t>(n), -1);
  for (index_t k = 0; k < n; ++k) {
    const index_t old = perm_[static_cast<std::size_t>(k)];
    SPARTS_CHECK(old >= 0 && old < n,
                 "[permutation-bijectivity] entry " << old << " at position "
                     << k << " out of range [0, " << n << ")");
    SPARTS_CHECK(iperm_[static_cast<std::size_t>(old)] == -1,
                 "[permutation-bijectivity] duplicate entry "
                     << old << " (positions "
                     << iperm_[static_cast<std::size_t>(old)] << " and " << k
                     << "); a permutation must be a bijection of 0..n-1");
    iperm_[static_cast<std::size_t>(old)] = k;
  }
}

Permutation Permutation::compose(const Permutation& other) const {
  SPARTS_CHECK(n() == other.n());
  std::vector<index_t> p(static_cast<std::size_t>(n()));
  // Applying `other` then `this`: new index k maps through this->old, then
  // other->old:  result[k] = other.perm[this.perm[k]].
  for (index_t k = 0; k < n(); ++k) {
    p[static_cast<std::size_t>(k)] = other.old_of_new(old_of_new(k));
  }
  return Permutation(std::move(p));
}

Permutation Permutation::inverted() const {
  return Permutation(std::vector<index_t>(iperm_));
}

SymmetricCsc permute_symmetric(const SymmetricCsc& a, const Permutation& p) {
  SPARTS_CHECK(a.n() == p.n());
  const index_t n = a.n();
  Triplets t(n, n);
  for (index_t j = 0; j < n; ++j) {
    auto rows = a.col_rows(j);
    auto vals = a.col_values(j);
    const index_t nj = p.new_of_old(j);
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const index_t ni = p.new_of_old(rows[k]);
      t.add(std::max(ni, nj), std::min(ni, nj), vals[k]);
    }
  }
  return SymmetricCsc::from_triplets(t);
}

Permutation expand_permutation_dof(const Permutation& base, index_t dof) {
  SPARTS_CHECK(dof >= 1);
  std::vector<index_t> perm(static_cast<std::size_t>(base.n() * dof));
  for (index_t k = 0; k < base.n(); ++k) {
    const index_t old = base.old_of_new(k);
    for (index_t a = 0; a < dof; ++a) {
      perm[static_cast<std::size_t>(k * dof + a)] = old * dof + a;
    }
  }
  return Permutation(std::move(perm));
}

}  // namespace sparts::sparse
