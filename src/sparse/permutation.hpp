// Permutations and symmetric matrix reordering (P A P^T).
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sparse/formats.hpp"

namespace sparts::sparse {

/// A permutation of 0..n-1.  perm[new_index] = old_index, following the
/// sparse-direct convention: row/column `perm[k]` of the original matrix
/// becomes row/column `k` of the permuted matrix.
class Permutation {
 public:
  Permutation() = default;

  /// Identity permutation of size n.
  explicit Permutation(index_t n);

  /// From an explicit new->old map (validated to be a bijection).
  explicit Permutation(std::vector<index_t> perm);

  index_t n() const { return static_cast<index_t>(perm_.size()); }

  /// new -> old.
  std::span<const index_t> perm() const { return perm_; }
  /// old -> new.
  std::span<const index_t> inverse() const { return iperm_; }

  index_t old_of_new(index_t k) const { return perm_[static_cast<std::size_t>(k)]; }
  index_t new_of_old(index_t k) const { return iperm_[static_cast<std::size_t>(k)]; }

  /// Composition: (this ∘ other), i.e. apply `other` first, then `this`.
  Permutation compose(const Permutation& other) const;

  /// Inverse permutation object.
  Permutation inverted() const;

  /// Permute a vector from old ordering to new ordering:
  /// out[k] = in[perm[k]].
  template <typename T>
  std::vector<T> apply(std::span<const T> in) const {
    SPARTS_CHECK(static_cast<index_t>(in.size()) == n());
    std::vector<T> out(in.size());
    for (std::size_t k = 0; k < in.size(); ++k) {
      out[k] = in[static_cast<std::size_t>(perm_[k])];
    }
    return out;
  }

  /// Scatter a vector from new ordering back to old ordering:
  /// out[perm[k]] = in[k].
  template <typename T>
  std::vector<T> apply_inverse(std::span<const T> in) const {
    SPARTS_CHECK(static_cast<index_t>(in.size()) == n());
    std::vector<T> out(in.size());
    for (std::size_t k = 0; k < in.size(); ++k) {
      out[static_cast<std::size_t>(perm_[k])] = in[k];
    }
    return out;
  }

 private:
  std::vector<index_t> perm_;   // new -> old
  std::vector<index_t> iperm_;  // old -> new
};

/// Symmetric reordering B = P A P^T, keeping lower-triangular storage.
SymmetricCsc permute_symmetric(const SymmetricCsc& a, const Permutation& p);

/// Lift a permutation of mesh vertices to a permutation of multi-DOF
/// unknowns (unknown (v, a) = v*dof + a): each vertex's DOF stay
/// consecutive in the vertex's new position.  Used to apply a geometric
/// nested-dissection vertex order to grid2d_dof / grid3d_dof systems.
Permutation expand_permutation_dof(const Permutation& base, index_t dof);

}  // namespace sparts::sparse
