#include "sparse/validate.hpp"

#include "common/error.hpp"

namespace sparts::sparse {

void validate_csc(index_t n, std::span<const nnz_t> colptr,
                  std::span<const index_t> rowind, nnz_t num_values) {
  SPARTS_CHECK(n >= 0, "[csc-shape] matrix dimension must be non-negative");
  SPARTS_CHECK(static_cast<index_t>(colptr.size()) == n + 1,
               "[csc-shape] colptr must have n+1 = " << n + 1 << " entries, got "
                                                    << colptr.size());
  SPARTS_CHECK(colptr.front() == 0,
               "[csc-shape] colptr[0] must be 0, got " << colptr.front());
  SPARTS_CHECK(static_cast<nnz_t>(rowind.size()) == num_values,
               "[csc-shape] rowind and values must have equal length ("
                   << rowind.size() << " vs " << num_values << ")");
  SPARTS_CHECK(colptr.back() == static_cast<nnz_t>(rowind.size()),
               "[csc-shape] colptr[n] = " << colptr.back()
                                          << " must equal nnz = "
                                          << rowind.size());
  for (index_t j = 0; j < n; ++j) {
    const nnz_t b = colptr[static_cast<std::size_t>(j)];
    const nnz_t e = colptr[static_cast<std::size_t>(j) + 1];
    SPARTS_CHECK(e >= b, "[csc-shape] colptr must be non-decreasing; column "
                             << j << " has colptr[j+1] < colptr[j]");
    SPARTS_CHECK(e > b,
                 "[csc-diagonal] column " << j << " is empty (diagonal "
                                          << "entry missing)");
    SPARTS_CHECK(rowind[static_cast<std::size_t>(b)] == j,
                 "[csc-diagonal] first entry of column "
                     << j << " must be the diagonal, got row "
                     << rowind[static_cast<std::size_t>(b)]);
    for (nnz_t p = b + 1; p < e; ++p) {
      const index_t r = rowind[static_cast<std::size_t>(p)];
      const index_t prev = rowind[static_cast<std::size_t>(p - 1)];
      SPARTS_CHECK(r > prev, "[csc-sortedness] row indices must be strictly "
                             "ascending within column "
                                 << j << " (" << prev << " then " << r << ")");
      SPARTS_CHECK(r >= 0 && r < n, "[csc-bounds] row index "
                                        << r << " in column " << j
                                        << " out of range [0, " << n << ")");
    }
  }
}

void validate_symmetric_csc(const SymmetricCsc& a) {
  validate_csc(a.n(), a.colptr(), a.rowind(),
               static_cast<nnz_t>(a.values().size()));
}

void validate_graph(const Graph& g) {
  const index_t n = g.n();
  nnz_t total = 0;
  for (index_t v = 0; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    total += static_cast<nnz_t>(nbrs.size());
    for (const index_t u : nbrs) {
      SPARTS_CHECK(u >= 0 && u < n, "[graph-bounds] neighbor "
                                        << u << " of vertex " << v
                                        << " out of range [0, " << n << ")");
      SPARTS_CHECK(u != v,
                   "[graph-shape] self loop at vertex " << v);
    }
  }
  SPARTS_CHECK(total == 2 * g.num_edges(),
               "[graph-shape] directed degree sum " << total
                   << " must be twice the edge count " << g.num_edges());
}

}  // namespace sparts::sparse
