// Structural validators for the sparse containers (SPARTS_CHECKS system,
// see common/checks.hpp).
//
// Every validator throws sparts::Error whose message contains a
// bracketed tag naming the violated invariant — [csc-shape],
// [csc-diagonal], [csc-sortedness], [csc-bounds], [graph-shape],
// [graph-bounds] — so failures are machine-greppable in logs and CI.
#pragma once

#include <span>

#include "common/types.hpp"
#include "sparse/formats.hpp"

namespace sparts::sparse {

/// Validate raw lower-triangular CSC arrays: shape (n+1 colptr, monotone,
/// counts consistent), diagonal-first columns, strictly ascending row
/// indices, and row bounds.  O(nnz).
void validate_csc(index_t n, std::span<const nnz_t> colptr,
                  std::span<const index_t> rowind, nnz_t num_values);

/// Validate an assembled SymmetricCsc (same invariants as validate_csc).
void validate_symmetric_csc(const SymmetricCsc& a);

/// Validate an adjacency Graph: monotone xadj, neighbor bounds, no self
/// loops.  O(edges).
void validate_graph(const Graph& g);

}  // namespace sparts::sparse
