#include "symbolic/supernodes.hpp"

#include <algorithm>

#include "common/checks.hpp"
#include "common/error.hpp"

namespace sparts::symbolic {

nnz_t SupernodePartition::total_block_entries() const {
  nnz_t total = 0;
  for (index_t s = 0; s < num_supernodes(); ++s) total += block_entries(s);
  return total;
}

void SupernodePartition::check_consistent() const {
  const index_t nsup = num_supernodes();
  SPARTS_CHECK(first_col.front() == 0,
               "[supernode-contiguity] first_col[0] must be 0");
  SPARTS_CHECK(static_cast<index_t>(sup_of_col.size()) == n(),
               "[supernode-contiguity] sup_of_col must cover all "
                   << n() << " columns");
  ordering::validate_etree(stree);
  for (index_t s = 0; s < nsup; ++s) {
    SPARTS_CHECK(width(s) >= 1,
                 "[supernode-contiguity] supernode " << s << " is empty");
    auto ri = row_indices(s);
    SPARTS_CHECK(static_cast<index_t>(ri.size()) >= width(s),
                 "[supernode-structure] supernode "
                     << s << " has fewer rows than columns");
    // First t rows are the supernode's own columns.
    for (index_t k = 0; k < width(s); ++k) {
      SPARTS_CHECK(ri[static_cast<std::size_t>(k)] ==
                       first_col[static_cast<std::size_t>(s)] + k,
                   "[supernode-contiguity] supernode "
                       << s << " does not own its column block: row "
                       << ri[static_cast<std::size_t>(k)] << " at position "
                       << k);
    }
    // Rows ascending, remaining rows strictly below the supernode.
    for (std::size_t k = 1; k < ri.size(); ++k) {
      SPARTS_CHECK(ri[k] > ri[k - 1],
                   "[supernode-structure] row indices of supernode "
                       << s << " must be strictly ascending");
    }
    for (index_t j = first_col[static_cast<std::size_t>(s)];
         j < first_col[static_cast<std::size_t>(s) + 1]; ++j) {
      SPARTS_CHECK(sup_of_col[static_cast<std::size_t>(j)] == s,
                   "[supernode-contiguity] column "
                       << j << " not mapped to its supernode " << s);
    }
    // Parent supernode owns the first below-supernode row.
    const index_t parent = stree.parent[static_cast<std::size_t>(s)];
    if (static_cast<index_t>(ri.size()) > width(s)) {
      SPARTS_CHECK(parent != -1,
                   "[supernode-structure] supernode "
                       << s << " has below-diagonal rows but no parent");
      const index_t below = ri[static_cast<std::size_t>(width(s))];
      SPARTS_CHECK(sup_of_col[static_cast<std::size_t>(below)] == parent,
                   "[supernode-structure] first below row of supernode "
                       << s << " must land in its parent supernode");
    } else {
      SPARTS_CHECK(parent == -1,
                   "[supernode-structure] supernode "
                       << s << " has a parent but no below-diagonal rows");
    }
  }
}

SupernodePartition fundamental_supernodes(const SymbolicFactor& f) {
  const index_t n = f.n;
  SupernodePartition p;
  p.sup_of_col.assign(static_cast<std::size_t>(n), 0);
  p.first_col.push_back(0);

  // Column j extends the current supernode iff parent(j-1) == j and
  // |struct(j)| == |struct(j-1)| - 1 (then struct(j) = struct(j-1) \ {j-1},
  // which for sorted structures is implied by the counts and the etree).
  for (index_t j = 1; j < n; ++j) {
    const bool chain =
        f.etree.parent[static_cast<std::size_t>(j - 1)] == j &&
        static_cast<index_t>(f.col_rows(j).size()) ==
            static_cast<index_t>(f.col_rows(j - 1).size()) - 1;
    // Fundamental supernodes additionally require j-1 to be the *only*
    // child of j that chains — equivalently j must have exactly one child
    // with this property; for Cholesky structures the count test suffices
    // only if no other child exists.  Enforce it: j starts a new supernode
    // if any other column c < j-1 has parent j.
    bool other_child = false;
    if (chain) {
      // Cheap check: column j's structure minus itself must equal column
      // j-1's structure minus its first two entries.  With sorted arrays
      // this is a direct comparison and also rules out other children.
      auto sj = f.col_rows(j);
      auto sp = f.col_rows(j - 1);
      for (std::size_t k = 1; k < sj.size(); ++k) {
        if (sj[k] != sp[k + 1]) {
          other_child = true;
          break;
        }
      }
    }
    if (!(chain && !other_child)) {
      p.first_col.push_back(j);
    }
    p.sup_of_col[static_cast<std::size_t>(j)] =
        static_cast<index_t>(p.first_col.size()) - 1;
  }
  p.first_col.push_back(n);

  const index_t nsup = p.num_supernodes();
  p.rowptr.assign(static_cast<std::size_t>(nsup) + 1, 0);
  for (index_t s = 0; s < nsup; ++s) {
    const index_t j0 = p.first_col[static_cast<std::size_t>(s)];
    p.rowptr[static_cast<std::size_t>(s) + 1] =
        p.rowptr[static_cast<std::size_t>(s)] +
        static_cast<nnz_t>(f.col_rows(j0).size());
  }
  p.rows.resize(static_cast<std::size_t>(p.rowptr.back()));
  for (index_t s = 0; s < nsup; ++s) {
    const index_t j0 = p.first_col[static_cast<std::size_t>(s)];
    auto src = f.col_rows(j0);
    std::copy(src.begin(), src.end(),
              p.rows.begin() +
                  static_cast<std::ptrdiff_t>(p.rowptr[static_cast<std::size_t>(s)]));
  }

  // Supernodal elimination tree: parent of s owns the first row of s's
  // structure below s's own columns.
  p.stree.parent.assign(static_cast<std::size_t>(nsup), -1);
  for (index_t s = 0; s < nsup; ++s) {
    auto ri = p.row_indices(s);
    if (static_cast<index_t>(ri.size()) > p.width(s)) {
      const index_t below = ri[static_cast<std::size_t>(p.width(s))];
      p.stree.parent[static_cast<std::size_t>(s)] =
          p.sup_of_col[static_cast<std::size_t>(below)];
    }
  }
  SPARTS_VALIDATE_EXPENSIVE(p.check_consistent());
  return p;
}

SupernodePartition amalgamate(const SymbolicFactor& f,
                              const SupernodePartition& p, index_t max_width,
                              nnz_t relax_zeros) {
  const index_t nsup = p.num_supernodes();
  // Greedy bottom-up: a supernode merges into its parent when the parent
  // immediately follows it column-wise, combined width stays within
  // max_width, and the artificial zeros introduced per child column stay
  // within relax_zeros.  Union-find over supernode chains.
  std::vector<index_t> merged_into(static_cast<std::size_t>(nsup));
  for (index_t s = 0; s < nsup; ++s) merged_into[static_cast<std::size_t>(s)] = s;
  auto find = [&](index_t s) {
    while (merged_into[static_cast<std::size_t>(s)] != s) {
      s = merged_into[static_cast<std::size_t>(s)];
    }
    return s;
  };

  std::vector<index_t> group_width(static_cast<std::size_t>(nsup));
  std::vector<index_t> group_height(static_cast<std::size_t>(nsup));
  for (index_t s = 0; s < nsup; ++s) {
    group_width[static_cast<std::size_t>(s)] = p.width(s);
    group_height[static_cast<std::size_t>(s)] = p.height(s);
  }

  for (index_t s = 0; s < nsup; ++s) {
    const index_t parent = p.stree.parent[static_cast<std::size_t>(s)];
    if (parent == -1) continue;
    // Candidate only when the parent's columns start right after s's.
    if (p.first_col[static_cast<std::size_t>(parent)] !=
        p.first_col[static_cast<std::size_t>(s) + 1]) {
      continue;
    }
    const index_t gs = find(s);
    const index_t gp = find(parent);
    if (gs == gp) continue;
    const index_t w = group_width[static_cast<std::size_t>(gs)] +
                      group_width[static_cast<std::size_t>(gp)];
    if (w > max_width) continue;
    // Artificial zeros per child column if the child adopts the merged
    // height: merged height = child width + parent height; child's own
    // height may be smaller.
    const index_t merged_height =
        group_width[static_cast<std::size_t>(gs)] +
        group_height[static_cast<std::size_t>(gp)];
    const nnz_t zeros_per_col =
        static_cast<nnz_t>(merged_height) -
        group_height[static_cast<std::size_t>(gs)];
    if (zeros_per_col > relax_zeros) continue;
    merged_into[static_cast<std::size_t>(gs)] = gp;
    group_width[static_cast<std::size_t>(gp)] = w;
    group_height[static_cast<std::size_t>(gp)] = merged_height;
  }

  // Rebuild the partition: a new supernode per surviving group, columns
  // remain contiguous because we only merged column-adjacent supernodes.
  const index_t n = p.n();
  SupernodePartition q;
  q.sup_of_col.assign(static_cast<std::size_t>(n), -1);
  q.first_col.push_back(0);
  index_t current_group = find(p.sup_of_col[0]);
  for (index_t j = 1; j < n; ++j) {
    const index_t g = find(p.sup_of_col[static_cast<std::size_t>(j)]);
    if (g != current_group) {
      q.first_col.push_back(j);
      current_group = g;
    }
  }
  q.first_col.push_back(n);
  const index_t nq = q.num_supernodes();
  for (index_t s = 0; s < nq; ++s) {
    for (index_t j = q.first_col[static_cast<std::size_t>(s)];
         j < q.first_col[static_cast<std::size_t>(s) + 1]; ++j) {
      q.sup_of_col[static_cast<std::size_t>(j)] = s;
    }
  }

  // Row structure of a merged supernode: union of the first column's
  // structure with the supernode's own columns (the union equals
  // {own columns} ∪ struct(first column of the *parent-most* member)…
  // computed directly from the symbolic factor for robustness).
  q.rowptr.assign(static_cast<std::size_t>(nq) + 1, 0);
  std::vector<std::vector<index_t>> rows_of(static_cast<std::size_t>(nq));
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  for (index_t s = 0; s < nq; ++s) {
    auto& out = rows_of[static_cast<std::size_t>(s)];
    for (index_t j = q.first_col[static_cast<std::size_t>(s)];
         j < q.first_col[static_cast<std::size_t>(s) + 1]; ++j) {
      for (index_t i : f.col_rows(j)) {
        if (mark[static_cast<std::size_t>(i)] != s) {
          mark[static_cast<std::size_t>(i)] = s;
          out.push_back(i);
        }
      }
    }
    std::sort(out.begin(), out.end());
    q.rowptr[static_cast<std::size_t>(s) + 1] =
        q.rowptr[static_cast<std::size_t>(s)] +
        static_cast<nnz_t>(out.size());
  }
  q.rows.resize(static_cast<std::size_t>(q.rowptr.back()));
  for (index_t s = 0; s < nq; ++s) {
    const auto& out = rows_of[static_cast<std::size_t>(s)];
    std::copy(out.begin(), out.end(),
              q.rows.begin() + static_cast<std::ptrdiff_t>(
                                   q.rowptr[static_cast<std::size_t>(s)]));
  }

  q.stree.parent.assign(static_cast<std::size_t>(nq), -1);
  for (index_t s = 0; s < nq; ++s) {
    auto ri = q.row_indices(s);
    if (static_cast<index_t>(ri.size()) > q.width(s)) {
      const index_t below = ri[static_cast<std::size_t>(q.width(s))];
      q.stree.parent[static_cast<std::size_t>(s)] =
          q.sup_of_col[static_cast<std::size_t>(below)];
    }
  }
  SPARTS_VALIDATE_EXPENSIVE(q.check_consistent());
  return q;
}

}  // namespace sparts::symbolic
