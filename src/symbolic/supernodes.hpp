// Supernode detection and the supernodal elimination tree.
//
// A supernode is a maximal set of consecutive columns {j, j+1, ..., j+t-1}
// with identical below-diagonal structure, where each column's parent in the
// elimination tree is the next column (paper §2.1).  The portion of L owned
// by a supernode is a dense trapezoid of width t and height n_s =
// |struct(L_j)|.
//
// Relaxed amalgamation optionally merges a child supernode into its parent
// when doing so introduces at most `relax_zeros` explicit zeros per merged
// column, trading a little fill for larger dense blocks (and shallower
// trees) — the standard multifrontal engineering trick.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "ordering/etree.hpp"
#include "symbolic/symbolic.hpp"

namespace sparts::symbolic {

/// Partition of the columns 0..n-1 into supernodes with their merged row
/// structures and the supernodal elimination tree.
struct SupernodePartition {
  /// first_col[s] .. first_col[s+1]-1 are the columns of supernode s.
  /// Size nsup+1; first_col[0] = 0, first_col[nsup] = n.
  std::vector<index_t> first_col;
  /// sup_of_col[j] = supernode containing column j.  Size n.
  std::vector<index_t> sup_of_col;
  /// Row structure of each supernode: rows[rowptr[s]..rowptr[s+1}) are the
  /// row indices of the *first* column of s (ascending).  The first t
  /// entries are exactly the supernode's own columns.
  std::vector<nnz_t> rowptr;
  std::vector<index_t> rows;
  /// Supernodal elimination tree: parent supernode or -1 for the root(s).
  ordering::EliminationTree stree;

  index_t num_supernodes() const {
    return static_cast<index_t>(first_col.size()) - 1;
  }
  index_t n() const { return first_col.empty() ? 0 : first_col.back(); }

  /// Number of columns in supernode s.
  index_t width(index_t s) const {
    return first_col[static_cast<std::size_t>(s) + 1] -
           first_col[static_cast<std::size_t>(s)];
  }
  /// Number of rows (height of the trapezoid) of supernode s.
  index_t height(index_t s) const {
    return static_cast<index_t>(rowptr[static_cast<std::size_t>(s) + 1] -
                                rowptr[static_cast<std::size_t>(s)]);
  }
  /// Row indices of supernode s.
  std::span<const index_t> row_indices(index_t s) const {
    const nnz_t b = rowptr[static_cast<std::size_t>(s)];
    const nnz_t e = rowptr[static_cast<std::size_t>(s) + 1];
    return {rows.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Dense storage of the trapezoid of supernode s (height * width).
  nnz_t block_entries(index_t s) const {
    return static_cast<nnz_t>(height(s)) * width(s);
  }
  /// Total dense storage over all supernodes.
  nnz_t total_block_entries() const;

  /// Flops of a forward (or backward) solve with m RHS through supernode s:
  /// t^2 m for the triangle + 2 t (n_s - t) m for the rectangle update.
  nnz_t solve_flops(index_t s, index_t m) const {
    const nnz_t t = width(s);
    const nnz_t ns = height(s);
    return t * t * m + 2 * t * (ns - t) * m;
  }

  /// Validates internal invariants (used by tests; throws on violation).
  void check_consistent() const;
};

/// Detect fundamental supernodes of a symbolic factor.
SupernodePartition fundamental_supernodes(const SymbolicFactor& f);

/// Relaxed amalgamation: greedily merge a supernode into its parent when
/// both are narrow (combined width <= max_width) and the merge introduces
/// at most `relax_zeros` artificial zero entries per column of the child.
/// Returns a new partition with merged row structures (supersets).
SupernodePartition amalgamate(const SymbolicFactor& f,
                              const SupernodePartition& p, index_t max_width,
                              nnz_t relax_zeros);

}  // namespace sparts::symbolic
