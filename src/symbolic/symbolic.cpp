#include "symbolic/symbolic.hpp"

#include <algorithm>

#include "common/checks.hpp"
#include "common/error.hpp"
#include "sparse/validate.hpp"

namespace sparts::symbolic {

SymbolicFactor symbolic_cholesky(const sparse::SymmetricCsc& a) {
  SPARTS_VALIDATE_EXPENSIVE(sparse::validate_symmetric_csc(a));
  const index_t n = a.n();
  SymbolicFactor f;
  f.n = n;
  f.etree = ordering::elimination_tree(a);
  auto children = ordering::tree_children(f.etree);

  // Build column structures bottom-up.  A marker array deduplicates the
  // merge of A's column with the children's structures.
  std::vector<std::vector<index_t>> cols(static_cast<std::size_t>(n));
  std::vector<index_t> mark(static_cast<std::size_t>(n), -1);
  nnz_t total = 0;
  for (index_t j = 0; j < n; ++j) {
    std::vector<index_t>& out = cols[static_cast<std::size_t>(j)];
    mark[static_cast<std::size_t>(j)] = j;
    out.push_back(j);
    for (index_t i : a.col_rows(j)) {
      if (i > j && mark[static_cast<std::size_t>(i)] != j) {
        mark[static_cast<std::size_t>(i)] = j;
        out.push_back(i);
      }
    }
    for (index_t c : children[static_cast<std::size_t>(j)]) {
      for (index_t i : cols[static_cast<std::size_t>(c)]) {
        if (i > j && mark[static_cast<std::size_t>(i)] != j) {
          mark[static_cast<std::size_t>(i)] = j;
          out.push_back(i);
        }
      }
    }
    std::sort(out.begin(), out.end());
    SPARTS_DCHECK(out.front() == j);
    total += static_cast<nnz_t>(out.size());
  }

  f.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  f.rowind.reserve(static_cast<std::size_t>(total));
  for (index_t j = 0; j < n; ++j) {
    f.colptr[static_cast<std::size_t>(j)] =
        static_cast<nnz_t>(f.rowind.size());
    const auto& cj = cols[static_cast<std::size_t>(j)];
    f.rowind.insert(f.rowind.end(), cj.begin(), cj.end());
  }
  f.colptr[static_cast<std::size_t>(n)] = static_cast<nnz_t>(f.rowind.size());
  return f;
}

std::vector<index_t> SymbolicFactor::column_counts() const {
  std::vector<index_t> counts(static_cast<std::size_t>(n));
  for (index_t j = 0; j < n; ++j) {
    counts[static_cast<std::size_t>(j)] =
        static_cast<index_t>(col_rows(j).size());
  }
  return counts;
}

nnz_t SymbolicFactor::factorization_flops() const {
  nnz_t flops = 0;
  for (index_t j = 0; j < n; ++j) {
    const nnz_t cj = static_cast<nnz_t>(col_rows(j).size());
    // One sqrt + (cj-1) divisions + (cj-1)*cj multiply-adds (2 flops each)
    // charged to column j's elimination.
    flops += 1 + (cj - 1) + (cj - 1) * cj;
  }
  return flops;
}

}  // namespace sparts::symbolic
