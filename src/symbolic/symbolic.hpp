// Symbolic Cholesky factorization: the nonzero structure of L.
//
// struct(L_j) = struct(A_{j:n, j})  ∪  ∪_{c : parent(c) = j} (struct(L_c) \ {c})
//
// computed in O(nnz(L)) with the elimination tree.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "ordering/etree.hpp"
#include "sparse/formats.hpp"

namespace sparts::symbolic {

/// Nonzero structure of the Cholesky factor L (lower triangular, CSC,
/// row indices sorted ascending; the diagonal leads every column).
struct SymbolicFactor {
  index_t n = 0;
  ordering::EliminationTree etree;
  std::vector<nnz_t> colptr;    ///< size n+1
  std::vector<index_t> rowind;  ///< concatenated column structures

  nnz_t nnz() const { return colptr.empty() ? 0 : colptr.back(); }

  std::span<const index_t> col_rows(index_t j) const {
    const nnz_t b = colptr[static_cast<std::size_t>(j)];
    const nnz_t e = colptr[static_cast<std::size_t>(j) + 1];
    return {rowind.data() + b, static_cast<std::size_t>(e - b)};
  }

  /// Column counts |struct(L_j)| including the diagonal.
  std::vector<index_t> column_counts() const;

  /// Exact flop count of the numerical factorization:
  /// sum_j ( |L_j| - 1 ) * ( |L_j| + 2 )  ~  sum |L_j|^2.
  nnz_t factorization_flops() const;

  /// Exact flop count of one forward + backward solve with m RHS:
  /// 4 * nnz(L) * m  (2 flops per nonzero per solve direction).
  nnz_t solve_flops(index_t m) const { return 4 * nnz() * m; }
};

/// Compute the symbolic factor of (the pattern of) A.
SymbolicFactor symbolic_cholesky(const sparse::SymmetricCsc& a);

}  // namespace sparts::symbolic
