#include "trisolve/trisolve.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "dense/kernels.hpp"

namespace sparts::trisolve {

void forward_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                   SolveStats* stats) {
  const auto& p = l.partition();
  const index_t n = p.n();
  nnz_t flops = 0;
  std::vector<real_t> temp;

  // Supernodes are numbered so that ancestors have higher indices
  // (column-contiguity), so ascending order is a valid bottom-up sweep.
  for (index_t s = 0; s < p.num_supernodes(); ++s) {
    const index_t t = p.width(s);
    const index_t ns = p.height(s);
    const index_t j0 = p.first_col[static_cast<std::size_t>(s)];
    auto block = l.block(s);

    // Dense triangular solve on the supernode's own rows of B.
    flops += dense::panel_trsm_lower(t, m, block.data(), ns, b + j0, n);

    // Rectangle update: temp = L21 * X1, scattered into ancestor rows.
    const index_t below = ns - t;
    if (below > 0) {
      temp.assign(static_cast<std::size_t>(below) * m, 0.0);
      dense::panel_gemm(below, m, t, 1.0, block.data() + t, ns, b + j0, n,
                        temp.data(), below);
      flops += dense::gemm_flops(below, m, t);
      auto rows = p.row_indices(s);
      for (index_t c = 0; c < m; ++c) {
        real_t* bc = b + c * n;
        const real_t* tc = temp.data() + static_cast<std::size_t>(c) * below;
        for (index_t i = 0; i < below; ++i) {
          bc[rows[static_cast<std::size_t>(t + i)]] -= tc[i];
        }
      }
    }
  }
  if (stats != nullptr) stats->flops += flops;
}

void backward_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                    SolveStats* stats) {
  const auto& p = l.partition();
  const index_t n = p.n();
  nnz_t flops = 0;
  std::vector<real_t> temp;

  for (index_t s = p.num_supernodes() - 1; s >= 0; --s) {
    const index_t t = p.width(s);
    const index_t ns = p.height(s);
    const index_t j0 = p.first_col[static_cast<std::size_t>(s)];
    auto block = l.block(s);
    const index_t below = ns - t;

    if (below > 0) {
      // Gather ancestor rows of X, then X1 -= L21^T * X2.
      auto rows = p.row_indices(s);
      temp.assign(static_cast<std::size_t>(below) * m, 0.0);
      for (index_t c = 0; c < m; ++c) {
        const real_t* bc = b + c * n;
        real_t* tc = temp.data() + static_cast<std::size_t>(c) * below;
        for (index_t i = 0; i < below; ++i) {
          tc[i] = bc[rows[static_cast<std::size_t>(t + i)]];
        }
      }
      dense::panel_gemm_at(t, m, below, -1.0, block.data() + t, ns,
                           temp.data(), below, b + j0, n);
      flops += dense::gemm_flops(t, m, below);
    }

    // Dense transposed-triangular solve on the supernode's own rows.
    flops += dense::panel_trsm_lower_transposed(t, m, block.data(), ns,
                                                b + j0, n);
  }
  if (stats != nullptr) stats->flops += flops;
}

void full_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                SolveStats* stats) {
  forward_solve(l, b, m, stats);
  backward_solve(l, b, m, stats);
}

real_t relative_residual(const sparse::SymmetricCsc& a,
                         std::span<const real_t> x, std::span<const real_t> b,
                         index_t m) {
  const index_t n = a.n();
  SPARTS_CHECK(static_cast<index_t>(x.size()) == n * m);
  SPARTS_CHECK(static_cast<index_t>(b.size()) == n * m);
  real_t worst = 0.0;
  std::vector<real_t> r(static_cast<std::size_t>(n));
  for (index_t c = 0; c < m; ++c) {
    for (index_t i = 0; i < n; ++i) {
      r[static_cast<std::size_t>(i)] = -b[static_cast<std::size_t>(c * n + i)];
    }
    a.symv(1.0, x.subspan(static_cast<std::size_t>(c * n),
                          static_cast<std::size_t>(n)),
           r);
    real_t rn = 0.0, bn = 0.0;
    for (index_t i = 0; i < n; ++i) {
      rn += r[static_cast<std::size_t>(i)] * r[static_cast<std::size_t>(i)];
      const real_t bi = b[static_cast<std::size_t>(c * n + i)];
      bn += bi * bi;
    }
    worst = std::max(worst, std::sqrt(rn) / std::max(std::sqrt(bn), 1e-300));
  }
  return worst;
}

}  // namespace sparts::trisolve
