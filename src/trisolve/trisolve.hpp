// Sequential supernodal forward elimination and backward substitution
// (paper §2, serial form) — the single-processor baseline of every
// experiment and the reference the parallel solvers are validated against.
//
// Forward elimination (L Y = B) walks the supernodal elimination tree
// bottom-up: at each trapezoidal supernode, solve the t x t dense triangle,
// then subtract the (n_s - t) x t rectangle's product from the entries of
// the right-hand side owned by ancestors.  Backward substitution (L^T X = Y)
// walks top-down with the transposed operations.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"
#include "numeric/supernodal_factor.hpp"

namespace sparts::trisolve {

/// Statistics of one solver run.
struct SolveStats {
  nnz_t flops = 0;
};

/// Solve L Y = B in place.  `b` is n x m column-major with ld = n.
void forward_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                   SolveStats* stats = nullptr);

/// Solve L^T X = Y in place.
void backward_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                    SolveStats* stats = nullptr);

/// Full solve of A X = B given the factor of (permuted) A: forward then
/// backward, in place.
void full_solve(const numeric::SupernodalFactor& l, real_t* b, index_t m,
                SolveStats* stats = nullptr);

/// Relative residual ||A x - b||_2 / ||b||_2, column-wise max, for a
/// computed solution (both column-major n x m).
real_t relative_residual(const sparse::SymmetricCsc& a,
                         std::span<const real_t> x, std::span<const real_t> b,
                         index_t m);

}  // namespace sparts::trisolve
