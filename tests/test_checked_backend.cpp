// Tests for exec::CheckedBackend — the message-passing auditor.  Each
// hazard the checker knows about (wildcard race, tag collision, orphaned
// send, deadlock cycle) gets a micro-program that provokes it on purpose,
// plus a clean full solver pipeline that must report zero findings.
// Registered under the CTest label `analysis`.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exec/checked_backend.hpp"
#include "exec/thread_backend.hpp"
#include "simpar/machine.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/generators.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  return simpar::Machine(cfg);
}

exec::ThreadBackend make_threads(index_t p, double timeout = 30.0) {
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = p;
  cfg.recv_timeout = timeout;
  return exec::ThreadBackend(cfg);
}

const exec::Finding* find_kind(const exec::AnalysisReport& report,
                               exec::Finding::Kind kind) {
  for (const auto& f : report.findings) {
    if (f.kind == kind) return &f;
  }
  return nullptr;
}

// Two ranks exchanging distinct tags: nothing to report, and the stats of
// the inner backend pass through the decorator untouched.
TEST(CheckedBackend, CleanPingPongReportsNoFindings) {
  simpar::Machine inner = make_machine(2);
  exec::CheckedBackend backend(inner);  // borrowed-backend constructor
  const exec::RunStats stats = backend.run([](exec::Process& proc) {
    std::vector<real_t> payload(16, 1.5);
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, 7, payload);
      (void)proc.recv_values<real_t>(1, 8);
    } else {
      (void)proc.recv_values<real_t>(0, 7);
      proc.send_values<real_t>(0, 8, payload);
    }
  });
  EXPECT_EQ(stats.total_messages(), 2);
  const exec::AnalysisReport& report = backend.report();
  EXPECT_TRUE(report.clean()) << report.summary();
  EXPECT_EQ(report.sends, 2);
  EXPECT_EQ(report.recvs, 2);
  EXPECT_EQ(report.wildcard_recvs, 0);
}

// The canonical wildcard race: two senders, one recv(kAnySource).  The
// sends are causally unrelated, so which one the first recv matches is
// schedule-dependent.  On the sequential simulator the two messages may
// never be pending simultaneously — the post-run happens-before pass must
// still flag the race deterministically.  (Ranks >= 3 idle: the simulated
// hypercube needs a power-of-two processor count.)
void racy_wildcard_program(exec::Process& proc) {
  if (proc.rank() == 0) {
    for (int i = 0; i < 2; ++i) {
      (void)proc.recv_values<real_t>(exec::kAnySource, 5);
    }
  } else if (proc.rank() <= 2) {
    proc.send_values<real_t>(0, 5,
                             std::vector<real_t>(4, double(proc.rank())));
  }
}

TEST(CheckedBackend, WildcardRaceFlaggedOnSimulator) {
  simpar::Machine inner = make_machine(4);
  exec::CheckedBackend backend(inner);
  backend.run(racy_wildcard_program);
  const exec::AnalysisReport& report = backend.report();
  EXPECT_EQ(report.wildcard_recvs, 2);
  const exec::Finding* f =
      find_kind(report, exec::Finding::Kind::wildcard_race);
  ASSERT_NE(f, nullptr) << report.summary();
  EXPECT_EQ(f->dst, 0);
  EXPECT_EQ(f->tag, 5);
  EXPECT_NE(f->detail.find("kAnySource"), std::string::npos) << f->detail;
}

TEST(CheckedBackend, WildcardRaceFlaggedOnThreads) {
  exec::ThreadBackend inner = make_threads(3);
  exec::CheckedBackend backend(inner);
  backend.run(racy_wildcard_program);
  const exec::AnalysisReport& report = backend.report();
  ASSERT_NE(find_kind(report, exec::Finding::Kind::wildcard_race), nullptr)
      << report.summary();
}

// A wildcard recv is NOT a race when the competing sends are causally
// ordered: here rank 2 only sends after rank 0 forwards it a token, which
// happens after rank 1's message was received.  The happens-before pass
// must see comparable vector clocks and stay silent.
TEST(CheckedBackend, CausallyOrderedWildcardIsNotARace) {
  simpar::Machine inner = make_machine(4);
  exec::CheckedBackend backend(inner);
  backend.run([](exec::Process& proc) {
    std::vector<real_t> token(1, 0.0);
    if (proc.rank() == 0) {
      (void)proc.recv_values<real_t>(exec::kAnySource, 5);
      proc.send_values<real_t>(2, 9, token);  // release the second sender
      (void)proc.recv_values<real_t>(exec::kAnySource, 5);
    } else if (proc.rank() == 1) {
      proc.send_values<real_t>(0, 5, token);
    } else if (proc.rank() == 2) {
      (void)proc.recv_values<real_t>(0, 9);
      proc.send_values<real_t>(0, 5, token);
    }
  });
  EXPECT_TRUE(backend.report().clean()) << backend.report().summary();
}

// Two back-to-back sends on the same (src, dst, tag) edge: legal FIFO
// traffic, but the tag no longer names a unique in-flight message.
TEST(CheckedBackend, TagCollisionFlagged) {
  simpar::Machine inner = make_machine(2);
  exec::CheckedBackend backend(inner);
  backend.run([](exec::Process& proc) {
    std::vector<real_t> payload(8, 2.0);
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, 3, payload);
      proc.send_values<real_t>(1, 3, payload);
    } else {
      (void)proc.recv_values<real_t>(0, 3);
      (void)proc.recv_values<real_t>(0, 3);
    }
  });
  const exec::Finding* f =
      find_kind(backend.report(), exec::Finding::Kind::tag_collision);
  ASSERT_NE(f, nullptr) << backend.report().summary();
  EXPECT_EQ(f->src, 0);
  EXPECT_EQ(f->dst, 1);
  EXPECT_EQ(f->tag, 3);
  EXPECT_NE(f->detail.find("still in flight"), std::string::npos)
      << f->detail;
}

TEST(CheckedBackend, OrphanedSendFlagged) {
  simpar::Machine inner = make_machine(2);
  exec::CheckedBackend backend(inner);
  backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, 4, std::vector<real_t>(4, 1.0));
    }
    // rank 1 never posts the matching recv.
  });
  const exec::Finding* f =
      find_kind(backend.report(), exec::Finding::Kind::orphaned_send);
  ASSERT_NE(f, nullptr) << backend.report().summary();
  EXPECT_EQ(f->src, 0);
  EXPECT_EQ(f->dst, 1);
  EXPECT_EQ(f->tag, 4);
  EXPECT_NE(f->detail.find("never received"), std::string::npos) << f->detail;
}

TEST(CheckedBackend, ThrowOnFindingsRaisesAnalysisError) {
  simpar::Machine inner = make_machine(2);
  exec::CheckedBackend::Options options;
  options.throw_on_findings = true;
  exec::CheckedBackend backend(inner, options);
  EXPECT_THROW(backend.run([](exec::Process& proc) {
                 if (proc.rank() == 0) {
                   proc.send_values<real_t>(1, 4,
                                            std::vector<real_t>(4, 1.0));
                 }
               }),
               AnalysisError);
  // The report survives the throw for post-mortem inspection.
  EXPECT_EQ(backend.report().count(exec::Finding::Kind::orphaned_send), 1);
}

// A two-rank recv/recv hold-and-wait: the inner backend detects the hang,
// and the checker turns it into a wait-for cycle naming both ranks and
// the tags they block on.
void deadlock_program(exec::Process& proc) {
  if (proc.rank() == 0) {
    (void)proc.recv_values<real_t>(1, 5);
  } else {
    (void)proc.recv_values<real_t>(0, 6);
  }
}

TEST(CheckedBackend, DeadlockCycleDiagnosedOnSimulator) {
  simpar::Machine inner = make_machine(2);
  exec::CheckedBackend backend(inner);
  try {
    backend.run(deadlock_program);
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock cycle"), std::string::npos) << what;
    EXPECT_NE(what.find("waits on"), std::string::npos) << what;
    EXPECT_NE(what.find("wait-for snapshot"), std::string::npos) << what;
  }
  const exec::Finding* f =
      find_kind(backend.report(), exec::Finding::Kind::deadlock_cycle);
  ASSERT_NE(f, nullptr) << backend.report().summary();
  EXPECT_NE(f->detail.find("tag 5"), std::string::npos) << f->detail;
  EXPECT_NE(f->detail.find("tag 6"), std::string::npos) << f->detail;
}

TEST(CheckedBackend, DeadlockCycleDiagnosedOnThreads) {
  exec::ThreadBackend inner = make_threads(2, /*timeout=*/2.0);
  exec::CheckedBackend backend(inner);
  EXPECT_THROW(backend.run(deadlock_program), DeadlockError);
  EXPECT_GE(backend.report().count(exec::Finding::Kind::deadlock_cycle), 1);
}

// The real workload criterion: a full distributed solve (parallel
// factorization + redistribution + pipelined triangular solves) under the
// checked simulator backend finishes with zero findings and the right
// answer.  throw_on_findings is set inside parallel_solve, so any hazard
// would abort the run with AnalysisError.
TEST(CheckedBackend, FullParallelSolveRunsCleanUnderChecked) {
  const sparse::SymmetricCsc a = sparse::grid2d(20, 20);
  const index_t m = 2;
  std::vector<real_t> b(static_cast<std::size_t>(a.n() * m));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = 1.0 + 0.01 * static_cast<real_t>(i % 17);
  }

  solver::Options opt;
  opt.backend = solver::ExecutionBackend::checked;
  const auto result = solver::parallel_solve(a, b, m, 8, opt);
  EXPECT_EQ(result.analysis_findings, 0);
  EXPECT_GT(result.checked_messages, 0);

  const auto reference = solver::SparseSolver::factorize(a).solve(b, m);
  ASSERT_EQ(result.x.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(result.x[i], reference[i], 1e-8);
  }
}

// Same audit on real concurrent threads (smaller problem: this one pays
// for actual thread scheduling).
TEST(CheckedBackend, ParallelSolveRunsCleanUnderCheckedThreads) {
  const sparse::SymmetricCsc a = sparse::grid2d(12, 12);
  std::vector<real_t> b(static_cast<std::size_t>(a.n()), 1.0);

  solver::Options opt;
  opt.backend = solver::ExecutionBackend::checked_threads;
  const auto result = solver::parallel_solve(a, b, 1, 4, opt);
  EXPECT_EQ(result.analysis_findings, 0);
  EXPECT_GT(result.checked_messages, 0);
}

}  // namespace
}  // namespace sparts
