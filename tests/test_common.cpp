// common/ utilities: error machinery, table formatting, timers.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace sparts {
namespace {

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    SPARTS_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("test_common.cpp"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchable) {
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw NumericalError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw DeadlockError("x"), Error);
}

TEST(Table, AlignsColumnsAndRules) {
  TextTable t({"name", "value"});
  t.new_row();
  t.add("alpha");
  t.add(static_cast<long long>(7));
  t.add_rule();
  t.new_row();
  t.add("bb");
  t.add(3.14159, 2);
  const std::string s = t.str();
  // Header, rule, row, rule, row.
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  // Column alignment: every line has the same length.
  std::size_t first_len = s.find('\n');
  for (std::size_t pos = 0; pos < s.size();) {
    const std::size_t nl = s.find('\n', pos);
    ASSERT_NE(nl, std::string::npos);
    EXPECT_EQ(nl - pos, first_len) << "ragged line: '"
                                   << s.substr(pos, nl - pos) << "'";
    pos = nl + 1;
  }
}

TEST(Table, RejectsOverfullRow) {
  TextTable t({"only"});
  t.new_row();
  t.add("a");
  EXPECT_THROW(t.add("b"), Error);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_si(1'500'000.0), "1.50M");
  EXPECT_EQ(format_si(2'000'000'000.0), "2.00G");
  EXPECT_EQ(format_si(999.0), "999.00");
  EXPECT_EQ(format_si(1200.0), "1.20K");
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s1 = t.seconds();
  EXPECT_GE(s1, 0.015);
  t.reset();
  EXPECT_LT(t.seconds(), s1);
}

}  // namespace
}  // namespace sparts
