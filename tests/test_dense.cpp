// Dense matrix and kernel tests: every panel kernel is validated against a
// naive reference implementation.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "dense/cholesky.hpp"
#include "dense/kernels.hpp"
#include "dense/matrix.hpp"

namespace sparts::dense {
namespace {

Matrix random_matrix(index_t rows, index_t cols, Rng& rng) {
  Matrix a(rows, cols);
  for (index_t j = 0; j < cols; ++j) {
    for (index_t i = 0; i < rows; ++i) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

Matrix random_spd_dense(index_t n, Rng& rng) {
  Matrix b = random_matrix(n, n, rng);
  Matrix a(n, n);
  gemm(1.0, b, false, b, true, a);  // A = B B^T
  for (index_t i = 0; i < n; ++i) a(i, i) += static_cast<real_t>(n);
  return a;
}

TEST(Matrix, BasicAccessorsAndOps) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}});
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 2);
  EXPECT_DOUBLE_EQ(a(2, 1), 6.0);
  Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 2);
  EXPECT_DOUBLE_EQ(t(1, 2), 6.0);
  Matrix i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
  a += a;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 12.0);
}

TEST(Matrix, FrobeniusDistance) {
  Matrix a = Matrix::from_rows({{3.0, 0.0}, {0.0, 4.0}});
  Matrix b(2, 2);
  EXPECT_DOUBLE_EQ(frobenius_distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(frobenius_norm(a), 5.0);
}

TEST(Kernels, GemmMatchesNaive) {
  Rng rng(1);
  const index_t m = 7, n = 5, k = 6;
  Matrix a = random_matrix(m, k, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  gemm(2.0, a, false, b, false, c);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = 0.0;
      for (index_t l = 0; l < k; ++l) s += a(i, l) * b(l, j);
      EXPECT_NEAR(c(i, j), 2.0 * s, 1e-12);
    }
  }
}

TEST(Kernels, GemmTransposedVariants) {
  Rng rng(2);
  const index_t m = 4, n = 3, k = 5;
  Matrix a = random_matrix(k, m, rng);   // used as A^T
  Matrix b = random_matrix(n, k, rng);   // used as B^T
  Matrix c(m, n);
  gemm(1.0, a, true, b, true, c);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = 0.0;
      for (index_t l = 0; l < k; ++l) s += a(l, i) * b(j, l);
      EXPECT_NEAR(c(i, j), s, 1e-12);
    }
  }
}

TEST(Kernels, GemvMatchesGemm) {
  Rng rng(3);
  const index_t m = 6, n = 4;
  Matrix a = random_matrix(m, n, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  std::vector<real_t> y(static_cast<std::size_t>(m), 0.0);
  gemv(1.5, a, x, y);
  for (index_t i = 0; i < m; ++i) {
    real_t s = 0.0;
    for (index_t j = 0; j < n; ++j) {
      s += a(i, j) * x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], 1.5 * s, 1e-12);
  }
}

TEST(Kernels, CholeskyReconstructs) {
  Rng rng(4);
  const index_t n = 12;
  Matrix a = random_spd_dense(n, rng);
  Matrix l = cholesky(a);
  Matrix rec(n, n);
  gemm(1.0, l, false, l, true, rec);
  EXPECT_LT(frobenius_distance(a, rec) / frobenius_norm(a), 1e-12);
  // Upper part must be exactly zero.
  for (index_t j = 1; j < n; ++j) {
    for (index_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

TEST(Kernels, CholeskyRejectsIndefinite) {
  Matrix a = Matrix::from_rows({{1.0, 2.0}, {2.0, 1.0}});  // indefinite
  EXPECT_THROW(cholesky(a), NumericalError);
}

TEST(Kernels, SolveSpdRoundTrip) {
  Rng rng(5);
  const index_t n = 10, m = 3;
  Matrix a = random_spd_dense(n, rng);
  Matrix x_true = random_matrix(n, m, rng);
  Matrix b(n, m);
  gemm(1.0, a, false, x_true, false, b);
  Matrix x = solve_spd(a, b);
  EXPECT_LT(frobenius_distance(x, x_true) / frobenius_norm(x_true), 1e-10);
}

TEST(Kernels, TrsmLowerBothDirections) {
  Rng rng(6);
  const index_t n = 9, m = 2;
  Matrix a = random_spd_dense(n, rng);
  Matrix l = cholesky(a);
  Matrix b = random_matrix(n, m, rng);
  Matrix y = solve_lower(l, b);
  // Check L y = b.
  Matrix check(n, m);
  gemm(1.0, l, false, y, false, check);
  EXPECT_LT(frobenius_distance(check, b), 1e-10);
  Matrix x = solve_lower_transposed(l, b);
  Matrix check2(n, m);
  gemm(1.0, l, true, x, false, check2);
  EXPECT_LT(frobenius_distance(check2, b), 1e-10);
}

TEST(PanelKernels, TrsmRightLt) {
  // X := X * L^{-T}  must satisfy  X_out * L^T = X_in.
  Rng rng(7);
  const index_t m = 6, k = 4;
  Matrix a = random_spd_dense(k, rng);
  Matrix l = cholesky(a);
  Matrix x = random_matrix(m, k, rng);
  Matrix x0 = x;
  panel_trsm_right_lt(m, k, l.col(0), k, x.col(0), m);
  Matrix check(m, k);
  gemm(1.0, x, false, l, true, check);
  EXPECT_LT(frobenius_distance(check, x0), 1e-10);
}

TEST(PanelKernels, PartialCholeskyMatchesBlocked) {
  // panel_cholesky on an m x t panel must agree with factoring the full
  // matrix and reading off the first t columns.
  Rng rng(8);
  const index_t n = 10, t = 4;
  Matrix a = random_spd_dense(n, rng);
  Matrix full = cholesky(a);
  Matrix panel = a;  // copy; factor first t columns in place
  panel_cholesky(n, t, panel.col(0), n);
  for (index_t j = 0; j < t; ++j) {
    for (index_t i = j; i < n; ++i) {
      EXPECT_NEAR(panel(i, j), full(i, j), 1e-10);
    }
  }
}

TEST(PanelKernels, SyrkLowerMatchesGemm) {
  Rng rng(9);
  const index_t n = 8, k = 5;
  Matrix a = random_matrix(n, k, rng);
  Matrix c(n, n);
  syrk_lower(a, c);  // C -= A A^T (lower)
  for (index_t j = 0; j < n; ++j) {
    for (index_t i = j; i < n; ++i) {
      real_t s = 0.0;
      for (index_t l = 0; l < k; ++l) s += a(i, l) * a(j, l);
      EXPECT_NEAR(c(i, j), -s, 1e-12);
    }
    for (index_t i = 0; i < j; ++i) EXPECT_DOUBLE_EQ(c(i, j), 0.0);
  }
}

TEST(PanelKernels, GemmAtMatchesNaive) {
  Rng rng(10);
  const index_t m = 5, n = 3, k = 7;
  Matrix a = random_matrix(k, m, rng);
  Matrix b = random_matrix(k, n, rng);
  Matrix c(m, n);
  panel_gemm_at(m, n, k, -1.0, a.col(0), k, b.col(0), k, c.col(0), m);
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      real_t s = 0.0;
      for (index_t l = 0; l < k; ++l) s += a(l, i) * b(l, j);
      EXPECT_NEAR(c(i, j), -s, 1e-12);
    }
  }
}

TEST(Flops, CountsArePositiveAndScale) {
  EXPECT_EQ(gemm_flops(2, 3, 4), 48);
  EXPECT_GT(cholesky_flops(100), cholesky_flops(50));
  EXPECT_EQ(trisolve_flops(10, 3), 300);
}

TEST(Flops, PanelKernelsReturnDocumentedFormulas) {
  // The returned counts are part of the reproducibility contract: the
  // simulator charges its cost model from them, so they must match the
  // documented formulas exactly, for either kernel implementation.
  Rng rng(11);
  const index_t t = 6, n = 3, m = 9;
  Matrix a = random_spd_dense(t, rng);
  Matrix l = cholesky(a);
  Matrix b = random_matrix(t, n, rng);
  EXPECT_EQ(panel_trsm_lower(t, n, l.col(0), t, b.col(0), t),
            trsm_panel_flops(t, n));
  EXPECT_EQ(trsm_panel_flops(t, n), static_cast<nnz_t>(t) * t * n);
  EXPECT_EQ(panel_trsm_lower_transposed(t, n, l.col(0), t, b.col(0), t),
            trsm_panel_flops(t, n));
  Matrix x = random_matrix(m, t, rng);
  EXPECT_EQ(panel_trsm_right_lt(m, t, l.col(0), t, x.col(0), m),
            trsm_right_lt_flops(m, t));
  EXPECT_EQ(trsm_right_lt_flops(m, t), static_cast<nnz_t>(m) * t * t);
  Matrix spd = random_spd_dense(m, rng);
  EXPECT_EQ(panel_cholesky(m, t, spd.col(0), m), cholesky_panel_flops(m, t));
  EXPECT_EQ(cholesky_panel_flops(m, t),
            static_cast<nnz_t>(m) * t * t - 2 * static_cast<nnz_t>(t) * t * t / 3);
  EXPECT_EQ(syrk_flops(4, 3, 5, /*lower_only=*/false), 120);
  EXPECT_EQ(syrk_flops(4, 3, 5, /*lower_only=*/true), 60);
}

TEST(Flops, PanelFormulasNonNegativeOnTinyShapes) {
  // cholesky_panel_flops uses integer division, so check it stays
  // non-negative (and sane) across every tiny m >= t shape.
  for (index_t m = 0; m <= 12; ++m) {
    for (index_t t = 0; t <= m; ++t) {
      EXPECT_GE(cholesky_panel_flops(m, t), 0) << "m=" << m << " t=" << t;
      EXPECT_GE(trsm_panel_flops(t, 0), 0);
    }
  }
  EXPECT_EQ(cholesky_panel_flops(1, 1), 1);
  EXPECT_EQ(cholesky_panel_flops(0, 0), 0);
  EXPECT_EQ(trsm_panel_flops(0, 5), 0);
  EXPECT_EQ(trsm_right_lt_flops(0, 4), 0);
}

TEST(Flops, IdenticalAcrossKernelImplementations) {
  Rng rng(12);
  const index_t t = 70, n = 5;  // spans two tiles of the blocked trsm
  Matrix a = random_spd_dense(t, rng);
  Matrix l = cholesky(a);
  nnz_t counts[2];
  for (KernelImpl impl : {KernelImpl::reference, KernelImpl::tiled}) {
    const KernelImpl saved = kernel_impl();
    set_kernel_impl(impl);
    Matrix b = random_matrix(t, n, rng);
    counts[impl == KernelImpl::tiled] =
        panel_trsm_lower(t, n, l.col(0), t, b.col(0), t);
    set_kernel_impl(saved);
  }
  EXPECT_EQ(counts[0], counts[1]);
}

}  // namespace
}  // namespace sparts::dense
