// Pins the simulator's determinism contract: two runs of the same SPMD
// program on fresh Machines produce bit-identical RunStats, even when
// receives use kAnySource (the scheduler's tie-breaking — smallest
// effective time, then smallest rank; message matching by earliest
// arrival, then smallest source, then send sequence — leaves no freedom).
// The exec-layer refactor moved this code; these tests guarantee the
// semantics did not move with it.
#include <gtest/gtest.h>

#include <vector>

#include "exec/task_backend.hpp"
#include "exec/thread_backend.hpp"
#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "partrisolve/partrisolve.hpp"
#include "simpar/machine.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

// Bit-identical, not approximately equal: determinism means the exact same
// floating-point clock values fall out of both runs.
void expect_bit_identical(const exec::RunStats& a, const exec::RunStats& b) {
  ASSERT_EQ(a.procs.size(), b.procs.size());
  for (std::size_t r = 0; r < a.procs.size(); ++r) {
    const exec::ProcStats& pa = a.procs[r];
    const exec::ProcStats& pb = b.procs[r];
    EXPECT_EQ(pa.clock, pb.clock) << "rank " << r;
    EXPECT_EQ(pa.compute_time, pb.compute_time) << "rank " << r;
    EXPECT_EQ(pa.send_time, pb.send_time) << "rank " << r;
    EXPECT_EQ(pa.idle_time, pb.idle_time) << "rank " << r;
    EXPECT_EQ(pa.flops, pb.flops) << "rank " << r;
    EXPECT_EQ(pa.messages_sent, pb.messages_sent) << "rank " << r;
    EXPECT_EQ(pa.words_sent, pb.words_sent) << "rank " << r;
  }
}

TEST(DeterministicReplay, AnySourceFanInIsReplayedBitIdentically) {
  // Every rank > 0 sends a staggered burst to rank 0; rank 0 consumes the
  // whole burst through kAnySource.  The matched order (and therefore the
  // stats) must be a pure function of the program.
  constexpr index_t p = 8;
  constexpr int rounds = 5;

  auto run_once = [&](std::vector<index_t>* order) {
    simpar::Machine machine = make_machine(p);
    return machine.run([&](simpar::Proc& proc) {
      if (proc.rank() == 0) {
        for (int i = 0; i < rounds * (p - 1); ++i) {
          const auto msg = proc.recv(simpar::kAnySource, /*tag=*/1);
          if (order != nullptr) order->push_back(msg.source);
          proc.compute(100.0, simpar::FlopKind::blas1);
        }
      } else {
        for (int i = 0; i < rounds; ++i) {
          // Desynchronize the senders so ties and near-ties both occur.
          proc.compute(50.0 * static_cast<double>(proc.rank()),
                       simpar::FlopKind::blas1);
          const std::vector<real_t> payload(
              static_cast<std::size_t>(proc.rank()), 1.0);
          proc.send_values<real_t>(0, 1, payload);
        }
      }
    });
  };

  std::vector<index_t> order1, order2;
  const exec::RunStats s1 = run_once(&order1);
  const exec::RunStats s2 = run_once(&order2);
  EXPECT_EQ(order1, order2);
  expect_bit_identical(s1, s2);
}

TEST(DeterministicReplay, TrisolveRunStatsAreBitIdentical) {
  // The full pipelined trisolve — the paper's workload — replayed on a
  // fresh Machine must reproduce every clock exactly.
  sparse::SymmetricCsc a0 = sparse::grid2d(15, 15);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(15, 15);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t n = a.n();
  constexpr index_t p = 8;
  constexpr index_t m = 3;

  Rng rng(11);
  const std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);

  auto solve_once = [&](std::vector<real_t>* x_out) {
    partrisolve::DistributedTrisolver solver(l, map, partrisolve::Options{});
    simpar::Machine machine = make_machine(p);
    std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
    auto [fw, bw] = solver.solve(machine, rhs, x, m);
    if (x_out != nullptr) *x_out = x;
    return std::pair{fw.stats, bw.stats};
  };

  std::vector<real_t> x1, x2;
  const auto [fw1, bw1] = solve_once(&x1);
  const auto [fw2, bw2] = solve_once(&x2);
  expect_bit_identical(fw1, fw2);
  expect_bit_identical(bw1, bw2);
  EXPECT_EQ(x1, x2);  // the arithmetic, too, is replayed exactly
}

TEST(DeterministicReplay, TaskBackendArithmeticIsReplayedBitIdentically) {
  // The tasks backend cannot promise bit-identical *times* (it measures
  // wall clock) but must promise bit-identical *arithmetic*: replaying the
  // pipelined trisolve on fresh TaskBackends — and on the thread backend —
  // yields the exact same x.  Deterministic message matching (per-(src,
  // tag) FIFO, no wildcard freedom in this program) makes every execution
  // order produce the same value at every memory location.
  sparse::SymmetricCsc a0 = sparse::grid2d(15, 15);
  const sparse::Permutation perm = ordering::nested_dissection_grid2d(15, 15);
  sparse::SymmetricCsc a = sparse::permute_symmetric(a0, perm);
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  const index_t n = a.n();
  constexpr index_t p = 8;
  constexpr index_t m = 3;

  Rng rng(11);
  const std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(l.partition(), p);
  partrisolve::DistributedTrisolver solver(l, map, partrisolve::Options{});

  auto solve_on = [&](exec::Comm& machine) {
    std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
    (void)solver.solve(machine, rhs, x, m);
    return x;
  };

  exec::TaskBackend::Config cfg;
  cfg.nprocs = p;
  exec::TaskBackend tasks1(cfg), tasks2(cfg);
  const std::vector<real_t> x1 = solve_on(tasks1);
  const std::vector<real_t> x2 = solve_on(tasks2);
  EXPECT_EQ(x1, x2);

  exec::ThreadBackend::Config tcfg;
  tcfg.nprocs = p;
  tcfg.recv_timeout = 30.0;
  exec::ThreadBackend threads(tcfg);
  EXPECT_EQ(x1, solve_on(threads));
}

}  // namespace
}  // namespace sparts
