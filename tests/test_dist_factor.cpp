// Rank-local factor storage: packing, redistribution-produced storage,
// and the strict-distribution solve path.
#include <gtest/gtest.h>

#include <vector>

#include "mapping/subtree_to_subcube.hpp"
#include "numeric/multifrontal.hpp"
#include "ordering/nested_dissection.hpp"
#include "parfact/parfact.hpp"
#include "partrisolve/dist_factor.hpp"
#include "partrisolve/layout.hpp"
#include "partrisolve/partrisolve.hpp"
#include "redist/redist.hpp"
#include "sparse/generators.hpp"
#include "sparse/permutation.hpp"
#include "trisolve/trisolve.hpp"
#include "simpar/collectives.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

simpar::Machine make_machine(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = simpar::CostModel::t3d();
  cfg.topology = simpar::TopologyKind::hypercube;
  return simpar::Machine(cfg);
}

struct Prob {
  sparse::SymmetricCsc a;
  numeric::SupernodalFactor l;
};

Prob make_prob(index_t k) {
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid2d(k, k), ordering::nested_dissection_grid2d(k, k));
  numeric::SupernodalFactor l = numeric::multifrontal_cholesky(a);
  return {std::move(a), std::move(l)};
}

TEST(DistFactor, PackCoversEveryEntry) {
  Prob prob = make_prob(11);
  const index_t p = 4, b = 4;
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), p);
  const auto df =
      partrisolve::DistributedFactor::pack_from(prob.l, map, b);

  const auto& part = prob.l.partition();
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const simpar::Group& g = map.group[static_cast<std::size_t>(s)];
    const partrisolve::Layout lay{g.count, b, part.height(s), part.width(s)};
    const auto block = prob.l.block(s);
    for (index_t i = 0; i < lay.ns; ++i) {
      const index_t r = lay.owner_of(i);
      const index_t w = g.world(r);
      ASSERT_TRUE(df.has_block(w, s));
      const auto& local = df.local_block(w, s);
      const index_t nloc = df.local_rows(w, s);
      for (index_t k2 = 0; k2 < part.width(s); ++k2) {
        EXPECT_DOUBLE_EQ(
            local[static_cast<std::size_t>(k2 * nloc + lay.local_of(i))],
            block[static_cast<std::size_t>(k2 * lay.ns + i)]);
      }
    }
  }
}

class StrictSolveTest : public ::testing::TestWithParam<index_t> {};

TEST_P(StrictSolveTest, MatchesSharedFactorSolve) {
  const index_t p = GetParam();
  Prob prob = make_prob(13);
  const index_t n = prob.a.n(), m = 2;
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), p);
  partrisolve::Options opt;

  Rng rng(51);
  std::vector<real_t> rhs = sparse::random_rhs(n, m, rng);
  std::vector<real_t> ref = rhs;
  trisolve::full_solve(prob.l, ref.data(), m);

  const auto df = partrisolve::DistributedFactor::pack_from(
      prob.l, map, opt.block_size);
  partrisolve::DistributedTrisolver solver(prob.l, &df, map, opt);
  simpar::Machine machine = make_machine(p);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  solver.solve(machine, rhs, x, m);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], ref[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Powers, StrictSolveTest,
                         ::testing::Values<index_t>(1, 2, 4, 8, 16));

TEST(DistFactor, RedistributionProducesPackedStorage) {
  Prob prob = make_prob(15);
  const index_t p = 8;
  const mapping::SubcubeMapping map =
      mapping::subtree_to_subcube(prob.l.partition(), p);
  redist::Options ropt;
  partrisolve::DistributedFactor via_network;
  {
    simpar::Machine machine = make_machine(p);
    redist::redistribute_factor(machine, prob.l, map, ropt, &via_network);
  }
  const auto direct =
      partrisolve::DistributedFactor::pack_from(prob.l, map, ropt.block_1d);

  const auto& part = prob.l.partition();
  for (index_t s = 0; s < part.num_supernodes(); ++s) {
    const simpar::Group& g = map.group[static_cast<std::size_t>(s)];
    for (index_t r = 0; r < g.count; ++r) {
      const index_t w = g.world(r);
      const auto& a = via_network.local_block(w, s);
      const auto& b = direct.local_block(w, s);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t z = 0; z < a.size(); ++z) {
        EXPECT_DOUBLE_EQ(a[z], b[z]) << "supernode " << s << " rank " << w;
      }
    }
  }
}

TEST(DistFactor, FullPipelineFactorRedistSolveStrict) {
  // The complete paper pipeline with no shared-factor shortcut anywhere in
  // the solve: parallel factorization (2-D) -> redistribution (network)
  // -> strict 1-D solve from rank-local storage.
  sparse::SymmetricCsc a = sparse::permute_symmetric(
      sparse::grid3d(6, 6, 6), ordering::nested_dissection_grid3d(6, 6, 6));
  const symbolic::SymbolicFactor sym = symbolic::symbolic_cholesky(a);
  const symbolic::SupernodePartition part =
      symbolic::fundamental_supernodes(sym);
  const index_t p = 8;

  const mapping::SubcubeMapping fmap = mapping::subtree_to_subcube(
      part, p, mapping::factor_work_weights(part));
  numeric::SupernodalFactor factor;
  {
    simpar::Machine machine = make_machine(p);
    parfact::parallel_multifrontal(machine, a, part, fmap, factor);
  }

  const mapping::SubcubeMapping smap = mapping::subtree_to_subcube(part, p);
  redist::Options ropt;
  partrisolve::DistributedFactor df;
  {
    simpar::Machine machine = make_machine(p);
    redist::redistribute_factor(machine, factor, smap, ropt, &df);
  }

  partrisolve::Options opt;
  opt.block_size = ropt.block_1d;
  partrisolve::DistributedTrisolver solver(factor, &df, smap, opt);
  const index_t n = a.n(), m = 3;
  Rng rng(53);
  std::vector<real_t> b = sparse::random_rhs(n, m, rng);
  std::vector<real_t> x(static_cast<std::size_t>(n * m), 0.0);
  simpar::Machine machine = make_machine(p);
  solver.solve(machine, b, x, m);
  EXPECT_LT(trisolve::relative_residual(a, x, b, m), 1e-9);
}

}  // namespace
}  // namespace sparts
