// Unit tests of the fault-tolerance exec layer: FaultPlan parsing, the
// polling primitives (try_recv / poll_wait) on both backends, and the
// reliability envelope recovering from injected drops, duplicates,
// reorders, stalls and crashes.  Solver-level scenarios live in
// test_fault_tolerance.cpp; these tests drive the decorator stack
// Reliable(Faulty(backend)) directly with hand-written SPMD bodies.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "exec/fault_backend.hpp"
#include "exec/reliable.hpp"
#include "exec/thread_backend.hpp"
#include "simpar/machine.hpp"

namespace sparts {
namespace {

std::unique_ptr<simpar::Machine> make_sim(index_t p) {
  simpar::Machine::Config cfg;
  cfg.nprocs = p;
  cfg.cost = exec::CostModel::t3d();
  return std::make_unique<simpar::Machine>(cfg);
}

std::unique_ptr<exec::ThreadBackend> make_threads(index_t p,
                                                  double timeout = 30.0) {
  exec::ThreadBackend::Config cfg;
  cfg.nprocs = p;
  cfg.recv_timeout = timeout;
  return std::make_unique<exec::ThreadBackend>(cfg);
}

/// Payload content as a pure function of (src, tag, len): receivers can
/// verify integrity without a side channel.
std::vector<real_t> stamp(index_t src, int tag, index_t len) {
  std::vector<real_t> v(static_cast<std::size_t>(len));
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<real_t>(src) * 1000.0 + static_cast<real_t>(tag) +
           static_cast<real_t>(i) * 0.5;
  }
  return v;
}

// ---------------------------------------------------------------------------
// FaultPlan spec parsing.

TEST(FaultPlan, ParseFullSpec) {
  const auto plan = exec::FaultPlan::parse(
      "seed=42,drop=0.05,dup=0.02,delay=0.1:0.01,reorder=0.25,"
      "stall=2@0.5,crash=1@40,max_faults=100");
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_DOUBLE_EQ(plan.drop, 0.05);
  EXPECT_DOUBLE_EQ(plan.dup, 0.02);
  EXPECT_DOUBLE_EQ(plan.delay_prob, 0.1);
  EXPECT_DOUBLE_EQ(plan.delay_seconds, 0.01);
  EXPECT_DOUBLE_EQ(plan.reorder, 0.25);
  EXPECT_EQ(plan.stall_rank, 2);
  EXPECT_DOUBLE_EQ(plan.stall_seconds, 0.5);
  EXPECT_EQ(plan.crash_rank, 1);
  EXPECT_EQ(plan.crash_after, 40);
  EXPECT_EQ(plan.max_faults, 100);
  EXPECT_TRUE(plan.any_message_faults());
  EXPECT_FALSE(plan.summary().empty());
}

TEST(FaultPlan, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(exec::FaultPlan::parse("bogus=1"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("drop"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("drop=abc"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("drop=1.5"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("dup=-0.1"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("delay=0.1"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("delay=0.1:-2"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("stall=1"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("crash=0"), InvalidArgument);
  EXPECT_THROW(exec::FaultPlan::parse("seed=1x"), InvalidArgument);
}

TEST(FaultPlan, DefaultPlanInjectsNothing) {
  const exec::FaultPlan plan;
  EXPECT_FALSE(plan.any_message_faults());
  EXPECT_EQ(plan.stall_rank, -1);
  EXPECT_EQ(plan.crash_rank, -1);
}

// ---------------------------------------------------------------------------
// try_recv / poll_wait semantics.

void try_recv_spmd(exec::Process& proc) {
  if (proc.rank() == 0) {
    proc.send_values<real_t>(1, 7, stamp(0, 7, 16));
  } else {
    exec::ReceivedMessage msg;
    // A tag nobody sends: try_recv must say no without blocking.
    EXPECT_FALSE(proc.try_recv(0, 99, &msg));
    int polls = 0;
    while (!proc.try_recv(0, 7, &msg)) {
      proc.poll_wait(1e-4);
      ASSERT_LT(++polls, 1000000) << "message never arrived";
    }
    EXPECT_EQ(msg.source, 0);
    ASSERT_EQ(msg.payload.size(), 16 * sizeof(real_t));
    const auto want = stamp(0, 7, 16);
    EXPECT_EQ(std::memcmp(msg.payload.data(), want.data(),
                          msg.payload.size()),
              0);
  }
}

TEST(TryRecv, PollsToCompletionOnSimulator) {
  make_sim(2)->run(try_recv_spmd);
}

TEST(TryRecv, PollsToCompletionOnThreads) {
  make_threads(2)->run(try_recv_spmd);
}

// ---------------------------------------------------------------------------
// Reliability envelope, clean path.

TEST(Reliable, CleanPingPongPreservesPayloadAndCountsSends) {
  exec::ReliableBackend backend(make_sim(2),
                                exec::ReliableConfig::for_simulated());
  backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, 7, stamp(0, 7, 64));
      const auto back = proc.recv_values<real_t>(1, 8);
      EXPECT_EQ(back, stamp(1, 8, 32));
    } else {
      const auto got = proc.recv_values<real_t>(0, 7);
      EXPECT_EQ(got, stamp(0, 7, 64));
      proc.send_values<real_t>(0, 8, stamp(1, 8, 32));
    }
  });
  const auto& st = backend.stats();
  EXPECT_EQ(st.data_sends, 2);
  EXPECT_EQ(st.retransmits, 0);
  EXPECT_EQ(st.dup_discarded, 0);
  EXPECT_EQ(st.timeouts, 0);
  // Both ranks report a finished body.
  for (const auto& prog : backend.progress()) EXPECT_TRUE(prog.finished);
}

TEST(Reliable, RejectsSendsOnTheControlTag) {
  exec::ReliableBackend backend(make_sim(2),
                                exec::ReliableConfig::for_simulated());
  EXPECT_THROW(backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      proc.send_values<real_t>(1, exec::kCtrlTag, stamp(0, 0, 1));
    }
  }),
               Error);
}

// ---------------------------------------------------------------------------
// Recovery from injected message faults.

/// Ring exchange: `rounds` rounds, every rank sends to its successor and
/// receives from its predecessor, each message on a unique tag.
void ring_spmd(exec::Process& proc, index_t rounds) {
  const index_t p = proc.nprocs();
  const index_t next = (proc.rank() + 1) % p;
  const index_t prev = (proc.rank() + p - 1) % p;
  for (index_t r = 0; r < rounds; ++r) {
    const int tag_out = static_cast<int>(100 + r * p + proc.rank());
    const int tag_in = static_cast<int>(100 + r * p + prev);
    proc.send_values<real_t>(next, tag_out, stamp(proc.rank(), tag_out, 32));
    const auto got = proc.recv_values<real_t>(prev, tag_in);
    ASSERT_EQ(got, stamp(prev, tag_in, 32));
  }
}

TEST(Reliable, RecoversFromDroppedMessagesOnSimulator) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_sim(4), exec::FaultPlan::parse("seed=42,drop=0.4"));
  const exec::FaultyBackend* fb = faulty.get();
  exec::ReliableBackend backend(std::move(faulty),
                                exec::ReliableConfig::for_simulated());
  backend.run([](exec::Process& proc) { ring_spmd(proc, 6); });
  EXPECT_GT(fb->stats().drops, 0);
  const auto& st = backend.stats();
  EXPECT_EQ(st.data_sends, 4 * 6);
  EXPECT_GT(st.retransmits, 0);
  // Bounded-retransmit budget: every message is retransmitted at most
  // max_retry + 1 times, so total retransmits can never exceed that
  // multiple of the data sends.
  const auto budget =
      static_cast<std::int64_t>(backend.config().max_retry + 1) *
      st.data_sends;
  EXPECT_LE(st.retransmits, budget);
  EXPECT_EQ(st.timeouts, 0);
}

TEST(Reliable, RecoversFromDroppedMessagesOnThreads) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_threads(4), exec::FaultPlan::parse("seed=7,drop=0.3"));
  exec::ReliableConfig cfg = exec::ReliableConfig::for_threads();
  cfg.timeout = 0.005;  // keep the retransmit waits short for test speed
  exec::ReliableBackend backend(std::move(faulty), cfg);
  backend.run([](exec::Process& proc) { ring_spmd(proc, 4); });
  EXPECT_GT(backend.stats().retransmits, 0);
  EXPECT_EQ(backend.stats().timeouts, 0);
}

TEST(Reliable, DiscardsDuplicatesOnASharedTagStream) {
  // All messages share one (src, tag) edge so a duplicated copy can be
  // matched by a later recv — exactly the case receiver-side dedup exists
  // for.  With dup=1 every send is delivered twice.
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_sim(2), exec::FaultPlan::parse("seed=3,dup=1.0"));
  exec::ReliableBackend backend(std::move(faulty),
                                exec::ReliableConfig::for_simulated());
  constexpr index_t kMsgs = 8;
  backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      for (index_t k = 0; k < kMsgs; ++k) {
        const real_t v = static_cast<real_t>(k);
        proc.send_values<real_t>(1, 5, {&v, 1});
      }
    } else {
      for (index_t k = 0; k < kMsgs; ++k) {
        const auto got = proc.recv_values<real_t>(0, 5);
        ASSERT_EQ(got.size(), 1u);
        // Dedup preserves the send order on a FIFO inner backend.
        EXPECT_DOUBLE_EQ(got[0], static_cast<real_t>(k));
      }
    }
  });
  EXPECT_GT(backend.stats().dup_discarded, 0);
}

TEST(Reliable, ReorderedMessagesStillMatchTheirTags) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_sim(2), exec::FaultPlan::parse("seed=5,reorder=1.0"));
  const exec::FaultyBackend* fb = faulty.get();
  exec::ReliableBackend backend(std::move(faulty),
                                exec::ReliableConfig::for_simulated());
  backend.run([](exec::Process& proc) {
    if (proc.rank() == 0) {
      for (int tag = 10; tag < 18; ++tag) {
        proc.send_values<real_t>(1, tag, stamp(0, tag, 8));
      }
    } else {
      // Receive in reverse send order; tag matching must pair each recv
      // with the right payload regardless of arrival order.
      for (int tag = 17; tag >= 10; --tag) {
        EXPECT_EQ(proc.recv_values<real_t>(0, tag), stamp(0, tag, 8));
      }
    }
  });
  EXPECT_GT(fb->stats().reorders, 0);
}

TEST(Faulty, DelayedMessagesAreReleasedAndDelivered) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_sim(2), exec::FaultPlan::parse("seed=9,delay=1.0:0.0005"));
  const exec::FaultyBackend* fb = faulty.get();
  exec::ReliableBackend backend(std::move(faulty),
                                exec::ReliableConfig::for_simulated());
  backend.run([](exec::Process& proc) { ring_spmd(proc, 3); });
  EXPECT_GT(fb->stats().delays, 0);
}

TEST(Faulty, StallFiresOnceAndRunCompletes) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_sim(2), exec::FaultPlan::parse("seed=1,stall=1@0.01"));
  const exec::FaultyBackend* fb = faulty.get();
  exec::ReliableBackend backend(std::move(faulty),
                                exec::ReliableConfig::for_simulated());
  backend.run([](exec::Process& proc) { ring_spmd(proc, 2); });
  EXPECT_EQ(fb->stats().stalls, 1);
}

// ---------------------------------------------------------------------------
// Crash and timeout aborts.

TEST(Faulty, CrashThrowsInjectedFaultOnSimulator) {
  // Bare fault layer, no envelope: the crash must surface as InjectedFault
  // ahead of the secondary deadlock unwind of the blocked peer.
  exec::FaultyBackend backend(make_sim(2),
                              exec::FaultPlan::parse("seed=1,crash=1@2"));
  EXPECT_THROW(backend.run([](exec::Process& proc) { ring_spmd(proc, 4); }),
               InjectedFault);
  EXPECT_EQ(backend.stats().crashes, 1);
}

TEST(Faulty, CrashThrowsInjectedFaultOnThreadsWithoutHanging) {
  auto faulty = std::make_unique<exec::FaultyBackend>(
      make_threads(4, /*timeout=*/5.0),
      exec::FaultPlan::parse("seed=1,crash=2@3"));
  exec::ReliableConfig cfg = exec::ReliableConfig::for_threads();
  cfg.timeout = 0.02;
  cfg.max_retry = 3;
  exec::ReliableBackend backend(std::move(faulty), cfg);
  // The run must end (no leaked threads, no hang) and the root cause must
  // win the rethrow-priority contest over TimeoutError/DeadlockError.
  EXPECT_THROW(backend.run([](exec::Process& proc) { ring_spmd(proc, 8); }),
               InjectedFault);
}

TEST(Reliable, TimeoutAbortCarriesProgressReport) {
  exec::ReliableConfig cfg = exec::ReliableConfig::for_simulated();
  cfg.max_retry = 2;  // give up quickly
  exec::ReliableBackend backend(make_sim(2), cfg);
  try {
    backend.run([](exec::Process& proc) {
      if (proc.rank() == 1) {
        exec::note_progress(proc, "waiting for a ghost");
        proc.recv_values<real_t>(0, 9);  // rank 0 never sends this
      }
    });
    FAIL() << "expected TimeoutError";
  } catch (const TimeoutError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("gave up waiting"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
    EXPECT_NE(what.find("waiting for a ghost"), std::string::npos) << what;
  }
}

TEST(Reliable, NoteProgressIsANoOpOnPlainBackends) {
  // note_progress must be callable from solver code on every backend.
  make_sim(2)->run([](exec::Process& proc) {
    exec::note_progress(proc, "plain backend, nothing to record");
  });
}

}  // namespace
}  // namespace sparts
