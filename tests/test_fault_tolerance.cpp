// End-to-end fault-tolerance scenarios through solver::parallel_solve:
// the reliability envelope must recover from injected drops, duplicates,
// delays, reorders and stalls with a solution bit-identical to the clean
// run; a crash must surface as a structured SolveError (no hang); and a
// singular matrix must complete with degraded status under the perturbing
// pivot policy.  Registered under the CTest label `faults` and included in
// the TSan preset, so the threaded scenarios run under the race detector.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "solver/sparse_solver.hpp"
#include "sparse/formats.hpp"
#include "sparse/generators.hpp"
#include "trisolve/trisolve.hpp"

namespace sparts {
namespace {

struct Problem {
  sparse::SymmetricCsc a;
  std::vector<real_t> b;
};

Problem make_problem() {
  Problem prob{sparse::grid2d(12, 12), {}};
  Rng rng(17);
  prob.b = sparse::random_rhs(prob.a.n(), 1, rng);
  return prob;
}

solver::ParallelSolveResult clean_solve(const Problem& prob) {
  solver::Options opt;
  opt.backend = solver::ExecutionBackend::simulated;
  return solver::parallel_solve(prob.a, prob.b, 1, 4, opt);
}

solver::ParallelSolveResult faulty_solve(const Problem& prob,
                                         const std::string& plan,
                                         bool threads = false) {
  solver::Options opt;
  opt.backend = threads ? solver::ExecutionBackend::faulty_threads
                        : solver::ExecutionBackend::faulty;
  opt.fault_plan = exec::FaultPlan::parse(plan);
  return solver::parallel_solve(prob.a, prob.b, 1, 4, opt);
}

TEST(FaultTolerance, EnvelopeWithoutFaultsMatchesCleanRunBitwise) {
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  const auto r = faulty_solve(prob, "seed=1");
  EXPECT_EQ(clean.x, r.x);
  EXPECT_EQ(r.status, solver::SolveStatus::ok);
  EXPECT_EQ(r.faults_injected, 0);
  EXPECT_EQ(r.retransmits, 0);
}

TEST(FaultTolerance, RecoversFromDropsBitIdentical) {
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  for (const int seed : {7, 11, 42}) {
    const auto r = faulty_solve(
        prob, "seed=" + std::to_string(seed) + ",drop=0.25");
    EXPECT_EQ(clean.x, r.x) << "seed " << seed;
    EXPECT_EQ(r.status, solver::SolveStatus::ok);
    EXPECT_GT(r.faults_injected, 0);
    EXPECT_GT(r.retransmits, 0);
  }
}

TEST(FaultTolerance, RecoversFromMixedFaultsBitIdentical) {
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  const auto r = faulty_solve(
      prob, "seed=42,drop=0.1,dup=0.1,delay=0.2:0.0005,reorder=0.1");
  EXPECT_EQ(clean.x, r.x);
  EXPECT_EQ(r.status, solver::SolveStatus::ok);
  EXPECT_GT(r.faults_injected, 0);
  EXPECT_LT(trisolve::relative_residual(prob.a, r.x, prob.b, 1), 1e-9);
}

TEST(FaultTolerance, RecoversFromStall) {
  // A 5 ms stall on rank 2 is well inside the envelope's backed-off retry
  // horizon, so peers NACK through it and the run converges.
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  const auto r = faulty_solve(prob, "seed=1,stall=2@0.005");
  EXPECT_EQ(clean.x, r.x);
  EXPECT_EQ(r.status, solver::SolveStatus::ok);
  EXPECT_GT(r.faults_injected, 0);  // the stall itself is counted
}

TEST(FaultTolerance, ThreadsBackendRecoversFromDropsBitIdentical) {
  // Shrink the wall-clock retransmit timeout (SPARTS_TIMEOUT_MS is the
  // documented knob) so the many recovery waits stay fast even under TSan.
  ::setenv("SPARTS_TIMEOUT_MS", "5", 1);
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  const auto r = faulty_solve(prob, "seed=42,drop=0.15", /*threads=*/true);
  ::unsetenv("SPARTS_TIMEOUT_MS");
  EXPECT_EQ(clean.x, r.x);
  EXPECT_EQ(r.status, solver::SolveStatus::ok);
  EXPECT_GT(r.retransmits, 0);
}

TEST(FaultTolerance, CrashProducesStructuredSolveError) {
  const Problem prob = make_problem();
  try {
    faulty_solve(prob, "seed=1,crash=1@5");
    FAIL() << "expected SolveError";
  } catch (const solver::SolveError& e) {
    EXPECT_EQ(e.failed_phase(), "factorization");
    EXPECT_NE(e.cause().find("injected"), std::string::npos) << e.cause();
    // The progress report names every rank and where it was.
    EXPECT_NE(e.progress().find("rank 0"), std::string::npos)
        << e.progress();
    EXPECT_NE(e.progress().find("rank 3"), std::string::npos)
        << e.progress();
  }
}

TEST(FaultTolerance, CrashOnThreadsProducesStructuredSolveErrorNoHang) {
  // The acceptance gate for shutdown hardening: a rank dying mid-phase on
  // the real thread backend must leave no peer blocked — the run ends, all
  // threads join, and the caller gets a structured error.
  const Problem prob = make_problem();
  try {
    faulty_solve(prob, "seed=1,crash=1@5", /*threads=*/true);
    FAIL() << "expected SolveError";
  } catch (const solver::SolveError& e) {
    EXPECT_EQ(e.failed_phase(), "factorization");
    EXPECT_FALSE(e.progress().empty());
  }
}

// ---------------------------------------------------------------------------
// Graceful numerical degradation.

/// Free-boundary path-graph Laplacian: tridiagonal, diag = vertex degree,
/// off-diag -1.  Exactly singular (ones spans the null space), and under
/// natural ordering every elimination step is exact integer arithmetic, so
/// the final pivot is an exact floating-point zero — a deterministic
/// tiny-pivot scenario.
sparse::SymmetricCsc path_laplacian(index_t n) {
  sparse::Triplets t(n, n);
  for (index_t i = 0; i < n; ++i) {
    const real_t deg = (i == 0 || i == n - 1) ? 1.0 : 2.0;
    t.add(i, i, deg);
    if (i + 1 < n) t.add(i + 1, i, -1.0);
  }
  return sparse::SymmetricCsc::from_triplets(t);
}

TEST(Degradation, SingularMatrixFailsInDefaultPivotMode) {
  const sparse::SymmetricCsc a = path_laplacian(16);
  std::vector<real_t> v(16, 0.0), b(16, 0.0);
  for (index_t i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] =
      0.25 * static_cast<real_t>(i + 1);
  a.symv(1.0, v, b);
  solver::Options opt;
  opt.ordering = solver::OrderingMethod::natural;
  EXPECT_THROW(solver::parallel_solve(a, b, 1, 4, opt), NumericalError);
}

TEST(Degradation, SingularMatrixCompletesDegradedWithPerturbedPivots) {
  const sparse::SymmetricCsc a = path_laplacian(16);
  // Consistent right-hand side b = A v: a solution exists even though A is
  // singular, so refinement can drive the residual down.
  std::vector<real_t> v(16, 0.0), b(16, 0.0);
  for (index_t i = 0; i < 16; ++i) v[static_cast<std::size_t>(i)] =
      0.25 * static_cast<real_t>(i + 1);
  a.symv(1.0, v, b);

  solver::Options opt;
  opt.ordering = solver::OrderingMethod::natural;
  opt.pivot_mode = dense::PivotMode::perturb;
  const auto r = solver::parallel_solve(a, b, 1, 4, opt);
  EXPECT_EQ(r.status, solver::SolveStatus::degraded);
  EXPECT_GE(r.perturbed_pivots, 1);
  // Refinement ran (residual was computed) and converged.
  EXPECT_GE(r.residual, 0.0);
  EXPECT_LT(r.residual, 1e-8);
  EXPECT_LT(trisolve::relative_residual(a, r.x, b, 1), 1e-8);
}

TEST(Degradation, PerturbModeLeavesHealthyMatricesUntouched) {
  const Problem prob = make_problem();
  const auto clean = clean_solve(prob);
  solver::Options opt;
  opt.pivot_mode = dense::PivotMode::perturb;
  const auto r = solver::parallel_solve(prob.a, prob.b, 1, 4, opt);
  EXPECT_EQ(r.status, solver::SolveStatus::ok);
  EXPECT_EQ(r.perturbed_pivots, 0);
  EXPECT_EQ(r.refine_iterations, 0);
  EXPECT_EQ(clean.x, r.x);
}

}  // namespace
}  // namespace sparts
