// Hostile-input tests for the two on-disk formats: Matrix Market text and
// the binary factor cache.  Both arrive from outside the process, so every
// malformed stream must produce a diagnosable IoError — carrying the line
// number (Matrix Market) or byte offset (factor file) — and never a crash,
// a hang, or a silently wrong matrix.
#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "numeric/factor_io.hpp"
#include "numeric/multifrontal.hpp"
#include "sparse/generators.hpp"
#include "sparse/io.hpp"

namespace sparts {
namespace {

sparse::SymmetricCsc parse(const std::string& text) {
  std::istringstream in(text);
  return sparse::read_matrix_market(in);
}

/// EXPECT that parsing `text` throws IoError whose message contains every
/// fragment in `needles`.
void expect_parse_error(const std::string& text,
                        std::initializer_list<const char*> needles) {
  try {
    parse(text);
    FAIL() << "expected IoError for:\n" << text;
  } catch (const IoError& e) {
    const std::string what = e.what();
    for (const char* needle : needles) {
      EXPECT_NE(what.find(needle), std::string::npos)
          << "missing \"" << needle << "\" in: " << what;
    }
  }
}

TEST(MatrixMarket, EmptyStream) {
  expect_parse_error("", {"empty"});
}

TEST(MatrixMarket, UnsupportedHeaderNamesLineOne) {
  expect_parse_error("%%MatrixMarket matrix array real symmetric\n2 2 2\n",
                     {"line 1", "unsupported header"});
  expect_parse_error("garbage first line\n", {"line 1"});
}

TEST(MatrixMarket, UnsupportedFieldAndSymmetry) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate complex symmetric\n1 1 1\n1 1 1 0\n",
      {"line 1", "unsupported field"});
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 1\n",
      {"line 1", "symmetric"});
}

TEST(MatrixMarket, MissingSizeLine) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real symmetric\n% only comments\n",
      {"truncated stream", "no size line"});
}

TEST(MatrixMarket, BadSizeLine) {
  const std::string header =
      "%%MatrixMarket matrix coordinate real symmetric\n";
  expect_parse_error(header + "4 5 3\n", {"line 2", "bad size line"});
  expect_parse_error(header + "-2 -2 1\n", {"line 2", "bad size line"});
  expect_parse_error(header + "3 3 -1\n", {"line 2", "bad size line"});
  expect_parse_error(header + "nope\n", {"line 2", "bad size line"});
}

TEST(MatrixMarket, TruncatedBodyNamesExpectedAndActualCounts) {
  expect_parse_error(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 4.0\n",
      {"truncated body", "expected 3", "got 1"});
}

TEST(MatrixMarket, EntryErrorsCarryTheLineNumber) {
  const std::string preamble =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "% a comment line\n"
      "2 2 2\n"
      "1 1 4.0\n";
  expect_parse_error(preamble + "5 1 1.0\n", {"line 5", "out of range"});
  expect_parse_error(preamble + "0 1 1.0\n", {"line 5", "out of range"});
  expect_parse_error(preamble + "x y z\n", {"line 5", "bad entry"});
}

TEST(MatrixMarket, NonFiniteValuesAreRejected) {
  // Whether the stream extractor accepts "inf"/"nan" as doubles is
  // implementation-defined; either way the parser must reject the line
  // (as non-finite or as a bad entry), naming it.
  const std::string preamble =
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 2\n"
      "1 1 4.0\n";
  expect_parse_error(preamble + "2 1 inf\n", {"line 4"});
  expect_parse_error(preamble + "2 1 nan\n", {"line 4"});
}

TEST(MatrixMarket, RoundTripSurvivesAndTruncationsNeverCrash) {
  const sparse::SymmetricCsc a = sparse::grid2d(4, 4);
  std::ostringstream out;
  sparse::write_matrix_market(a, out);
  const std::string full = out.str();

  // The untouched stream round-trips.
  const sparse::SymmetricCsc back = parse(full);
  EXPECT_EQ(back.n(), a.n());
  EXPECT_EQ(back.nnz_lower(), a.nnz_lower());

  // Fuzz-style sweep: every prefix either parses (a cut can land after a
  // complete final entry) or throws IoError — never anything else.
  for (std::size_t cut = 0; cut < full.size(); cut += 3) {
    try {
      parse(full.substr(0, cut));
    } catch (const IoError&) {
      // expected for most cut points
    }
  }
}

// ---------------------------------------------------------------------------
// Binary factor files.

std::string serialized_factor() {
  const sparse::SymmetricCsc a = sparse::grid2d(4, 4);
  const numeric::SupernodalFactor factor = numeric::multifrontal_cholesky(a);
  std::ostringstream out;
  numeric::write_factor(factor, out);
  return out.str();
}

TEST(FactorIo, RoundTripSurvives) {
  const std::string full = serialized_factor();
  std::istringstream in(full);
  const numeric::SupernodalFactor factor = numeric::read_factor(in);
  EXPECT_GT(factor.num_supernodes(), 0);
}

TEST(FactorIo, BadMagicIsRejected) {
  std::string bytes = serialized_factor();
  bytes[0] = 'X';
  std::istringstream in(bytes);
  try {
    numeric::read_factor(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
  }
}

TEST(FactorIo, TruncationsThrowIoErrorAtEveryPrefix) {
  const std::string full = serialized_factor();
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    std::istringstream in(full.substr(0, cut));
    EXPECT_THROW(numeric::read_factor(in), Error) << "cut at " << cut;
  }
  // A truncation inside the value blocks reports the byte offset the
  // failing read started at.
  std::istringstream in(full.substr(0, full.size() - 5));
  try {
    numeric::read_factor(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos)
        << e.what();
  }
}

TEST(FactorIo, ImplausibleArrayLengthIsRejectedBeforeAllocation) {
  std::string bytes = serialized_factor();
  // The first_col length field is the 8 bytes right after the magic;
  // overwrite it with a huge count.  read_factor must refuse to size a
  // vector from it instead of attempting a ~petabyte allocation.
  const std::int64_t huge = std::int64_t{1} << 50;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  std::istringstream in(bytes);
  try {
    numeric::read_factor(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("implausible array length"),
              std::string::npos)
        << e.what();
  }
}

TEST(FactorIo, NonFiniteFactorValuesAreRejected) {
  std::string bytes = serialized_factor();
  // The stream ends with the last supernode's values; poison the final one.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(bytes.data() + bytes.size() - sizeof(double), &nan,
              sizeof(nan));
  std::istringstream in(bytes);
  try {
    numeric::read_factor(in);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("non-finite factor value"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sparts
